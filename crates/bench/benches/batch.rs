//! Wall-clock scaling of `Executor::run_batch` across worker threads
//! (backs experiment E12 — the engine's parallel batch path).
// Benchmark glue: panicking on a malformed fixture is the desired behavior.
#![allow(clippy::expect_used, clippy::unwrap_used, missing_docs)]
#![allow(clippy::semicolon_if_nothing_returned)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emd_bench::setup::{
    build_reduction, chained_executor, flow_sample, tiling_bench, Scale, Strategy,
};
use emd_query::Query;
use std::hint::black_box;

fn batch_knn(c: &mut Criterion) {
    let scale = Scale {
        tiling_per_class: 12,
        color_per_class: 4,
        queries: 8,
        sample: 10,
    };
    let bench = tiling_bench(&scale, 21);
    let flows = flow_sample(&bench, scale.sample, 22);
    let reduction = build_reduction(Strategy::FbAllKMed, &bench, &flows, 12, 23);
    let executor = chained_executor(&bench, reduction);
    let workload: Vec<Query> = bench
        .queries
        .iter()
        .map(|q| Query::knn(q.clone(), 10))
        .collect();

    // The parity the engine guarantees: threads only change wall-clock.
    let (sequential, sequential_stats) = executor.run_batch(&workload, 1).expect("valid");
    let (threaded, threaded_stats) = executor.run_batch(&workload, 4).expect("valid");
    assert_eq!(sequential, threaded, "threaded batch diverged");
    assert_eq!(sequential_stats, threaded_stats, "merged stats diverged");

    let mut group = c.benchmark_group("batch_knn");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| black_box(executor.run_batch(&workload, t).expect("valid")))
        });
    }
    group.finish();
}

criterion_group!(benches, batch_knn);
criterion_main!(benches);
