//! Filter-chain configurations of the paper's Figure 10 head-to-head
//! (backs experiment E5).
// Benchmark glue: panicking on a malformed fixture is the desired behavior.
#![allow(clippy::expect_used, clippy::unwrap_used, missing_docs)]
#![allow(clippy::semicolon_if_nothing_returned)]

use criterion::{criterion_group, criterion_main, Criterion};
use emd_bench::setup::{
    build_reduction, chained_executor, flow_sample, red_emd_executor, refiner, scan_executor,
    tiling_bench, Scale, Strategy,
};
use emd_query::{Executor, Filter, FullLbImFilter, QueryPlan};
use std::hint::black_box;

fn chaining_configurations(c: &mut Criterion) {
    let scale = Scale {
        tiling_per_class: 10,
        color_per_class: 4,
        queries: 4,
        sample: 10,
    };
    let bench = tiling_bench(&scale, 12);
    let flows = flow_sample(&bench, scale.sample, 13);
    let reduction = build_reduction(Strategy::FbAllKMed, &bench, &flows, 12, 14);
    let query = &bench.queries[0];

    let mut group = c.benchmark_group("chaining");
    group.sample_size(10);

    let scan = scan_executor(&bench);
    group.bench_function("scan", |b| {
        b.iter(|| black_box(scan.knn(query, 10).expect("valid")))
    });

    let lb_im: Vec<Box<dyn Filter>> = vec![Box::new(
        FullLbImFilter::new(&bench.database).expect("consistent"),
    )];
    let lb_im_executor =
        Executor::new(QueryPlan::new(lb_im, Box::new(refiner(&bench))).expect("consistent"));
    group.bench_function("lbim_then_emd", |b| {
        b.iter(|| black_box(lb_im_executor.knn(query, 10).expect("valid")))
    });

    let red_emd = red_emd_executor(&bench, reduction.clone());
    group.bench_function("redemd_then_emd", |b| {
        b.iter(|| black_box(red_emd.knn(query, 10).expect("valid")))
    });

    let full_chain = chained_executor(&bench, reduction);
    group.bench_function("redim_redemd_emd", |b| {
        b.iter(|| black_box(full_chain.knn(query, 10).expect("valid")))
    });

    group.finish();
}

criterion_group!(benches, chaining_configurations);
criterion_main!(benches);
