//! The paper's motivation in one bench: exact EMD cost grows superlinearly
//! in the histogram dimensionality (Section 2), which is why reduced-
//! dimensionality filtering wins.
// Benchmark glue: panicking on a malformed fixture is the desired behavior.
#![allow(clippy::expect_used, clippy::unwrap_used, missing_docs)]
#![allow(clippy::semicolon_if_nothing_returned)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emd_bench::setup::{tiling_bench, Scale};
use emd_core::{emd, emd_in_context, emd_rectangular_budgeted, ground, EmdContext, Histogram};
use emd_transport::{solve_warm, Budget, SimplexOptions, SolverWorkspace, TransportProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_histogram(dim: usize, rng: &mut StdRng) -> Histogram {
    let bins: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
    Histogram::normalized(bins).expect("positive mass")
}

fn emd_vs_dimensionality(c: &mut Criterion) {
    let mut group = c.benchmark_group("emd_vs_dimensionality");
    for dim in [8usize, 16, 32, 64, 96] {
        let mut rng = StdRng::seed_from_u64(dim as u64);
        let cost = ground::linear(dim).expect("valid dim");
        let pairs: Vec<(Histogram, Histogram)> = (0..8)
            .map(|_| {
                (
                    random_histogram(dim, &mut rng),
                    random_histogram(dim, &mut rng),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| {
                for (x, y) in &pairs {
                    black_box(emd(x, y, &cost).expect("valid instance"));
                }
            })
        });
    }
    group.finish();
}

fn emd_on_realistic_features(c: &mut Criterion) {
    let scale = Scale {
        tiling_per_class: 2,
        color_per_class: 2,
        queries: 2,
        sample: 4,
    };
    let bench = tiling_bench(&scale, 1);
    let x = &bench.database.histograms()[0];
    let y = &bench.database.histograms()[1];
    c.bench_function("emd_tiling_96d_pair", |b| {
        b.iter(|| black_box(emd(x, y, &bench.cost).expect("valid")))
    });
}

/// A KNOP-like candidate sequence: one fixed supply marginal (the query)
/// against a drifting run of demand marginals (candidates pulled in
/// ascending filter-distance order resemble their predecessors).
fn drifting_sequence(dim: usize, steps: usize) -> (Vec<f64>, Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(dim as u64 ^ 0x5eed);
    let raw: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.05_f64..1.0)).collect();
    let total: f64 = raw.iter().sum();
    let supplies: Vec<f64> = raw.iter().map(|s| s / total).collect();
    let costs: Vec<f64> = (0..dim * dim)
        .map(|_| rng.gen_range(0.01_f64..4.0))
        .collect();
    let mut base: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.05_f64..1.0)).collect();
    let mut demand_sets = Vec::with_capacity(steps);
    for _ in 0..steps {
        for mass in &mut base {
            *mass *= 1.0 + rng.gen_range(-0.02_f64..0.02);
        }
        let total: f64 = base.iter().sum();
        demand_sets.push(base.iter().map(|d| d / total).collect());
    }
    (supplies, demand_sets, costs)
}

/// Cold-start (fresh workspace per solve — the pre-warm code path) vs a
/// single reused workspace across the whole candidate run.
fn solver_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_cold_vs_warm");
    for dim in [16usize, 32] {
        let (supplies, demand_sets, costs) = drifting_sequence(dim, 16);
        let problems: Vec<TransportProblem> = demand_sets
            .iter()
            .map(|demands| {
                TransportProblem::new(supplies.clone(), demands.clone(), costs.clone())
                    .expect("valid instance")
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("cold", dim), &dim, |b, _| {
            b.iter(|| {
                for problem in &problems {
                    let mut ws = SolverWorkspace::new();
                    black_box(
                        solve_warm(
                            problem,
                            SimplexOptions::default(),
                            &Budget::unlimited(),
                            &mut ws,
                        )
                        .expect("valid instance"),
                    );
                }
            })
        });
        let mut ws = SolverWorkspace::new();
        group.bench_with_input(BenchmarkId::new("warm", dim), &dim, |b, _| {
            b.iter(|| {
                for problem in &problems {
                    black_box(
                        solve_warm(
                            problem,
                            SimplexOptions::default(),
                            &Budget::unlimited(),
                            &mut ws,
                        )
                        .expect("valid instance"),
                    );
                }
            })
        });
    }
    group.finish();
}

/// Allocation economics at the EMD layer: the context-free entry point
/// (fresh buffers + workspace per call) vs [`emd_in_context`] reusing one
/// [`EmdContext`] across the run.
fn emd_alloc_vs_reuse(c: &mut Criterion) {
    let dim = 32usize;
    let mut rng = StdRng::seed_from_u64(0xa110c);
    let costs: Vec<f64> = (0..dim * dim)
        .map(|_| rng.gen_range(0.01_f64..4.0))
        .collect();
    let cost = emd_core::CostMatrix::new(dim, dim, costs).expect("valid dims");
    let query = random_histogram(dim, &mut rng);
    let candidates: Vec<Histogram> = (0..12).map(|_| random_histogram(dim, &mut rng)).collect();
    let budget = Budget::unlimited();

    let mut group = c.benchmark_group("emd_alloc_vs_reuse");
    group.bench_function("fresh_buffers", |b| {
        b.iter(|| {
            for y in &candidates {
                black_box(emd_rectangular_budgeted(&query, y, &cost, &budget).expect("valid"));
            }
        })
    });
    let mut ctx = EmdContext::new();
    group.bench_function("reused_context", |b| {
        b.iter(|| {
            for y in &candidates {
                black_box(emd_in_context(&query, y, &cost, &budget, &mut ctx).expect("valid"));
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    emd_vs_dimensionality,
    emd_on_realistic_features,
    solver_cold_vs_warm,
    emd_alloc_vs_reuse
);
criterion_main!(benches);
