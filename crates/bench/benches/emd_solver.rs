//! The paper's motivation in one bench: exact EMD cost grows superlinearly
//! in the histogram dimensionality (Section 2), which is why reduced-
//! dimensionality filtering wins.
// Benchmark glue: panicking on a malformed fixture is the desired behavior.
#![allow(clippy::expect_used, clippy::unwrap_used, missing_docs)]
#![allow(clippy::semicolon_if_nothing_returned)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emd_bench::setup::{tiling_bench, Scale};
use emd_core::{emd, ground, Histogram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_histogram(dim: usize, rng: &mut StdRng) -> Histogram {
    let bins: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
    Histogram::normalized(bins).expect("positive mass")
}

fn emd_vs_dimensionality(c: &mut Criterion) {
    let mut group = c.benchmark_group("emd_vs_dimensionality");
    for dim in [8usize, 16, 32, 64, 96] {
        let mut rng = StdRng::seed_from_u64(dim as u64);
        let cost = ground::linear(dim).expect("valid dim");
        let pairs: Vec<(Histogram, Histogram)> = (0..8)
            .map(|_| {
                (
                    random_histogram(dim, &mut rng),
                    random_histogram(dim, &mut rng),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| {
                for (x, y) in &pairs {
                    black_box(emd(x, y, &cost).expect("valid instance"));
                }
            })
        });
    }
    group.finish();
}

fn emd_on_realistic_features(c: &mut Criterion) {
    let scale = Scale {
        tiling_per_class: 2,
        color_per_class: 2,
        queries: 2,
        sample: 4,
    };
    let bench = tiling_bench(&scale, 1);
    let x = &bench.database.histograms()[0];
    let y = &bench.database.histograms()[1];
    c.bench_function("emd_tiling_96d_pair", |b| {
        b.iter(|| black_box(emd(x, y, &bench.cost).expect("valid")))
    });
}

criterion_group!(benches, emd_vs_dimensionality, emd_on_realistic_features);
criterion_main!(benches);
