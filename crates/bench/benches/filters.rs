//! Per-pair cost of every filter distance in the toolbox, tightest to
//! cheapest — the trade-off that pipeline ordering exploits.
// Benchmark glue: panicking on a malformed fixture is the desired behavior.
#![allow(clippy::expect_used, clippy::unwrap_used, missing_docs)]
#![allow(clippy::semicolon_if_nothing_returned)]

use criterion::{criterion_group, criterion_main, Criterion};
use emd_bench::setup::{build_reduction, flow_sample, tiling_bench, Scale, Strategy};
use emd_core::ground::Metric;
use emd_core::lower_bounds::{CentroidBound, LbIm, ScaledL1};
use emd_core::{emd, ground};
use emd_reduction::ReducedEmd;
use std::hint::black_box;

fn filter_costs(c: &mut Criterion) {
    let scale = Scale {
        tiling_per_class: 4,
        color_per_class: 4,
        queries: 2,
        sample: 6,
    };
    let bench = tiling_bench(&scale, 4);
    let x = &bench.queries[0];
    let y = &bench.database.histograms()[0];
    let mut group = c.benchmark_group("filter_pair_cost");

    group.bench_function("exact_emd_96d", |b| {
        b.iter(|| black_box(emd(x, y, &bench.cost).expect("valid")))
    });

    let lb_im = LbIm::new((*bench.cost).clone());
    group.bench_function("lb_im_96d", |b| {
        b.iter(|| black_box(lb_im.bound(x, y).expect("valid")))
    });

    let centroid = CentroidBound::new(ground::grid2_positions(12, 8), Metric::Euclidean)
        .expect("valid positions");
    group.bench_function("centroid_96d", |b| {
        b.iter(|| black_box(centroid.bound(x, y).expect("valid")))
    });

    let scaled = ScaledL1::new(&bench.cost);
    group.bench_function("scaled_l1_96d", |b| {
        b.iter(|| black_box(scaled.bound(x, y).expect("valid")))
    });

    let flows = flow_sample(&bench, scale.sample, 5);
    let reduction = build_reduction(Strategy::FbAllKMed, &bench, &flows, 12, 6);
    let reduced = ReducedEmd::new(&bench.cost, reduction).expect("validated");
    let rx = reduced.reduce_first(x).expect("dims ok");
    let ry = reduced.reduce_second(y).expect("dims ok");
    group.bench_function("red_emd_12d", |b| {
        b.iter(|| black_box(reduced.distance_reduced(&rx, &ry).expect("valid")))
    });
    let red_im = LbIm::new(reduced.reduced_cost().clone());
    group.bench_function("red_im_12d", |b| {
        b.iter(|| black_box(red_im.bound(&rx, &ry).expect("valid")))
    });

    group.finish();
}

criterion_group!(benches, filter_costs);
criterion_main!(benches);
