//! End-to-end k-NN query cost: sequential scan vs the reduced pipelines
//! (backs experiment E4).

// Benchmark glue: panicking on a malformed fixture is the desired behavior.
#![allow(clippy::expect_used, clippy::unwrap_used, missing_docs)]
#![allow(clippy::semicolon_if_nothing_returned)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emd_bench::setup::{
    build_reduction, chained_executor, chained_executor_mode, flow_sample, scan_executor,
    tiling_bench, Scale, Strategy,
};
use std::hint::black_box;

fn knn_query(c: &mut Criterion) {
    let scale = Scale {
        tiling_per_class: 12,
        color_per_class: 4,
        queries: 4,
        sample: 10,
    };
    let bench = tiling_bench(&scale, 8);
    let flows = flow_sample(&bench, scale.sample, 9);
    let query = &bench.queries[0];

    let mut group = c.benchmark_group("knn_query");
    group.sample_size(10);

    let scan = scan_executor(&bench);
    group.bench_function("sequential_scan", |b| {
        b.iter(|| black_box(scan.knn(query, 10).expect("valid query")));
    });

    for d_red in [8usize, 16, 32] {
        let reduction = build_reduction(Strategy::FbAllKMed, &bench, &flows, d_red, 11);
        let executor = chained_executor(&bench, reduction);
        group.bench_with_input(BenchmarkId::new("chained", d_red), &d_red, |b, _| {
            b.iter(|| black_box(executor.knn(query, 10).expect("valid query")))
        });
    }
    group.finish();
}

/// The same chained plan with warm-start solver contexts on (default)
/// and forced off — the end-to-end payoff of reusing one workspace per
/// prepared query across KNOP's refinement stream (backs E16).
fn knn_warm_vs_cold(c: &mut Criterion) {
    let scale = Scale {
        tiling_per_class: 12,
        color_per_class: 4,
        queries: 4,
        sample: 10,
    };
    let bench = tiling_bench(&scale, 8);
    let flows = flow_sample(&bench, scale.sample, 9);
    let query = &bench.queries[0];

    let mut group = c.benchmark_group("knn_warm_vs_cold");
    group.sample_size(10);
    for (label, warm) in [("cold", false), ("warm", true)] {
        let reduction = build_reduction(Strategy::FbAllKMed, &bench, &flows, 16, 11);
        let executor = chained_executor_mode(&bench, reduction, warm);
        group.bench_function(label, |b| {
            b.iter(|| black_box(executor.knn(query, 10).expect("valid query")))
        });
    }
    group.finish();
}

criterion_group!(benches, knn_query, knn_warm_vs_cold);
criterion_main!(benches);
