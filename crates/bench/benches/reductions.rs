//! Costs of building reductions (preprocessing) and of evaluating the
//! reduced EMD at different target dimensionalities (the flexibility
//! knob of the paper — backs experiments E1/E4/E9).
// Benchmark glue: panicking on a malformed fixture is the desired behavior.
#![allow(clippy::expect_used, clippy::unwrap_used, missing_docs)]
#![allow(clippy::semicolon_if_nothing_returned)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emd_bench::setup::{build_reduction, flow_sample, tiling_bench, Scale, Strategy};
use emd_reduction::ReducedEmd;
use std::hint::black_box;

fn bench_scale() -> Scale {
    Scale {
        tiling_per_class: 6,
        color_per_class: 4,
        queries: 4,
        sample: 8,
    }
}

fn reduced_emd_evaluation(c: &mut Criterion) {
    let scale = bench_scale();
    let bench = tiling_bench(&scale, 2);
    let flows = flow_sample(&bench, scale.sample, 3);
    let mut group = c.benchmark_group("reduced_emd_eval");
    for d_red in [4usize, 8, 16, 32] {
        let reduction = build_reduction(Strategy::FbAllKMed, &bench, &flows, d_red, 5);
        let reduced = ReducedEmd::new(&bench.cost, reduction).expect("validated");
        let rx = reduced.reduce_first(&bench.queries[0]).expect("dims ok");
        let ry = reduced
            .reduce_second(&bench.database.histograms()[0])
            .expect("dims ok");
        group.bench_with_input(BenchmarkId::from_parameter(d_red), &d_red, |b, _| {
            b.iter(|| black_box(reduced.distance_reduced(&rx, &ry).expect("valid")))
        });
    }
    group.finish();
}

fn reduction_construction(c: &mut Criterion) {
    let scale = bench_scale();
    let bench = tiling_bench(&scale, 2);
    let flows = flow_sample(&bench, scale.sample, 3);
    let mut group = c.benchmark_group("reduction_construction");
    group.sample_size(10);
    for strategy in [Strategy::KMed, Strategy::FbModKMed, Strategy::FbAllKMed] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| b.iter(|| black_box(build_reduction(strategy, &bench, &flows, 12, 7))),
        );
    }
    group.finish();
}

criterion_group!(benches, reduced_emd_evaluation, reduction_construction);
criterion_main!(benches);
