//! Experiment runner: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [IDS...] [--full] [--smoke] [--json PATH] [--metrics json|PATH]
//!
//!   IDS       experiment ids (e1..e19, a1..a4); default: all
//!   --full    paper-scale corpora (much slower than the default quick run)
//!   --smoke   CI mode: tiny corpus, runs the batch-executor parity check
//!             (E12) and exits non-zero if threaded != sequential
//!   --json    additionally write the tables as JSON to PATH
//!   --metrics record an emd-obs registry over the whole run and dump it
//!             as schema-versioned JSON ("json" = stdout, else a path)
//! ```

// CLI glue: panicking on a malformed run is the desired behavior.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use emd_bench::experiments;
use emd_bench::report::Table;
use emd_bench::setup::Scale;
use std::process::ExitCode;
use std::time::Instant;

/// `--smoke`: exercise the engine end to end at a tiny scale. Runs the
/// E12 batch experiment and fails the process when any threaded batch
/// diverges from the sequential run — the tentpole's bit-identity
/// guarantee, checked in release mode on every CI push.
fn smoke() -> ExitCode {
    let scale = Scale {
        tiling_per_class: 6,
        color_per_class: 4,
        queries: 6,
        sample: 8,
    };
    let table = experiments::e12(&scale, true);
    println!("\n{table}");
    let diverged: Vec<&str> = table
        .rows
        .iter()
        .filter(|row| row[3] != "true")
        .map(|row| row[0].as_str())
        .collect();
    if diverged.is_empty() {
        println!("# smoke OK: batch execution bit-identical across thread counts");
        ExitCode::SUCCESS
    } else {
        eprintln!("# smoke FAILED: thread counts {diverged:?} diverged from sequential");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut ids: Vec<String> = Vec::new();
    let mut run_all = false;
    let mut full = false;
    let mut json_path: Option<String> = None;
    let mut metrics: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--smoke" => return smoke(),
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--metrics" => match args.next() {
                Some(sink) => metrics = Some(sink),
                None => {
                    eprintln!("--metrics requires \"json\" or a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [IDS...] [--full] [--smoke] [--json PATH] [--metrics json|PATH]"
                );
                return ExitCode::SUCCESS;
            }
            "all" => run_all = true,
            id => ids.push(id.to_owned()),
        }
    }

    let scale = if full { Scale::full() } else { Scale::quick() };
    let quick = !full;
    println!(
        "# flexemd experiment suite ({} scale)",
        if full { "full" } else { "quick" }
    );

    let recording = metrics.as_ref().map(|_| emd_obs::Recording::start());
    let mut tables: Vec<Table> = Vec::new();
    let started = Instant::now();
    let flush = || {
        use std::io::Write;
        let _ = std::io::stdout().flush();
    };
    if run_all || ids.is_empty() {
        // Run one at a time so progress is visible as it happens.
        for id in [
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
            "e14", "e15", "a1", "a2", "a3", "a4",
        ] {
            let table = experiments::by_id(id, &scale, quick).expect("known id");
            println!("\n{table}");
            flush();
            tables.push(table);
        }
    } else {
        for id in &ids {
            match experiments::by_id(id, &scale, quick) {
                Some(table) => {
                    println!("\n{table}");
                    flush();
                    tables.push(table);
                }
                None => {
                    eprintln!("unknown experiment id: {id}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    println!(
        "\n# suite finished in {:.1}s",
        started.elapsed().as_secs_f64()
    );

    if let (Some(sink), Some(recording)) = (metrics, recording) {
        let rendered = recording.finish().to_json_string();
        if sink == "json" {
            println!("{rendered}");
        } else if let Err(e) = std::fs::write(&sink, rendered) {
            eprintln!("failed to write {sink}: {e}");
            return ExitCode::FAILURE;
        } else {
            println!("# wrote metrics to {sink}");
        }
    }

    if let Some(path) = json_path {
        match serde_json::to_vec_pretty(&tables).map(|bytes| std::fs::write(&path, bytes)) {
            Ok(Ok(())) => println!("# wrote {path}"),
            Ok(Err(e)) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("failed to serialize tables: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
