//! The reconstructed experiment suite (see DESIGN.md section 5 and
//! EXPERIMENTS.md). Each function regenerates one table/figure.

use crate::report::{fnum, Table};
use crate::setup::{
    build_reduction, chained_executor, chained_executor_mode, checked, color_bench, flow_sample,
    mean_tightness_ratio, measure_knn, red_emd_executor, refiner, scan_executor, tiling_bench,
    Bench, Scale, Strategy,
};
use emd_obs::DurationHistogram;
use emd_query::{
    Database, EmdDistance, Executor, Filter, FullLbImFilter, Query, QueryPlan, ReducedEmdFilter,
};
use emd_reduction::fb::{fb_all, fb_mod, FbOptions};
use emd_reduction::flow_sample::draw_sample;
use emd_reduction::kmedoids::kmedoids_reduction;
use emd_reduction::pca::pca_guided_reduction;
use emd_reduction::{CombiningReduction, ReducedEmd};
use emd_serve::{LoadgenConfig, QuerySpec, ServeConfig, Server, Snapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const SEED: u64 = 20080609; // SIGMOD'08 started June 9, 2008.
const K_DEFAULT: usize = 10;

fn reduced_dims_96(quick: bool) -> Vec<usize> {
    // d' below 8 barely filters (nearly all of the database survives) and
    // each surviving candidate costs a full 96-d EMD, so the quick sweep
    // starts at 8.
    if quick {
        vec![8, 12, 16, 24, 32]
    } else {
        vec![4, 8, 12, 16, 24, 32, 48]
    }
}

fn reduced_dims_216(quick: bool) -> Vec<usize> {
    // As in the 96-d sweep, very small d' barely filters while every
    // candidate costs a (much more expensive) 216-d EMD.
    if quick {
        vec![9, 18, 27]
    } else {
        vec![6, 9, 18, 27, 36, 54]
    }
}

/// Candidate counts (refinements of a `Red-EMD -> EMD` pipeline) per
/// strategy and reduced dimensionality.
fn candidates_sweep(table: &mut Table, bench: &Bench, dims: &[usize], sample: usize) {
    let flows = flow_sample(bench, sample, SEED ^ 0xf10);
    table.note(format!(
        "database {} ({} objects, d={}), {} queries, k={K_DEFAULT}, |S|={sample}",
        bench.name,
        bench.database.len(),
        bench.dim(),
        bench.queries.len()
    ));
    for &d_red in dims {
        let mut cells = vec![d_red.to_string()];
        for strategy in Strategy::all() {
            let reduction = build_reduction(strategy, bench, &flows, d_red, SEED ^ 0xbead);
            let executor = red_emd_executor(bench, reduction);
            let measurement = measure_knn(&executor, &bench.queries, K_DEFAULT);
            cells.push(fnum(measurement.refinements));
        }
        table.row(cells);
    }
}

/// E1: candidates vs d' on the 96-d tiling corpus (cf. DESIGN.md E1).
pub fn e1(scale: &Scale, quick: bool) -> Table {
    let mut table = Table::new(
        "E1",
        "candidates vs reduced dimensionality d' (tiling, 96-d)",
        &[
            "d'",
            "KMed",
            "FB-Mod(Base)",
            "FB-Mod(KMed)",
            "FB-All(Base)",
            "FB-All(KMed)",
        ],
    );
    let bench = tiling_bench(scale, SEED);
    candidates_sweep(&mut table, &bench, &reduced_dims_96(quick), scale.sample);
    table.note("expectation: flow-based (data-dependent) strategies produce fewer candidates than KMed at equal d'; candidates shrink as d' grows");
    table
}

/// E2: candidates vs d' on the 216-d color corpus.
pub fn e2(scale: &Scale, quick: bool) -> Table {
    let mut table = Table::new(
        "E2",
        "candidates vs reduced dimensionality d' (color, 216-d)",
        &[
            "d'",
            "KMed",
            "FB-Mod(Base)",
            "FB-Mod(KMed)",
            "FB-All(Base)",
            "FB-All(KMed)",
        ],
    );
    let bench = color_bench(scale, SEED);
    candidates_sweep(&mut table, &bench, &reduced_dims_216(quick), scale.sample);
    table.note("expectation: same ordering as E1 in the high-dimensional regime");
    table
}

/// E3: filter selectivity (candidate fraction) at a fixed d' per corpus.
pub fn e3(scale: &Scale, _quick: bool) -> Table {
    let mut table = Table::new(
        "E3",
        "filter selectivity (mean candidate fraction of the database)",
        &[
            "corpus",
            "d'",
            "KMed",
            "FB-Mod(Base)",
            "FB-Mod(KMed)",
            "FB-All(Base)",
            "FB-All(KMed)",
        ],
    );
    for (bench, d_red) in [
        (tiling_bench(scale, SEED), 12usize),
        (color_bench(scale, SEED), 18usize),
    ] {
        let flows = flow_sample(&bench, scale.sample, SEED ^ 0xf10);
        let n = bench.database.len() as f64;
        let mut cells = vec![bench.name.clone(), d_red.to_string()];
        for strategy in Strategy::all() {
            let reduction = build_reduction(strategy, &bench, &flows, d_red, SEED ^ 0xbead);
            let executor = red_emd_executor(&bench, reduction);
            let measurement = measure_knn(&executor, &bench.queries, K_DEFAULT);
            cells.push(fnum(measurement.refinements / n));
        }
        table.row(cells);
    }
    table.note("lower is better; k=10");
    table
}

/// E4: mean response time per query vs d' (tiling), against the
/// sequential scan.
pub fn e4(scale: &Scale, quick: bool) -> Table {
    let mut table = Table::new(
        "E4",
        "response time per k-NN query vs d' (tiling, 96-d)",
        &["d'", "KMed [ms]", "FB-All(KMed) [ms]", "seq. scan [ms]"],
    );
    let bench = tiling_bench(scale, SEED);
    let flows = flow_sample(&bench, scale.sample, SEED ^ 0xf10);
    let scan = scan_executor(&bench);
    let scan_time = measure_knn(&scan, &bench.queries, K_DEFAULT)
        .time_per_query
        .as_secs_f64()
        * 1e3;
    for &d_red in &reduced_dims_96(quick) {
        let mut cells = vec![d_red.to_string()];
        for strategy in [Strategy::KMed, Strategy::FbAllKMed] {
            let reduction = build_reduction(strategy, &bench, &flows, d_red, SEED ^ 0xbead);
            let executor = chained_executor(&bench, reduction);
            let measurement = measure_knn(&executor, &bench.queries, K_DEFAULT);
            cells.push(fnum(measurement.time_per_query.as_secs_f64() * 1e3));
        }
        cells.push(fnum(scan_time));
        table.row(cells);
    }
    table.note("expectation: U-shape — too-small d' lets candidates explode, too-large d' makes the filter itself expensive; interior optimum well below d=96");
    table
}

/// E5: filter chaining (Figure 10 of the paper) — configurations against
/// the sequential scan.
pub fn e5(scale: &Scale, _quick: bool) -> Table {
    let mut table = Table::new(
        "E5",
        "chaining filters (tiling, 96-d, d'=12, k=10)",
        &[
            "configuration",
            "stage-1 evals",
            "stage-2 evals",
            "refinements",
            "ms/query",
        ],
    );
    let bench = tiling_bench(scale, SEED);
    let flows = flow_sample(&bench, scale.sample, SEED ^ 0xf10);
    let reduction = build_reduction(Strategy::FbAllKMed, &bench, &flows, 12, SEED ^ 0xbead);

    let mut run = |name: &str, executor: Executor| {
        let m = measure_knn(&executor, &bench.queries, K_DEFAULT);
        let stage = |i: usize| {
            m.stage_evaluations
                .get(i)
                .map(|(_, n)| fnum(*n))
                .unwrap_or_else(|| "-".into())
        };
        table.row(vec![
            name.to_owned(),
            stage(0),
            stage(1),
            fnum(m.refinements),
            fnum(m.time_per_query.as_secs_f64() * 1e3),
        ]);
    };

    run("seq. scan", scan_executor(&bench));
    run(
        "LB-IM(96) -> EMD",
        Executor::new(
            QueryPlan::new(
                vec![Box::new(
                    FullLbImFilter::new(&bench.database).expect("consistent"),
                )],
                Box::new(refiner(&bench)),
            )
            .expect("consistent"),
        ),
    );
    run(
        "Red-EMD -> EMD",
        red_emd_executor(&bench, reduction.clone()),
    );
    run(
        "Red-IM -> Red-EMD -> EMD",
        chained_executor(&bench, reduction),
    );
    table.note("expectation: the chained Red-IM stage removes most Red-EMD evaluations at negligible cost; both reduced pipelines beat the full-dimensional LB-IM filter in time");
    table
}

/// E6: varying k.
pub fn e6(scale: &Scale, _quick: bool) -> Table {
    let mut table = Table::new(
        "E6",
        "varying k (tiling, 96-d, d'=12, FB-All(KMed) chained)",
        &["k", "refinements", "red-emd evals", "ms/query"],
    );
    let bench = tiling_bench(scale, SEED);
    let flows = flow_sample(&bench, scale.sample, SEED ^ 0xf10);
    let reduction = build_reduction(Strategy::FbAllKMed, &bench, &flows, 12, SEED ^ 0xbead);
    let executor = chained_executor(&bench, reduction);
    for k in [1usize, 5, 10, 20, 50] {
        let k = k.min(bench.database.len());
        let m = measure_knn(&executor, &bench.queries, k);
        table.row(vec![
            k.to_string(),
            fnum(m.refinements),
            fnum(m.stage_evaluations.get(1).map(|(_, n)| *n).unwrap_or(0.0)),
            fnum(m.time_per_query.as_secs_f64() * 1e3),
        ]);
    }
    table.note("expectation: candidates and time grow sublinearly in k");
    table
}

/// E7: scalability in database size.
pub fn e7(scale: &Scale, _quick: bool) -> Table {
    let mut table = Table::new(
        "E7",
        "scalability in database size (tiling, 96-d, d'=12, k=10)",
        &[
            "N",
            "refinements",
            "candidate fraction",
            "ms/query",
            "scan ms/query",
        ],
    );
    for factor in [1usize, 2, 4, 8] {
        let sub_scale = Scale {
            tiling_per_class: scale.tiling_per_class * factor / 4 + 2,
            ..*scale
        };
        let bench = tiling_bench(&sub_scale, SEED);
        let flows = flow_sample(&bench, scale.sample, SEED ^ 0xf10);
        let reduction = build_reduction(Strategy::FbAllKMed, &bench, &flows, 12, SEED ^ 0xbead);
        let executor = chained_executor(&bench, reduction);
        let m = measure_knn(&executor, &bench.queries, K_DEFAULT);
        let scan = scan_executor(&bench);
        // Scan time extrapolated from a few queries to keep E7 fast.
        let scan_queries = &bench.queries[..bench.queries.len().min(5)];
        let scan_time = measure_knn(&scan, scan_queries, K_DEFAULT)
            .time_per_query
            .as_secs_f64()
            * 1e3;
        let n = bench.database.len();
        table.row(vec![
            n.to_string(),
            fnum(m.refinements),
            fnum(m.refinements / n as f64),
            fnum(m.time_per_query.as_secs_f64() * 1e3),
            fnum(scan_time),
        ]);
    }
    table.note("expectation: filtered time grows far slower than the scan; candidate fraction roughly stable");
    table
}

/// E8: flow-sample size ablation.
pub fn e8(scale: &Scale, _quick: bool) -> Table {
    let mut table = Table::new(
        "E8",
        "flow sample size |S| ablation (tiling, 96-d, d'=12, k=10)",
        &[
            "|S|",
            "FB-Mod(KMed) cand.",
            "FB-All(KMed) cand.",
            "sampling [s]",
        ],
    );
    let bench = tiling_bench(scale, SEED);
    for sample in [6usize, 12, 24, 48] {
        let sample = sample.min(bench.database.len());
        let started = Instant::now();
        let flows = flow_sample(&bench, sample, SEED ^ 0xf10);
        let sampling_time = started.elapsed().as_secs_f64();
        let mut cells = vec![sample.to_string()];
        for strategy in [Strategy::FbModKMed, Strategy::FbAllKMed] {
            let reduction = build_reduction(strategy, &bench, &flows, 12, SEED ^ 0xbead);
            let executor = red_emd_executor(&bench, reduction);
            let m = measure_knn(&executor, &bench.queries, K_DEFAULT);
            cells.push(fnum(m.refinements));
        }
        cells.push(fnum(sampling_time));
        table.row(cells);
    }
    table.note(
        "expectation: quality saturates at moderate |S| while sampling cost grows quadratically",
    );
    table
}

/// E9: preprocessing cost per strategy.
pub fn e9(scale: &Scale, _quick: bool) -> Table {
    let mut table = Table::new(
        "E9",
        "preprocessing cost (tiling, 96-d)",
        &[
            "d'",
            "k-medoids [ms]",
            "flow sampling [ms]",
            "FB-Mod opt [ms]",
            "FB-All opt [ms]",
        ],
    );
    let bench = tiling_bench(scale, SEED);
    let started = Instant::now();
    let flows = flow_sample(&bench, scale.sample, SEED ^ 0xf10);
    let sampling_ms = started.elapsed().as_secs_f64() * 1e3;
    for d_red in [8usize, 16] {
        let started = Instant::now();
        let kmed = kmedoids_reduction(&bench.cost, d_red, &mut StdRng::seed_from_u64(SEED))
            .expect("valid k")
            .reduction;
        let kmed_ms = started.elapsed().as_secs_f64() * 1e3;

        let started = Instant::now();
        let _ = fb_mod(kmed.clone(), &flows, &bench.cost, FbOptions::default());
        let fb_mod_ms = started.elapsed().as_secs_f64() * 1e3;

        let started = Instant::now();
        let _ = fb_all(kmed, &flows, &bench.cost, FbOptions::default());
        let fb_all_ms = started.elapsed().as_secs_f64() * 1e3;

        table.row(vec![
            d_red.to_string(),
            fnum(kmed_ms),
            fnum(sampling_ms),
            fnum(fb_mod_ms),
            fnum(fb_all_ms),
        ]);
    }
    table.note("one-off costs; flow sampling dominates and is shared across all d'");
    table
}

/// E10: lower-bound tightness (mean reduced/exact ratio) vs d'.
pub fn e10(scale: &Scale, quick: bool) -> Table {
    let mut table = Table::new(
        "E10",
        "lower-bound tightness: mean Red-EMD / EMD vs d' (tiling, 96-d)",
        &[
            "d'",
            "KMed",
            "FB-Mod(Base)",
            "FB-Mod(KMed)",
            "FB-All(Base)",
            "FB-All(KMed)",
        ],
    );
    let bench = tiling_bench(scale, SEED);
    let flows = flow_sample(&bench, scale.sample, SEED ^ 0xf10);
    let pairs = if quick { 400 } else { 2000 };
    for &d_red in &reduced_dims_96(quick) {
        let mut cells = vec![d_red.to_string()];
        for strategy in Strategy::all() {
            let reduction = build_reduction(strategy, &bench, &flows, d_red, SEED ^ 0xbead);
            cells.push(fnum(mean_tightness_ratio(&bench, &reduction, pairs)));
        }
        table.row(cells);
    }
    table.note("1.0 = perfectly tight; expectation: monotone in d', flow-based > KMed");
    table
}

/// A1: THRESH ablation for the FB optimizers.
pub fn a1(scale: &Scale, _quick: bool) -> Table {
    let mut table = Table::new(
        "A1",
        "FB improvement threshold (THRESH) ablation (tiling, d'=12)",
        &[
            "THRESH",
            "FB-All tightness",
            "FB-All reassigns",
            "candidates",
        ],
    );
    let bench = tiling_bench(scale, SEED);
    let flows = flow_sample(&bench, scale.sample, SEED ^ 0xf10);
    let kmed = kmedoids_reduction(&bench.cost, 12, &mut StdRng::seed_from_u64(SEED))
        .expect("valid k")
        .reduction;
    for threshold in [0.0, 1e-9, 1e-3, 1e-2] {
        let options = FbOptions {
            threshold,
            ..FbOptions::default()
        };
        let result = fb_all(kmed.clone(), &flows, &bench.cost, options);
        let executor = red_emd_executor(&bench, result.reduction.clone());
        let m = measure_knn(&executor, &bench.queries, K_DEFAULT);
        table.row(vec![
            format!("{threshold:.0e}"),
            fnum(result.tightness),
            result.reassignments.to_string(),
            fnum(m.refinements),
        ]);
    }
    table.note("expectation: large THRESH stops early (fewer reassignments, looser bound); tiny THRESH changes little vs 0");
    table
}

/// A2: asymmetric reductions R1 != R2 (query kept at full d).
pub fn a2(scale: &Scale, _quick: bool) -> Table {
    let mut table = Table::new(
        "A2",
        "asymmetric reductions: query-side d' vs candidates (tiling, db d'=8, k=10)",
        &["query d'", "db d'", "candidates", "ms/query"],
    );
    let bench = tiling_bench(scale, SEED);
    let flows = flow_sample(&bench, scale.sample, SEED ^ 0xf10);
    let r_db = build_reduction(Strategy::FbAllKMed, &bench, &flows, 8, SEED ^ 0xbead);
    for (label, r_query) in [
        ("8 (symmetric)", r_db.clone()),
        (
            "96 (identity)",
            CombiningReduction::identity(bench.dim()).expect("valid"),
        ),
    ] {
        let reduced =
            ReducedEmd::with_asymmetric(&bench.cost, r_query, r_db.clone()).expect("validated");
        let stages: Vec<Box<dyn Filter>> = vec![Box::new(
            ReducedEmdFilter::new(&bench.database, reduced).expect("consistent"),
        )];
        let executor =
            Executor::new(QueryPlan::new(stages, Box::new(refiner(&bench))).expect("consistent"));
        let m = measure_knn(&executor, &bench.queries, K_DEFAULT);
        table.row(vec![
            label.to_owned(),
            "8".to_owned(),
            fnum(m.refinements),
            fnum(m.time_per_query.as_secs_f64() * 1e3),
        ]);
    }
    table.note("expectation: an unreduced query tightens the bound (fewer candidates) at a higher per-filter cost");
    table
}

/// A3: PCA-guided reduction vs the paper's strategies.
pub fn a3(scale: &Scale, _quick: bool) -> Table {
    let mut table = Table::new(
        "A3",
        "geometry-blind (PCA-guided) vs ground-distance-aware reductions (tiling, d'=12)",
        &["strategy", "candidates", "tightness ratio"],
    );
    let bench = tiling_bench(scale, SEED);
    let flows = flow_sample(&bench, scale.sample, SEED ^ 0xf10);
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x9ca);
    let sample: Vec<_> = draw_sample(bench.database.histograms(), scale.sample, &mut rng)
        .into_iter()
        .cloned()
        .collect();
    let pca = pca_guided_reduction(&sample, 12, 6, &mut rng).expect("valid inputs");
    let kmed = build_reduction(Strategy::KMed, &bench, &flows, 12, SEED ^ 0xbead);
    let fb = build_reduction(Strategy::FbAllKMed, &bench, &flows, 12, SEED ^ 0xbead);
    for (label, reduction) in [("PCA-guided", pca), ("KMed", kmed), ("FB-All(KMed)", fb)] {
        let executor = red_emd_executor(&bench, reduction.clone());
        let m = measure_knn(&executor, &bench.queries, K_DEFAULT);
        let ratio = mean_tightness_ratio(&bench, &reduction, 300);
        table.row(vec![label.to_owned(), fnum(m.refinements), fnum(ratio)]);
    }
    table.note("expectation (paper, section 3.1): ignoring the ground distance filters far worse — PCA-guided trails both");
    table
}

/// E11: range-query candidates (Definition 6 workload) across strategies.
pub fn e11(scale: &Scale, _quick: bool) -> Table {
    let mut table = Table::new(
        "E11",
        "range-query candidates with calibrated epsilons (tiling, 96-d, d'=12)",
        &["strategy", "mean candidates", "mean hits", "ms/query"],
    );
    let bench = tiling_bench(scale, SEED);
    let flows = flow_sample(&bench, scale.sample, SEED ^ 0xf10);
    // Definition 6: epsilon_i = exact k-NN distance of query i (k = 10),
    // so range results coincide with the k-NN results.
    let workload = emd_data::Workload::range_from_knn(
        bench.queries.clone(),
        bench.database.histograms(),
        &bench.cost,
        K_DEFAULT,
    )
    .expect("non-degenerate workload");
    for strategy in Strategy::all() {
        let reduction = build_reduction(strategy, &bench, &flows, 12, SEED ^ 0xbead);
        let executor = red_emd_executor(&bench, reduction);
        let mut refinements = 0usize;
        let mut hits = 0usize;
        let started = Instant::now();
        for (query, epsilon) in workload.ranges() {
            let (results, stats) = executor.range(query, epsilon).expect("consistent");
            refinements += stats.refinements;
            hits += results.len();
        }
        let n = workload.len() as f64;
        table.row(vec![
            strategy.label().to_owned(),
            fnum(refinements as f64 / n),
            fnum(hits as f64 / n),
            fnum(started.elapsed().as_secs_f64() * 1e3 / n),
        ]);
    }
    table.note(
        "epsilon = exact 10-NN distance per query (Definition 6); hits >= 10 by construction",
    );
    table
}

/// Seeded 32-d Gaussian bench shared by A4 and E12 (at `Scale::full`
/// this is the tentpole's ~1k-object corpus: 6 classes x 205 per class).
fn gaussian_bench(scale: &Scale) -> Bench {
    use emd_data::gaussian::{self, GaussianParams};
    let params = GaussianParams {
        dim: 32,
        num_classes: 6,
        per_class: scale.tiling_per_class,
        ..GaussianParams::default()
    };
    let dataset = gaussian::generate(&params, &mut StdRng::seed_from_u64(SEED));
    let (dataset, queries) = dataset.split_queries(scale.queries);
    let cost = std::sync::Arc::new(dataset.cost.clone());
    let database =
        Database::new(dataset.histograms, cost.clone()).expect("dataset is self-consistent");
    Bench {
        name: dataset.name,
        database,
        cost,
        queries,
        positions: dataset.positions,
    }
}

/// A4: VP-tree metric index vs the filter pipeline.
pub fn a4(scale: &Scale, _quick: bool) -> Table {
    let mut table = Table::new(
        "A4",
        "metric index (VP-tree) vs reduction filter pipeline (gaussian, 32-d, k=10)",
        &["approach", "exact EMDs/query", "ms/query", "build [ms]"],
    );
    let bench = gaussian_bench(scale);

    // VP-tree over the exact EMD.
    let started = Instant::now();
    let tree = emd_query::VpTree::build(&bench.database).expect("non-empty");
    let tree_build_ms = started.elapsed().as_secs_f64() * 1e3;
    let started = Instant::now();
    let mut tree_distances = 0usize;
    for query in &bench.queries {
        let (_, stats) = tree.knn(query, K_DEFAULT).expect("valid query");
        tree_distances += stats.distance_computations;
    }
    let n = bench.queries.len() as f64;
    table.row(vec![
        "VP-tree (exact EMD)".to_owned(),
        fnum(tree_distances as f64 / n),
        fnum(started.elapsed().as_secs_f64() * 1e3 / n),
        fnum(tree_build_ms),
    ]);

    // Reduction filter pipeline at d' = 8.
    let started = Instant::now();
    let flows = flow_sample(&bench, scale.sample, SEED ^ 0xf10);
    let reduction = build_reduction(Strategy::FbAllKMed, &bench, &flows, 8, SEED ^ 0xbead);
    let executor = chained_executor(&bench, reduction);
    let pipeline_build_ms = started.elapsed().as_secs_f64() * 1e3;
    let m = measure_knn(&executor, &bench.queries, K_DEFAULT);
    table.row(vec![
        "Red-IM -> Red-EMD -> EMD (d'=8)".to_owned(),
        fnum(m.refinements),
        fnum(m.time_per_query.as_secs_f64() * 1e3),
        fnum(pipeline_build_ms),
    ]);

    let scan = scan_executor(&bench);
    let s = measure_knn(&scan, &bench.queries, K_DEFAULT);
    table.row(vec![
        "sequential scan".to_owned(),
        fnum(s.refinements),
        fnum(s.time_per_query.as_secs_f64() * 1e3),
        "0".to_owned(),
    ]);
    table.note("both index and pipeline are exact; the comparison is exact-EMD computations per query and build cost");
    table
}

/// E12: parallel batch-query throughput of the executor. One shared
/// executor, one workload; `run_batch` across worker-thread counts must
/// return results and merged stats bit-identical to the sequential run,
/// with the wall-clock speedup as the payoff.
pub fn e12(scale: &Scale, _quick: bool) -> Table {
    let mut table = Table::new(
        "E12",
        "parallel batch k-NN throughput (gaussian, 32-d, d'=8, k=10)",
        &["threads", "ms/query", "speedup", "matches sequential"],
    );
    let bench = gaussian_bench(scale);
    let flows = flow_sample(&bench, scale.sample, SEED ^ 0xf10);
    let reduction = build_reduction(Strategy::FbAllKMed, &bench, &flows, 8, SEED ^ 0xbead);
    let executor = chained_executor(&bench, reduction);
    let workload: Vec<Query> = bench
        .queries
        .iter()
        .map(|q| Query::knn(q.clone(), K_DEFAULT))
        .collect();
    table.note(format!(
        "database {} ({} objects), batch of {} queries on one shared snapshot; \
         host exposes {} core(s) — wall-clock speedup needs more than one",
        bench.name,
        bench.database.len(),
        workload.len(),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    ));
    let (baseline, baseline_stats) = executor.run_batch(&workload, 1).expect("consistent plan");
    let mut sequential_ms = 0.0_f64;
    for threads in [1usize, 2, 4, 8] {
        let started = Instant::now();
        let (results, stats) = executor
            .run_batch(&workload, threads)
            .expect("consistent plan");
        let ms = started.elapsed().as_secs_f64() * 1e3 / workload.len().max(1) as f64;
        if threads == 1 {
            sequential_ms = ms;
        }
        let identical = results == baseline && stats == baseline_stats;
        table.row(vec![
            threads.to_string(),
            fnum(ms),
            fnum(sequential_ms / ms.max(1e-12)),
            identical.to_string(),
        ]);
    }
    table.note("results and accumulated stats are bit-identical across thread counts; only wall-clock changes");
    table
}

/// E13: observability. Runs the E12 workload once without a metrics
/// scope and once under [`emd_obs::Recording`], asserts the answers are
/// bit-identical, and reads the stage/solver breakdown off the harvested
/// registry — the same numbers `flexemd query --metrics json` exports.
pub fn e13(scale: &Scale, _quick: bool) -> Table {
    let mut table = Table::new(
        "E13",
        "observability: metrics registry breakdown (gaussian, 32-d, d'=8, k=10)",
        &["metric", "value"],
    );
    let bench = gaussian_bench(scale);
    let flows = flow_sample(&bench, scale.sample, SEED ^ 0xf10);
    let reduction = build_reduction(Strategy::FbAllKMed, &bench, &flows, 8, SEED ^ 0xbead);
    let executor = chained_executor(&bench, reduction);
    let workload: Vec<Query> = bench
        .queries
        .iter()
        .map(|q| Query::knn(q.clone(), K_DEFAULT))
        .collect();
    table.note(format!(
        "database {} ({} objects), {} queries; registry schema {}",
        bench.name,
        bench.database.len(),
        workload.len(),
        emd_obs::SCHEMA
    ));

    // Warm-up, then the disabled path (no scope anywhere: every record
    // call is one relaxed load + branch).
    let (baseline, _) = executor.run_batch(&workload, 1).expect("consistent plan");
    let started = Instant::now();
    let (off_results, _) = executor.run_batch(&workload, 1).expect("consistent plan");
    let off = started.elapsed();

    // The recorded path.
    let recording = emd_obs::Recording::start();
    let started = Instant::now();
    let (on_results, _) = executor.run_batch(&workload, 1).expect("consistent plan");
    let on = started.elapsed();
    let registry = recording.finish();

    assert_eq!(baseline, off_results, "disabled run changed answers");
    assert_eq!(baseline, on_results, "recording changed answers");

    let n = workload.len().max(1) as f64;
    let per_query = |value: u64| fnum(value as f64 / n);
    table.row(vec![
        "queries recorded".to_owned(),
        registry.counter("query.queries").to_string(),
    ]);
    for (name, value) in registry.counters() {
        if let Some(stage) = name
            .strip_prefix("query.stage.")
            .and_then(|rest| rest.strip_suffix(".evaluations"))
        {
            table.row(vec![
                format!("{stage} evaluations/query"),
                per_query(*value),
            ]);
        }
    }
    for (label, counter) in [
        ("EMD refinements/query", "query.refinements"),
        ("exact EMD solves/query", "core.emd.solves"),
        ("simplex solver calls/query", "transport.solve.calls"),
        ("simplex pivots/query", "transport.simplex.pivots"),
        (
            "degenerate Vogel cells/query",
            "transport.vogel.degenerate_cells",
        ),
    ] {
        table.row(vec![label.to_owned(), per_query(registry.counter(counter))]);
    }
    for (label, histogram) in [
        ("query.execute span", "query.execute"),
        ("query.knop span", "query.knop"),
        ("transport.solve span", "transport.solve"),
    ] {
        if let Some(mean) = registry
            .histogram(histogram)
            .and_then(DurationHistogram::mean_nanos)
        {
            table.row(vec![format!("{label} mean [us]"), fnum(mean / 1e3)]);
        }
    }
    table.row(vec![
        "ms/query, metrics off".to_owned(),
        fnum(off.as_secs_f64() * 1e3 / n),
    ]);
    table.row(vec![
        "ms/query, metrics on".to_owned(),
        fnum(on.as_secs_f64() * 1e3 / n),
    ]);
    table.row(vec![
        "recording overhead [%]".to_owned(),
        fnum((on.as_secs_f64() / off.as_secs_f64().max(1e-12) - 1.0) * 100.0),
    ]);
    table.note(
        "answers are asserted bit-identical with metrics off and on; \
         the off path costs one relaxed atomic load per record call",
    );
    table
}

/// E14: the persistent index store. For growing corpora, compares
/// cold-starting a query pipeline by `Database::open` on a checksummed
/// segment directory against a full rebuild from the JSON dataset (load,
/// re-validate, recompute `C'`, re-reduce every histogram), asserting the
/// two pipelines answer a probe query bit-identically.
pub fn e14(scale: &Scale, quick: bool) -> Table {
    use emd_data::gaussian::{self, GaussianParams};
    use emd_query::ReducedImFilter;
    use emd_reduction::PersistedReduction;

    let mut table = Table::new(
        "E14",
        "index store: cold-start open vs rebuild from JSON (gaussian, 32-d, d'=8)",
        &[
            "objects",
            "index [KiB]",
            "rebuild [ms]",
            "open [ms]",
            "speedup",
            "identical",
        ],
    );
    let d_red = 8;
    let k = K_DEFAULT;
    let base = scale.tiling_per_class.max(2);
    let per_class_sizes = if quick {
        vec![base / 2, base]
    } else {
        vec![base / 2, base, base * 2]
    };
    let scratch = std::env::temp_dir().join(format!("flexemd-e14-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch directory");
    table.note(
        "rebuild = JSON load + validate + recompute C' + re-reduce arena; \
         open = verify checksummed segments and re-check invariants",
    );

    for per_class in per_class_sizes {
        let params = GaussianParams {
            dim: 32,
            num_classes: 6,
            per_class,
            ..GaussianParams::default()
        };
        let dataset = gaussian::generate(&params, &mut StdRng::seed_from_u64(SEED));
        let json_path = scratch.join(format!("corpus-{per_class}.json"));
        emd_data::io::save(&dataset, &json_path).expect("write dataset JSON");
        let index_dir = scratch.join(format!("index-{per_class}"));

        // Build once and persist the index.
        let cost = std::sync::Arc::new(dataset.cost.clone());
        let database = Database::new(dataset.histograms.clone(), cost.clone())
            .expect("dataset is self-consistent");
        let kmed = kmedoids_reduction(&cost, d_red, &mut StdRng::seed_from_u64(SEED))
            .expect("clustering converges")
            .reduction;
        let reduced = ReducedEmd::new(&cost, kmed).expect("validated reduction");
        let bundle = PersistedReduction::precompute("kmed", reduced, database.histograms())
            .expect("matching dimensions");
        database
            .save(&index_dir, &dataset.name, &[bundle])
            .expect("save index");
        let index_bytes: u64 = std::fs::read_dir(&index_dir)
            .expect("index directory")
            .map(|entry| entry.and_then(|e| e.metadata()).map_or(0, |m| m.len()))
            .sum();

        // Cold path A: rebuild everything from the JSON artifact.
        let started = Instant::now();
        let loaded = emd_data::io::load(&json_path).expect("read dataset JSON");
        let rebuilt_cost = std::sync::Arc::new(loaded.cost.clone());
        let rebuilt_db = Database::new(loaded.histograms, rebuilt_cost.clone())
            .expect("dataset is self-consistent");
        let rebuilt_kmed =
            kmedoids_reduction(&rebuilt_cost, d_red, &mut StdRng::seed_from_u64(SEED))
                .expect("clustering converges")
                .reduction;
        let rebuilt_reduced = ReducedEmd::new(&rebuilt_cost, rebuilt_kmed).expect("validated");
        let rebuilt_bundle =
            PersistedReduction::precompute("kmed", rebuilt_reduced, rebuilt_db.histograms())
                .expect("matching dimensions");
        let rebuild_ms = started.elapsed().as_secs_f64() * 1e3;

        // Cold path B: open the persisted index.
        let started = Instant::now();
        let opened = Database::open(&index_dir).expect("open index");
        let open_ms = started.elapsed().as_secs_f64() * 1e3;
        let opened_bundle = opened
            .reductions
            .into_iter()
            .next()
            .expect("index holds the reduction");

        // Both cold starts must produce the same pipeline: probe with one
        // chained k-NN query and compare bit-for-bit.
        let probe = rebuilt_db.get(0).expect("non-empty database").clone();
        let build_executor = |db: &Database, bundle: PersistedReduction| {
            let stages: Vec<Box<dyn Filter>> = vec![
                Box::new(ReducedImFilter::from_persisted(db, bundle.clone()).expect("consistent")),
                Box::new(ReducedEmdFilter::from_persisted(db, bundle).expect("consistent")),
            ];
            let refiner = Box::new(EmdDistance::new(db).expect("consistent"));
            Executor::new(QueryPlan::new(stages, refiner).expect("consistent"))
        };
        let (rebuilt_answer, rebuilt_stats) = build_executor(&rebuilt_db, rebuilt_bundle)
            .knn(&probe, k)
            .expect("consistent plan");
        let (opened_answer, opened_stats) = build_executor(&opened.database, opened_bundle)
            .knn(&probe, k)
            .expect("consistent plan");
        let identical = rebuilt_answer == opened_answer
            && rebuilt_stats.filter_evaluations == opened_stats.filter_evaluations
            && rebuilt_stats.refinements == opened_stats.refinements;
        assert!(identical, "persisted pipeline diverged from rebuild");

        table.row(vec![
            rebuilt_db.len().to_string(),
            fnum(index_bytes as f64 / 1024.0),
            fnum(rebuild_ms),
            fnum(open_ms),
            fnum(rebuild_ms / open_ms.max(1e-9)),
            identical.to_string(),
        ]);
    }
    std::fs::remove_dir_all(&scratch).ok();
    table
}

/// E15: execution governance. Part 1 sweeps per-query wall-clock
/// deadlines over the E12 corpus: every outcome is either exact or a
/// degraded ranking, asserted sorted ascending by its lower bounds —
/// never an error, never a panic. Part 2 measures the cost of the
/// governance plumbing itself: `knn_budgeted` under an unlimited budget
/// against plain `knn` (bit-identical answers asserted, min-of-3
/// timing), with a ≤2% overhead target for the budget checks threaded
/// through the solver loops.
pub fn e15(scale: &Scale, _quick: bool) -> Table {
    use emd_query::{Budget, QueryOutcome};
    use std::time::Duration;

    let mut table = Table::new(
        "E15",
        "execution governance: deadline sweep and budget-check overhead (gaussian, 32-d, d'=8, k=10)",
        &["run", "exact", "degraded", "mean ranked", "ms/query"],
    );
    let bench = gaussian_bench(scale);
    let flows = flow_sample(&bench, scale.sample, SEED ^ 0xf10);
    let reduction = build_reduction(Strategy::FbAllKMed, &bench, &flows, 8, SEED ^ 0xbead);
    let executor = chained_executor(&bench, reduction);
    let n = bench.queries.len().max(1) as f64;
    table.note(format!(
        "database {} ({} objects), {} queries; each query gets a fresh wall-clock deadline",
        bench.name,
        bench.database.len(),
        bench.queries.len()
    ));

    // Part 1: deadline sweep. Degraded rankings must be ordered by their
    // lower bounds — the engine's principled-degradation contract.
    for (label, deadline) in [
        ("unlimited", None),
        ("100 ms", Some(Duration::from_millis(100))),
        ("1 ms", Some(Duration::from_millis(1))),
        ("0 ms", Some(Duration::ZERO)),
    ] {
        let mut exact = 0usize;
        let mut degraded = 0usize;
        let mut ranked = 0usize;
        let started = Instant::now();
        for query in &bench.queries {
            let budget =
                deadline.map_or_else(Budget::unlimited, |d| Budget::unlimited().with_deadline(d));
            let (outcome, _) = executor
                .knn_budgeted(query, K_DEFAULT, &budget)
                .expect("budget firing degrades, it never errors");
            match outcome {
                QueryOutcome::Exact(_) => exact += 1,
                QueryOutcome::Degraded(result) => {
                    degraded += 1;
                    ranked += result.candidates.len();
                    for pair in result.candidates.windows(2) {
                        assert!(
                            pair[0].bound <= pair[1].bound,
                            "degraded ranking out of bound order"
                        );
                    }
                }
            }
        }
        let ms = started.elapsed().as_secs_f64() * 1e3 / n;
        table.row(vec![
            label.to_owned(),
            exact.to_string(),
            degraded.to_string(),
            if degraded == 0 {
                "-".to_owned()
            } else {
                fnum(ranked as f64 / degraded as f64)
            },
            fnum(ms),
        ]);
    }

    // Part 2: governance overhead when nothing is limited. First assert
    // bit-identity, then time both paths interleaved, min-of-5 (same
    // protocol as the E13 overhead row: best-of sheds scheduler noise).
    let unlimited = Budget::unlimited();
    for query in &bench.queries {
        let (plain, _) = executor.knn(query, K_DEFAULT).expect("consistent plan");
        let (outcome, _) = executor
            .knn_budgeted(query, K_DEFAULT, &unlimited)
            .expect("consistent plan");
        assert_eq!(
            outcome.exact(),
            Some(plain.as_slice()),
            "unlimited budget changed answers"
        );
    }
    let mut plain_best = f64::INFINITY;
    let mut budgeted_best = f64::INFINITY;
    for _ in 0..5 {
        let started = Instant::now();
        for query in &bench.queries {
            let _ = executor.knn(query, K_DEFAULT).expect("consistent plan");
        }
        plain_best = plain_best.min(started.elapsed().as_secs_f64());

        let started = Instant::now();
        for query in &bench.queries {
            let (outcome, _) = executor
                .knn_budgeted(query, K_DEFAULT, &unlimited)
                .expect("consistent plan");
            assert!(!outcome.is_degraded(), "unlimited budget degraded");
        }
        budgeted_best = budgeted_best.min(started.elapsed().as_secs_f64());
    }
    table.row(vec![
        "knn, no budget (min of 5)".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        fnum(plain_best * 1e3 / n),
    ]);
    table.row(vec![
        "knn_budgeted, unlimited (min of 5)".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        fnum(budgeted_best * 1e3 / n),
    ]);
    table.row(vec![
        "budget-check overhead [%]".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        fnum((budgeted_best / plain_best.max(1e-12) - 1.0) * 100.0),
    ]);
    table.note(
        "unlimited-budget answers are asserted bit-identical to plain knn; \
         overhead target <= 2% (the unlimited path short-circuits to the \
         unbudgeted executor)",
    );
    table
}

/// One measured workload of the E16 warm-start report (`BENCH_PR7.json`).
struct WarmColdRow {
    /// Workload label, e.g. `"E4-style tiling"`.
    workload: String,
    /// Histogram dimensionality.
    dim: usize,
    /// Reduced dimensionality d' of the chained plan.
    d_red: usize,
    /// Database size.
    objects: usize,
    /// Query count.
    queries: usize,
    /// Neighbors requested per query.
    k: usize,
    /// Best-of-reps mean response time, cold mode (fresh workspace per solve).
    cold_ms_per_query: f64,
    /// Best-of-reps mean response time, warm mode (reused per-query context).
    warm_ms_per_query: f64,
    /// `cold_ms_per_query / warm_ms_per_query`.
    speedup: f64,
    /// Mean simplex pivots per query, cold mode.
    cold_pivots_per_query: f64,
    /// Mean simplex pivots per query, warm mode.
    warm_pivots_per_query: f64,
    /// Mean dual-repair pivots per query, warm mode (counted separately
    /// from simplex pivots; earlier revisions double-counted them).
    warm_repair_pivots_per_query: f64,
    /// Total warm-basis refit attempts over the timed warm passes.
    warm_attempts: u64,
    /// Refit attempts that produced a feasible starting basis.
    warm_hits: u64,
    /// `warm_hits / warm_attempts`.
    warm_hit_rate: f64,
    /// Warm-vs-cold answers (ids, distance bits, stats) matched exactly.
    bit_identical: bool,
}

serde::impl_serde_struct!(WarmColdRow {
    workload,
    dim,
    d_red,
    objects,
    queries,
    k,
    cold_ms_per_query,
    warm_ms_per_query,
    speedup,
    cold_pivots_per_query,
    warm_pivots_per_query,
    warm_repair_pivots_per_query,
    warm_attempts,
    warm_hits,
    warm_hit_rate,
    bit_identical,
});

/// The schema-versioned payload E16 writes to the repository root.
struct WarmColdReport {
    /// Schema tag, always `"flexemd-bench/v1"`.
    schema: String,
    /// Producing experiment id (`"E16"`).
    experiment: String,
    /// Human-readable summary of the methodology.
    description: String,
    /// One entry per measured workload.
    rows: Vec<WarmColdRow>,
}

serde::impl_serde_struct!(WarmColdReport {
    schema,
    experiment,
    description,
    rows,
});

/// A tie-broken copy of a bench: every non-zero ground-distance entry
/// gets a deterministic relative jitter of at most 1e-4. Grid and linear
/// ground distances are integer-valued, so ties between transport bases
/// are common and warm/cold solves may legitimately settle on different
/// (equally optimal) bases whose objectives differ in the last ulp. The
/// jitter makes every LP's optimal basis generically unique, so E16 can
/// assert *bit-identical* answers rather than a tolerance — while keeping
/// the corpus geometry (and hence filter selectivity) E4/E12-style to
/// within 0.01%.
fn tie_broken(bench: &Bench, seed: u64) -> Bench {
    let mut rng = StdRng::seed_from_u64(seed);
    let entries: Vec<f64> = bench
        .cost
        .entries()
        .iter()
        .map(|&c| {
            if c == 0.0 {
                0.0
            } else {
                c * (1.0 + rng.gen_range(0.0_f64..1e-4))
            }
        })
        .collect();
    let cost = std::sync::Arc::new(checked(
        emd_core::CostMatrix::new(bench.cost.rows(), bench.cost.cols(), entries),
        "jittered copy of a valid matrix stays valid",
    ));
    Bench {
        name: format!("{} [tie-broken]", bench.name),
        database: checked(
            Database::new(bench.database.histograms().to_vec(), cost.clone()),
            "same histograms over the same dimensions",
        ),
        cost,
        queries: bench.queries.clone(),
        positions: bench.positions.clone(),
    }
}

/// Measure one chained KNOP workload cold (warm starts forced off — the
/// pre-warm code path) and warm (per-query solver contexts) in the same
/// run: an untimed parity pass asserts bit-identical answers, then
/// best-of-3 timed passes under [`emd_obs::Recording`] scopes collect
/// response times, pivot counts, and the warm-start hit rate.
fn warm_cold_row(
    bench: &Bench,
    workload: &str,
    d_red: usize,
    k: usize,
    sample: usize,
) -> WarmColdRow {
    let flows = flow_sample(bench, sample, SEED ^ 0xf10);
    let reduction = build_reduction(Strategy::FbAllKMed, bench, &flows, d_red, SEED ^ 0xbead);
    let cold = chained_executor_mode(bench, reduction.clone(), false);
    let warm = chained_executor_mode(bench, reduction, true);

    let mut bit_identical = true;
    for query in &bench.queries {
        let (cold_neighbors, cold_stats) = checked(cold.knn(query, k), "consistent cold plan");
        let (warm_neighbors, warm_stats) = checked(warm.knn(query, k), "consistent warm plan");
        bit_identical &= cold_stats == warm_stats
            && cold_neighbors.len() == warm_neighbors.len()
            && cold_neighbors
                .iter()
                .zip(&warm_neighbors)
                .all(|(c, w)| c.id == w.id && c.distance.to_bits() == w.distance.to_bits());
    }
    assert!(bit_identical, "warm-vs-cold answers diverged on {workload}");

    const REPS: usize = 3;
    let per_query_solves = (bench.queries.len().max(1) * REPS) as f64;
    let recording = emd_obs::Recording::start();
    let mut cold_ms = f64::INFINITY;
    for _ in 0..REPS {
        let pass = measure_knn(&cold, &bench.queries, k).time_per_query;
        cold_ms = cold_ms.min(pass.as_secs_f64() * 1e3);
    }
    let cold_registry = recording.finish();
    let recording = emd_obs::Recording::start();
    let mut warm_ms = f64::INFINITY;
    for _ in 0..REPS {
        let pass = measure_knn(&warm, &bench.queries, k).time_per_query;
        warm_ms = warm_ms.min(pass.as_secs_f64() * 1e3);
    }
    let warm_registry = recording.finish();

    let warm_attempts = warm_registry.counter("transport.warm.attempts");
    let warm_hits = warm_registry.counter("transport.warm.hits");
    WarmColdRow {
        workload: workload.to_owned(),
        dim: bench.dim(),
        d_red,
        objects: bench.database.len(),
        queries: bench.queries.len(),
        k,
        cold_ms_per_query: cold_ms,
        warm_ms_per_query: warm_ms,
        speedup: cold_ms / warm_ms.max(1e-12),
        cold_pivots_per_query: cold_registry.counter("transport.simplex.pivots") as f64
            / per_query_solves,
        warm_pivots_per_query: warm_registry.counter("transport.simplex.pivots") as f64
            / per_query_solves,
        warm_repair_pivots_per_query: warm_registry.counter("transport.warm.repair_pivots") as f64
            / per_query_solves,
        warm_attempts,
        warm_hits,
        warm_hit_rate: warm_hits as f64 / warm_attempts.max(1) as f64,
        bit_identical,
    }
}

/// E16: warm-start solver workspaces. Cold-vs-warm response times on the
/// E4-style (tiling, 96-d) and E12-style (gaussian, 32-d) chained KNOP
/// workloads, measured A/B in the same run with bit-identical answers
/// asserted, plus the solver-level economics (pivots per query, warm-start
/// hit rate) and a k=1 overhead row. Writes `BENCH_PR7.json`
/// (schema `flexemd-bench/v1`) to the repository root.
pub fn e16(scale: &Scale, _quick: bool) -> Table {
    let mut table = Table::new(
        "E16",
        "warm-start solver workspaces: cold vs warm (chained KNOP plans)",
        &[
            "workload",
            "k",
            "cold ms/q",
            "warm ms/q",
            "speedup",
            "cold piv/q",
            "warm piv/q",
            "repair piv/q",
            "hit rate",
            "identical",
        ],
    );
    let tiling = tie_broken(&tiling_bench(scale, SEED), SEED ^ 0x71e);
    let gaussian = tie_broken(&gaussian_bench(scale), SEED ^ 0x9a55);
    let rows = vec![
        warm_cold_row(&tiling, "E4-style tiling", 16, K_DEFAULT, scale.sample),
        warm_cold_row(&gaussian, "E12-style gaussian", 8, K_DEFAULT, scale.sample),
        warm_cold_row(&gaussian, "E12-style gaussian", 8, 1, scale.sample),
    ];
    for row in &rows {
        table.row(vec![
            row.workload.clone(),
            row.k.to_string(),
            fnum(row.cold_ms_per_query),
            fnum(row.warm_ms_per_query),
            fnum(row.speedup),
            fnum(row.cold_pivots_per_query),
            fnum(row.warm_pivots_per_query),
            fnum(row.warm_repair_pivots_per_query),
            fnum(row.warm_hit_rate),
            row.bit_identical.to_string(),
        ]);
    }
    table.note(
        "cold = fresh solver workspace and buffers per candidate (the pre-warm \
         code path); warm = one reused context per prepared query; answers \
         asserted bit-identical in the same run, best-of-3 timing",
    );
    table.note(
        "ground distances carry a deterministic <=0.01% tie-breaking jitter so \
         every LP has a unique optimal basis and bit-parity is exact",
    );
    let report = WarmColdReport {
        schema: "flexemd-bench/v1".to_owned(),
        experiment: "E16".to_owned(),
        description: "Warm-start solver workspaces: chained KNOP (Red-IM -> Red-EMD -> EMD) \
                      measured with warm-start contexts forced off (cold) and on (warm) in \
                      the same run; answers asserted bit-identical; best-of-3 timing; pivot \
                      counts and warm hit rates from the emd-obs registry."
            .to_owned(),
        rows,
    };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR7.json");
    match serde_json::to_vec_pretty(&report).map(|bytes| std::fs::write(&path, bytes)) {
        Ok(Ok(())) => table.note(format!("wrote {}", path.display())),
        Ok(Err(error)) => table.note(format!("could not write BENCH_PR7.json: {error}")),
        Err(error) => table.note(format!("could not serialize BENCH_PR7.json: {error}")),
    }
    table
}

/// One measured database size of the E17 scalability report
/// (`BENCH_PR8.json`).
struct ScalabilityRow {
    /// Database size n.
    objects: usize,
    /// Clusters built by greedy k-center (`ceil(sqrt(n))`).
    clusters: usize,
    /// Query count.
    queries: usize,
    /// Neighbors requested per query.
    k: usize,
    /// Histogram dimensionality.
    dim: usize,
    /// Reduced dimensionality d'.
    d_red: usize,
    /// Mean stage-1 lower-bound evaluations per query, full-scan plan
    /// (always exactly n: the Red-EMD filter evaluates every object).
    scan_stage1_per_query: f64,
    /// Mean stage-1 lower-bound evaluations per query, clustered source
    /// (pivot distances plus members of expanded clusters only).
    clustered_stage1_per_query: f64,
    /// `clustered_stage1_per_query / scan_stage1_per_query`.
    stage1_ratio: f64,
    /// Mean clusters expanded per query (bound below the stopping radius).
    clusters_visited_per_query: f64,
    /// Mean clusters never expanded per query (triangle-pruned).
    clusters_pruned_per_query: f64,
    /// Mean exact EMD refinements per query (identical for both plans).
    refinements_per_query: f64,
    /// Mean response time, full-scan plan.
    scan_ms_per_query: f64,
    /// Mean response time, clustered source.
    clustered_ms_per_query: f64,
    /// Wall-clock cost of building the clustered index.
    build_ms: f64,
    /// Scan-vs-clustered answers (ids and distance bits) matched exactly.
    bit_identical: bool,
}

serde::impl_serde_struct!(ScalabilityRow {
    objects,
    clusters,
    queries,
    k,
    dim,
    d_red,
    scan_stage1_per_query,
    clustered_stage1_per_query,
    stage1_ratio,
    clusters_visited_per_query,
    clusters_pruned_per_query,
    refinements_per_query,
    scan_ms_per_query,
    clustered_ms_per_query,
    build_ms,
    bit_identical,
});

/// The schema-versioned payload E17 writes to the repository root.
struct ScalabilityReport {
    /// Schema tag, always `"flexemd-bench/v1"`.
    schema: String,
    /// Producing experiment id (`"E17"`).
    experiment: String,
    /// Human-readable summary of the methodology.
    description: String,
    /// One entry per database size, ascending.
    rows: Vec<ScalabilityRow>,
}

serde::impl_serde_struct!(ScalabilityReport {
    schema,
    experiment,
    description,
    rows,
});

/// Synthetic clustered corpus for the E17 scalability sweep: `groups`
/// well-separated modes on a 64-bin chain whose ground distance is
/// saturated at `tau = 4`. Group `g` concentrates its mass on the
/// four-bin window `[4g, 4g+3]` with up to ~15% spilling into the next
/// bin, so contiguous four-bin blocks reduce each group to (nearly) one
/// reduced bin: intra-group reduced distances are small, inter-group
/// distances saturate, and triangle pruning has real separation to work
/// with. Returns `(database, held-out queries)`.
fn separated_corpus(
    objects: usize,
    queries: usize,
    seed: u64,
) -> (Database, Vec<emd_core::Histogram>) {
    const DIM: usize = 64;
    const GROUPS: usize = 16;
    let mut rng = StdRng::seed_from_u64(seed);
    let bases: Vec<[f64; 5]> = (0..GROUPS)
        .map(|_| {
            [
                rng.gen_range(0.2..1.0),
                rng.gen_range(0.2..1.0),
                rng.gen_range(0.2..1.0),
                rng.gen_range(0.2..1.0),
                rng.gen_range(0.0..0.15),
            ]
        })
        .collect();
    let draw = |group: usize, rng: &mut StdRng| {
        let mut bins = vec![0.0_f64; DIM];
        let start = 4 * group;
        // group is taken modulo GROUPS, so the lookup always succeeds.
        for (offset, &base) in bases.get(group).into_iter().flatten().enumerate() {
            if let Some(slot) = bins.get_mut(start + offset) {
                *slot = base * rng.gen_range(0.8..1.2);
            }
        }
        checked(
            emd_core::Histogram::normalized(bins),
            "window weights are positive",
        )
    };
    let mut all: Vec<emd_core::Histogram> = (0..objects + queries)
        .map(|i| draw(i % GROUPS, &mut rng))
        .collect();
    let query_set = all.split_off(objects);
    let cost = std::sync::Arc::new(checked(
        emd_core::ground::linear(DIM).and_then(|c| emd_core::ground::saturated(&c, 4.0)),
        "chain ground distance saturates cleanly",
    ));
    let database = checked(Database::new(all, cost), "corpus is self-consistent");
    (database, query_set)
}

/// Measure one database size of the E17 sweep: the same
/// `Red-EMD -> EMD` query answered by a full-scan plan and by a
/// [`ClusteredIndex`](emd_query::ClusteredIndex) candidate source, with
/// answers asserted bit-identical and stage-1 evaluation counts taken
/// from [`QueryStats`](emd_query::QueryStats) (cluster visit/prune
/// counts from the `emd-obs` registry).
fn scalability_row(objects: usize, queries: usize, k: usize) -> ScalabilityRow {
    const D_RED: usize = 16;
    let (database, query_set) = separated_corpus(objects, queries, SEED ^ objects as u64);
    let assignments: Vec<usize> = (0..database.dim()).map(|bin| bin / 4).collect();
    let reduction = checked(
        CombiningReduction::new(assignments, D_RED),
        "contiguous blocks form a valid reduction",
    );
    let reduced = checked(
        ReducedEmd::new(database.cost_arc(), reduction),
        "saturated chain reduces cleanly",
    );

    let scan_plan = checked(
        QueryPlan::new(
            vec![Box::new(checked(
                ReducedEmdFilter::new(&database, reduced.clone()),
                "reduction matches the corpus",
            )) as Box<dyn Filter>],
            Box::new(checked(
                EmdDistance::new(&database),
                "refiner over a valid snapshot",
            )),
        ),
        "single-stage plan is well-formed",
    );
    let scan = Executor::new(scan_plan);

    let started = Instant::now();
    let index = checked(
        emd_query::ClusteredIndex::build(&database, reduced, 1.0),
        "separated corpus clusters cleanly",
    );
    let build_ms = started.elapsed().as_secs_f64() * 1e3;
    let clusters = index.clusters();
    let clustered_plan = checked(
        QueryPlan::new(
            Vec::new(),
            Box::new(checked(
                EmdDistance::new(&database),
                "refiner over a valid snapshot",
            )),
        )
        .and_then(|plan| plan.with_source(Box::new(index))),
        "source indexes the same snapshot",
    );
    let clustered = Executor::new(clustered_plan);

    let mut bit_identical = true;
    for query in &query_set {
        let (scan_neighbors, _) = checked(scan.knn(query, k), "consistent scan plan");
        let (clustered_neighbors, _) =
            checked(clustered.knn(query, k), "consistent clustered plan");
        bit_identical &= scan_neighbors.len() == clustered_neighbors.len()
            && scan_neighbors
                .iter()
                .zip(&clustered_neighbors)
                .all(|(s, c)| s.id == c.id && s.distance.to_bits() == c.distance.to_bits());
    }
    assert!(
        bit_identical,
        "scan-vs-clustered answers diverged at n = {objects}"
    );

    let scan_measurement = measure_knn(&scan, &query_set, k);
    let recording = emd_obs::Recording::start();
    let clustered_measurement = measure_knn(&clustered, &query_set, k);
    let registry = recording.finish();

    let per_query = query_set.len().max(1) as f64;
    let stage1 = |m: &crate::setup::WorkloadMeasurement| {
        m.stage_evaluations.first().map_or(0.0, |(_, n)| *n)
    };
    let scan_stage1 = stage1(&scan_measurement);
    let clustered_stage1 = stage1(&clustered_measurement);
    ScalabilityRow {
        objects,
        clusters,
        queries: query_set.len(),
        k,
        dim: database.dim(),
        d_red: D_RED,
        scan_stage1_per_query: scan_stage1,
        clustered_stage1_per_query: clustered_stage1,
        stage1_ratio: clustered_stage1 / scan_stage1.max(1.0),
        clusters_visited_per_query: registry.counter("index.clusters_visited") as f64 / per_query,
        clusters_pruned_per_query: registry.counter("index.clusters_pruned") as f64 / per_query,
        refinements_per_query: clustered_measurement.refinements,
        scan_ms_per_query: scan_measurement.time_per_query.as_secs_f64() * 1e3,
        clustered_ms_per_query: clustered_measurement.time_per_query.as_secs_f64() * 1e3,
        build_ms,
        bit_identical,
    }
}

/// E17: sublinear stage-1 candidate generation. Greedy k-center
/// clustering over the reduced space vs the full Red-EMD scan on a
/// synthetic well-separated corpus, swept over database sizes, with
/// bit-identical answers asserted at every size. Writes
/// `BENCH_PR8.json` (schema `flexemd-bench/v1`) to the repository root.
pub fn e17(scale: &Scale, quick: bool) -> Table {
    let mut table = Table::new(
        "E17",
        "clustered candidate source vs full Red-EMD scan (separated 64-d corpus)",
        &[
            "n",
            "clusters",
            "scan lb/q",
            "clustered lb/q",
            "ratio",
            "visited/q",
            "pruned/q",
            "refine/q",
            "scan ms/q",
            "clustered ms/q",
            "build ms",
            "identical",
        ],
    );
    let sizes: &[usize] = if quick {
        &[500, 1_000, 2_000]
    } else {
        &[10_000, 30_000, 100_000]
    };
    let queries = scale.queries.min(20);
    let rows: Vec<ScalabilityRow> = sizes
        .iter()
        .map(|&n| scalability_row(n, queries, K_DEFAULT))
        .collect();
    for row in &rows {
        table.row(vec![
            row.objects.to_string(),
            row.clusters.to_string(),
            fnum(row.scan_stage1_per_query),
            fnum(row.clustered_stage1_per_query),
            fnum(row.stage1_ratio),
            fnum(row.clusters_visited_per_query),
            fnum(row.clusters_pruned_per_query),
            fnum(row.refinements_per_query),
            fnum(row.scan_ms_per_query),
            fnum(row.clustered_ms_per_query),
            fnum(row.build_ms),
            row.bit_identical.to_string(),
        ]);
    }
    table.note(
        "both plans refine with the exact EMD through the same KNOP loop; \
         stage-1 counts are lower-bound evaluations in the reduced space \
         (the scan computes all n, the clustered source computes pivot \
         distances plus members of expanded clusters); answers asserted \
         bit-identical at every size",
    );
    table.note("acceptance: ratio <= 0.5 at the largest n (checked in CI against BENCH_PR8.json)");
    let report = ScalabilityReport {
        schema: "flexemd-bench/v1".to_owned(),
        experiment: "E17".to_owned(),
        description: "Sublinear stage-1 candidates: greedy k-center clustering with \
                      triangle-inequality pruning over the reduced space vs the full \
                      Red-EMD scan, swept over database sizes on a 16-mode separated \
                      64-d corpus (saturated chain ground distance, contiguous 4-bin \
                      block reduction to d' = 16); answers bit-identical; stage-1 \
                      evaluation counts from QueryStats, cluster visit/prune counts \
                      from the emd-obs registry."
            .to_owned(),
        rows,
    };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR8.json");
    match serde_json::to_vec_pretty(&report).map(|bytes| std::fs::write(&path, bytes)) {
        Ok(Ok(())) => table.note(format!("wrote {}", path.display())),
        Ok(Err(error)) => table.note(format!("could not write BENCH_PR8.json: {error}")),
        Err(error) => table.note(format!("could not serialize BENCH_PR8.json: {error}")),
    }
    table
}

/// One measured sweep point of the E18 serving-load report
/// (`BENCH_PR9.json`).
struct ServeLoadRow {
    /// Sweep this point belongs to: `"threads"` or `"deadline"`.
    sweep: String,
    /// Closed-loop client threads.
    threads: usize,
    /// Requests issued over the run.
    requests: usize,
    /// Per-request deadline in milliseconds; `-1` = unlimited.
    deadline_ms: f64,
    /// Exact `200` responses.
    ok: usize,
    /// Degraded `200` responses.
    degraded: usize,
    /// `429` shed responses.
    shed: usize,
    /// `5xx` responses and transport failures.
    server_errors: usize,
    /// `degraded / (ok + degraded)`.
    degraded_rate: f64,
    /// Answered requests per second of wall clock.
    throughput_rps: f64,
    /// Mean latency over answered requests, microseconds.
    mean_us: f64,
    /// Median latency, microseconds.
    p50_us: u64,
    /// 99th-percentile latency, microseconds.
    p99_us: u64,
}

serde::impl_serde_struct!(ServeLoadRow {
    sweep,
    threads,
    requests,
    deadline_ms,
    ok,
    degraded,
    shed,
    server_errors,
    degraded_rate,
    throughput_rps,
    mean_us,
    p50_us,
    p99_us,
});

/// The schema-versioned payload E18 writes to the repository root.
struct ServeLoadReport {
    /// Schema tag, always `"flexemd-bench/v1"`.
    schema: String,
    /// Producing experiment id (`"E18"`).
    experiment: String,
    /// Human-readable summary of the methodology.
    description: String,
    /// One entry per sweep point.
    rows: Vec<ServeLoadRow>,
}

serde::impl_serde_struct!(ServeLoadReport {
    schema,
    experiment,
    description,
    rows,
});

/// Drive one loadgen workload against the live server and fold the
/// report into a sweep row.
fn serve_load_point(
    addr: std::net::SocketAddr,
    sweep: &str,
    threads: usize,
    requests: usize,
    deadline_ms: Option<u64>,
) -> Result<ServeLoadRow, emd_serve::ServeError> {
    let spec = QuerySpec {
        k: Some(K_DEFAULT),
        deadline_ms,
        ..QuerySpec::default()
    };
    let config = LoadgenConfig {
        addr: addr.to_string(),
        threads,
        requests,
        spec,
        seed: SEED,
        io_timeout: std::time::Duration::from_secs(60),
    };
    let report = emd_serve::loadgen::run(&config)?;
    Ok(ServeLoadRow {
        sweep: sweep.to_owned(),
        threads,
        requests,
        deadline_ms: deadline_ms.map_or(-1.0, |ms| ms as f64),
        ok: report.ok,
        degraded: report.degraded,
        shed: report.shed,
        server_errors: report.server_errors,
        degraded_rate: report.degraded_rate(),
        throughput_rps: report.throughput_rps,
        mean_us: report.latency.mean_us,
        p50_us: report.latency.p50_us,
        p99_us: report.latency.p99_us,
    })
}

/// Serving under load: an in-process `flexemd serve` instance over the
/// E4-style Gaussian corpus with a chained `Red-EMD -> EMD` plan, driven
/// by the closed-loop load generator. Two sweeps share the server:
/// throughput vs client thread count (unlimited budgets), then a
/// deadline sweep at fixed concurrency showing the degraded-rate /
/// latency tradeoff of per-request admission budgets.
pub fn e18(scale: &Scale, quick: bool) -> Table {
    let mut table = Table::new(
        "E18",
        "Query serving under load: thread and deadline sweeps",
        &[
            "sweep",
            "thr",
            "deadline",
            "req",
            "ok",
            "degr",
            "shed",
            "err",
            "degr-rate",
            "rps",
            "p50 us",
            "p99 us",
        ],
    );
    let bench = gaussian_bench(scale);
    let flows = flow_sample(&bench, scale.sample, SEED ^ 0xf10);
    let reduction = build_reduction(Strategy::FbAllKMed, &bench, &flows, 8, SEED ^ 0xbead);
    let executor = chained_executor(&bench, reduction);
    let snapshot = Snapshot {
        executor,
        database: bench.database.clone(),
        name: bench.name.clone(),
        faults: None,
        ingest: None,
    };
    let config = ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    };
    let server = match Server::start(snapshot, config) {
        Ok(server) => server,
        Err(error) => {
            table.note(format!("could not start the query server: {error}"));
            return table;
        }
    };
    let addr = server.addr();
    table.note(format!(
        "corpus {} ({} objects, d={}), chained FB-All+KMed plan (d'=8), 4 server workers, \
         k={K_DEFAULT}, deterministic seeded workload",
        bench.name,
        bench.database.len(),
        bench.dim(),
    ));

    let requests = if quick { 64 } else { 256 };
    let mut rows: Vec<ServeLoadRow> = Vec::new();
    let points: Vec<(&str, usize, Option<u64>)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| ("threads", threads, None))
        .chain(
            [None, Some(20), Some(5), Some(1), Some(0)]
                .iter()
                .map(|&deadline| ("deadline", 4usize, deadline)),
        )
        .collect();
    for (sweep, threads, deadline_ms) in points {
        match serve_load_point(addr, sweep, threads, requests, deadline_ms) {
            Ok(row) => rows.push(row),
            Err(error) => table.note(format!(
                "sweep {sweep} (threads={threads}, deadline={deadline_ms:?}) failed: {error}"
            )),
        }
    }
    if let Err(error) = server.drain_and_join() {
        table.note(format!("drain failed: {error}"));
    }

    for row in &rows {
        let deadline = if row.deadline_ms < 0.0 {
            "none".to_owned()
        } else {
            format!("{} ms", row.deadline_ms)
        };
        table.row(vec![
            row.sweep.clone(),
            row.threads.to_string(),
            deadline,
            row.requests.to_string(),
            row.ok.to_string(),
            row.degraded.to_string(),
            row.shed.to_string(),
            row.server_errors.to_string(),
            fnum(row.degraded_rate),
            fnum(row.throughput_rps),
            row.p50_us.to_string(),
            row.p99_us.to_string(),
        ]);
    }
    table.note(
        "thread sweep: unlimited budgets, closed loop (each client waits for its response); \
         deadline sweep: 4 clients, per-request wall-clock budgets lowered through the same \
         QuerySpec the CLI uses — tighter deadlines trade exactness (degraded-rate rises) \
         for tail latency",
    );
    let report = ServeLoadReport {
        schema: "flexemd-bench/v1".to_owned(),
        experiment: "E18".to_owned(),
        description: "Closed-loop load generation against a live flexemd serve instance \
                      (std-only HTTP/1.1, 4 workers, bounded accept queue) over the E4-style \
                      32-d Gaussian corpus with a chained FB-All+KMed plan (d' = 8): \
                      throughput vs client thread count with unlimited budgets, then a \
                      per-request deadline sweep at 4 clients showing the degraded-rate / \
                      latency tradeoff; responses carry exact/degraded flags and the workload \
                      is a deterministic splitmix64 stream."
            .to_owned(),
        rows,
    };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR9.json");
    match serde_json::to_vec_pretty(&report).map(|bytes| std::fs::write(&path, bytes)) {
        Ok(Ok(())) => table.note(format!("wrote {}", path.display())),
        Ok(Err(error)) => table.note(format!("could not write BENCH_PR9.json: {error}")),
        Err(error) => table.note(format!("could not serialize BENCH_PR9.json: {error}")),
    }
    table
}

/// One measured point of the E19 streaming-ingest / crash-recovery
/// report (`BENCH_PR10.json`).
struct IngestRow {
    /// Measurement family: `"ingest"`, `"recovery"` or `"query"`.
    phase: String,
    /// Point within the family (e.g. `"sync-each"`, `"replay-128"`).
    mode: String,
    /// Live objects in the index at measurement time.
    objects: usize,
    /// Bytes in the active WAL file at measurement time.
    wal_bytes: u64,
    /// Wall-clock for the measured operation, milliseconds.
    elapsed_ms: f64,
    /// Mean per-operation cost (insert / replayed record / query),
    /// microseconds.
    per_op_us: f64,
}

serde::impl_serde_struct!(IngestRow {
    phase,
    mode,
    objects,
    wal_bytes,
    elapsed_ms,
    per_op_us,
});

/// The schema-versioned payload E19 writes to the repository root.
struct IngestReport {
    /// Schema tag, always `"flexemd-bench/v1"`.
    schema: String,
    /// Producing experiment id (`"E19"`).
    experiment: String,
    /// Human-readable summary of the methodology.
    description: String,
    /// One entry per measurement point.
    rows: Vec<IngestRow>,
}

serde::impl_serde_struct!(IngestReport {
    schema,
    experiment,
    description,
    rows,
});

/// A scratch directory for one E19 durable index, cleared on entry.
fn e19_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("flexemd-bench-e19-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Bytes in the active `wal-<epoch>.log` of a durable directory.
fn wal_bytes(dir: &std::path::Path, epoch: u64) -> u64 {
    std::fs::metadata(dir.join(format!("wal-{epoch}.log"))).map_or(0, |meta| meta.len())
}

/// Streaming ingest and crash recovery: the durability cost of the WAL
/// (fsync-per-record vs batched group commit), recovery time as a
/// function of replayed WAL length (and the compaction fast path that
/// collapses it), and query latency on copy-on-write snapshots that stay
/// bit-stable while ingest and compaction run underneath them.
pub fn e19(scale: &Scale, quick: bool) -> Table {
    let mut table = Table::new(
        "E19",
        "Streaming ingest: WAL durability cost, recovery replay, snapshot isolation",
        &["phase", "mode", "objects", "wal bytes", "ms", "us/op"],
    );
    let bench = gaussian_bench(scale);
    let histograms = bench.database.histograms();
    let n = histograms.len().min(if quick { 96 } else { 256 });
    let flows = flow_sample(&bench, scale.sample, SEED ^ 0xf10);
    let reduction = build_reduction(Strategy::KMed, &bench, &flows, 8, SEED ^ 0xbead);
    let reduced = |r: &CombiningReduction| {
        checked(
            ReducedEmd::new(&bench.cost, r.clone()),
            "validated reduction",
        )
    };
    table.note(format!(
        "corpus {} (d={}), first {n} objects ingested per run, KMed reduction (d'=8)",
        bench.name,
        bench.dim(),
    ));
    let mut rows: Vec<IngestRow> = Vec::new();

    // Phase 1 — ingest throughput: one fsync per acknowledged record vs
    // group commit (append everything, sync once).
    for (mode, sync_each) in [("sync-each", true), ("batched", false)] {
        let dir = e19_dir(mode);
        let mut index = checked(
            emd_query::DurableIndex::create(&dir, bench.cost.clone(), reduced(&reduction)),
            "create durable index",
        );
        let started = Instant::now();
        for histogram in histograms.iter().take(n) {
            if sync_each {
                checked(index.insert(histogram.clone()), "durable insert");
            } else {
                checked(index.append_insert(histogram.clone()), "append insert");
            }
        }
        checked(index.sync(), "final sync");
        let elapsed = started.elapsed();
        rows.push(IngestRow {
            phase: "ingest".to_owned(),
            mode: mode.to_owned(),
            objects: index.len(),
            wal_bytes: wal_bytes(&dir, index.epoch()),
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            per_op_us: elapsed.as_secs_f64() * 1e6 / n.max(1) as f64,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Phase 2 — recovery: reopen cost scales with the replayed WAL
    // length; compaction folds the tail into a sealed segment and leaves
    // a single compact-epoch record to replay.
    let recovery_lengths = [n.div_ceil(4).max(1), n.div_ceil(2).max(1), n.max(1)];
    for replayed in recovery_lengths {
        let dir = e19_dir(&format!("recover-{replayed}"));
        {
            let mut index = checked(
                emd_query::DurableIndex::create(&dir, bench.cost.clone(), reduced(&reduction)),
                "create durable index",
            );
            for histogram in histograms.iter().take(replayed) {
                checked(index.append_insert(histogram.clone()), "append insert");
            }
            checked(index.sync(), "final sync");
        }
        let started = Instant::now();
        let (reopened, report) = checked(emd_query::DurableIndex::open(&dir), "reopen");
        let elapsed = started.elapsed();
        rows.push(IngestRow {
            phase: "recovery".to_owned(),
            mode: format!("replay-{}", report.replayed_records),
            objects: reopened.len(),
            wal_bytes: wal_bytes(&dir, reopened.epoch()),
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            per_op_us: elapsed.as_secs_f64() * 1e6 / report.replayed_records.max(1) as f64,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    {
        let dir = e19_dir("recover-compacted");
        {
            let mut index = checked(
                emd_query::DurableIndex::create(&dir, bench.cost.clone(), reduced(&reduction)),
                "create durable index",
            );
            for histogram in histograms.iter().take(n) {
                checked(index.append_insert(histogram.clone()), "append insert");
            }
            checked(index.sync(), "final sync");
            checked(index.compact(), "compact");
        }
        let started = Instant::now();
        let (reopened, report) = checked(emd_query::DurableIndex::open(&dir), "reopen");
        let elapsed = started.elapsed();
        rows.push(IngestRow {
            phase: "recovery".to_owned(),
            mode: "after-compact".to_owned(),
            objects: reopened.len(),
            wal_bytes: wal_bytes(&dir, reopened.epoch()),
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            per_op_us: elapsed.as_secs_f64() * 1e6 / report.replayed_records.max(1) as f64,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Phase 3 — snapshot isolation: query a frozen pre-ingest snapshot,
    // ingest and compact underneath it, query it again (must be
    // bit-identical), then query a fresh post-compaction snapshot.
    {
        let dir = e19_dir("query");
        let mut index = checked(
            emd_query::DurableIndex::create(&dir, bench.cost.clone(), reduced(&reduction)),
            "create durable index",
        );
        for histogram in histograms.iter().take(n) {
            checked(index.append_insert(histogram.clone()), "append insert");
        }
        checked(index.sync(), "final sync");
        let queries: Vec<_> = bench.queries.iter().take(8).collect();
        let k = K_DEFAULT.min(n);
        let run_queries = |snapshot: &emd_query::DurableSnapshot| {
            let started = Instant::now();
            let fingerprints: Vec<Vec<(u64, u64)>> = queries
                .iter()
                .map(|query| {
                    checked(snapshot.knn(query, k), "snapshot knn")
                        .0
                        .iter()
                        .map(|&(id, distance)| (id, distance.to_bits()))
                        .collect()
                })
                .collect();
            (started.elapsed(), fingerprints)
        };
        let frozen = checked(index.snapshot(), "pre-ingest snapshot");
        let (elapsed, baseline) = run_queries(&frozen);
        rows.push(IngestRow {
            phase: "query".to_owned(),
            mode: "frozen-snapshot".to_owned(),
            objects: frozen.len(),
            wal_bytes: wal_bytes(&dir, index.epoch()),
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            per_op_us: elapsed.as_secs_f64() * 1e6 / queries.len().max(1) as f64,
        });
        for histogram in histograms.iter().take(n.min(16)) {
            checked(index.append_insert(histogram.clone()), "append insert");
        }
        checked(index.sync(), "final sync");
        checked(index.compact(), "compact");
        let (elapsed, after) = run_queries(&frozen);
        let stable = baseline == after;
        rows.push(IngestRow {
            phase: "query".to_owned(),
            mode: "frozen-after-compact".to_owned(),
            objects: frozen.len(),
            wal_bytes: wal_bytes(&dir, index.epoch()),
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            per_op_us: elapsed.as_secs_f64() * 1e6 / queries.len().max(1) as f64,
        });
        let fresh = checked(index.snapshot(), "post-compaction snapshot");
        let (elapsed, _) = run_queries(&fresh);
        rows.push(IngestRow {
            phase: "query".to_owned(),
            mode: "fresh-snapshot".to_owned(),
            objects: fresh.len(),
            wal_bytes: wal_bytes(&dir, index.epoch()),
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            per_op_us: elapsed.as_secs_f64() * 1e6 / queries.len().max(1) as f64,
        });
        table.note(format!(
            "frozen snapshot bit-stable across {} concurrent inserts + compaction: {stable}",
            n.min(16),
        ));
        assert!(stable, "pre-ingest snapshot moved under ingest");
        let _ = std::fs::remove_dir_all(&dir);
    }

    for row in &rows {
        table.row(vec![
            row.phase.clone(),
            row.mode.clone(),
            row.objects.to_string(),
            row.wal_bytes.to_string(),
            fnum(row.elapsed_ms),
            fnum(row.per_op_us),
        ]);
    }
    table.note(
        "ingest: sync-each pays one fsync per acknowledged record, batched appends \
         everything and syncs once (group commit); recovery: reopen replays the WAL over \
         the sealed segment, so compaction collapses replay to the single compact-epoch \
         record; query: copy-on-write snapshots answer bit-identically while ingest and \
         compaction run underneath",
    );
    let report = IngestReport {
        schema: "flexemd-bench/v1".to_owned(),
        experiment: "E19".to_owned(),
        description: "Streaming ingest into the WAL-backed durable index over the 32-d \
                      Gaussian corpus (KMed reduction, d' = 8): per-record fsync vs batched \
                      group commit throughput, cold-open recovery time vs replayed WAL \
                      length (including the post-compaction fast path), and exact k-NN \
                      latency on copy-on-write snapshots frozen before concurrent inserts \
                      and compaction — the frozen snapshot must answer bit-identically \
                      before and after."
            .to_owned(),
        rows,
    };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR10.json");
    match serde_json::to_vec_pretty(&report).map(|bytes| std::fs::write(&path, bytes)) {
        Ok(Ok(())) => table.note(format!("wrote {}", path.display())),
        Ok(Err(error)) => table.note(format!("could not write BENCH_PR10.json: {error}")),
        Err(error) => table.note(format!("could not serialize BENCH_PR10.json: {error}")),
    }
    table
}

/// All experiments in order.
pub fn all(scale: &Scale, quick: bool) -> Vec<Table> {
    vec![
        e1(scale, quick),
        e2(scale, quick),
        e3(scale, quick),
        e4(scale, quick),
        e5(scale, quick),
        e6(scale, quick),
        e7(scale, quick),
        e8(scale, quick),
        e9(scale, quick),
        e10(scale, quick),
        e11(scale, quick),
        e12(scale, quick),
        e13(scale, quick),
        e14(scale, quick),
        e15(scale, quick),
        e16(scale, quick),
        e17(scale, quick),
        e18(scale, quick),
        e19(scale, quick),
        a1(scale, quick),
        a2(scale, quick),
        a3(scale, quick),
        a4(scale, quick),
    ]
}

/// Dispatch by experiment id (case-insensitive).
pub fn by_id(id: &str, scale: &Scale, quick: bool) -> Option<Table> {
    match id.to_ascii_lowercase().as_str() {
        "e1" => Some(e1(scale, quick)),
        "e2" => Some(e2(scale, quick)),
        "e3" => Some(e3(scale, quick)),
        "e4" => Some(e4(scale, quick)),
        "e5" => Some(e5(scale, quick)),
        "e6" => Some(e6(scale, quick)),
        "e7" => Some(e7(scale, quick)),
        "e8" => Some(e8(scale, quick)),
        "e9" => Some(e9(scale, quick)),
        "e10" => Some(e10(scale, quick)),
        "e11" => Some(e11(scale, quick)),
        "e12" => Some(e12(scale, quick)),
        "e13" => Some(e13(scale, quick)),
        "e14" => Some(e14(scale, quick)),
        "e15" => Some(e15(scale, quick)),
        "e16" => Some(e16(scale, quick)),
        "e17" => Some(e17(scale, quick)),
        "e18" => Some(e18(scale, quick)),
        "e19" => Some(e19(scale, quick)),
        "a1" => Some(a1(scale, quick)),
        "a2" => Some(a2(scale, quick)),
        "a3" => Some(a3(scale, quick)),
        "a4" => Some(a4(scale, quick)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            tiling_per_class: 3,
            color_per_class: 2,
            queries: 3,
            sample: 5,
        }
    }

    #[test]
    fn dispatch_rejects_unknown_ids() {
        assert!(by_id("e99", &tiny(), true).is_none());
        assert!(by_id("", &tiny(), true).is_none());
    }

    #[test]
    fn dispatch_is_case_insensitive() {
        // E9 is the cheapest experiment (preprocessing only); use it to
        // exercise the dispatch path without a long corpus sweep.
        assert!(by_id("E9", &tiny(), true).is_some());
    }

    #[test]
    fn e5_smoke() {
        let table = e5(&tiny(), true);
        assert_eq!(table.rows.len(), 4);
        assert!(table.to_string().contains("Red-IM"));
    }

    #[test]
    fn a2_smoke() {
        let table = a2(&tiny(), true);
        assert_eq!(table.rows.len(), 2);
    }

    #[test]
    fn e13_reports_registry_breakdown() {
        let table = e13(&tiny(), true);
        let text = table.to_string();
        assert!(text.contains("queries recorded"));
        assert!(text.contains("simplex pivots/query"));
        assert!(text.contains(emd_obs::SCHEMA));
    }

    #[test]
    fn e15_zero_deadline_degrades_every_query() {
        let table = e15(&tiny(), true);
        let text = table.to_string();
        assert!(text.contains("budget-check overhead"));
        let zero_row = table
            .rows
            .iter()
            .find(|row| row[0] == "0 ms")
            .expect("0 ms sweep row");
        assert_eq!(zero_row[1], "0", "0 ms deadline left exact answers");
        assert_eq!(zero_row[2], "3", "0 ms deadline must degrade all queries");
        let unlimited_row = table
            .rows
            .iter()
            .find(|row| row[0] == "unlimited")
            .expect("unlimited sweep row");
        assert_eq!(unlimited_row[2], "0", "unlimited budget degraded");
    }

    #[test]
    fn e12_batches_match_sequential() {
        let table = e12(&tiny(), true);
        assert_eq!(table.rows.len(), 4);
        for row in &table.rows {
            assert_eq!(row[3], "true", "thread count {} diverged", row[0]);
        }
    }
}
