#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The harness is experiment glue, not library surface: a panic on a
// malformed experiment is the desired behavior, not an error to route.
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! # emd-bench
//!
//! The experiment harness that regenerates the paper's tables and figures
//! (as reconstructed in DESIGN.md / EXPERIMENTS.md) plus the ablations.
//!
//! * [`report`] — plain-text/JSON table rendering.
//! * [`setup`] — seeded corpora, workloads and reduction construction
//!   shared by all experiments.
//! * [`experiments`] — one function per experiment (E1-E10, A1-A3), each
//!   returning a [`report::Table`].
//!
//! Run `cargo run --release -p emd-bench --bin experiments -- all` for the
//! full suite, or pass experiment ids (`e1 e5 a2 ...`). `--full` scales
//! the corpora up to paper-like sizes (slower).

pub mod experiments;
pub mod report;
pub mod setup;
