//! Table rendering for the experiment harness.

use std::fmt;

/// One regenerated table/figure.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. `"E1"`.
    pub id: String,
    /// Title matching the EXPERIMENTS.md index.
    pub title: String,
    /// Free-form notes (parameters, seeds, expectations).
    pub notes: Vec<String>,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells, already formatted.
    pub rows: Vec<Vec<String>>,
}

serde::impl_serde_struct!(Table {
    id,
    title,
    notes,
    columns,
    rows,
});

impl Table {
    /// Start an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            notes: Vec::new(),
            columns: columns.iter().map(|&c| c.to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatch in table {}",
            self.id
        );
        self.rows.push(cells);
    }
}

/// Format a float with three significant decimals, trimming noise.
pub fn fnum(value: f64) -> String {
    if value == 0.0 {
        "0".to_owned()
    } else if value.abs() >= 100.0 {
        format!("{value:.1}")
    } else if value.abs() >= 1.0 {
        format!("{value:.3}")
    } else {
        format!("{value:.4}")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        for note in &self.notes {
            writeln!(f, "   {note}")?;
        }
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        writeln!(f, "   {}", header.join("  "))?;
        let rule_len = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "   {}", "-".repeat(rule_len))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "   {}", cells.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut table = Table::new("E0", "demo", &["d'", "candidates"]);
        table.note("n=100");
        table.row(vec!["8".into(), "12.5".into()]);
        table.row(vec!["16".into(), "3.1".into()]);
        let text = table.to_string();
        assert!(text.contains("E0"));
        assert!(text.contains("candidates"));
        assert!(text.contains("12.5"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut table = Table::new("E0", "demo", &["a", "b"]);
        table.row(vec!["1".into()]);
    }

    #[test]
    fn json_serialization_is_stable() {
        let mut table = Table::new("E1", "demo", &["a"]);
        table.note("n=1");
        table.row(vec!["7".into()]);
        let json = serde_json::to_value(&table).unwrap();
        assert_eq!(json["id"], "E1");
        assert_eq!(json["columns"][0], "a");
        assert_eq!(json["rows"][0][0], "7");
        assert_eq!(json["notes"][0], "n=1");
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.12345), "0.1235");
        assert_eq!(fnum(3.4567891), "3.457");
        assert_eq!(fnum(1234.5), "1234.5");
    }
}
