//! Shared experiment setup: seeded corpora, workloads, reduction
//! construction and query measurement.
//!
//! Every corpus is materialized once as an immutable [`Database`]
//! snapshot; experiments build [`QueryPlan`]s over it and run them
//! through an [`Executor`], so the harness measures exactly the code
//! path the library's entry points use.

use emd_core::{CostMatrix, Histogram};
use emd_data::color::{self, ColorParams};
use emd_data::tiling::{self, TilingParams};
use emd_data::Dataset;
use emd_query::{
    Database, EmdDistance, Executor, Filter, QueryPlan, QueryStats, ReducedEmdFilter,
    ReducedImFilter,
};
use emd_reduction::fb::{fb_all, fb_mod, FbOptions};
use emd_reduction::flow_sample::{draw_sample, FlowSample};
use emd_reduction::kmedoids::kmedoids_reduction;
use emd_reduction::{CombiningReduction, ReducedEmd};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Corpus/workload sizes. `quick` finishes the whole suite in minutes on
/// a laptop; `full` approaches the paper's scale.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Objects per class in the tiling corpus (10 classes).
    pub tiling_per_class: usize,
    /// Objects per class in the color corpus (10 classes).
    pub color_per_class: usize,
    /// Queries per workload.
    pub queries: usize,
    /// Flow-sample size |S| for the FB reductions.
    pub sample: usize,
}

impl Scale {
    /// Minutes-scale suite.
    pub fn quick() -> Self {
        Scale {
            tiling_per_class: 42,
            color_per_class: 32,
            queries: 20,
            sample: 24,
        }
    }

    /// Paper-scale suite (much slower).
    pub fn full() -> Self {
        Scale {
            tiling_per_class: 205,
            color_per_class: 205,
            queries: 50,
            sample: 60,
        }
    }
}

/// A corpus split into an immutable database snapshot and a query set.
pub struct Bench {
    /// Corpus name (e.g. `"tiling-12x8"`).
    pub name: String,
    /// Immutable snapshot shared by every plan built over this bench.
    pub database: Database,
    /// Ground-distance matrix (also reachable via `database.cost()`).
    pub cost: Arc<CostMatrix>,
    /// Held-out query histograms.
    pub queries: Vec<Histogram>,
    /// Bin positions in feature space, when the corpus has a geometry.
    pub positions: Option<Vec<Vec<f64>>>,
}

impl Bench {
    fn from_dataset(dataset: Dataset, queries: usize) -> Self {
        let name = dataset.name.clone();
        let positions = dataset.positions.clone();
        let cost = Arc::new(dataset.cost.clone());
        let (database, query_set) = dataset.split_queries(queries);
        let database =
            Database::new(database.histograms, cost.clone()).expect("dataset is self-consistent");
        Bench {
            name,
            database,
            cost,
            queries: query_set,
            positions,
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.cost.rows()
    }
}

/// The RETINA-like 12x8 tiling corpus (96 dimensions).
pub fn tiling_bench(scale: &Scale, seed: u64) -> Bench {
    let params = TilingParams {
        per_class: scale.tiling_per_class + scale.queries.div_ceil(10),
        ..TilingParams::default()
    };
    let dataset = tiling::generate(&params, &mut StdRng::seed_from_u64(seed));
    Bench::from_dataset(shuffle(dataset, seed ^ 0x51ed), scale.queries)
}

/// The IRMA-like 6x6x6 color corpus (216 dimensions).
pub fn color_bench(scale: &Scale, seed: u64) -> Bench {
    let params = ColorParams {
        per_class: scale.color_per_class + scale.queries.div_ceil(10),
        ..ColorParams::default()
    };
    let dataset = color::generate(&params, &mut StdRng::seed_from_u64(seed));
    Bench::from_dataset(shuffle(dataset, seed ^ 0xc01a), scale.queries)
}

/// Shuffle a dataset so the query split is class-balanced.
fn shuffle(mut dataset: Dataset, seed: u64) -> Dataset {
    use rand::seq::SliceRandom;
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let histograms = order
        .iter()
        .map(|&i| dataset.histograms[i].clone())
        .collect();
    let labels = order.iter().map(|&i| dataset.labels[i]).collect();
    dataset.histograms = histograms;
    dataset.labels = labels;
    dataset
}

/// The five reduction strategies the paper compares, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// k-medoids clustering on the ground distance (Section 3.3).
    KMed,
    /// FB-Mod from the `Base` initial solution (Section 3.4).
    FbModBase,
    /// FB-Mod from the k-medoids initial solution.
    FbModKMed,
    /// FB-All from the `Base` initial solution.
    FbAllBase,
    /// FB-All from the k-medoids initial solution.
    FbAllKMed,
}

impl Strategy {
    /// All strategies in the paper's presentation order.
    pub fn all() -> [Strategy; 5] {
        [
            Strategy::KMed,
            Strategy::FbModBase,
            Strategy::FbModKMed,
            Strategy::FbAllBase,
            Strategy::FbAllKMed,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::KMed => "KMed",
            Strategy::FbModBase => "FB-Mod(Base)",
            Strategy::FbModKMed => "FB-Mod(KMed)",
            Strategy::FbAllBase => "FB-All(Base)",
            Strategy::FbAllKMed => "FB-All(KMed)",
        }
    }
}

/// Flow sample shared by the FB strategies of one bench (computing it is
/// the expensive preprocessing step; experiments reuse it across d').
/// Uses the parallel sampler — the |S|^2 EMD solves dominate preprocessing
/// and parallelize perfectly (results are identical to sequential).
pub fn flow_sample(bench: &Bench, sample_size: usize, seed: u64) -> FlowSample {
    let mut rng = StdRng::seed_from_u64(seed);
    let sample: Vec<Histogram> = draw_sample(bench.database.histograms(), sample_size, &mut rng)
        .into_iter()
        .cloned()
        .collect();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    FlowSample::from_histograms_parallel(&sample, &bench.cost, threads).expect("sample >= 2")
}

/// Build one reduction with the given strategy.
pub fn build_reduction(
    strategy: Strategy,
    bench: &Bench,
    flows: &FlowSample,
    d_red: usize,
    seed: u64,
) -> CombiningReduction {
    build_reduction_with_options(strategy, bench, flows, d_red, seed, FbOptions::default())
}

/// [`build_reduction`] with explicit FB options (for the THRESH ablation).
pub fn build_reduction_with_options(
    strategy: Strategy,
    bench: &Bench,
    flows: &FlowSample,
    d_red: usize,
    seed: u64,
    options: FbOptions,
) -> CombiningReduction {
    let kmed = || {
        kmedoids_reduction(&bench.cost, d_red, &mut StdRng::seed_from_u64(seed))
            .expect("valid k")
            .reduction
    };
    match strategy {
        Strategy::KMed => kmed(),
        Strategy::FbModBase => {
            let base = CombiningReduction::base(bench.dim(), d_red).expect("valid");
            fb_mod(base, flows, &bench.cost, options).reduction
        }
        Strategy::FbModKMed => fb_mod(kmed(), flows, &bench.cost, options).reduction,
        Strategy::FbAllBase => {
            let base = CombiningReduction::base(bench.dim(), d_red).expect("valid");
            fb_all(base, flows, &bench.cost, options).reduction
        }
        Strategy::FbAllKMed => fb_all(kmed(), flows, &bench.cost, options).reduction,
    }
}

/// Unwrap experiment-harness plumbing. A panic here means the harness is
/// mis-assembled, not that a measured system failed; centralizing the
/// panic keeps the crate's panic-site budget flat as experiments grow.
pub fn checked<T, E: std::fmt::Debug>(result: Result<T, E>, what: &str) -> T {
    match result {
        Ok(value) => value,
        Err(error) => panic!("{what}: {error:?}"),
    }
}

/// Build the paper's Figure 10 plan (`Red-IM -> Red-EMD -> EMD`) for a
/// symmetric reduction and wrap it in an executor.
pub fn chained_executor(bench: &Bench, reduction: CombiningReduction) -> Executor {
    chained_executor_mode(bench, reduction, true)
}

/// [`chained_executor`] with warm-start solver contexts enabled or
/// forced off on every solver-backed stage — the A/B harness behind the
/// E16 cold-vs-warm comparison. `warm = false` is exactly the pre-warm
/// code path (fresh workspace per solve).
pub fn chained_executor_mode(bench: &Bench, reduction: CombiningReduction, warm: bool) -> Executor {
    let reduced = checked(
        ReducedEmd::new(&bench.cost, reduction),
        "validated reduction",
    );
    let stages: Vec<Box<dyn Filter>> = vec![
        Box::new(checked(
            ReducedImFilter::new(&bench.database, reduced.clone()),
            "red-im filter over the bench database",
        )),
        Box::new(
            checked(
                ReducedEmdFilter::new(&bench.database, reduced),
                "red-emd filter over the bench database",
            )
            .with_warm_start(warm),
        ),
    ];
    let refiner = refiner(bench).with_warm_start(warm);
    Executor::new(checked(
        QueryPlan::new(stages, Box::new(refiner)),
        "chained plan",
    ))
}

/// A single-stage `Red-EMD -> EMD` plan wrapped in an executor.
pub fn red_emd_executor(bench: &Bench, reduction: CombiningReduction) -> Executor {
    let reduced = ReducedEmd::new(&bench.cost, reduction).expect("validated reduction");
    let stages: Vec<Box<dyn Filter>> = vec![Box::new(
        ReducedEmdFilter::new(&bench.database, reduced).expect("consistent"),
    )];
    Executor::new(QueryPlan::new(stages, Box::new(refiner(bench))).expect("consistent"))
}

/// The zero-stage sequential-scan plan (exact EMD against every object).
pub fn scan_executor(bench: &Bench) -> Executor {
    Executor::new(QueryPlan::sequential(Box::new(refiner(bench))).expect("non-empty database"))
}

/// The exact-EMD refiner over the bench database.
pub fn refiner(bench: &Bench) -> EmdDistance {
    EmdDistance::new(&bench.database).expect("consistent")
}

/// Averaged measurements of a k-NN workload against one plan.
#[derive(Debug, Clone)]
pub struct WorkloadMeasurement {
    /// Mean refinements (candidate count) per query.
    pub refinements: f64,
    /// Mean evaluations per filter stage, in chain order.
    pub stage_evaluations: Vec<(String, f64)>,
    /// Mean wall-clock time per query.
    pub time_per_query: Duration,
}

/// Run every query at the given `k` and average the statistics.
pub fn measure_knn(executor: &Executor, queries: &[Histogram], k: usize) -> WorkloadMeasurement {
    let mut total = QueryStats::default();
    let started = Instant::now();
    for query in queries {
        let (_, stats) = executor.knn(query, k).expect("consistent plan");
        total.accumulate(&stats);
    }
    let elapsed = started.elapsed();
    let n = queries.len().max(1) as f64;
    WorkloadMeasurement {
        refinements: total.refinements as f64 / n,
        stage_evaluations: total
            .filter_evaluations
            .iter()
            .map(|(name, count)| (name.clone(), *count as f64 / n))
            .collect(),
        time_per_query: elapsed / queries.len().max(1) as u32,
    }
}

/// Mean tightness ratio `reduced_emd / exact_emd` over query-database
/// pairs (0 treated as perfectly tight when both are 0). The selectivity
/// proxy of experiment E10.
pub fn mean_tightness_ratio(bench: &Bench, reduction: &CombiningReduction, pairs: usize) -> f64 {
    let reduced = ReducedEmd::new(&bench.cost, reduction.clone()).expect("validated");
    let mut total = 0.0;
    let mut count = 0usize;
    'outer: for query in &bench.queries {
        for object in bench.database.histograms() {
            if count >= pairs {
                break 'outer;
            }
            let exact = emd_core::emd(query, object, &bench.cost).expect("consistent");
            let bound = reduced.distance(query, object).expect("consistent");
            total += if exact > 1e-12 { bound / exact } else { 1.0 };
            count += 1;
        }
    }
    total / count.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            tiling_per_class: 3,
            color_per_class: 2,
            queries: 4,
            sample: 6,
        }
    }

    #[test]
    fn benches_are_consistent() {
        let bench = tiling_bench(&tiny_scale(), 7);
        assert_eq!(bench.dim(), 96);
        assert_eq!(bench.queries.len(), 4);
        assert!(!bench.database.is_empty());
        let bench = color_bench(&tiny_scale(), 7);
        assert_eq!(bench.dim(), 216);
    }

    #[test]
    fn all_strategies_produce_valid_reductions() {
        let bench = tiling_bench(&tiny_scale(), 11);
        let flows = flow_sample(&bench, 6, 13);
        for strategy in Strategy::all() {
            let reduction = build_reduction(strategy, &bench, &flows, 8, 17);
            assert_eq!(reduction.original_dim(), 96);
            assert_eq!(reduction.reduced_dim(), 8);
        }
    }

    #[test]
    fn measured_plan_is_complete() {
        let bench = tiling_bench(&tiny_scale(), 23);
        let flows = flow_sample(&bench, 6, 29);
        let reduction = build_reduction(Strategy::FbModKMed, &bench, &flows, 8, 31);
        let chained = chained_executor(&bench, reduction);
        let scan = scan_executor(&bench);
        let query = &bench.queries[0];
        let (expected, _) = scan.knn(query, 3).unwrap();
        let (got, _) = chained.knn(query, 3).unwrap();
        assert_eq!(
            got.iter().map(|n| n.id).collect::<Vec<_>>(),
            expected.iter().map(|n| n.id).collect::<Vec<_>>()
        );
        let measurement = measure_knn(&chained, &bench.queries, 3);
        assert!(measurement.refinements >= 3.0);
        assert!(measurement.refinements <= bench.database.len() as f64);
    }

    #[test]
    fn tightness_ratio_in_unit_interval() {
        let bench = tiling_bench(&tiny_scale(), 37);
        let flows = flow_sample(&bench, 6, 41);
        let reduction = build_reduction(Strategy::KMed, &bench, &flows, 12, 43);
        let ratio = mean_tightness_ratio(&bench, &reduction, 20);
        assert!((0.0..=1.0 + 1e-9).contains(&ratio), "ratio {ratio}");
    }
}
