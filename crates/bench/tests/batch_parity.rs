//! Tentpole acceptance check: on a ~1k-object Gaussian corpus,
//! `Executor::run_batch` with 4 worker threads returns neighbors and
//! merged stats bit-identical to the sequential run.

// Test code: panicking on a malformed fixture is the desired behavior.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use emd_bench::setup::{build_reduction, chained_executor, flow_sample, Bench, Scale, Strategy};
use emd_data::gaussian::{self, GaussianParams};
use emd_query::{Database, Query};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn gaussian_1k_bench(queries: usize) -> Bench {
    let params = GaussianParams {
        dim: 32,
        num_classes: 8,
        per_class: 125 + queries.div_ceil(8),
        ..GaussianParams::default()
    };
    let dataset = gaussian::generate(&params, &mut StdRng::seed_from_u64(0x1000));
    let (dataset, query_set) = dataset.split_queries(queries);
    let cost = Arc::new(dataset.cost.clone());
    let database = Database::new(dataset.histograms, cost.clone()).expect("consistent dataset");
    Bench {
        name: dataset.name,
        database,
        cost,
        queries: query_set,
        positions: dataset.positions,
    }
}

#[test]
fn four_thread_batch_is_bit_identical_on_1k_gaussian() {
    let bench = gaussian_1k_bench(8);
    assert!(
        bench.database.len() >= 1000,
        "corpus too small: {}",
        bench.database.len()
    );

    let scale = Scale {
        tiling_per_class: 0,
        color_per_class: 0,
        queries: 8,
        sample: 10,
    };
    let flows = flow_sample(&bench, scale.sample, 0x1001);
    let reduction = build_reduction(Strategy::FbAllKMed, &bench, &flows, 8, 0x1002);
    let executor = chained_executor(&bench, reduction);

    let workload: Vec<Query> = bench
        .queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            if i % 2 == 0 {
                Query::knn(q.clone(), 10)
            } else {
                Query::range(q.clone(), (i as f64).mul_add(0.1, 0.5))
            }
        })
        .collect();

    let (sequential, sequential_stats) = executor.run_batch(&workload, 1).expect("valid workload");
    let (threaded, threaded_stats) = executor.run_batch(&workload, 4).expect("valid workload");

    // Bit-identical: same ids AND the exact same f64 distances, per query.
    assert_eq!(sequential, threaded);
    assert_eq!(sequential_stats, threaded_stats);
    assert_eq!(sequential.len(), workload.len());
}
