//! Debug-mode certificates linking the solver output to the paper's
//! theorems.
//!
//! * [`certify_report`] — an [`EmdReport`]'s flows must conserve the
//!   operand masses in *original* bin indices and cost exactly the stated
//!   distance (Definition 1 feasibility).
//! * [`debug_check_lower_bound`] / [`debug_check_sandwich`] — the
//!   lower-bound property of Theorem 1 (`LB <= EMD`) and the sandwich
//!   `LB <= EMD <= UB`, asserted wherever both quantities are available in
//!   debug builds.
//!
//! The `debug_*` hooks are compiled out of release builds; the plain
//! checking functions stay available in all builds for tests and tooling.

use crate::cost::CostMatrix;
use crate::emd::EmdReport;
use crate::histogram::Histogram;
use std::fmt;

/// Default absolute tolerance for certificate checks; matches the LP
/// layer's certificate tolerance.
pub const CERT_EPS: f64 = 1e-9;

/// Tolerance for bound-ordering checks (`LB <= EMD + BOUND_EPS`). Looser
/// than [`CERT_EPS`]: bound computations and the LP accumulate rounding
/// independently of each other.
pub const BOUND_EPS: f64 = 1e-7;

/// A violated EMD-report invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportViolation {
    /// A flow references a bin outside either histogram.
    IndexOutOfRange {
        /// Source bin of the offending flow.
        source: usize,
        /// Target bin of the offending flow.
        target: usize,
    },
    /// A flow amount is negative (beyond tolerance) or non-finite.
    BadFlowValue {
        /// Source bin of the offending flow.
        source: usize,
        /// Target bin of the offending flow.
        target: usize,
        /// The offending amount.
        flow: f64,
    },
    /// Outgoing flows of a source bin do not sum to its mass, or incoming
    /// flows of a target bin do not sum to its mass.
    Conservation {
        /// `true` for the source (first-operand) side.
        source_side: bool,
        /// The violated bin.
        bin: usize,
        /// The bin's histogram mass.
        expected: f64,
        /// The mass the flows carry.
        actual: f64,
    },
    /// The stated distance differs from the cost of the flows.
    DistanceMismatch {
        /// Distance reported.
        stated: f64,
        /// Distance recomputed from the flows.
        recomputed: f64,
    },
}

impl fmt::Display for ReportViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportViolation::IndexOutOfRange { source, target } => {
                write!(f, "flow ({source}, {target}) outside the histograms")
            }
            ReportViolation::BadFlowValue {
                source,
                target,
                flow,
            } => write!(f, "flow ({source}, {target}) has bad amount {flow}"),
            ReportViolation::Conservation {
                source_side,
                bin,
                expected,
                actual,
            } => {
                let side = if *source_side { "source" } else { "target" };
                write!(
                    f,
                    "{side} bin {bin} carries {actual}, expected {expected} \
                     (error {:.3e})",
                    (actual - expected).abs()
                )
            }
            ReportViolation::DistanceMismatch { stated, recomputed } => write!(
                f,
                "distance {stated} != flow cost {recomputed} (error {:.3e})",
                (stated - recomputed).abs()
            ),
        }
    }
}

impl std::error::Error for ReportViolation {}

/// Certify an [`EmdReport`] against its operands: the flows must be a
/// feasible transportation plan from `x` to `y` (in original bin indices)
/// whose cost under `cost` equals the stated distance, within `tol`.
///
/// # Errors
///
/// Returns the first [`ReportViolation`] encountered. `Ok(())` certifies
/// feasibility, not optimality.
pub fn certify_report(
    x: &Histogram,
    y: &Histogram,
    cost: &CostMatrix,
    report: &EmdReport,
    tol: f64,
) -> Result<(), ReportViolation> {
    let mut out_sums = vec![0.0; x.dim()];
    let mut in_sums = vec![0.0; y.dim()];
    let mut recomputed = 0.0;
    for &(i, j, f) in &report.flows {
        if i >= x.dim() || j >= y.dim() {
            return Err(ReportViolation::IndexOutOfRange {
                source: i,
                target: j,
            });
        }
        if !(f.is_finite() && f >= -tol) {
            return Err(ReportViolation::BadFlowValue {
                source: i,
                target: j,
                flow: f,
            });
        }
        out_sums[i] += f;
        in_sums[j] += f;
        recomputed += f * cost.at(i, j);
    }
    for (bin, (&actual, &expected)) in out_sums.iter().zip(x.bins()).enumerate() {
        if (actual - expected).abs() > tol {
            return Err(ReportViolation::Conservation {
                source_side: true,
                bin,
                expected,
                actual,
            });
        }
    }
    for (bin, (&actual, &expected)) in in_sums.iter().zip(y.bins()).enumerate() {
        if (actual - expected).abs() > tol {
            return Err(ReportViolation::Conservation {
                source_side: false,
                bin,
                expected,
                actual,
            });
        }
    }
    let distance_tol = tol.max(recomputed.abs() * 1e-9);
    if (recomputed - report.distance).abs() > distance_tol {
        return Err(ReportViolation::DistanceMismatch {
            stated: report.distance,
            recomputed,
        });
    }
    Ok(())
}

/// Debug-build hook: certify `report` and panic with the violation if it
/// fails. Compiled out of release builds.
#[inline]
pub fn debug_certify_report(x: &Histogram, y: &Histogram, cost: &CostMatrix, report: &EmdReport) {
    if cfg!(debug_assertions) {
        if let Err(violation) = certify_report(x, y, cost, report, CERT_EPS) {
            // lint: allow(panic): the debug-build certificate hook exists to abort on solver bugs
            panic!("emd produced an infeasible flow report: {violation}");
        }
    }
}

/// Debug-build hook for the lower-bound property (Theorem 1):
/// `lower <= exact + BOUND_EPS`. Call wherever a filter bound and the
/// refined exact distance of the same pair are both in hand. Compiled out
/// of release builds.
#[inline]
pub fn debug_check_lower_bound(name: &str, lower: f64, exact: f64) {
    debug_assert!(
        lower <= exact + BOUND_EPS,
        "{name} = {lower} exceeds the exact EMD {exact} \
         (excess {:.3e}): the lower-bound property is violated",
        lower - exact
    );
}

/// Debug-build hook for the full sandwich `lower <= exact <= upper`
/// within [`BOUND_EPS`]. Compiled out of release builds.
#[inline]
pub fn debug_check_sandwich(name: &str, lower: f64, exact: f64, upper: f64) {
    debug_check_lower_bound(name, lower, exact);
    debug_assert!(
        exact <= upper + BOUND_EPS,
        "{name}: exact EMD {exact} exceeds the upper bound {upper} \
         (excess {:.3e})",
        exact - upper
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emd::emd_with_flows;
    use crate::ground;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    #[test]
    fn optimal_report_certifies() {
        let x = h(&[0.5, 0.0, 0.2, 0.0, 0.3, 0.0]);
        let y = h(&[0.0, 0.5, 0.0, 0.2, 0.0, 0.3]);
        let c = ground::linear(6).unwrap();
        let report = emd_with_flows(&x, &y, &c).unwrap();
        assert_eq!(certify_report(&x, &y, &c, &report, CERT_EPS), Ok(()));
    }

    #[test]
    fn corrupted_flow_is_caught() {
        let x = h(&[0.5, 0.5]);
        let y = h(&[0.25, 0.75]);
        let c = ground::linear(2).unwrap();
        let mut report = emd_with_flows(&x, &y, &c).unwrap();
        report.flows[0].2 += 0.125;
        assert!(matches!(
            certify_report(&x, &y, &c, &report, CERT_EPS).unwrap_err(),
            ReportViolation::Conservation { .. }
        ));
    }

    #[test]
    fn corrupted_distance_is_caught() {
        let x = h(&[0.5, 0.5]);
        let y = h(&[0.25, 0.75]);
        let c = ground::linear(2).unwrap();
        let mut report = emd_with_flows(&x, &y, &c).unwrap();
        report.distance *= 2.0;
        report.distance += 1.0;
        assert!(matches!(
            certify_report(&x, &y, &c, &report, CERT_EPS).unwrap_err(),
            ReportViolation::DistanceMismatch { .. }
        ));
    }

    #[test]
    fn out_of_range_flow_is_caught() {
        let x = h(&[1.0]);
        let y = h(&[1.0]);
        let c = ground::linear(1).unwrap();
        let report = EmdReport {
            distance: 0.0,
            flows: vec![(0, 5, 1.0)],
        };
        assert!(matches!(
            certify_report(&x, &y, &c, &report, CERT_EPS).unwrap_err(),
            ReportViolation::IndexOutOfRange { target: 5, .. }
        ));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "infeasible flow report")]
    fn debug_hook_fires_on_corruption() {
        let x = h(&[0.5, 0.5]);
        let y = h(&[0.25, 0.75]);
        let c = ground::linear(2).unwrap();
        let mut report = emd_with_flows(&x, &y, &c).unwrap();
        report.flows.clear();
        debug_certify_report(&x, &y, &c, &report);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lower-bound property is violated")]
    fn bound_order_hook_fires() {
        debug_check_lower_bound("test-bound", 2.0, 1.0);
    }

    #[test]
    fn sandwich_accepts_valid_ordering() {
        debug_check_sandwich("test-bound", 0.5, 1.0, 1.5);
        debug_check_lower_bound("test-bound", 1.0, 1.0);
    }
}
