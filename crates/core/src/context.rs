//! Reusable EMD evaluation contexts: the steady-state entry of the
//! refinement hot path.
//!
//! [`emd_in_context`] computes the same exact EMD as
//! [`crate::emd_rectangular_budgeted`], but routes the solve through a
//! caller-owned [`EmdContext`] holding a transport
//! [`SolverWorkspace`](emd_transport::SolverWorkspace) plus the
//! support-stripping and flattened row-major cost buffers. Consecutive
//! evaluations against one fixed query histogram — the KNOP refinement
//! pattern — then reuse every allocation and warm-start the simplex from
//! the previous candidate's optimal basis.
//!
//! Results are bit-identical to the context-free entry points: both paths
//! build the same stripped tableau and the transport layer extracts its
//! answer canonically from the final basis (see `emd_transport`'s
//! warm-start docs), so a warm-started solve agrees with a cold solve to
//! the bit whenever the optimum is unique.

use crate::cost::CostMatrix;
use crate::error::CoreError;
use crate::histogram::Histogram;
use emd_transport::{
    solve_warm_objective, Budget, SimplexOptions, SolverWorkspace, TransportError,
    TransportProblem, WorkspaceStats,
};

/// Caller-owned scratch for repeated EMD evaluations.
///
/// Owns the transport workspace (dual vectors, basis tree, warm-start
/// basis) and the core-level staging buffers (support indices, stripped
/// marginals, flattened costs). After the first evaluation has grown the
/// buffers, the steady path performs no heap allocation.
#[derive(Debug, Default)]
pub struct EmdContext {
    ws: SolverWorkspace,
    x_index: Vec<usize>,
    y_index: Vec<usize>,
    supplies: Vec<f64>,
    demands: Vec<f64>,
    costs: Vec<f64>,
}

impl EmdContext {
    /// An empty context; buffers grow on first use and are kept across
    /// evaluations.
    #[must_use]
    pub fn new() -> Self {
        EmdContext::default()
    }

    /// Transport-level work counters (solves, warm attempts/hits, pivots)
    /// accumulated by every evaluation routed through this context.
    #[must_use]
    pub fn stats(&self) -> WorkspaceStats {
        self.ws.stats()
    }

    /// Forget the warm-start basis: the next evaluation solves cold.
    /// Scratch buffers keep their capacity.
    // lint: allow(unbudgeted): state reset, performs no solver work
    pub fn clear_warm_state(&mut self) {
        self.ws.clear_warm_state();
    }
}

/// Exact EMD through a reusable [`EmdContext`]; accepts rectangular cost
/// matrices like [`crate::emd_rectangular_budgeted`] and returns the same
/// distance bit-for-bit (for instances with a unique optimum), while
/// reusing the context's buffers and warm-starting the simplex from the
/// previous evaluation's basis when the stripped tableau shapes match.
///
/// # Errors
///
/// Same failure modes as [`crate::emd_rectangular_budgeted`]:
/// [`CoreError::DimensionMismatch`] when `x` does not match `cost.rows()`
/// or `y` does not match `cost.cols()`, [`CoreError::BudgetExhausted`]
/// when `budget` fires mid-solve, and [`CoreError::Solver`] on any other
/// LP-level failure.
pub fn emd_in_context(
    x: &Histogram,
    y: &Histogram,
    cost: &CostMatrix,
    budget: &Budget,
    ctx: &mut EmdContext,
) -> Result<f64, CoreError> {
    emd_obs::counter_add("core.emd.solves", 1);
    if cost.rows() != x.dim() || cost.cols() != y.dim() {
        return Err(CoreError::DimensionMismatch {
            expected_rows: cost.rows(),
            expected_cols: cost.cols(),
            got_rows: x.dim(),
            got_cols: y.dim(),
        });
    }

    // Identical operands under a square matrix with zero diagonal have
    // distance 0; skip the LP (same shortcut as the context-free path).
    if cost.is_square() && x == y {
        // float: exact — identity shortcut requires an exactly zero diagonal, else fall through to the LP
        let diagonal_free = x.nonzero().all(|(i, _)| cost.at(i, i) == 0.0);
        if diagonal_free {
            return Ok(0.0);
        }
    }

    // Strip zero-mass bins into the context's staging buffers.
    ctx.x_index.clear();
    ctx.supplies.clear();
    for (i, mass) in x.nonzero() {
        ctx.x_index.push(i);
        ctx.supplies.push(mass);
    }
    ctx.y_index.clear();
    ctx.demands.clear();
    for (j, mass) in y.nonzero() {
        ctx.y_index.push(j);
        ctx.demands.push(mass);
    }
    debug_assert!(
        !ctx.x_index.is_empty() && !ctx.y_index.is_empty(),
        "normalized histograms have non-empty support"
    );

    ctx.costs.clear();
    ctx.costs.reserve(ctx.x_index.len() * ctx.y_index.len());
    for &i in &ctx.x_index {
        let row = cost.row(i);
        ctx.costs.extend(ctx.y_index.iter().map(|&j| row[j])); // bounds: y_index holds support positions < cost.cols()
    }

    // Round-trip the owned buffers through the problem: `into_parts`
    // returns them after the solve, so the steady path never reallocates.
    // A validation error consumes them (they re-grow next call).
    let problem = TransportProblem::new(
        std::mem::take(&mut ctx.supplies),
        std::mem::take(&mut ctx.demands),
        std::mem::take(&mut ctx.costs),
    )
    .map_err(|e| CoreError::Solver(e.to_string()))?;

    let solved = solve_warm_objective(&problem, SimplexOptions::default(), budget, &mut ctx.ws);
    let objective = match solved {
        Ok(objective) => objective,
        Err(TransportError::BudgetExhausted { reason }) => {
            // Budget exhaustion stays typed so upper layers can degrade.
            (ctx.supplies, ctx.demands, ctx.costs) = problem.into_parts();
            return Err(CoreError::BudgetExhausted(reason));
        }
        Err(other) => {
            (ctx.supplies, ctx.demands, ctx.costs) = problem.into_parts();
            return Err(CoreError::Solver(other.to_string()));
        }
    };

    if cfg!(debug_assertions) {
        let solution = ctx.ws.last_solution(objective);
        let flows = solution
            .flows
            .into_iter()
            // bounds: the solver's cells index the stripped tableau, whose
            // axes are exactly x_index / y_index.
            .map(|(i, j, f)| (ctx.x_index[i], ctx.y_index[j], f))
            .collect();
        let report = crate::EmdReport {
            distance: objective,
            flows,
        };
        crate::certify::debug_certify_report(x, y, cost, &report);
    }

    (ctx.supplies, ctx.demands, ctx.costs) = problem.into_parts();
    Ok(objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground;
    use crate::{emd, emd_rectangular_budgeted};

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    #[test]
    fn context_matches_context_free_path() {
        let x = h(&[0.1, 0.4, 0.0, 0.3, 0.2]);
        let ys = [
            h(&[0.3, 0.0, 0.3, 0.0, 0.4]),
            h(&[0.2, 0.2, 0.2, 0.2, 0.2]),
            h(&[0.0, 0.0, 1.0, 0.0, 0.0]),
            h(&[0.5, 0.1, 0.1, 0.1, 0.2]),
        ];
        let c = ground::linear(5).unwrap();
        let mut ctx = EmdContext::new();
        for y in &ys {
            let cold = emd(&x, y, &c).unwrap();
            let warm = emd_in_context(&x, y, &c, &Budget::unlimited(), &mut ctx).unwrap();
            assert_eq!(cold.to_bits(), warm.to_bits());
        }
        assert_eq!(ctx.stats().solves, 4);
    }

    #[test]
    fn identity_shortcut_still_fires() {
        let x = h(&[0.25, 0.25, 0.5]);
        let c = ground::linear(3).unwrap();
        let mut ctx = EmdContext::new();
        assert_eq!(
            emd_in_context(&x, &x, &c, &Budget::unlimited(), &mut ctx).unwrap(),
            0.0
        );
        // The shortcut skips the LP entirely: no transport solve recorded.
        assert_eq!(ctx.stats().solves, 0);
    }

    #[test]
    fn rectangular_operands_warm_start() {
        let x = h(&[0.5, 0.25, 0.25]);
        let ys = [h(&[0.5, 0.5]), h(&[0.25, 0.75]), h(&[0.9, 0.1])];
        let c = CostMatrix::new(3, 2, vec![0.0, 2.0, 1.0, 1.0, 2.0, 0.0]).unwrap();
        let mut ctx = EmdContext::new();
        for y in &ys {
            let cold = emd_rectangular_budgeted(&x, y, &c, &Budget::unlimited()).unwrap();
            let warm = emd_in_context(&x, y, &c, &Budget::unlimited(), &mut ctx).unwrap();
            assert_eq!(cold.to_bits(), warm.to_bits());
        }
        let stats = ctx.stats();
        assert_eq!(stats.solves, 3);
        assert_eq!(stats.warm_attempts, 2, "same support shape across ys");
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let x = h(&[0.5, 0.5]);
        let y = h(&[0.5, 0.25, 0.25]);
        let c = ground::linear(2).unwrap();
        let mut ctx = EmdContext::new();
        assert!(matches!(
            emd_in_context(&x, &y, &c, &Budget::unlimited(), &mut ctx).unwrap_err(),
            CoreError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn budget_exhaustion_stays_typed_and_context_survives() {
        let x = h(&[0.1, 0.4, 0.0, 0.3, 0.2]);
        let y = h(&[0.3, 0.0, 0.3, 0.0, 0.4]);
        let c = ground::linear(5).unwrap();
        let mut ctx = EmdContext::new();
        let token = emd_transport::CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel(token);
        let err = emd_in_context(&x, &y, &c, &budget, &mut ctx).unwrap_err();
        assert_eq!(
            err,
            CoreError::BudgetExhausted(emd_transport::BudgetReason::Cancelled)
        );
        // The context stays usable after a failed evaluation.
        let ok = emd_in_context(&x, &y, &c, &Budget::unlimited(), &mut ctx).unwrap();
        assert_eq!(ok.to_bits(), emd(&x, &y, &c).unwrap().to_bits());
    }

    #[test]
    fn clear_warm_state_forces_cold_solves() {
        let x = h(&[0.1, 0.4, 0.0, 0.3, 0.2]);
        let y = h(&[0.3, 0.0, 0.3, 0.0, 0.4]);
        let c = ground::linear(5).unwrap();
        let mut ctx = EmdContext::new();
        emd_in_context(&x, &y, &c, &Budget::unlimited(), &mut ctx).unwrap();
        ctx.clear_warm_state();
        emd_in_context(&x, &y, &c, &Budget::unlimited(), &mut ctx).unwrap();
        assert_eq!(ctx.stats().warm_attempts, 0);
    }
}
