//! The ground-distance cost matrix `C = [c_ij]` of Definition 1,
//! including the rectangular case the reduced EMD needs.

use crate::error::CoreError;

/// The ground-distance matrix `C = [c_ij]` of Definition 1.
///
/// `c_ij` is the cost of moving one unit of mass from bin `i` of the first
/// operand to bin `j` of the second. The matrix may be rectangular
/// (`rows != cols`), which the paper's reduced EMD needs when query and
/// database histograms are reduced to different dimensionalities
/// (`R1 != R2` in Definition 4).
///
/// Invariants: all entries finite and non-negative.
#[derive(Debug, Clone, PartialEq)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    entries: Box<[f64]>,
}

/// Serialization shim keeping the on-disk format explicit.
struct CostMatrixRepr {
    rows: usize,
    cols: usize,
    entries: Vec<f64>,
}

serde::impl_serde_struct!(CostMatrixRepr {
    rows,
    cols,
    entries
});

// Deserialization re-validates through `CostMatrix::new` (the
// `try_from`/`into` serde pattern).
serde::impl_serde_via!(CostMatrix => CostMatrixRepr);

impl CostMatrix {
    /// Build a cost matrix from a row-major entry buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidCost`] when `entries` is not `rows * cols`
    /// long, is empty, or contains a negative or non-finite cost.
    pub fn new(rows: usize, cols: usize, entries: Vec<f64>) -> Result<Self, CoreError> {
        if rows == 0 || cols == 0 || entries.len() != rows * cols {
            return Err(CoreError::CostShape {
                rows,
                cols,
                len: entries.len(),
            });
        }
        for (k, &value) in entries.iter().enumerate() {
            if value < 0.0 || !value.is_finite() {
                return Err(CoreError::InvalidCost {
                    row: k / cols,
                    col: k % cols,
                    value,
                });
            }
        }
        Ok(CostMatrix {
            rows,
            cols,
            entries: entries.into_boxed_slice(),
        })
    }

    /// Build a square cost matrix from a cost function over bin indices.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidCost`] when `dim` is zero or `cost` produces a
    /// negative or non-finite value for any bin pair.
    pub fn from_fn(dim: usize, cost: impl Fn(usize, usize) -> f64) -> Result<Self, CoreError> {
        let cost = &cost;
        let entries: Vec<f64> = (0..dim)
            .flat_map(|i| (0..dim).map(move |j| cost(i, j)))
            .collect();
        Self::new(dim, dim, entries)
    }

    /// Number of rows (first-operand dimensionality).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (second-operand dimensionality).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Cost entry `c_ij`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.entries[i * self.cols + j]
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.entries[i * self.cols..(i + 1) * self.cols]
    }

    /// Raw row-major entries.
    #[inline]
    pub fn entries(&self) -> &[f64] {
        &self.entries
    }

    /// Transpose the matrix (swap operand roles).
    pub fn transposed(&self) -> CostMatrix {
        let mut entries = vec![0.0; self.entries.len()];
        for i in 0..self.rows {
            for j in 0..self.cols {
                entries[j * self.rows + i] = self.at(i, j);
            }
        }
        CostMatrix {
            rows: self.cols,
            cols: self.rows,
            entries: entries.into_boxed_slice(),
        }
    }

    /// Smallest off-diagonal entry of a square matrix; used by the
    /// scaled-L1 lower bound. `None` for 1x1 matrices.
    pub fn min_off_diagonal(&self) -> Option<f64> {
        debug_assert!(self.is_square());
        let mut min = f64::INFINITY;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    min = min.min(self.at(i, j));
                }
            }
        }
        min.is_finite().then_some(min)
    }

    /// Entrywise comparison `self <= other` — the partial order of the
    /// paper's Theorem 2 (monotony of the EMD in the cost matrix).
    pub fn dominated_by(&self, other: &CostMatrix) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .entries
                .iter()
                .zip(other.entries.iter())
                .all(|(a, b)| a <= b)
    }

    /// Check the metric axioms on a square matrix: zero diagonal, symmetry
    /// and the triangle inequality, each within tolerance `tol`. `O(d^3)` —
    /// intended for construction-time validation and tests, not hot paths.
    pub fn is_metric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let d = self.rows;
        for i in 0..d {
            if self.at(i, i).abs() > tol {
                return false;
            }
            for j in 0..d {
                if (self.at(i, j) - self.at(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        for i in 0..d {
            for k in 0..d {
                let direct = self.at(i, k);
                for j in 0..d {
                    if direct > self.at(i, j) + self.at(j, k) + tol {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl TryFrom<CostMatrixRepr> for CostMatrix {
    type Error = CoreError;

    fn try_from(repr: CostMatrixRepr) -> Result<Self, Self::Error> {
        CostMatrix::new(repr.rows, repr.cols, repr.entries)
    }
}

impl From<CostMatrix> for CostMatrixRepr {
    fn from(matrix: CostMatrix) -> Self {
        CostMatrixRepr {
            rows: matrix.rows,
            cols: matrix.cols,
            entries: matrix.entries.into_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_matches_manual_layout() {
        let c = CostMatrix::from_fn(3, |i, j| (i as f64 - j as f64).abs()).unwrap();
        assert_eq!(c.at(0, 2), 2.0);
        assert_eq!(c.at(2, 0), 2.0);
        assert_eq!(c.row(1), &[1.0, 0.0, 1.0]);
        assert!(c.is_square());
    }

    #[test]
    fn rejects_negative_entries() {
        assert!(matches!(
            CostMatrix::new(2, 2, vec![0.0, 1.0, -1.0, 0.0]).unwrap_err(),
            CoreError::InvalidCost { row: 1, col: 0, .. }
        ));
    }

    #[test]
    fn rejects_shape_mismatch() {
        assert!(matches!(
            CostMatrix::new(2, 2, vec![0.0; 3]).unwrap_err(),
            CoreError::CostShape { .. }
        ));
        assert!(matches!(
            CostMatrix::new(0, 2, vec![]).unwrap_err(),
            CoreError::CostShape { .. }
        ));
    }

    #[test]
    fn transpose_roundtrip() {
        let c = CostMatrix::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = c.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.at(2, 0), 3.0);
        assert_eq!(t.transposed(), c);
    }

    #[test]
    fn min_off_diagonal_skips_diagonal() {
        let c = CostMatrix::new(2, 2, vec![0.0, 3.0, 5.0, 0.0]).unwrap();
        assert_eq!(c.min_off_diagonal(), Some(3.0));
        let tiny = CostMatrix::new(1, 1, vec![0.0]).unwrap();
        assert_eq!(tiny.min_off_diagonal(), None);
    }

    #[test]
    fn linear_chain_is_metric() {
        let c = CostMatrix::from_fn(5, |i, j| (i as f64 - j as f64).abs()).unwrap();
        assert!(c.is_metric(1e-12));
    }

    #[test]
    fn squared_distances_are_not_metric() {
        // Squared Euclidean violates the triangle inequality.
        let c = CostMatrix::from_fn(3, |i, j| {
            let d = i as f64 - j as f64;
            d * d
        })
        .unwrap();
        assert!(!c.is_metric(1e-12));
    }

    #[test]
    fn dominance_is_entrywise() {
        let small = CostMatrix::from_fn(3, |i, j| (i as f64 - j as f64).abs()).unwrap();
        let large = CostMatrix::from_fn(3, |i, j| 2.0 * (i as f64 - j as f64).abs()).unwrap();
        assert!(small.dominated_by(&large));
        assert!(!large.dominated_by(&small));
        assert!(small.dominated_by(&small));
    }

    #[test]
    fn serde_roundtrip() {
        let c = CostMatrix::from_fn(3, |i, j| (i as f64 - j as f64).abs()).unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let back: CostMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
