//! Exact Earth Mover's Distance (Definition 1) on top of the
//! transportation simplex.
//!
//! Zero-mass bins contribute no flow in any feasible solution, so they are
//! stripped before the LP is built; multimedia histograms are typically
//! sparse and this shrinks the tableau substantially.

use crate::cost::CostMatrix;
use crate::error::CoreError;
use crate::histogram::Histogram;
use emd_transport::{solve_budgeted, Budget, SimplexOptions, TransportError, TransportProblem};

/// Result of an EMD computation that also reports the optimal flows.
#[derive(Debug, Clone)]
pub struct EmdReport {
    /// The minimal total cost — the EMD value.
    pub distance: f64,
    /// Optimal flows `(i, j, f_ij)` in *original* bin indices, strictly
    /// positive entries only.
    pub flows: Vec<(usize, usize, f64)>,
}

/// Compute the EMD between two histograms of equal dimensionality under a
/// square cost matrix.
///
/// # Errors
///
/// Returns [`CoreError::DimensionMismatch`] when the operands or the cost
/// matrix disagree on dimensionality, and [`CoreError::Solver`] if the
/// underlying transportation simplex rejects the instance.
pub fn emd(x: &Histogram, y: &Histogram, cost: &CostMatrix) -> Result<f64, CoreError> {
    Ok(solve_stripped(x, y, cost)?.distance)
}

/// Compute the EMD and return the optimal flow matrix along with it.
/// The flows feed the paper's flow-based reduction (Section 3.4), which
/// aggregates them over a database sample.
///
/// # Errors
///
/// Same failure modes as [`emd`]: [`CoreError::DimensionMismatch`] on shape
/// disagreement and [`CoreError::Solver`] on LP-level failures.
pub fn emd_with_flows(
    x: &Histogram,
    y: &Histogram,
    cost: &CostMatrix,
) -> Result<EmdReport, CoreError> {
    solve_stripped(x, y, cost)
}

/// Compute the EMD between histograms of *different* dimensionalities under
/// a rectangular cost matrix — the "minor extension of Definition 1"
/// (Section 3.1) needed when query and database vectors are reduced by
/// different reduction matrices (`R1 != R2`).
///
/// # Errors
///
/// Returns [`CoreError::DimensionMismatch`] when `x` does not match
/// `cost.rows()` or `y` does not match `cost.cols()`, and
/// [`CoreError::Solver`] if the transportation solver fails.
pub fn emd_rectangular(x: &Histogram, y: &Histogram, cost: &CostMatrix) -> Result<f64, CoreError> {
    Ok(solve_stripped(x, y, cost)?.distance)
}

/// [`emd`] under an execution [`Budget`]: the underlying simplex probes the
/// budget and bails out instead of spinning. With `Budget::unlimited()` the
/// result is bit-identical to [`emd`].
///
/// # Errors
///
/// Same failure modes as [`emd`], plus [`CoreError::BudgetExhausted`] when
/// the budget's deadline, pivot cap, or cancellation fires mid-solve.
pub fn emd_budgeted(
    x: &Histogram,
    y: &Histogram,
    cost: &CostMatrix,
    budget: &Budget,
) -> Result<f64, CoreError> {
    Ok(solve_stripped_budgeted(x, y, cost, budget)?.distance)
}

/// [`emd_rectangular`] under an execution [`Budget`]; see [`emd_budgeted`].
///
/// # Errors
///
/// Same failure modes as [`emd_rectangular`], plus
/// [`CoreError::BudgetExhausted`] when the budget fires mid-solve.
pub fn emd_rectangular_budgeted(
    x: &Histogram,
    y: &Histogram,
    cost: &CostMatrix,
    budget: &Budget,
) -> Result<f64, CoreError> {
    Ok(solve_stripped_budgeted(x, y, cost, budget)?.distance)
}

fn solve_stripped(x: &Histogram, y: &Histogram, cost: &CostMatrix) -> Result<EmdReport, CoreError> {
    solve_stripped_budgeted(x, y, cost, &Budget::unlimited())
}

fn solve_stripped_budgeted(
    x: &Histogram,
    y: &Histogram,
    cost: &CostMatrix,
    budget: &Budget,
) -> Result<EmdReport, CoreError> {
    emd_obs::counter_add("core.emd.solves", 1);
    if cost.rows() != x.dim() || cost.cols() != y.dim() {
        return Err(CoreError::DimensionMismatch {
            expected_rows: cost.rows(),
            expected_cols: cost.cols(),
            got_rows: x.dim(),
            got_cols: y.dim(),
        });
    }

    // Identical operands under a square matrix with zero diagonal have
    // distance 0 with the identity flow; skip the LP.
    if cost.is_square() && x == y {
        // float: exact — identity shortcut requires an exactly zero diagonal, else fall through to the LP
        let diagonal_free = x.nonzero().all(|(i, _)| cost.at(i, i) == 0.0);
        if diagonal_free {
            let flows = x.nonzero().map(|(i, mass)| (i, i, mass)).collect();
            let report = EmdReport {
                distance: 0.0,
                flows,
            };
            crate::certify::debug_certify_report(x, y, cost, &report);
            return Ok(report);
        }
    }

    let (x_index, supplies): (Vec<usize>, Vec<f64>) = x.nonzero().unzip();
    let (y_index, demands): (Vec<usize>, Vec<f64>) = y.nonzero().unzip();
    debug_assert!(
        !x_index.is_empty() && !y_index.is_empty(),
        "normalized histograms have non-empty support"
    );

    let mut costs = Vec::with_capacity(x_index.len() * y_index.len());
    for &i in &x_index {
        let row = cost.row(i);
        costs.extend(y_index.iter().map(|&j| row[j]));
    }

    let problem = TransportProblem::new(supplies, demands, costs)
        .map_err(|e| CoreError::Solver(e.to_string()))?;
    let solution =
        solve_budgeted(&problem, SimplexOptions::default(), budget).map_err(|e| match e {
            // Budget exhaustion stays typed so upper layers can degrade.
            TransportError::BudgetExhausted { reason } => CoreError::BudgetExhausted(reason),
            other => CoreError::Solver(other.to_string()),
        })?;

    let flows = solution
        .flows
        .into_iter()
        .map(|(i, j, f)| (x_index[i], y_index[j], f))
        .collect();
    let report = EmdReport {
        distance: solution.objective,
        flows,
    };
    crate::certify::debug_certify_report(x, y, cost, &report);
    Ok(report)
}

/// Closed-form EMD for the 1-D chain ground distance `c_ij = |i - j|`:
/// the L1 distance between the cumulative distributions. Used as an
/// independent oracle in tests.
pub fn emd_1d_manhattan(x: &Histogram, y: &Histogram) -> f64 {
    debug_assert_eq!(x.dim(), y.dim());
    let mut cumulative = 0.0;
    let mut total = 0.0;
    for (a, b) in x.bins().iter().zip(y.bins().iter()) {
        cumulative += a - b;
        total += cumulative.abs();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    #[test]
    fn figure_one_values() {
        let x = h(&[0.5, 0.0, 0.2, 0.0, 0.3, 0.0]);
        let y = h(&[0.0, 0.5, 0.0, 0.2, 0.0, 0.3]);
        let z = h(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let c = ground::linear(6).unwrap();
        assert!((emd(&x, &y, &c).unwrap() - 1.0).abs() < 1e-12);
        assert!((emd(&x, &z, &c).unwrap() - 1.6).abs() < 1e-12);
        // The EMD ranks y closer to x than z — the opposite of L1
        // (the perceptual motivation of the paper's Figure 1).
        assert!(x.l1_distance(&y) > x.l1_distance(&z));
    }

    #[test]
    fn figure_one_flows() {
        let x = h(&[0.5, 0.0, 0.2, 0.0, 0.3, 0.0]);
        let y = h(&[0.0, 0.5, 0.0, 0.2, 0.0, 0.3]);
        let c = ground::linear(6).unwrap();
        let report = emd_with_flows(&x, &y, &c).unwrap();
        let mut flows = report.flows;
        flows.sort_by_key(|&(i, j, _)| (i, j));
        // Optimal flow per the paper: f12=0.5, f34=0.2, f56=0.3
        // (one-based in the paper; zero-based here).
        assert_eq!(flows.len(), 3);
        assert_eq!(flows[0].0, 0);
        assert_eq!(flows[0].1, 1);
        assert!((flows[0].2 - 0.5).abs() < 1e-12);
        assert_eq!(flows[1], (2, 3, flows[1].2));
        assert!((flows[1].2 - 0.2).abs() < 1e-12);
        assert_eq!(flows[2], (4, 5, flows[2].2));
        assert!((flows[2].2 - 0.3).abs() < 1e-12);
    }

    #[test]
    fn identical_histograms_are_distance_zero() {
        let x = h(&[0.25, 0.25, 0.5]);
        let c = ground::linear(3).unwrap();
        let report = emd_with_flows(&x, &x, &c).unwrap();
        assert_eq!(report.distance, 0.0);
        assert_eq!(report.flows, vec![(0, 0, 0.25), (1, 1, 0.25), (2, 2, 0.5)]);
    }

    #[test]
    fn flows_remap_to_original_indices() {
        // Mass only in high-index bins; stripping must remap correctly.
        let x = h(&[0.0, 0.0, 0.0, 1.0]);
        let y = h(&[0.0, 1.0, 0.0, 0.0]);
        let c = ground::linear(4).unwrap();
        let report = emd_with_flows(&x, &y, &c).unwrap();
        assert!((report.distance - 2.0).abs() < 1e-12);
        assert_eq!(report.flows, vec![(3, 1, 1.0)]);
    }

    #[test]
    fn rectangular_operands() {
        // 3-bin x against 2-bin y with explicit rectangular costs.
        let x = h(&[0.5, 0.25, 0.25]);
        let y = h(&[0.5, 0.5]);
        let c = CostMatrix::new(3, 2, vec![0.0, 2.0, 1.0, 1.0, 2.0, 0.0]).unwrap();
        let d = emd_rectangular(&x, &y, &c).unwrap();
        // x0 -> y0 (0.5 * 0), x1 -> y1 (0.25 * 1), x2 -> y1 (0.25 * 0)
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let x = h(&[0.5, 0.5]);
        let y = h(&[0.5, 0.25, 0.25]);
        let c = ground::linear(2).unwrap();
        assert!(matches!(
            emd(&x, &y, &c).unwrap_err(),
            CoreError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn closed_form_oracle_agrees() {
        let x = h(&[0.1, 0.4, 0.0, 0.3, 0.2]);
        let y = h(&[0.3, 0.0, 0.3, 0.0, 0.4]);
        let c = ground::linear(5).unwrap();
        let lp = emd(&x, &y, &c).unwrap();
        let oracle = emd_1d_manhattan(&x, &y);
        assert!((lp - oracle).abs() < 1e-12);
    }

    #[test]
    fn symmetric_under_symmetric_costs() {
        let x = h(&[0.7, 0.1, 0.2]);
        let y = h(&[0.2, 0.3, 0.5]);
        let c = ground::linear(3).unwrap();
        let d_xy = emd(&x, &y, &c).unwrap();
        let d_yx = emd(&y, &x, &c).unwrap();
        assert!((d_xy - d_yx).abs() < 1e-12);
    }

    #[test]
    fn budgeted_emd_matches_unbudgeted_when_unlimited() {
        let x = h(&[0.1, 0.4, 0.0, 0.3, 0.2]);
        let y = h(&[0.3, 0.0, 0.3, 0.0, 0.4]);
        let c = ground::linear(5).unwrap();
        let plain = emd(&x, &y, &c).unwrap();
        let budgeted = emd_budgeted(&x, &y, &c, &Budget::unlimited()).unwrap();
        assert_eq!(plain.to_bits(), budgeted.to_bits());
    }

    #[test]
    fn exhausted_budget_surfaces_typed() {
        let x = h(&[0.1, 0.4, 0.0, 0.3, 0.2]);
        let y = h(&[0.3, 0.0, 0.3, 0.0, 0.4]);
        let c = ground::linear(5).unwrap();
        let token = emd_transport::CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel(token);
        let err = emd_budgeted(&x, &y, &c, &budget).unwrap_err();
        assert_eq!(
            err,
            CoreError::BudgetExhausted(emd_transport::BudgetReason::Cancelled)
        );
    }

    #[test]
    fn identity_shortcut_skips_the_budget() {
        // Identical operands short-circuit before the LP, so even an
        // exhausted budget returns the exact zero distance.
        let x = h(&[0.25, 0.25, 0.5]);
        let c = ground::linear(3).unwrap();
        let token = emd_transport::CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel(token);
        assert_eq!(emd_budgeted(&x, &x, &c, &budget).unwrap(), 0.0);
    }

    #[test]
    fn identity_shortcut_requires_zero_diagonal() {
        // With a non-zero diagonal, EMD(x, x) is NOT zero; the shortcut
        // must not fire.
        let x = h(&[0.5, 0.5]);
        let c = CostMatrix::new(2, 2, vec![1.0, 5.0, 5.0, 1.0]).unwrap();
        let d = emd(&x, &x, &c).unwrap();
        assert!((d - 1.0).abs() < 1e-12);
    }
}
