//! Error types for `emd-core`.

use std::fmt;

/// Errors reported by `emd-core`.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A histogram entry is negative or non-finite.
    InvalidMass {
        /// Index of the offending bin.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The histogram is empty.
    EmptyHistogram,
    /// Total mass differs from 1 by more than [`crate::MASS_EPS`]
    /// and normalization was not requested.
    NotNormalized {
        /// The actual total mass.
        total: f64,
    },
    /// Total mass is zero (or negative), so the histogram cannot be
    /// normalized.
    ZeroMass,
    /// Operand dimensionalities do not match the cost matrix shape.
    DimensionMismatch {
        /// Rows of the cost matrix (first-operand dimensionality).
        expected_rows: usize,
        /// Columns of the cost matrix (second-operand dimensionality).
        expected_cols: usize,
        /// Dimensionality of the first operand.
        got_rows: usize,
        /// Dimensionality of the second operand.
        got_cols: usize,
    },
    /// A cost entry is negative or non-finite.
    InvalidCost {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// Cost matrix buffer length does not factor into the declared shape.
    CostShape {
        /// Declared rows.
        rows: usize,
        /// Declared columns.
        cols: usize,
        /// Actual buffer length.
        len: usize,
    },
    /// The underlying LP solver failed (numerical pathology).
    Solver(String),
    /// The execution budget (deadline, pivot cap, or cancellation) was
    /// exhausted mid-computation. Kept typed (not folded into
    /// [`Solver`](Self::Solver)) so query layers can degrade gracefully.
    BudgetExhausted(emd_transport::BudgetReason),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidMass { index, value } => {
                write!(f, "invalid histogram mass at {index}: {value}")
            }
            CoreError::EmptyHistogram => write!(f, "histogram has no bins"),
            CoreError::NotNormalized { total } => {
                write!(f, "histogram total mass {total} != 1")
            }
            CoreError::ZeroMass => write!(f, "histogram has zero total mass"),
            CoreError::DimensionMismatch {
                expected_rows,
                expected_cols,
                got_rows,
                got_cols,
            } => write!(
                f,
                "dimension mismatch: cost is {expected_rows}x{expected_cols}, \
                 operands are {got_rows} and {got_cols}"
            ),
            CoreError::InvalidCost { row, col, value } => {
                write!(f, "invalid cost at ({row}, {col}): {value}")
            }
            CoreError::CostShape { rows, cols, len } => {
                write!(f, "cost buffer of {len} entries cannot be {rows}x{cols}")
            }
            CoreError::Solver(msg) => write!(f, "LP solver failure: {msg}"),
            CoreError::BudgetExhausted(reason) => {
                write!(f, "execution budget exhausted: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {}
