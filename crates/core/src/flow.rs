//! Dense flow-matrix accumulation.
//!
//! The paper's flow-based reduction (Section 3.4) averages the optimal flow
//! matrices of all histogram pairs in a database sample:
//! `F^S = [f^S_ij]`, `f^S_ij = 1/|S|^2 * sum_{x,y in S} f_ij(x, y)`.
//! [`FlowAccumulator`] collects those flows incrementally.

/// Accumulates sparse flow lists into a dense average flow matrix.
#[derive(Debug, Clone)]
pub struct FlowAccumulator {
    dim: usize,
    sums: Vec<f64>,
    count: usize,
}

impl FlowAccumulator {
    /// Create an accumulator for `dim x dim` flow matrices.
    pub fn new(dim: usize) -> Self {
        FlowAccumulator {
            dim,
            sums: vec![0.0; dim * dim],
            count: 0,
        }
    }

    /// Dimensionality of the accumulated matrices.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of flow matrices added so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Add one optimal flow list (as returned by
    /// [`crate::emd_with_flows`]).
    pub fn add(&mut self, flows: &[(usize, usize, f64)]) {
        for &(i, j, f) in flows {
            debug_assert!(i < self.dim && j < self.dim);
            self.sums[i * self.dim + j] += f;
        }
        self.count += 1;
    }

    /// The average flow matrix `F^S`, dense row-major. Returns zeros if no
    /// flows were added.
    pub fn average(&self) -> Vec<f64> {
        if self.count == 0 {
            return self.sums.clone();
        }
        let scale = 1.0 / self.count as f64;
        self.sums.iter().map(|s| s * scale).collect()
    }

    /// The raw (unnormalized) flow sums. The flow-based reduction's
    /// tightness objective is invariant under positive scaling of `F`, so
    /// the sums work as well as the average and avoid a copy.
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// Fold another accumulator of the same dimensionality into this one.
    /// Used to combine per-thread partial accumulations.
    pub fn merge(&mut self, other: &FlowAccumulator) {
        assert_eq!(
            self.dim, other.dim,
            "cannot merge accumulators of different dimensionality"
        );
        for (sum, &partial) in self.sums.iter_mut().zip(other.sums.iter()) {
            *sum += partial;
        }
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_added_flows() {
        let mut acc = FlowAccumulator::new(3);
        acc.add(&[(0, 1, 0.5), (2, 2, 0.5)]);
        acc.add(&[(0, 1, 0.1)]);
        assert_eq!(acc.count(), 2);
        let avg = acc.average();
        assert!((avg[1] - 0.3).abs() < 1e-12); // (0.5 + 0.1) / 2
        assert!((avg[8] - 0.25).abs() < 1e-12); // 0.5 / 2
        assert_eq!(avg[0], 0.0);
    }

    #[test]
    fn empty_accumulator_yields_zeros() {
        let acc = FlowAccumulator::new(2);
        assert_eq!(acc.average(), vec![0.0; 4]);
        assert_eq!(acc.count(), 0);
    }

    #[test]
    fn merge_combines_counts_and_sums() {
        let mut a = FlowAccumulator::new(2);
        a.add(&[(0, 1, 0.5)]);
        let mut b = FlowAccumulator::new(2);
        b.add(&[(0, 1, 0.1), (1, 0, 0.9)]);
        b.add(&[(1, 1, 1.0)]);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.sums()[1] - 0.6).abs() < 1e-12);
        assert!((a.sums()[2] - 0.9).abs() < 1e-12);
        assert!((a.sums()[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different dimensionality")]
    fn merge_rejects_dim_mismatch() {
        let mut a = FlowAccumulator::new(2);
        a.merge(&FlowAccumulator::new(3));
    }

    #[test]
    fn sums_scale_like_average() {
        let mut acc = FlowAccumulator::new(2);
        acc.add(&[(0, 0, 1.0)]);
        acc.add(&[(0, 0, 0.5), (1, 0, 0.5)]);
        let sums = acc.sums().to_vec();
        let avg = acc.average();
        for (s, a) in sums.iter().zip(avg.iter()) {
            assert!((s - a * 2.0).abs() < 1e-12);
        }
    }
}
