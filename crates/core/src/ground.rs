//! Ground-distance constructors for common multimedia feature spaces.
//!
//! The EMD's cost matrix encodes the geometry of the feature space. This
//! module builds cost matrices for the geometries used in the paper's
//! application domains: 1-D chains (e.g. brightness histograms), 2-D image
//! tilings (the RETINA-style grid features of \[14\]) and 3-D color cubes
//! (quantized RGB/HSV histograms), plus arbitrary point sets.

use crate::cost::CostMatrix;
use crate::error::CoreError;

/// The metric applied to bin positions in feature space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Manhattan distance (L1).
    Manhattan,
    /// Euclidean distance (L2).
    Euclidean,
    /// Chebyshev distance (L-infinity).
    Chebyshev,
}

serde::impl_serde_unit_enum!(Metric {
    Manhattan,
    Euclidean,
    Chebyshev
});

impl Metric {
    /// Distance between two points of equal dimensionality.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Metric::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Metric::Chebyshev => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        }
    }
}

/// Cost matrix for a 1-D chain of `dim` bins: `c_ij = |i - j|`.
/// This is the ground distance of the paper's Figure 1.
///
/// # Errors
///
/// Returns [`CoreError::InvalidCost`] when `dim` is zero.
pub fn linear(dim: usize) -> Result<CostMatrix, CoreError> {
    CostMatrix::from_fn(dim, |i, j| (i as f64 - j as f64).abs())
}

/// Cost matrix for a `width x height` image tiling, bins in row-major
/// order, with the chosen metric on tile centers. This is the geometry of
/// the grid-based features the paper generalizes in Section 3.1.
///
/// # Errors
///
/// Returns [`CoreError::InvalidCost`] when either side of the grid is zero.
pub fn grid2(width: usize, height: usize, metric: Metric) -> Result<CostMatrix, CoreError> {
    let positions: Vec<[f64; 2]> = (0..width * height)
        .map(|k| [(k % width) as f64, (k / width) as f64])
        .collect();
    CostMatrix::from_fn(width * height, |i, j| {
        metric.distance(&positions[i], &positions[j])
    })
}

/// Cost matrix for a quantized 3-D feature cube (e.g. an `r x g x b` color
/// histogram), bins in `r`-major order, with the chosen metric on cell
/// centers.
///
/// # Errors
///
/// Returns [`CoreError::InvalidCost`] when any cube side is zero.
pub fn grid3(nx: usize, ny: usize, nz: usize, metric: Metric) -> Result<CostMatrix, CoreError> {
    let positions: Vec<[f64; 3]> = (0..nx * ny * nz)
        .map(|k| {
            let x = k / (ny * nz);
            let y = (k / nz) % ny;
            let z = k % nz;
            [x as f64, y as f64, z as f64]
        })
        .collect();
    CostMatrix::from_fn(nx * ny * nz, |i, j| {
        metric.distance(&positions[i], &positions[j])
    })
}

/// Cost matrix from explicit bin positions in an arbitrary feature space.
///
/// # Errors
///
/// Returns [`CoreError::InvalidCost`] when `points` is empty or the points do
/// not all share one dimensionality.
pub fn from_points(points: &[Vec<f64>], metric: Metric) -> Result<CostMatrix, CoreError> {
    if points.is_empty() {
        return Err(CoreError::CostShape {
            rows: 0,
            cols: 0,
            len: 0,
        });
    }
    CostMatrix::from_fn(points.len(), |i, j| metric.distance(&points[i], &points[j]))
}

/// Saturate a ground distance at threshold `tau`:
/// `c'_ij = min(c_ij, tau)`. Rubner's classic robustification; saturation
/// preserves the metric axioms and keeps far-apart bins from dominating the
/// distance.
///
/// # Errors
///
/// Returns [`CoreError::InvalidCost`] when `tau` is negative or non-finite.
pub fn saturated(cost: &CostMatrix, tau: f64) -> Result<CostMatrix, CoreError> {
    CostMatrix::new(
        cost.rows(),
        cost.cols(),
        cost.entries().iter().map(|&c| c.min(tau)).collect(),
    )
}

/// Bin positions for [`grid2`], exposed for filters that need feature-space
/// coordinates (e.g. the centroid lower bound).
pub fn grid2_positions(width: usize, height: usize) -> Vec<Vec<f64>> {
    (0..width * height)
        .map(|k| vec![(k % width) as f64, (k / width) as f64])
        .collect()
}

/// Bin positions for [`grid3`], `r`-major order.
pub fn grid3_positions(nx: usize, ny: usize, nz: usize) -> Vec<Vec<f64>> {
    (0..nx * ny * nz)
        .map(|k| {
            vec![
                (k / (ny * nz)) as f64,
                ((k / nz) % ny) as f64,
                (k % nz) as f64,
            ]
        })
        .collect()
}

/// Bin positions for [`linear`].
pub fn linear_positions(dim: usize) -> Vec<Vec<f64>> {
    (0..dim).map(|i| vec![i as f64]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_matches_figure_one() {
        let c = linear(6).unwrap();
        assert_eq!(c.at(0, 0), 0.0);
        assert_eq!(c.at(2, 0), 2.0);
        assert_eq!(c.at(4, 0), 4.0);
        assert!(c.is_metric(1e-12));
    }

    #[test]
    fn grid2_neighbors_at_distance_one() {
        let c = grid2(4, 3, Metric::Euclidean).unwrap();
        assert_eq!(c.rows(), 12);
        // Horizontally adjacent tiles 0 and 1.
        assert!((c.at(0, 1) - 1.0).abs() < 1e-12);
        // Vertically adjacent tiles 0 and 4.
        assert!((c.at(0, 4) - 1.0).abs() < 1e-12);
        // Diagonal tiles 0 and 5.
        assert!((c.at(0, 5) - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!(c.is_metric(1e-9));
    }

    #[test]
    fn grid2_positions_agree_with_grid2() {
        let positions = grid2_positions(4, 3);
        let c = grid2(4, 3, Metric::Euclidean).unwrap();
        for i in 0..12 {
            for j in 0..12 {
                let expected = Metric::Euclidean.distance(&positions[i], &positions[j]);
                assert!((c.at(i, j) - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn grid3_corner_distances() {
        let c = grid3(2, 2, 2, Metric::Manhattan).unwrap();
        assert_eq!(c.rows(), 8);
        // Opposite corners of the unit cube under L1: 3.
        assert!((c.at(0, 7) - 3.0).abs() < 1e-12);
        assert!(c.is_metric(1e-9));
    }

    #[test]
    fn grid3_positions_agree_with_grid3() {
        let positions = grid3_positions(2, 3, 2);
        let c = grid3(2, 3, 2, Metric::Euclidean).unwrap();
        for i in 0..12 {
            for j in 0..12 {
                let expected = Metric::Euclidean.distance(&positions[i], &positions[j]);
                assert!((c.at(i, j) - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn from_points_arbitrary_space() {
        let points = vec![vec![0.0, 0.0], vec![3.0, 4.0]];
        let c = from_points(&points, Metric::Euclidean).unwrap();
        assert!((c.at(0, 1) - 5.0).abs() < 1e-12);
        assert!(from_points(&[], Metric::Euclidean).is_err());
    }

    #[test]
    fn saturation_caps_and_stays_metric() {
        let c = linear(8).unwrap();
        let s = saturated(&c, 2.5).unwrap();
        assert_eq!(s.at(0, 7), 2.5);
        assert_eq!(s.at(0, 1), 1.0);
        assert!(s.is_metric(1e-12));
        assert!(s.dominated_by(&c));
    }

    #[test]
    fn chebyshev_metric() {
        assert_eq!(Metric::Chebyshev.distance(&[0.0, 0.0], &[2.0, 5.0]), 5.0);
        assert_eq!(Metric::Manhattan.distance(&[0.0, 0.0], &[2.0, 5.0]), 7.0);
    }
}
