//! Normalized non-negative feature vectors — the histogram operands of
//! Definition 1.

use crate::error::CoreError;
use crate::MASS_EPS;

/// A non-negative feature vector of normalized total mass — the operand
/// type of Definition 1 in the paper.
///
/// Invariants (enforced at construction):
/// * at least one bin,
/// * every entry finite and `>= 0`,
/// * entries sum to 1 within [`MASS_EPS`].
///
/// Histograms are immutable after construction; this keeps every
/// `Histogram` in the database valid for the lifetime of an index built
/// over it.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bins: Box<[f64]>,
}

// Serialize as the raw mass vector; deserialization re-validates through
// `Histogram::new` (the `try_from`/`into` serde pattern).
serde::impl_serde_via!(Histogram => Vec<f64>);

impl Histogram {
    /// Wrap an already-normalized mass vector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyHistogram`] for an empty vector,
    /// [`CoreError::InvalidMass`] for a negative or non-finite bin, and
    /// [`CoreError::NotNormalized`] when the total mass is off 1 by more than
    /// [`crate::MASS_EPS`].
    pub fn new(bins: Vec<f64>) -> Result<Self, CoreError> {
        Self::validate_entries(&bins)?;
        let total: f64 = bins.iter().sum();
        if (total - 1.0).abs() > MASS_EPS {
            return Err(CoreError::NotNormalized { total });
        }
        Ok(Histogram {
            bins: bins.into_boxed_slice(),
        })
    }

    /// Normalize an arbitrary non-negative vector to total mass 1 and wrap
    /// it. Fails on zero total mass.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyHistogram`] for an empty vector,
    /// [`CoreError::InvalidMass`] for a negative or non-finite bin, and
    /// [`CoreError::ZeroMass`] when the total mass is zero (nothing to
    /// normalize).
    pub fn normalized(bins: Vec<f64>) -> Result<Self, CoreError> {
        Self::validate_entries(&bins)?;
        let total: f64 = bins.iter().sum();
        if total <= 0.0 {
            return Err(CoreError::ZeroMass);
        }
        let bins: Vec<f64> = bins.iter().map(|x| x / total).collect();
        Ok(Histogram {
            bins: bins.into_boxed_slice(),
        })
    }

    /// A histogram with all mass in a single bin — the witness construction
    /// used in the paper's Theorem 2 and Theorem 3 proofs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyHistogram`] when `dim` is zero and
    /// [`CoreError::DimensionMismatch`] when `bin` is out of range.
    pub fn unit(dim: usize, bin: usize) -> Result<Self, CoreError> {
        if dim == 0 {
            return Err(CoreError::EmptyHistogram);
        }
        if bin >= dim {
            return Err(CoreError::InvalidMass {
                index: bin,
                value: f64::NAN,
            });
        }
        let mut bins = vec![0.0; dim];
        bins[bin] = 1.0;
        Ok(Histogram {
            bins: bins.into_boxed_slice(),
        })
    }

    /// The uniform histogram `1/d` in every bin.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyHistogram`] when `dim` is zero.
    pub fn uniform(dim: usize) -> Result<Self, CoreError> {
        if dim == 0 {
            return Err(CoreError::EmptyHistogram);
        }
        Ok(Histogram {
            bins: vec![1.0 / dim as f64; dim].into_boxed_slice(),
        })
    }

    fn validate_entries(bins: &[f64]) -> Result<(), CoreError> {
        if bins.is_empty() {
            return Err(CoreError::EmptyHistogram);
        }
        for (index, &value) in bins.iter().enumerate() {
            if value < 0.0 || !value.is_finite() {
                return Err(CoreError::InvalidMass { index, value });
            }
        }
        Ok(())
    }

    /// Number of bins `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.bins.len()
    }

    /// Bin masses.
    #[inline]
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Mass in bin `i`.
    #[inline]
    pub fn mass(&self, i: usize) -> f64 {
        self.bins[i]
    }

    /// Total mass (1 up to rounding).
    pub fn total_mass(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// Iterate over `(bin, mass)` pairs with strictly positive mass.
    /// Multimedia histograms are typically sparse; the EMD solver strips
    /// zero bins through this iterator.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.bins
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, mass)| mass > 0.0)
    }

    /// Number of bins with strictly positive mass.
    pub fn support_size(&self) -> usize {
        self.bins.iter().filter(|&&mass| mass > 0.0).count()
    }

    /// Manhattan (L1) distance between two histograms of equal
    /// dimensionality. Used by the scaled-L1 lower bound and in tests.
    pub fn l1_distance(&self, other: &Histogram) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        self.bins
            .iter()
            .zip(other.bins.iter())
            .map(|(a, b)| (a - b).abs())
            .sum()
    }
}

impl TryFrom<Vec<f64>> for Histogram {
    type Error = CoreError;

    fn try_from(bins: Vec<f64>) -> Result<Self, Self::Error> {
        Histogram::new(bins)
    }
}

impl From<Histogram> for Vec<f64> {
    fn from(histogram: Histogram) -> Self {
        histogram.bins.into_vec()
    }
}

impl AsRef<[f64]> for Histogram {
    fn as_ref(&self) -> &[f64] {
        &self.bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_normalized() {
        let h = Histogram::new(vec![0.5, 0.0, 0.2, 0.0, 0.3, 0.0]).unwrap();
        assert_eq!(h.dim(), 6);
        assert!((h.total_mass() - 1.0).abs() < 1e-12);
        assert_eq!(h.support_size(), 3);
    }

    #[test]
    fn rejects_unnormalized() {
        assert!(matches!(
            Histogram::new(vec![0.5, 0.6]).unwrap_err(),
            CoreError::NotNormalized { .. }
        ));
    }

    #[test]
    fn rejects_negative_and_nan() {
        assert!(matches!(
            Histogram::new(vec![1.5, -0.5]).unwrap_err(),
            CoreError::InvalidMass { index: 1, .. }
        ));
        assert!(matches!(
            Histogram::new(vec![f64::NAN, 1.0]).unwrap_err(),
            CoreError::InvalidMass { index: 0, .. }
        ));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            Histogram::new(vec![]).unwrap_err(),
            CoreError::EmptyHistogram
        );
    }

    #[test]
    fn normalizes() {
        let h = Histogram::normalized(vec![2.0, 2.0, 4.0]).unwrap();
        assert_eq!(h.bins(), &[0.25, 0.25, 0.5]);
    }

    #[test]
    fn normalization_rejects_zero_mass() {
        assert_eq!(
            Histogram::normalized(vec![0.0, 0.0]).unwrap_err(),
            CoreError::ZeroMass
        );
    }

    #[test]
    fn unit_and_uniform() {
        let u = Histogram::unit(4, 2).unwrap();
        assert_eq!(u.bins(), &[0.0, 0.0, 1.0, 0.0]);
        assert!(Histogram::unit(4, 4).is_err());
        let f = Histogram::uniform(4).unwrap();
        assert!(f.bins().iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn nonzero_iterates_support() {
        let h = Histogram::new(vec![0.5, 0.0, 0.5]).unwrap();
        let support: Vec<_> = h.nonzero().collect();
        assert_eq!(support, vec![(0, 0.5), (2, 0.5)]);
    }

    #[test]
    fn l1_distance_matches_manual() {
        let x = Histogram::new(vec![0.5, 0.0, 0.2, 0.0, 0.3, 0.0]).unwrap();
        let y = Histogram::new(vec![0.0, 0.5, 0.0, 0.2, 0.0, 0.3]).unwrap();
        assert!((x.l1_distance(&y) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let h = Histogram::new(vec![0.25, 0.75]).unwrap();
        let json = serde_json::to_string(&h).unwrap();
        let back: Histogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn serde_rejects_invalid() {
        let result: Result<Histogram, _> = serde_json::from_str("[0.5, 0.6]");
        assert!(result.is_err());
    }
}
