#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # emd-core
//!
//! The Earth Mover's Distance (EMD) and its classic lower-bounding filters,
//! as defined in Section 2 of Wichterich et al., SIGMOD 2008 (building on
//! Rubner et al. and Assent et al.).
//!
//! * [`Histogram`] — non-negative feature vectors of normalized total mass
//!   (Definition 1 operands).
//! * [`CostMatrix`] / [`ground`] — the ground-distance matrix `C = [c_ij]`
//!   plus constructors for common feature-space geometries (1-D chains, 2-D
//!   image tilings, 3-D color cubes).
//! * [`emd`] / [`emd_with_flows`] — the exact EMD via the transportation
//!   simplex of `emd-transport`, with zero-mass bins stripped before
//!   solving.
//! * [`EmdContext`] / [`emd_in_context`] — the same exact EMD through a
//!   caller-owned context that reuses every buffer and warm-starts the
//!   simplex from the previous evaluation's basis (the refinement hot
//!   path of the query layer).
//! * [`lower_bounds`] — LB_IM (independent minimization), the Rubner
//!   centroid bound, and a scaled-L1 bound; all are complete filters for
//!   multistep query processing.
//!
//! ## Observability
//!
//! Under an active `emd-obs` recording scope, every exact EMD solve bumps
//! the `core.emd.solves` counter (this is the refinement cost the paper's
//! reductions exist to avoid) and each lower-bound evaluation bumps its
//! own counter (`core.lb_im.evaluations`, `core.lb_centroid.evaluations`,
//! `core.lb_scaled_l1.evaluations`, `core.lb_anchor.evaluations`),
//! giving the per-filter breakdown behind `flexemd query --metrics json`.

pub mod certify;
mod context;
mod cost;
mod emd;
mod error;
pub mod flow;
pub mod ground;
mod histogram;
pub mod lower_bounds;
pub mod upper_bound;

pub use context::{emd_in_context, EmdContext};
pub use cost::CostMatrix;
pub use emd::{
    emd, emd_1d_manhattan, emd_budgeted, emd_rectangular, emd_rectangular_budgeted, emd_with_flows,
    EmdReport,
};
pub use error::CoreError;
pub use histogram::Histogram;
pub use upper_bound::{emd_upper_greedy, emd_upper_vogel};

// Execution-budget types, re-exported so downstream crates (reduction,
// query) can thread budgets without a direct `emd-transport` dependency.
pub use emd_transport::{Budget, BudgetReason, CancelToken};

/// Tolerance for mass normalization checks: histograms must total 1 within
/// this bound. Matches the balance tolerance of the LP layer.
pub const MASS_EPS: f64 = 1e-7;
