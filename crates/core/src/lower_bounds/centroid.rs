//! Rubner's centroid lower bound: distance between weighted centroids
//! under a norm-induced ground distance.

use crate::error::CoreError;
use crate::ground::Metric;
use crate::histogram::Histogram;

/// Rubner's centroid lower bound (reference \[17\] of the paper).
///
/// When the ground distance is induced by a norm on bin positions
/// (`c_ij = ||p_i - p_j||`) and both histograms have equal total mass, the
/// EMD is bounded from below by the norm distance between the weighted
/// centroids:
///
/// ```text
/// EMD(x, y) >= || sum_i x_i p_i  -  sum_j y_j p_j ||
/// ```
///
/// This follows from the triangle inequality applied flow-wise. The bound
/// costs `O(d * dim)` per pair — far below the LP — but is only valid for
/// norm-induced ground distances; the caller is responsible for pairing it
/// with a matching cost matrix.
#[derive(Debug, Clone)]
pub struct CentroidBound {
    positions: Vec<Vec<f64>>,
    metric: Metric,
    space_dim: usize,
}

impl CentroidBound {
    /// Build the bound from bin positions in feature space. All positions
    /// must share one dimensionality.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidCost`] when `positions` is empty or the
    /// positions do not all share one dimensionality.
    pub fn new(positions: Vec<Vec<f64>>, metric: Metric) -> Result<Self, CoreError> {
        let Some(first) = positions.first() else {
            return Err(CoreError::EmptyHistogram);
        };
        let space_dim = first.len();
        if positions.iter().any(|p| p.len() != space_dim) {
            return Err(CoreError::CostShape {
                rows: positions.len(),
                cols: space_dim,
                len: positions.iter().map(Vec::len).sum(),
            });
        }
        Ok(CentroidBound {
            positions,
            metric,
            space_dim,
        })
    }

    /// Number of bins the bound expects.
    pub fn dim(&self) -> usize {
        self.positions.len()
    }

    /// The mass-weighted centroid of a histogram in feature space.
    pub fn centroid(&self, h: &Histogram) -> Vec<f64> {
        debug_assert_eq!(h.dim(), self.positions.len());
        let mut centroid = vec![0.0; self.space_dim];
        for (i, mass) in h.nonzero() {
            for (axis, coordinate) in self.positions[i].iter().enumerate() {
                centroid[axis] += mass * coordinate;
            }
        }
        centroid
    }

    /// Evaluate the bound.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] when either operand's
    /// dimensionality differs from the number of bin positions.
    pub fn bound(&self, x: &Histogram, y: &Histogram) -> Result<f64, CoreError> {
        emd_obs::counter_add("core.lb_centroid.evaluations", 1);
        if x.dim() != self.positions.len() || y.dim() != self.positions.len() {
            return Err(CoreError::DimensionMismatch {
                expected_rows: self.positions.len(),
                expected_cols: self.positions.len(),
                got_rows: x.dim(),
                got_cols: y.dim(),
            });
        }
        let cx = self.centroid(x);
        let cy = self.centroid(y);
        Ok(self.metric.distance(&cx, &cy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emd::emd;
    use crate::ground;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    #[test]
    fn lower_bounds_emd_on_linear_chain() {
        let x = h(&[0.5, 0.0, 0.2, 0.0, 0.3, 0.0]);
        let y = h(&[0.0, 0.5, 0.0, 0.2, 0.0, 0.3]);
        let c = ground::linear(6).unwrap();
        let bound = CentroidBound::new(ground::linear_positions(6), Metric::Manhattan).unwrap();
        let lb = bound.bound(&x, &y).unwrap();
        let exact = emd(&x, &y, &c).unwrap();
        assert!(lb <= exact + 1e-12);
        // On a pure shift, the centroid bound is tight: every unit moves
        // one step in the same direction.
        assert!((lb - exact).abs() < 1e-12);
    }

    #[test]
    fn tight_on_unit_histograms() {
        let bound = CentroidBound::new(ground::grid2_positions(3, 3), Metric::Euclidean).unwrap();
        let x = Histogram::unit(9, 0).unwrap();
        let y = Histogram::unit(9, 8).unwrap();
        // Corner (0,0) to corner (2,2): 2*sqrt(2).
        let lb = bound.bound(&x, &y).unwrap();
        assert!((lb - 8.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn zero_for_identical() {
        let bound = CentroidBound::new(ground::linear_positions(4), Metric::Euclidean).unwrap();
        let x = h(&[0.25, 0.25, 0.25, 0.25]);
        assert_eq!(bound.bound(&x, &x).unwrap(), 0.0);
    }

    #[test]
    fn can_be_zero_for_distinct_histograms() {
        // Symmetric redistributions share a centroid: the bound is 0 even
        // though the EMD is positive — it is a bound, not a distance.
        let bound = CentroidBound::new(ground::linear_positions(3), Metric::Euclidean).unwrap();
        let x = h(&[0.5, 0.0, 0.5]);
        let y = h(&[0.0, 1.0, 0.0]);
        assert_eq!(bound.bound(&x, &y).unwrap(), 0.0);
    }

    #[test]
    fn rejects_mixed_position_dims() {
        assert!(CentroidBound::new(vec![vec![0.0], vec![0.0, 1.0]], Metric::Euclidean).is_err());
        assert!(CentroidBound::new(vec![], Metric::Euclidean).is_err());
    }

    #[test]
    fn dimension_mismatch_reported() {
        let bound = CentroidBound::new(ground::linear_positions(3), Metric::Euclidean).unwrap();
        let x = h(&[0.5, 0.5]);
        let y = h(&[0.5, 0.25, 0.25]);
        assert!(matches!(
            bound.bound(&x, &y).unwrap_err(),
            CoreError::DimensionMismatch { .. }
        ));
    }
}
