//! The anchor lower bound from weak LP duality: any dual-feasible
//! potentials give `u . x + v . y <= EMD(x, y)`.

use crate::cost::CostMatrix;
use crate::error::CoreError;
use crate::histogram::Histogram;

/// Anchor (dual-feasibility) lower bound for the EMD.
///
/// By weak LP duality, any potentials `(u, v)` with `u_i + v_j <= c_ij`
/// satisfy `u . x + v . y <= EMD_C(x, y)`. For a *metric* ground distance
/// the distance-to-anchor columns of the cost matrix are such potentials:
/// for every anchor bin `a`, the triangle inequality gives
/// `|c_ia - c_ja| <= c_ij`, so both `(c_.a, -c_.a)` and its negation are
/// dual feasible and
///
/// ```text
/// EMD_C(x, y) >= | sum_i x_i c_ia  -  sum_j y_j c_ja |
/// ```
///
/// for every anchor `a`; the bound reported is the maximum over the
/// configured anchors. After precomputing one projection per anchor per
/// histogram, each evaluation is `O(#anchors)` — by far the cheapest
/// bound in this crate, suited as the first stage of a standalone filter
/// ranking.
///
/// The constructor verifies dual feasibility of every anchor directly
/// (`O(d^2)` per anchor), so non-metric cost matrices are rejected rather
/// than silently producing an invalid bound.
#[derive(Debug, Clone)]
pub struct AnchorBound {
    /// `projections[a]` = the anchor-`a` cost column (length `d`).
    projections: Vec<Vec<f64>>,
    dim: usize,
}

impl AnchorBound {
    /// Build the bound from explicit anchor bins of a square cost matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidCost`] when `cost` is not square, `anchors` is
    /// empty, an anchor index is out of range, or the anchor-induced dual vector
    /// violates feasibility.
    pub fn new(cost: &CostMatrix, anchors: &[usize]) -> Result<Self, CoreError> {
        if !cost.is_square() || anchors.is_empty() {
            return Err(CoreError::CostShape {
                rows: cost.rows(),
                cols: cost.cols(),
                len: anchors.len(),
            });
        }
        let d = cost.rows();
        let mut projections = Vec::with_capacity(anchors.len());
        for &anchor in anchors {
            if anchor >= d {
                return Err(CoreError::InvalidCost {
                    row: anchor,
                    col: anchor,
                    // float: nan — placeholder overwritten below; NaN guarantees a missed write is caught
                    value: f64::NAN,
                });
            }
            let column: Vec<f64> = (0..d).map(|i| cost.at(i, anchor)).collect();
            // Dual feasibility: |c_ia - c_ja| <= c_ij for all i, j.
            for i in 0..d {
                for j in 0..d {
                    if (column[i] - column[j]).abs() > cost.at(i, j) + 1e-9 {
                        return Err(CoreError::InvalidCost {
                            row: i,
                            col: j,
                            value: cost.at(i, j),
                        });
                    }
                }
            }
            projections.push(column);
        }
        Ok(AnchorBound {
            projections,
            dim: d,
        })
    }

    /// Build the bound with `count` anchors spread evenly over the bins.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidCost`] when `count` is zero or exceeds the
    /// number of bins, or propagates any [`AnchorBound::new`] failure.
    pub fn with_spread_anchors(cost: &CostMatrix, count: usize) -> Result<Self, CoreError> {
        let d = cost.rows();
        let count = count.clamp(1, d);
        let anchors: Vec<usize> = (0..count).map(|k| k * d / count).collect();
        Self::new(cost, &anchors)
    }

    /// Re-audit dual feasibility of every stored anchor column against
    /// `cost`: `|c_ia - c_ja| <= c_ij + tol` for all `i, j`. The
    /// constructor enforces this once; the audit lets certificate tests
    /// re-verify the invariant against a possibly different cost matrix
    /// (weak duality only holds for the matrix the columns came from).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidCost`] naming the first violating
    /// `(i, j)` pair, or [`CoreError::DimensionMismatch`] if `cost` does
    /// not match the bound's dimensionality.
    pub fn verify_dual_feasible(&self, cost: &CostMatrix, tol: f64) -> Result<(), CoreError> {
        if !cost.is_square() || cost.rows() != self.dim {
            return Err(CoreError::DimensionMismatch {
                expected_rows: self.dim,
                expected_cols: self.dim,
                got_rows: cost.rows(),
                got_cols: cost.cols(),
            });
        }
        for column in &self.projections {
            for i in 0..self.dim {
                for j in 0..self.dim {
                    if (column[i] - column[j]).abs() > cost.at(i, j) + tol {
                        return Err(CoreError::InvalidCost {
                            row: i,
                            col: j,
                            value: cost.at(i, j),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of anchors.
    pub fn num_anchors(&self) -> usize {
        self.projections.len()
    }

    /// Expected histogram dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Project a histogram onto every anchor: `out[a] = sum_i x_i c_ia`.
    /// Precompute this once per database object.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] when `x` does not match the cost
    /// matrix the bound was built from.
    pub fn project(&self, x: &Histogram) -> Result<Vec<f64>, CoreError> {
        if x.dim() != self.dim {
            return Err(CoreError::DimensionMismatch {
                expected_rows: self.dim,
                expected_cols: self.dim,
                got_rows: x.dim(),
                got_cols: x.dim(),
            });
        }
        Ok(self
            .projections
            .iter()
            .map(|column| x.nonzero().map(|(i, mass)| mass * column[i]).sum())
            .collect())
    }

    /// Bound from two precomputed projections.
    #[inline]
    pub fn bound_from_projections(&self, px: &[f64], py: &[f64]) -> f64 {
        debug_assert_eq!(px.len(), self.projections.len());
        debug_assert_eq!(py.len(), self.projections.len());
        px.iter()
            .zip(py)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Evaluate the bound on raw histograms (projects both first).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] when either operand's
    /// dimensionality differs from the bound's bin count.
    pub fn bound(&self, x: &Histogram, y: &Histogram) -> Result<f64, CoreError> {
        emd_obs::counter_add("core.lb_anchor.evaluations", 1);
        let px = self.project(x)?;
        let py = self.project(y)?;
        Ok(self.bound_from_projections(&px, &py))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emd::emd;
    use crate::ground;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    #[test]
    fn lower_bounds_figure_one() {
        let x = h(&[0.5, 0.0, 0.2, 0.0, 0.3, 0.0]);
        let y = h(&[0.0, 0.5, 0.0, 0.2, 0.0, 0.3]);
        let c = ground::linear(6).unwrap();
        let bound = AnchorBound::with_spread_anchors(&c, 3).unwrap();
        let exact = emd(&x, &y, &c).unwrap();
        let lb = bound.bound(&x, &y).unwrap();
        assert!(lb <= exact + 1e-12);
        // On a 1-D chain the anchor-0 projection is the first moment:
        // the pure-shift pair has moment difference exactly 1.0 = EMD.
        assert!((lb - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_on_unit_histograms_with_anchor_at_target() {
        let c = ground::linear(5).unwrap();
        let bound = AnchorBound::new(&c, &[4]).unwrap();
        let x = Histogram::unit(5, 1).unwrap();
        let y = Histogram::unit(5, 4).unwrap();
        // |c(1,4) - c(4,4)| = 3 = exact EMD.
        assert!((bound.bound(&x, &y).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_metric_costs() {
        // Squared distances violate the triangle inequality.
        let c = CostMatrix::from_fn(4, |i, j| {
            let d = i as f64 - j as f64;
            d * d
        })
        .unwrap();
        assert!(AnchorBound::with_spread_anchors(&c, 2).is_err());
    }

    #[test]
    fn rejects_bad_anchors_and_shapes() {
        let c = ground::linear(4).unwrap();
        assert!(AnchorBound::new(&c, &[7]).is_err());
        assert!(AnchorBound::new(&c, &[]).is_err());
        let bound = AnchorBound::new(&c, &[0]).unwrap();
        assert!(bound.project(&h(&[0.5, 0.5])).is_err());
    }

    #[test]
    fn more_anchors_never_loosen() {
        let c = ground::grid2(3, 3, ground::Metric::Manhattan).unwrap();
        let x = h(&[0.3, 0.0, 0.1, 0.0, 0.2, 0.0, 0.1, 0.0, 0.3]);
        let y = h(&[0.0, 0.2, 0.0, 0.3, 0.0, 0.2, 0.0, 0.3, 0.0]);
        let few = AnchorBound::with_spread_anchors(&c, 1).unwrap();
        let many = AnchorBound::with_spread_anchors(&c, 9).unwrap();
        assert!(many.bound(&x, &y).unwrap() >= few.bound(&x, &y).unwrap() - 1e-12);
        let exact = emd(&x, &y, &c).unwrap();
        assert!(many.bound(&x, &y).unwrap() <= exact + 1e-12);
    }

    #[test]
    fn projections_reuse_matches_direct() {
        let c = ground::linear(6).unwrap();
        let bound = AnchorBound::with_spread_anchors(&c, 3).unwrap();
        let x = h(&[0.5, 0.0, 0.2, 0.0, 0.3, 0.0]);
        let y = h(&[0.0, 0.5, 0.0, 0.2, 0.0, 0.3]);
        let px = bound.project(&x).unwrap();
        let py = bound.project(&y).unwrap();
        let direct = bound.bound(&x, &y).unwrap();
        assert_eq!(bound.bound_from_projections(&px, &py), direct);
    }
}
