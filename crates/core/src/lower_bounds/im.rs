//! LB_IM, the independent-minimization lower bound: the EMD linear
//! program relaxed row- and column-wise.

use crate::cost::CostMatrix;
use crate::error::CoreError;
use crate::histogram::Histogram;

/// The *independent minimization* lower bound LB_IM (Assent et al., ICDE
/// 2006 — reference \[1\] of the paper).
///
/// The EMD's linear program is relaxed by minimizing each source row
/// independently: the mass `x_i` of source bin `i` is routed to the
/// globally cheapest target bins, respecting the per-bin capacities `y_j`
/// but *not* sharing them across rows. Every feasible EMD flow satisfies
/// the per-row constraints, so the relaxed optimum under-estimates the
/// EMD. The symmetric column-wise relaxation is also a lower bound; the
/// reported value is the larger of the two.
///
/// Cost rows/columns are sorted once at construction and shared across all
/// subsequent evaluations, giving `O(d^2)` per pair after `O(d^2 log d)`
/// setup.
#[derive(Debug, Clone)]
pub struct LbIm {
    cost: CostMatrix,
    /// `row_order[i]` = target indices sorted by ascending `c_ij`.
    row_order: Vec<Vec<u32>>,
    /// `col_order[j]` = source indices sorted by ascending `c_ij`.
    col_order: Vec<Vec<u32>>,
}

impl LbIm {
    /// Precompute sort orders for the given (possibly rectangular) cost
    /// matrix.
    pub fn new(cost: CostMatrix) -> Self {
        let rows = cost.rows();
        let cols = cost.cols();
        let mut row_order = Vec::with_capacity(rows);
        for i in 0..rows {
            let row = cost.row(i);
            let mut order: Vec<usize> = (0..cols).collect();
            order.sort_by(|&a, &b| row[a].total_cmp(&row[b]));
            // lint: allow(lossy-cast): dim < 2^32, so bin indices fit u32 exactly
            row_order.push(order.into_iter().map(|j| j as u32).collect());
        }
        let mut col_order = Vec::with_capacity(cols);
        for j in 0..cols {
            let mut order: Vec<usize> = (0..rows).collect();
            order.sort_by(|&a, &b| cost.at(a, j).total_cmp(&cost.at(b, j)));
            // lint: allow(lossy-cast): dim < 2^32, so bin indices fit u32 exactly
            col_order.push(order.into_iter().map(|i| i as u32).collect());
        }
        LbIm {
            cost,
            row_order,
            col_order,
        }
    }

    /// The cost matrix this bound was built for.
    pub fn cost(&self) -> &CostMatrix {
        &self.cost
    }

    /// Evaluate the bound. `x` must have `cost.rows()` bins and `y`
    /// `cost.cols()` bins.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] when the operand shapes disagree
    /// with the cost matrix.
    pub fn bound(&self, x: &Histogram, y: &Histogram) -> Result<f64, CoreError> {
        emd_obs::counter_add("core.lb_im.evaluations", 1);
        if x.dim() != self.cost.rows() || y.dim() != self.cost.cols() {
            return Err(CoreError::DimensionMismatch {
                expected_rows: self.cost.rows(),
                expected_cols: self.cost.cols(),
                got_rows: x.dim(),
                got_cols: y.dim(),
            });
        }
        let rows = self.relax_rows(x, y);
        let cols = self.relax_cols(x, y);
        Ok(rows.max(cols))
    }

    /// Row-wise relaxation: route each `x_i` to the cheapest targets under
    /// capacities `y_j`.
    fn relax_rows(&self, x: &Histogram, y: &Histogram) -> f64 {
        let mut total = 0.0;
        for (i, mass) in x.nonzero() {
            let mut remaining = mass;
            let row = self.cost.row(i);
            for &j in &self.row_order[i] {
                // lint: allow(lossy-cast): u32 bin index widens losslessly to usize
                let j = j as usize;
                let capacity = y.mass(j);
                if capacity <= 0.0 {
                    continue;
                }
                let shipped = remaining.min(capacity);
                total += shipped * row[j];
                remaining -= shipped;
                if remaining <= 0.0 {
                    break;
                }
            }
        }
        total
    }

    /// Column-wise relaxation: fill each `y_j` from the cheapest sources
    /// under capacities `x_i`.
    fn relax_cols(&self, x: &Histogram, y: &Histogram) -> f64 {
        let mut total = 0.0;
        for (j, mass) in y.nonzero() {
            let mut remaining = mass;
            for &i in &self.col_order[j] {
                // lint: allow(lossy-cast): u32 bin index widens losslessly to usize
                let i = i as usize;
                let capacity = x.mass(i);
                if capacity <= 0.0 {
                    continue;
                }
                let shipped = remaining.min(capacity);
                total += shipped * self.cost.at(i, j);
                remaining -= shipped;
                if remaining <= 0.0 {
                    break;
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emd::emd;
    use crate::ground;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    #[test]
    fn lower_bounds_the_emd_on_figure_one() {
        let x = h(&[0.5, 0.0, 0.2, 0.0, 0.3, 0.0]);
        let y = h(&[0.0, 0.5, 0.0, 0.2, 0.0, 0.3]);
        let c = ground::linear(6).unwrap();
        let bound = LbIm::new(c.clone());
        let lb = bound.bound(&x, &y).unwrap();
        let exact = emd(&x, &y, &c).unwrap();
        assert!(lb <= exact + 1e-12, "lb {lb} must not exceed emd {exact}");
        assert!(lb > 0.0, "bound should separate distinct histograms");
    }

    #[test]
    fn exact_on_unit_histograms() {
        // With all mass in one bin each, the relaxation is the original
        // problem, so the bound is tight.
        let x = Histogram::unit(5, 1).unwrap();
        let y = Histogram::unit(5, 4).unwrap();
        let c = ground::linear(5).unwrap();
        let bound = LbIm::new(c);
        let lb = bound.bound(&x, &y).unwrap();
        assert!((lb - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_for_identical_histograms() {
        let x = h(&[0.3, 0.3, 0.4]);
        let c = ground::linear(3).unwrap();
        let bound = LbIm::new(c);
        assert_eq!(bound.bound(&x, &x).unwrap(), 0.0);
    }

    #[test]
    fn dimension_mismatch_reported() {
        let bound = LbIm::new(ground::linear(3).unwrap());
        let x = h(&[0.5, 0.5]);
        let y = h(&[0.4, 0.3, 0.3]);
        assert!(matches!(
            bound.bound(&x, &y).unwrap_err(),
            CoreError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn column_relaxation_can_dominate() {
        // Asymmetric costs make one relaxation strictly better; the max
        // must pick it up. Construct a case and just check both orders
        // produce consistent bounds <= EMD.
        let x = h(&[0.9, 0.1, 0.0]);
        let y = h(&[0.0, 0.1, 0.9]);
        let c = CostMatrix::new(3, 3, vec![0.0, 1.0, 5.0, 1.0, 0.0, 1.0, 5.0, 1.0, 0.0]).unwrap();
        let bound = LbIm::new(c.clone());
        let lb = bound.bound(&x, &y).unwrap();
        let exact = emd(&x, &y, &c).unwrap();
        assert!(lb <= exact + 1e-12);
    }

    #[test]
    fn rectangular_cost_supported() {
        let x = h(&[0.5, 0.5]);
        let y = h(&[0.25, 0.25, 0.5]);
        let c = CostMatrix::new(2, 3, vec![0.0, 1.0, 2.0, 2.0, 1.0, 0.0]).unwrap();
        let bound = LbIm::new(c);
        let lb = bound.bound(&x, &y).unwrap();
        assert!(lb >= 0.0);
    }
}
