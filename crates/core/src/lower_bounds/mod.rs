//! Classic lower-bounding filter distances for the EMD.
//!
//! All functions here *underestimate* the exact EMD, which makes them
//! complete filters in GEMINI/KNOP multistep query processing (Section 2.1
//! of the paper). They complement — and chain with — the paper's
//! dimensionality reduction, which is implemented in `emd-reduction`.
//!
//! * [`LbIm`] — the *independent minimization* bound of Assent et al.
//!   (reference \[1\] of the paper), used as the `Red-IM` stage of the
//!   paper's Figure 10 filter pipeline.
//! * [`CentroidBound`] — Rubner's centroid bound (reference \[17\]): the
//!   ground-space distance between the two histograms' centroids.
//! * [`ScaledL1`] — half the L1 histogram distance scaled by the smallest
//!   off-diagonal ground cost; trivial but nearly free.
//! * [`AnchorBound`] — weak-duality bound from distance-to-anchor
//!   potentials; `O(#anchors)` per pair after per-object projection.

mod centroid;
mod dual;
mod im;
mod scaled_lp;

pub use centroid::CentroidBound;
pub use dual::AnchorBound;
pub use im::LbIm;
pub use scaled_lp::ScaledL1;
