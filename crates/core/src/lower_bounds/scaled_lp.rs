//! A nearly-free scaled-L1 lower bound on the EMD.

use crate::cost::CostMatrix;
use crate::error::CoreError;
use crate::histogram::Histogram;

/// A nearly-free L1-based lower bound.
///
/// For equal-mass histograms, the amount of mass that must leave its bin is
/// exactly `L1(x, y) / 2`, and under a zero-diagonal cost matrix every such
/// unit costs at least the smallest off-diagonal ground cost `c_min`:
///
/// ```text
/// EMD(x, y) >= c_min / 2 * L1(x, y)
/// ```
///
/// The bound is loose on spread-out cost matrices but costs only `O(d)`
/// per pair, making it useful as the very first stage of a filter chain.
#[derive(Debug, Clone)]
pub struct ScaledL1 {
    dim: usize,
    factor: f64,
}

impl ScaledL1 {
    /// Derive the scaling factor from a square cost matrix. If the
    /// diagonal is not identically zero, staying in place may already cost
    /// something and the L1 argument breaks down; the factor then degrades
    /// to zero (a valid, if useless, bound) rather than returning an error.
    pub fn new(cost: &CostMatrix) -> Self {
        debug_assert!(cost.is_square());
        // float: exact — the shortcut is only sound for an exactly zero diagonal
        let diagonal_zero = (0..cost.rows()).all(|i| cost.at(i, i) == 0.0);
        let factor = if diagonal_zero {
            cost.min_off_diagonal().unwrap_or(0.0) / 2.0
        } else {
            0.0
        };
        ScaledL1 {
            dim: cost.rows(),
            factor,
        }
    }

    /// The per-unit-of-L1 scaling factor `c_min / 2`.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// Evaluate the bound.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] when the operand shapes disagree
    /// with the bound's dimensionality.
    pub fn bound(&self, x: &Histogram, y: &Histogram) -> Result<f64, CoreError> {
        emd_obs::counter_add("core.lb_scaled_l1.evaluations", 1);
        if x.dim() != self.dim || y.dim() != self.dim {
            return Err(CoreError::DimensionMismatch {
                expected_rows: self.dim,
                expected_cols: self.dim,
                got_rows: x.dim(),
                got_cols: y.dim(),
            });
        }
        Ok(self.factor * x.l1_distance(y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emd::emd;
    use crate::ground;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    #[test]
    fn bounds_emd_on_figure_one() {
        let x = h(&[0.5, 0.0, 0.2, 0.0, 0.3, 0.0]);
        let y = h(&[0.0, 0.5, 0.0, 0.2, 0.0, 0.3]);
        let c = ground::linear(6).unwrap();
        let bound = ScaledL1::new(&c);
        let lb = bound.bound(&x, &y).unwrap();
        let exact = emd(&x, &y, &c).unwrap();
        assert!(lb <= exact + 1e-12);
        // c_min = 1, L1 = 2.0 => bound = 1.0, which here equals the EMD.
        assert!((lb - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nonzero_diagonal_degrades_to_zero() {
        let c = CostMatrix::new(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        let bound = ScaledL1::new(&c);
        assert_eq!(bound.factor(), 0.0);
        let x = h(&[1.0, 0.0]);
        let y = h(&[0.0, 1.0]);
        assert_eq!(bound.bound(&x, &y).unwrap(), 0.0);
    }

    #[test]
    fn single_bin_matrix() {
        let c = CostMatrix::new(1, 1, vec![0.0]).unwrap();
        let bound = ScaledL1::new(&c);
        assert_eq!(bound.factor(), 0.0);
    }

    #[test]
    fn dimension_mismatch_reported() {
        let bound = ScaledL1::new(&ground::linear(3).unwrap());
        let x = h(&[0.5, 0.5]);
        let y = h(&[0.4, 0.3, 0.3]);
        assert!(matches!(
            bound.bound(&x, &y).unwrap_err(),
            CoreError::DimensionMismatch { .. }
        ));
    }
}
