//! Upper bounds for the EMD.
//!
//! The cost of *any* feasible flow upper-bounds the EMD, so a good
//! constructive heuristic gives a cheap upper bound. The paper contrasts
//! its complete lower-bound filters with the *approximate* upper-bound
//! techniques of its related work (\[6, 7, 9\]); this module provides the
//! constructive counterpart so both retrieval modes can be compared:
//!
//! * [`emd_upper_vogel`] — the Vogel-approximation initial solution of the
//!   transportation simplex, *without* any pivoting. Empirically within a
//!   few percent of the optimum at a fraction of the cost.
//! * [`emd_upper_greedy`] — repeatedly ships as much mass as possible over
//!   the globally cheapest remaining cell. Cruder but `O(k log k)` in the
//!   number of non-zero cells.
//!
//! Together with any lower bound this yields a sandwich
//! `lb <= EMD <= ub` usable for approximate pruning without solving the
//! LP (objects whose *upper* bound beats a query threshold are certain
//! hits; only the uncertain band needs refinement).

use crate::cost::CostMatrix;
use crate::error::CoreError;
use crate::histogram::Histogram;
use emd_transport::{initial_basis, TransportProblem};

/// Upper bound from the Vogel initial solution (no simplex pivots).
///
/// # Errors
///
/// Returns [`CoreError::DimensionMismatch`] on operand/cost shape disagreement
/// and [`CoreError::Solver`] if Vogel's initial basis cannot be built.
pub fn emd_upper_vogel(x: &Histogram, y: &Histogram, cost: &CostMatrix) -> Result<f64, CoreError> {
    check_dims(x, y, cost)?;
    let (x_index, supplies): (Vec<usize>, Vec<f64>) = x.nonzero().unzip();
    let (y_index, demands): (Vec<usize>, Vec<f64>) = y.nonzero().unzip();
    let mut costs = Vec::with_capacity(x_index.len() * y_index.len());
    for &i in &x_index {
        let row = cost.row(i);
        costs.extend(y_index.iter().map(|&j| row[j]));
    }
    let problem = TransportProblem::new(supplies, demands, costs)
        .map_err(|e| CoreError::Solver(e.to_string()))?;
    let basis = initial_basis(&problem);
    Ok(basis
        .cells
        .iter()
        .map(|&(i, j, f)| f * problem.cost(i, j))
        .sum())
}

/// Upper bound from a global greedy matching: cells sorted by cost
/// ascending, each shipped to the residual capacity of its row/column.
/// Always feasible-completing because the final pass ships leftovers at
/// whatever cost remains.
///
/// # Errors
///
/// Returns [`CoreError::DimensionMismatch`] when the operand shapes disagree
/// with the cost matrix.
pub fn emd_upper_greedy(x: &Histogram, y: &Histogram, cost: &CostMatrix) -> Result<f64, CoreError> {
    check_dims(x, y, cost)?;
    let (x_index, mut supplies): (Vec<usize>, Vec<f64>) = x.nonzero().unzip();
    let (y_index, mut demands): (Vec<usize>, Vec<f64>) = y.nonzero().unzip();

    let mut cells: Vec<(f64, usize, usize)> = Vec::with_capacity(x_index.len() * y_index.len());
    for (a, &i) in x_index.iter().enumerate() {
        let row = cost.row(i);
        for (b, &j) in y_index.iter().enumerate() {
            cells.push((row[j], a, b));
        }
    }
    cells.sort_by(|p, q| p.0.total_cmp(&q.0));

    let mut total = 0.0;
    for &(c, a, b) in &cells {
        let shipped = supplies[a].min(demands[b]);
        if shipped <= 0.0 {
            continue;
        }
        total += shipped * c;
        supplies[a] -= shipped;
        demands[b] -= shipped;
    }
    debug_assert!(
        supplies.iter().sum::<f64>() < 1e-7,
        "greedy pass ships all mass (cells cover the full bipartite graph)"
    );
    Ok(total)
}

fn check_dims(x: &Histogram, y: &Histogram, cost: &CostMatrix) -> Result<(), CoreError> {
    if cost.rows() != x.dim() || cost.cols() != y.dim() {
        return Err(CoreError::DimensionMismatch {
            expected_rows: cost.rows(),
            expected_cols: cost.cols(),
            got_rows: x.dim(),
            got_cols: y.dim(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emd::emd;
    use crate::ground;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    #[test]
    fn vogel_upper_bounds_figure_one() {
        let x = h(&[0.5, 0.0, 0.2, 0.0, 0.3, 0.0]);
        let y = h(&[0.0, 0.5, 0.0, 0.2, 0.0, 0.3]);
        let c = ground::linear(6).unwrap();
        let exact = emd(&x, &y, &c).unwrap();
        let upper = emd_upper_vogel(&x, &y, &c).unwrap();
        assert!(upper >= exact - 1e-12, "upper {upper} < exact {exact}");
    }

    #[test]
    fn greedy_upper_bounds_figure_one() {
        let x = h(&[0.5, 0.0, 0.2, 0.0, 0.3, 0.0]);
        let y = h(&[0.0, 0.5, 0.0, 0.2, 0.0, 0.3]);
        let c = ground::linear(6).unwrap();
        let exact = emd(&x, &y, &c).unwrap();
        let upper = emd_upper_greedy(&x, &y, &c).unwrap();
        assert!(upper >= exact - 1e-12);
    }

    #[test]
    fn tight_on_unit_histograms() {
        // A single source and target leave no heuristic slack.
        let x = Histogram::unit(4, 0).unwrap();
        let y = Histogram::unit(4, 3).unwrap();
        let c = ground::linear(4).unwrap();
        assert!((emd_upper_vogel(&x, &y, &c).unwrap() - 3.0).abs() < 1e-12);
        assert!((emd_upper_greedy(&x, &y, &c).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_for_identical() {
        let x = h(&[0.3, 0.4, 0.3]);
        let c = ground::linear(3).unwrap();
        assert!(emd_upper_vogel(&x, &x, &c).unwrap() < 1e-12);
        assert!(emd_upper_greedy(&x, &x, &c).unwrap() < 1e-12);
    }

    #[test]
    fn dimension_mismatch_reported() {
        let x = h(&[0.5, 0.5]);
        let y = h(&[0.5, 0.25, 0.25]);
        let c = ground::linear(2).unwrap();
        assert!(emd_upper_vogel(&x, &y, &c).is_err());
        assert!(emd_upper_greedy(&x, &y, &c).is_err());
    }
}
