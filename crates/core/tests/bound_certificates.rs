//! Property-based coverage of the numeric-invariant layer in `emd-core`:
//! flow reports certify against their operands, every lower bound in the
//! toolbox stays below the exact EMD, every upper bound stays above it,
//! and the anchor bound's dual vector re-verifies as feasible.

// Test helpers outside #[test] fns still get test-style panic latitude.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use emd_core::certify::{certify_report, BOUND_EPS, CERT_EPS};
use emd_core::lower_bounds::{AnchorBound, CentroidBound, LbIm, ScaledL1};
use emd_core::{
    emd, emd_upper_greedy, emd_upper_vogel, emd_with_flows, ground, CostMatrix, Histogram,
};
use proptest::prelude::*;

/// Strategy: a normalized histogram of the given dimensionality with at
/// least one strictly positive bin.
fn histogram(dim: usize) -> impl Strategy<Value = Histogram> {
    prop::collection::vec(0.0_f64..1.0, dim).prop_filter_map("total mass must be positive", |raw| {
        let total: f64 = raw.iter().sum();
        (total > 1e-6).then(|| Histogram::normalized(raw).expect("positive mass"))
    })
}

/// A histogram pair on the 1-D chain ground distance, `dim in 2..=max_dim`.
fn chain_pair(max_dim: usize) -> impl Strategy<Value = (Histogram, Histogram, CostMatrix)> {
    (2..=max_dim).prop_flat_map(|dim| {
        (histogram(dim), histogram(dim)).prop_map(move |(x, y)| {
            let cost = ground::linear(dim).expect("dim >= 2");
            (x, y, cost)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The flow report returned by [`emd_with_flows`] certifies against its
    /// operands: a feasible plan whose cost equals the stated distance.
    #[test]
    fn flow_reports_certify((x, y, cost) in chain_pair(9)) {
        let report = emd_with_flows(&x, &y, &cost).expect("emd solves valid pairs");
        prop_assert!(certify_report(&x, &y, &cost, &report, CERT_EPS).is_ok());
    }

    /// Every lower bound in the toolbox sits below the exact EMD and every
    /// upper bound above it (Theorem 1 is only sound if this holds).
    #[test]
    fn bounds_sandwich_exact_emd((x, y, cost) in chain_pair(9)) {
        let exact = emd(&x, &y, &cost).expect("emd solves valid pairs");

        let im = LbIm::new(cost.clone()).bound(&x, &y).expect("shapes match");
        prop_assert!(im <= exact + BOUND_EPS, "LB_IM {im} > EMD {exact}");

        let positions = ground::linear_positions(x.dim());
        let centroid = CentroidBound::new(positions, ground::Metric::Euclidean)
            .expect("valid positions")
            .bound(&x, &y)
            .expect("shapes match");
        prop_assert!(centroid <= exact + BOUND_EPS, "centroid {centroid} > EMD {exact}");

        let scaled = ScaledL1::new(&cost).bound(&x, &y).expect("shapes match");
        prop_assert!(scaled <= exact + BOUND_EPS, "scaled-L1 {scaled} > EMD {exact}");

        let anchors = AnchorBound::with_spread_anchors(&cost, 2.min(x.dim()))
            .expect("valid anchor count")
            .bound(&x, &y)
            .expect("shapes match");
        prop_assert!(anchors <= exact + BOUND_EPS, "anchor {anchors} > EMD {exact}");

        let vogel = emd_upper_vogel(&x, &y, &cost).expect("shapes match");
        prop_assert!(vogel >= exact - BOUND_EPS, "Vogel UB {vogel} < EMD {exact}");

        let greedy = emd_upper_greedy(&x, &y, &cost).expect("shapes match");
        prop_assert!(greedy >= exact - BOUND_EPS, "greedy UB {greedy} < EMD {exact}");
    }

    /// The anchor bound's dual vector re-verifies as feasible for the cost
    /// matrix it was built from, at every anchor count.
    #[test]
    fn anchor_duals_stay_feasible(dim in 2usize..10, count in 1usize..6) {
        let cost = ground::linear(dim).expect("dim >= 2");
        let count = count.min(dim);
        let bound = AnchorBound::with_spread_anchors(&cost, count).expect("valid anchor count");
        prop_assert!(bound.verify_dual_feasible(&cost, CERT_EPS).is_ok());
    }

    /// Corrupting a reported flow is caught by the report certificate —
    /// the debug hook inside `emd_with_flows` guards a real invariant.
    #[test]
    fn corrupted_reports_always_fail((x, y, cost) in chain_pair(8), pick in 0usize..64, delta in 0.01_f64..0.5) {
        let mut report = emd_with_flows(&x, &y, &cost).expect("emd solves valid pairs");
        let index = pick % report.flows.len();
        report.flows[index].2 += delta;
        prop_assert!(certify_report(&x, &y, &cost, &report, CERT_EPS).is_err());
    }
}
