//! Property-based tests for the exact EMD and its classic lower bounds.

// Test helpers outside #[test] fns still get test-style panic latitude.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use emd_core::ground::{self, Metric};
use emd_core::lower_bounds::{AnchorBound, CentroidBound, LbIm, ScaledL1};
use emd_core::{emd, emd_1d_manhattan, emd_with_flows, CostMatrix, Histogram};
use proptest::prelude::*;

fn histogram(dim: usize) -> impl Strategy<Value = Histogram> {
    prop::collection::vec(0.0_f64..1.0, dim).prop_filter_map("positive total mass", |raw| {
        let total: f64 = raw.iter().sum();
        (total > 1e-6)
            .then(|| Histogram::new(raw.iter().map(|x| x / total).collect()).ok())
            .flatten()
    })
}

/// A sparse histogram: most bins zero, as in real multimedia features.
fn sparse_histogram(dim: usize) -> impl Strategy<Value = Histogram> {
    prop::collection::vec(prop::option::weighted(0.3, 0.01_f64..1.0), dim).prop_filter_map(
        "positive total mass",
        |raw| {
            let bins: Vec<f64> = raw.into_iter().map(|x| x.unwrap_or(0.0)).collect();
            let total: f64 = bins.iter().sum();
            (total > 1e-6)
                .then(|| Histogram::new(bins.iter().map(|x| x / total).collect()).ok())
                .flatten()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// LP solution equals the closed-form CDF distance on 1-D chains.
    #[test]
    fn matches_1d_closed_form(x in histogram(12), y in histogram(12)) {
        let c = ground::linear(12).unwrap();
        let lp = emd(&x, &y, &c).unwrap();
        let oracle = emd_1d_manhattan(&x, &y);
        prop_assert!((lp - oracle).abs() < 1e-9, "lp {lp} != oracle {oracle}");
    }

    /// Same, on sparse histograms (exercises the zero-bin stripping).
    #[test]
    fn matches_1d_closed_form_sparse(x in sparse_histogram(24), y in sparse_histogram(24)) {
        let c = ground::linear(24).unwrap();
        let lp = emd(&x, &y, &c).unwrap();
        let oracle = emd_1d_manhattan(&x, &y);
        prop_assert!((lp - oracle).abs() < 1e-9);
    }

    /// Metric axioms under a metric ground distance: identity, symmetry
    /// and the triangle inequality.
    #[test]
    fn metric_axioms(
        x in histogram(9),
        y in histogram(9),
        z in histogram(9),
    ) {
        let c = ground::grid2(3, 3, Metric::Euclidean).unwrap();
        let d_xy = emd(&x, &y, &c).unwrap();
        let d_yx = emd(&y, &x, &c).unwrap();
        let d_xz = emd(&x, &z, &c).unwrap();
        let d_zy = emd(&z, &y, &c).unwrap();
        prop_assert!(emd(&x, &x, &c).unwrap().abs() < 1e-9);
        prop_assert!((d_xy - d_yx).abs() < 1e-9, "symmetry");
        prop_assert!(d_xy <= d_xz + d_zy + 1e-9, "triangle inequality");
        prop_assert!(d_xy >= -1e-12, "non-negativity");
    }

    /// The reported flows are feasible and reproduce the objective.
    #[test]
    fn flows_reconstruct_distance(x in sparse_histogram(16), y in sparse_histogram(16)) {
        let c = ground::grid2(4, 4, Metric::Manhattan).unwrap();
        let report = emd_with_flows(&x, &y, &c).unwrap();
        let mut row_sums = [0.0; 16];
        let mut col_sums = [0.0; 16];
        let mut objective = 0.0;
        for &(i, j, f) in &report.flows {
            prop_assert!(f > 0.0);
            row_sums[i] += f;
            col_sums[j] += f;
            objective += f * c.at(i, j);
        }
        for i in 0..16 {
            prop_assert!((row_sums[i] - x.mass(i)).abs() < 1e-8);
            prop_assert!((col_sums[i] - y.mass(i)).abs() < 1e-8);
        }
        prop_assert!((objective - report.distance).abs() < 1e-8);
    }

    /// Every classic lower bound under-estimates the exact EMD.
    #[test]
    fn classic_bounds_are_lower_bounds(x in histogram(12), y in histogram(12)) {
        let c = ground::grid2(4, 3, Metric::Euclidean).unwrap();
        let exact = emd(&x, &y, &c).unwrap();

        let im = LbIm::new(c.clone());
        prop_assert!(im.bound(&x, &y).unwrap() <= exact + 1e-9);

        let centroid = CentroidBound::new(
            ground::grid2_positions(4, 3),
            Metric::Euclidean,
        ).unwrap();
        prop_assert!(centroid.bound(&x, &y).unwrap() <= exact + 1e-9);

        let scaled = ScaledL1::new(&c);
        prop_assert!(scaled.bound(&x, &y).unwrap() <= exact + 1e-9);

        let anchor = AnchorBound::with_spread_anchors(&c, 4).unwrap();
        prop_assert!(anchor.bound(&x, &y).unwrap() <= exact + 1e-9);
    }

    /// EMD monotony in the cost matrix (paper Theorem 2, forward
    /// direction): scaling costs up cannot decrease the distance.
    #[test]
    fn monotone_in_costs(x in histogram(8), y in histogram(8), bump in 0.0_f64..3.0) {
        let small = ground::linear(8).unwrap();
        let large = CostMatrix::new(
            8,
            8,
            small
                .entries()
                .iter()
                .enumerate()
                .map(|(k, &c)| if k / 8 == k % 8 { c } else { c + bump })
                .collect(),
        )
        .unwrap();
        let d_small = emd(&x, &y, &small).unwrap();
        let d_large = emd(&x, &y, &large).unwrap();
        prop_assert!(d_small <= d_large + 1e-9);
    }

    /// Saturating the ground distance can only shrink the EMD.
    #[test]
    fn saturation_shrinks(x in histogram(10), y in histogram(10), tau in 0.5_f64..5.0) {
        let c = ground::linear(10).unwrap();
        let s = ground::saturated(&c, tau).unwrap();
        let full = emd(&x, &y, &c).unwrap();
        let capped = emd(&x, &y, &s).unwrap();
        prop_assert!(capped <= full + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sandwich property: every lower bound <= exact EMD <= every upper
    /// bound, on random sparse histograms.
    #[test]
    fn sandwich_bounds(x in sparse_histogram(16), y in sparse_histogram(16)) {
        use emd_core::{emd_upper_greedy, emd_upper_vogel};
        let c = ground::grid2(4, 4, Metric::Euclidean).unwrap();
        let exact = emd(&x, &y, &c).unwrap();
        let im = LbIm::new(c.clone());
        let lower = im.bound(&x, &y).unwrap();
        let upper_v = emd_upper_vogel(&x, &y, &c).unwrap();
        let upper_g = emd_upper_greedy(&x, &y, &c).unwrap();
        prop_assert!(lower <= exact + 1e-9);
        prop_assert!(exact <= upper_v + 1e-9);
        prop_assert!(exact <= upper_g + 1e-9);
    }

    /// The Vogel upper bound is close to optimal: a loose sanity band that
    /// documents its practical quality on smooth instances.
    #[test]
    fn vogel_upper_bound_is_reasonable(x in histogram(12), y in histogram(12)) {
        use emd_core::emd_upper_vogel;
        let c = ground::linear(12).unwrap();
        let exact = emd(&x, &y, &c).unwrap();
        let upper = emd_upper_vogel(&x, &y, &c).unwrap();
        // Vogel never exceeds 3x the optimum on these instances; the bound
        // here is intentionally slack — the property that matters is
        // upper >= exact, checked in sandwich_bounds.
        prop_assert!(upper <= exact.max(1e-9).mul_add(3.0, 1e-9));
    }
}
