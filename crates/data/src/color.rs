//! IRMA-style synthetic corpus: high-dimensional quantized color
//! histograms.
//!
//! Simulates the high-dimensional regime that motivates the paper: color
//! retrieval with `n x n x n` cube histograms (64 to 216+ dimensions),
//! where the full EMD's super-quadratic cost becomes prohibitive and
//! dimensionality reduction pays off.
//!
//! Generative model: every class owns a palette of Gaussian color modes in
//! the cube; an instance jitters the mode centers and weights, evaluates
//! the mixture density at the bin centers and normalizes. Mass therefore
//! concentrates on *color-adjacent* bins with class-coherent structure.

use crate::dataset::Dataset;
use crate::util::sample_normal;
use emd_core::{ground, Histogram};
use rand::Rng;

/// Parameters of the color corpus generator.
#[derive(Debug, Clone)]
pub struct ColorParams {
    /// Quantization steps per color axis; dimensionality is `side^3`.
    pub side: usize,
    /// Number of object classes.
    pub num_classes: usize,
    /// Objects generated per class.
    pub per_class: usize,
    /// Color modes per class palette.
    pub modes_per_class: usize,
    /// Standard deviation of per-instance mode-center jitter (in bins).
    pub center_jitter: f64,
    /// Spread of each color mode (in bins).
    pub mode_sigma: f64,
}

impl Default for ColorParams {
    fn default() -> Self {
        ColorParams {
            side: 6,
            num_classes: 10,
            per_class: 100,
            modes_per_class: 4,
            center_jitter: 0.5,
            mode_sigma: 0.7,
        }
    }
}

/// Generate a color corpus. Deterministic for a fixed RNG.
#[allow(clippy::expect_used)]
pub fn generate(params: &ColorParams, rng: &mut impl Rng) -> Dataset {
    let ColorParams {
        side,
        num_classes,
        per_class,
        modes_per_class,
        center_jitter,
        mode_sigma,
    } = *params;
    assert!(side > 0 && num_classes > 0 && modes_per_class > 0);
    let dim = side * side * side;
    let positions = ground::grid3_positions(side, side, side);

    // Class palettes: mode centers in cube coordinates plus weights.
    let palettes: Vec<Vec<([f64; 3], f64)>> = (0..num_classes)
        .map(|_| {
            (0..modes_per_class)
                .map(|_| {
                    (
                        [
                            rng.gen_range(0.0..side as f64),
                            rng.gen_range(0.0..side as f64),
                            rng.gen_range(0.0..side as f64),
                        ],
                        rng.gen_range(0.5..1.5),
                    )
                })
                .collect()
        })
        .collect();

    let mut histograms = Vec::with_capacity(num_classes * per_class);
    let mut labels = Vec::with_capacity(num_classes * per_class);
    let mut bins = vec![0.0f64; dim];
    for (class, palette) in palettes.iter().enumerate() {
        for _ in 0..per_class {
            bins.iter_mut().for_each(|b| *b = 0.0);
            for &(center, weight) in palette {
                let jittered = [
                    sample_normal(rng).mul_add(center_jitter, center[0]),
                    sample_normal(rng).mul_add(center_jitter, center[1]),
                    sample_normal(rng).mul_add(center_jitter, center[2]),
                ];
                let sigma = mode_sigma * rng.gen_range(0.8..1.25);
                let w = weight * rng.gen_range(0.7..1.3);
                let inv = 1.0 / (2.0 * sigma * sigma);
                for (bin, position) in positions.iter().enumerate() {
                    let squared: f64 = position
                        .iter()
                        .zip(jittered.iter())
                        .map(|(p, c)| (p - c) * (p - c))
                        .sum();
                    // Truncate at 2.5 sigma: keeps histograms sparse like
                    // real color features (and the EMD tableaus small).
                    if squared <= 6.25 * sigma * sigma {
                        bins[bin] += w * (-squared * inv).exp();
                    }
                }
            }
            if bins.iter().sum::<f64>() <= 0.0 {
                // A jittered palette can land fully outside the cube;
                // fall back to a single bin at the nearest mode.
                let center = palette[0].0;
                let clamp = |v: f64| (v.max(0.0).min(side as f64 - 1.0)).round() as usize;
                let bin =
                    clamp(center[0]) * side * side + clamp(center[1]) * side + clamp(center[2]);
                bins[bin] = 1.0;
            }
            // lint: allow(panic): the smoothing floor guarantees strictly positive mass
            histograms.push(Histogram::normalized(bins.clone()).expect("mass ensured"));
            labels.push(class as u32);
        }
    }

    Dataset {
        name: format!("color-{side}x{side}x{side}"),
        histograms,
        labels,
        cost: ground::grid3(side, side, side, ground::Metric::Euclidean)
            // lint: allow(panic): quantization levels are a non-zero compile-time choice
            .expect("valid cube dimensions"),
        positions: Some(positions),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_params() -> ColorParams {
        ColorParams {
            side: 4,
            num_classes: 3,
            per_class: 4,
            modes_per_class: 2,
            ..ColorParams::default()
        }
    }

    #[test]
    fn generates_consistent_dataset() {
        let mut rng = StdRng::seed_from_u64(1);
        let dataset = generate(&small_params(), &mut rng);
        assert_eq!(dataset.len(), 12);
        assert_eq!(dataset.dim(), 64);
        dataset.validate().unwrap();
    }

    #[test]
    fn histograms_are_sparse() {
        let mut rng = StdRng::seed_from_u64(2);
        let dataset = generate(&small_params(), &mut rng);
        let average_support: f64 = dataset
            .histograms
            .iter()
            .map(|h| h.support_size() as f64)
            .sum::<f64>()
            / dataset.len() as f64;
        assert!(
            average_support < 0.8 * dataset.dim() as f64,
            "average support {average_support} of {}",
            dataset.dim()
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(&small_params(), &mut StdRng::seed_from_u64(9));
        let b = generate(&small_params(), &mut StdRng::seed_from_u64(9));
        assert_eq!(a.histograms, b.histograms);
    }

    #[test]
    fn default_params_give_216_dims() {
        let params = ColorParams {
            num_classes: 1,
            per_class: 1,
            ..ColorParams::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        let dataset = generate(&params, &mut rng);
        assert_eq!(dataset.dim(), 216);
    }
}
