//! The bundled corpus type shared by every generator: histograms,
//! labels, ground-distance matrix and optional bin positions.

use emd_core::{CostMatrix, Histogram};

/// A bundled retrieval corpus: feature histograms, their class labels, the
/// ground-distance cost matrix and (when the feature space has an explicit
/// geometry) the bin positions.
///
/// Every generator in this crate returns a `Dataset`; the query engine and
/// the experiment harness consume them uniformly.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name, e.g. `"tiling-12x8"`.
    pub name: String,
    /// Feature histograms, all of one dimensionality.
    pub histograms: Vec<Histogram>,
    /// Class label of each histogram (same length as `histograms`).
    pub labels: Vec<u32>,
    /// Ground distance between bins.
    pub cost: CostMatrix,
    /// Bin positions in feature space, when meaningful (enables the
    /// centroid lower bound).
    pub positions: Option<Vec<Vec<f64>>>,
}

serde::impl_serde_struct!(Dataset {
    name,
    histograms,
    labels,
    cost,
    positions,
});

/// The first internal inconsistency found by [`Dataset::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// `histograms` and `labels` have different lengths.
    LabelCountMismatch {
        /// Number of histograms in the corpus.
        histograms: usize,
        /// Number of labels in the corpus.
        labels: usize,
    },
    /// The ground-distance matrix is not square.
    CostNotSquare,
    /// A histogram's dimensionality disagrees with the cost matrix.
    DimMismatch {
        /// Index of the offending histogram.
        index: usize,
        /// Its dimensionality.
        found: usize,
        /// The corpus dimensionality implied by the cost matrix.
        expected: usize,
    },
    /// `positions` is present but does not have one entry per bin.
    PositionCountMismatch {
        /// Number of positions supplied.
        positions: usize,
        /// Number of bins in the corpus.
        bins: usize,
    },
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::LabelCountMismatch { histograms, labels } => {
                write!(f, "{histograms} histograms but {labels} labels")
            }
            ValidateError::CostNotSquare => write!(f, "cost matrix must be square"),
            ValidateError::DimMismatch {
                index,
                found,
                expected,
            } => {
                write!(
                    f,
                    "histogram {index} has dimensionality {found} != {expected}"
                )
            }
            ValidateError::PositionCountMismatch { positions, bins } => {
                write!(f, "{positions} positions for {bins} bins")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

impl Dataset {
    /// Number of objects.
    pub fn len(&self) -> usize {
        self.histograms.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.histograms.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.cost.rows()
    }

    /// Check internal consistency; generators uphold this by construction,
    /// deserialized corpora are checked by [`crate::io::load`].
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found as a [`ValidateError`]:
    /// a shape mismatch, a non-square cost matrix, or a position/bin
    /// count disagreement.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.histograms.len() != self.labels.len() {
            return Err(ValidateError::LabelCountMismatch {
                histograms: self.histograms.len(),
                labels: self.labels.len(),
            });
        }
        if !self.cost.is_square() {
            return Err(ValidateError::CostNotSquare);
        }
        let dim = self.cost.rows();
        if let Some(bad) = self.histograms.iter().position(|h| h.dim() != dim) {
            return Err(ValidateError::DimMismatch {
                index: bad,
                found: self.histograms[bad].dim(),
                expected: dim,
            });
        }
        if let Some(positions) = &self.positions {
            if positions.len() != dim {
                return Err(ValidateError::PositionCountMismatch {
                    positions: positions.len(),
                    bins: dim,
                });
            }
        }
        Ok(())
    }

    /// Split off the last `count` objects as a disjoint query set. Used by
    /// workload builders so queries are drawn from the same distribution
    /// but are not database members.
    pub fn split_queries(mut self, count: usize) -> (Dataset, Vec<Histogram>) {
        let count = count.min(self.histograms.len());
        let keep = self.histograms.len() - count;
        let queries = self.histograms.split_off(keep);
        self.labels.truncate(keep);
        (self, queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_core::ground;

    fn tiny() -> Dataset {
        Dataset {
            name: "tiny".into(),
            histograms: vec![
                Histogram::new(vec![0.5, 0.5, 0.0]).unwrap(),
                Histogram::new(vec![0.0, 0.5, 0.5]).unwrap(),
                Histogram::new(vec![1.0, 0.0, 0.0]).unwrap(),
            ],
            labels: vec![0, 1, 0],
            cost: ground::linear(3).unwrap(),
            positions: Some(ground::linear_positions(3)),
        }
    }

    #[test]
    fn validate_accepts_consistent() {
        assert!(tiny().validate().is_ok());
        assert_eq!(tiny().len(), 3);
        assert_eq!(tiny().dim(), 3);
    }

    #[test]
    fn validate_rejects_mismatches() {
        let mut bad = tiny();
        bad.labels.pop();
        assert!(bad.validate().is_err());

        let mut bad = tiny();
        bad.histograms[0] = Histogram::new(vec![0.5, 0.5]).unwrap();
        assert!(bad.validate().is_err());

        let mut bad = tiny();
        bad.positions = Some(vec![vec![0.0]]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn split_queries_is_disjoint() {
        let (database, queries) = tiny().split_queries(1);
        assert_eq!(database.len(), 2);
        assert_eq!(queries.len(), 1);
        assert_eq!(queries[0].bins(), &[1.0, 0.0, 0.0]);
        assert_eq!(database.labels.len(), 2);
    }

    #[test]
    fn split_queries_caps_at_len() {
        let (database, queries) = tiny().split_queries(10);
        assert_eq!(database.len(), 0);
        assert_eq!(queries.len(), 3);
    }
}
