//! 1-D Gaussian-mixture histograms over a chain ground distance.
//!
//! The smallest realistic corpus: good for unit tests, examples and quick
//! sanity experiments where the full image-like generators would be
//! overkill.

use crate::dataset::Dataset;
use crate::util::sample_normal;
use emd_core::{ground, Histogram};
use rand::Rng;

/// Parameters of the 1-D mixture generator.
#[derive(Debug, Clone)]
pub struct GaussianParams {
    /// Number of histogram bins.
    pub dim: usize,
    /// Number of classes; class `c` centers its mass around bin
    /// `(c + 0.5) * dim / num_classes`.
    pub num_classes: usize,
    /// Objects per class.
    pub per_class: usize,
    /// Per-instance center jitter (in bins).
    pub center_jitter: f64,
    /// Mixture component spread (in bins).
    pub sigma: f64,
}

impl Default for GaussianParams {
    fn default() -> Self {
        GaussianParams {
            dim: 32,
            num_classes: 4,
            per_class: 50,
            center_jitter: 1.0,
            sigma: 2.0,
        }
    }
}

/// Generate a 1-D mixture corpus. Deterministic for a fixed RNG.
#[allow(clippy::expect_used)]
pub fn generate(params: &GaussianParams, rng: &mut impl Rng) -> Dataset {
    let GaussianParams {
        dim,
        num_classes,
        per_class,
        center_jitter,
        sigma,
    } = *params;
    assert!(dim > 0 && num_classes > 0);

    let mut histograms = Vec::with_capacity(num_classes * per_class);
    let mut labels = Vec::with_capacity(num_classes * per_class);
    for class in 0..num_classes {
        let base = (class as f64 + 0.5) * dim as f64 / num_classes as f64;
        for _ in 0..per_class {
            let center = sample_normal(rng).mul_add(center_jitter, base);
            let spread = sigma * rng.gen_range(0.8..1.25);
            let inv = 1.0 / (2.0 * spread * spread);
            let bins: Vec<f64> = (0..dim)
                .map(|bin| {
                    let d = bin as f64 - center;
                    (-d * d * inv).exp() + 1e-6
                })
                .collect();
            // lint: allow(panic): the additive floor guarantees strictly positive mass
            histograms.push(Histogram::normalized(bins).expect("floor guarantees mass"));
            labels.push(class as u32);
        }
    }

    Dataset {
        name: format!("gaussian-{dim}"),
        histograms,
        labels,
        // lint: allow(panic): generator parameters guarantee dim > 0
        cost: ground::linear(dim).expect("dim > 0"),
        positions: Some(ground::linear_positions(dim)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_consistent_dataset() {
        let params = GaussianParams {
            dim: 16,
            num_classes: 2,
            per_class: 10,
            ..GaussianParams::default()
        };
        let dataset = generate(&params, &mut StdRng::seed_from_u64(0));
        assert_eq!(dataset.len(), 20);
        assert_eq!(dataset.dim(), 16);
        dataset.validate().unwrap();
    }

    #[test]
    fn classes_occupy_distinct_regions() {
        let params = GaussianParams {
            dim: 32,
            num_classes: 2,
            per_class: 20,
            center_jitter: 0.5,
            sigma: 1.5,
        };
        let dataset = generate(&params, &mut StdRng::seed_from_u64(1));
        // Class 0 peaks near bin 8, class 1 near bin 24.
        for (h, &label) in dataset.histograms.iter().zip(&dataset.labels) {
            let peak = h
                .bins()
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap();
            if label == 0 {
                assert!(peak < 16, "class 0 peak at {peak}");
            } else {
                assert!(peak >= 16, "class 1 peak at {peak}");
            }
        }
    }
}
