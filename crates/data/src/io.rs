//! Dataset (de)serialization.
//!
//! Corpora and workloads are stored as JSON so experiment runs are
//! reproducible and individual artifacts can be inspected by hand.

use crate::dataset::{Dataset, ValidateError};
use crate::workload::Workload;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// IO/parse error wrapper. Every variant names the file it failed on —
/// a bare "No such file or directory" from a pipeline that touches a
/// dataset, a workload and an index is useless without the path.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io {
        /// The file the operation touched.
        path: PathBuf,
        /// The underlying OS error.
        source: io::Error,
    },
    /// JSON (de)serialization failure.
    Json {
        /// The file being (de)serialized.
        path: PathBuf,
        /// The underlying parse/serialize error.
        source: serde_json::Error,
    },
    /// The payload parsed but is internally inconsistent.
    Invalid(ValidateError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io { path, source } => {
                write!(f, "io error on {}: {source}", path.display())
            }
            IoError::Json { path, source } => {
                write!(f, "json error in {}: {source}", path.display())
            }
            IoError::Invalid(source) => write!(f, "invalid dataset: {source}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io { source, .. } => Some(source),
            IoError::Json { source, .. } => Some(source),
            IoError::Invalid(source) => Some(source),
        }
    }
}

impl IoError {
    fn io(path: &Path, source: io::Error) -> Self {
        IoError::Io {
            path: path.to_path_buf(),
            source,
        }
    }

    fn json(path: &Path, source: serde_json::Error) -> Self {
        IoError::Json {
            path: path.to_path_buf(),
            source,
        }
    }
}

/// Save a dataset as JSON.
///
/// # Errors
///
/// Returns [`IoError`] when serialization fails or the file cannot be
/// written.
pub fn save(dataset: &Dataset, path: &Path) -> Result<(), IoError> {
    let bytes = serde_json::to_vec(dataset).map_err(|e| IoError::json(path, e))?;
    fs::write(path, bytes).map_err(|e| IoError::io(path, e))
}

/// Load and validate a dataset from JSON.
///
/// # Errors
///
/// Returns [`IoError`] when the file cannot be read, is not valid JSON, or
/// fails [`Dataset::validate`].
pub fn load(path: &Path) -> Result<Dataset, IoError> {
    let bytes = fs::read(path).map_err(|e| IoError::io(path, e))?;
    let dataset: Dataset = serde_json::from_slice(&bytes).map_err(|e| IoError::json(path, e))?;
    dataset.validate().map_err(IoError::Invalid)?;
    Ok(dataset)
}

/// Save a workload as JSON.
///
/// # Errors
///
/// Returns [`IoError`] when serialization fails or the file cannot be
/// written.
pub fn save_workload(workload: &Workload, path: &Path) -> Result<(), IoError> {
    let bytes = serde_json::to_vec(workload).map_err(|e| IoError::json(path, e))?;
    fs::write(path, bytes).map_err(|e| IoError::io(path, e))
}

/// Load a workload from JSON.
///
/// # Errors
///
/// Returns [`IoError`] when the file cannot be read or is not valid JSON.
pub fn load_workload(path: &Path) -> Result<Workload, IoError> {
    let bytes = fs::read(path).map_err(|e| IoError::io(path, e))?;
    serde_json::from_slice(&bytes).map_err(|e| IoError::json(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{self, GaussianParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dataset_roundtrip() {
        let params = GaussianParams {
            dim: 8,
            num_classes: 2,
            per_class: 3,
            ..GaussianParams::default()
        };
        let dataset = gaussian::generate(&params, &mut StdRng::seed_from_u64(0));
        let dir = std::env::temp_dir().join("flexemd-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dataset.json");
        save(&dataset, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(dataset.histograms, loaded.histograms);
        assert_eq!(dataset.labels, loaded.labels);
        assert_eq!(dataset.cost, loaded.cost);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_garbage_and_names_the_file() {
        let dir = std::env::temp_dir().join("flexemd-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"{not json").unwrap();
        let err = load(&path).unwrap_err();
        assert!(matches!(err, IoError::Json { .. }));
        assert!(err.to_string().contains("garbage.json"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_names_the_path() {
        let path = std::env::temp_dir().join("flexemd-io-test/nope.json");
        let err = load(&path).unwrap_err();
        assert!(matches!(err, IoError::Io { .. }));
        assert!(err.to_string().contains("nope.json"), "{err}");
    }

    #[test]
    fn error_source_is_exposed() {
        use std::error::Error;
        let path = std::env::temp_dir().join("flexemd-io-test/nope.json");
        let err = load(&path).unwrap_err();
        assert!(err.source().is_some());
    }
}
