//! Dataset (de)serialization.
//!
//! Corpora and workloads are stored as JSON so experiment runs are
//! reproducible and individual artifacts can be inspected by hand.

use crate::dataset::Dataset;
use crate::workload::Workload;
use std::fs;
use std::io;
use std::path::Path;

/// IO/parse error wrapper.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// The payload parsed but is internally inconsistent.
    Invalid(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::Invalid(msg) => write!(f, "invalid dataset: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Save a dataset as JSON.
///
/// # Errors
///
/// Returns [`IoError`] when serialization fails or the file cannot be
/// written.
pub fn save(dataset: &Dataset, path: &Path) -> Result<(), IoError> {
    Ok(fs::write(path, serde_json::to_vec(dataset)?)?)
}

/// Load and validate a dataset from JSON.
///
/// # Errors
///
/// Returns [`IoError`] when the file cannot be read, is not valid JSON, or
/// fails [`Dataset::validate`].
pub fn load(path: &Path) -> Result<Dataset, IoError> {
    let dataset: Dataset = serde_json::from_slice(&fs::read(path)?)?;
    dataset.validate().map_err(IoError::Invalid)?;
    Ok(dataset)
}

/// Save a workload as JSON.
///
/// # Errors
///
/// Returns [`IoError`] when serialization fails or the file cannot be
/// written.
pub fn save_workload(workload: &Workload, path: &Path) -> Result<(), IoError> {
    Ok(fs::write(path, serde_json::to_vec(workload)?)?)
}

/// Load a workload from JSON.
///
/// # Errors
///
/// Returns [`IoError`] when the file cannot be read or is not valid JSON.
pub fn load_workload(path: &Path) -> Result<Workload, IoError> {
    Ok(serde_json::from_slice(&fs::read(path)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{self, GaussianParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dataset_roundtrip() {
        let params = GaussianParams {
            dim: 8,
            num_classes: 2,
            per_class: 3,
            ..GaussianParams::default()
        };
        let dataset = gaussian::generate(&params, &mut StdRng::seed_from_u64(0));
        let dir = std::env::temp_dir().join("flexemd-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dataset.json");
        save(&dataset, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(dataset.histograms, loaded.histograms);
        assert_eq!(dataset.labels, loaded.labels);
        assert_eq!(dataset.cost, loaded.cost);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("flexemd-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"{not json").unwrap();
        assert!(matches!(load(&path).unwrap_err(), IoError::Json(_)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file() {
        let path = std::env::temp_dir().join("flexemd-io-test/nope.json");
        assert!(matches!(load(&path).unwrap_err(), IoError::Io(_)));
    }
}
