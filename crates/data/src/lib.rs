#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # emd-data
//!
//! Synthetic multimedia data sets, query workloads and dataset IO for the
//! EMD retrieval experiments.
//!
//! The paper evaluates on real image corpora (retina images with spatial
//! grid features; medical radiographs with high-dimensional histograms)
//! that are not redistributable. The generators here *simulate* those
//! corpora: what the filters and reductions actually consume is a set of
//! `(histogram, cost matrix)` pairs whose mass is spatially correlated in
//! the ground-distance geometry and clustered by class — exactly the
//! properties these generators reproduce (see DESIGN.md, "Substitutions").
//!
//! * [`tiling`] — RETINA-style images: Gaussian blobs splatted onto a
//!   `width x height` spatial tiling (default 12x8 = 96 dimensions).
//! * [`color`] — IRMA/color-retrieval-style images: class-template color
//!   mixtures quantized into an `n^3` color-cube histogram.
//! * [`gaussian`] — 1-D mixture histograms over a chain; small and fast,
//!   used by examples and tests.
//! * [`workload`] — k-NN and range-query workloads with paper-style
//!   epsilon calibration (Definition 6).
//! * [`Dataset`] / [`io`] — a bundled corpus (histograms + labels + ground
//!   distance) with JSON (de)serialization.
//!
//! Data generation is seeded and deterministic; it performs no queries
//! and carries no `emd-obs` instrumentation.

pub mod color;
mod dataset;
pub mod gaussian;
pub mod io;
pub mod tiling;
mod util;
pub mod workload;

pub use dataset::{Dataset, ValidateError};
pub use workload::Workload;
