//! RETINA-style synthetic corpus: spatial grid-tiling features.
//!
//! Simulates the application domain of reference \[14\] that the paper
//! generalizes: images carved into a `width x height` tiling (12x8 in
//! \[14\]), with one feature dimension per tile and a Euclidean ground
//! distance between tile centers.
//!
//! The generative model: every class owns a template of Gaussian blobs
//! ("lesions"/"structures") at fixed image positions; each instance
//! jitters the blob centers, weights and spreads, then splats the blob
//! mass onto the tiling and normalizes. Mass is therefore concentrated on
//! spatially *adjacent* tiles — the correlation structure that makes
//! cross-bin distances (and their reductions) meaningful.

use crate::dataset::Dataset;
use crate::util::sample_normal;
use emd_core::{ground, Histogram};
use rand::Rng;

/// Parameters of the tiling corpus generator.
#[derive(Debug, Clone)]
pub struct TilingParams {
    /// Tiles per row (default 12, as in \[14\]).
    pub width: usize,
    /// Tiles per column (default 8).
    pub height: usize,
    /// Number of object classes.
    pub num_classes: usize,
    /// Objects generated per class.
    pub per_class: usize,
    /// Gaussian blobs per class template.
    pub blobs_per_class: usize,
    /// Standard deviation (in tiles) of per-instance blob center jitter.
    pub center_jitter: f64,
    /// Base spatial spread (in tiles) of each blob.
    pub blob_sigma: f64,
}

impl Default for TilingParams {
    fn default() -> Self {
        TilingParams {
            width: 12,
            height: 8,
            num_classes: 10,
            per_class: 100,
            blobs_per_class: 3,
            center_jitter: 0.8,
            blob_sigma: 1.2,
        }
    }
}

/// Generate a tiling corpus. Deterministic for a fixed RNG.
#[allow(clippy::expect_used)]
pub fn generate(params: &TilingParams, rng: &mut impl Rng) -> Dataset {
    let TilingParams {
        width,
        height,
        num_classes,
        per_class,
        blobs_per_class,
        center_jitter,
        blob_sigma,
    } = *params;
    assert!(width > 0 && height > 0 && num_classes > 0 && blobs_per_class > 0);

    // Class templates: blob centers and weights.
    let templates: Vec<Vec<(f64, f64, f64)>> = (0..num_classes)
        .map(|_| {
            (0..blobs_per_class)
                .map(|_| {
                    (
                        rng.gen_range(0.0..width as f64),
                        rng.gen_range(0.0..height as f64),
                        rng.gen_range(0.5..1.5),
                    )
                })
                .collect()
        })
        .collect();

    let dim = width * height;
    let mut histograms = Vec::with_capacity(num_classes * per_class);
    let mut labels = Vec::with_capacity(num_classes * per_class);
    let mut bins = vec![0.0f64; dim];
    for (class, template) in templates.iter().enumerate() {
        for _ in 0..per_class {
            bins.iter_mut().for_each(|b| *b = 0.0);
            for &(cx, cy, weight) in template {
                let x = sample_normal(rng).mul_add(center_jitter, cx);
                let y = sample_normal(rng).mul_add(center_jitter, cy);
                let sigma = blob_sigma * rng.gen_range(0.8..1.25);
                let w = weight * rng.gen_range(0.7..1.3);
                splat(&mut bins, width, height, x, y, sigma, w);
            }
            // A faint uniform floor keeps pathological all-zero instances
            // impossible and mimics sensor background.
            for b in bins.iter_mut() {
                *b += 1e-4;
            }
            histograms
                // lint: allow(panic): the additive floor guarantees strictly positive mass
                .push(Histogram::normalized(bins.clone()).expect("floor guarantees mass"));
            labels.push(class as u32);
        }
    }

    Dataset {
        name: format!("tiling-{width}x{height}"),
        histograms,
        labels,
        cost: ground::grid2(width, height, ground::Metric::Euclidean)
            // lint: allow(panic): generator parameters guarantee non-zero grid sides
            .expect("valid grid dimensions"),
        positions: Some(ground::grid2_positions(width, height)),
    }
}

/// Splat a Gaussian blob onto the tiling (truncated at 3 sigma).
fn splat(bins: &mut [f64], width: usize, height: usize, x: f64, y: f64, sigma: f64, weight: f64) {
    let radius = (3.0 * sigma).ceil() as isize;
    let cx = x.round() as isize;
    let cy = y.round() as isize;
    let inv = 1.0 / (2.0 * sigma * sigma);
    for ty in (cy - radius).max(0)..=(cy + radius).min(height as isize - 1) {
        for tx in (cx - radius).max(0)..=(cx + radius).min(width as isize - 1) {
            let dx = tx as f64 - x;
            let dy = ty as f64 - y;
            bins[ty as usize * width + tx as usize] +=
                weight * (-dx.mul_add(dx, dy * dy) * inv).exp();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_params() -> TilingParams {
        TilingParams {
            width: 6,
            height: 4,
            num_classes: 3,
            per_class: 5,
            blobs_per_class: 2,
            blob_sigma: 0.8,
            ..TilingParams::default()
        }
    }

    #[test]
    fn generates_consistent_dataset() {
        let mut rng = StdRng::seed_from_u64(1);
        let dataset = generate(&small_params(), &mut rng);
        assert_eq!(dataset.len(), 15);
        assert_eq!(dataset.dim(), 24);
        dataset.validate().unwrap();
        assert!(dataset.cost.is_metric(1e-9));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(&small_params(), &mut StdRng::seed_from_u64(7));
        let b = generate(&small_params(), &mut StdRng::seed_from_u64(7));
        assert_eq!(a.histograms, b.histograms);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn mass_is_spatially_concentrated() {
        // With few blobs, a handful of tiles should carry most mass.
        let mut rng = StdRng::seed_from_u64(3);
        let dataset = generate(&small_params(), &mut rng);
        for h in &dataset.histograms {
            let mut masses: Vec<f64> = h.bins().to_vec();
            masses.sort_by(|a, b| b.total_cmp(a));
            let top_quarter: f64 = masses[..masses.len() / 4].iter().sum();
            assert!(
                top_quarter > 0.5,
                "top quarter of tiles carries {top_quarter}"
            );
        }
    }

    #[test]
    fn same_class_objects_are_closer_on_average() {
        let mut rng = StdRng::seed_from_u64(5);
        let dataset = generate(&small_params(), &mut rng);
        let mut within = (0.0, 0usize);
        let mut across = (0.0, 0usize);
        for i in 0..dataset.len() {
            for j in (i + 1)..dataset.len() {
                let d = emd_core::emd(
                    &dataset.histograms[i],
                    &dataset.histograms[j],
                    &dataset.cost,
                )
                .unwrap();
                if dataset.labels[i] == dataset.labels[j] {
                    within = (within.0 + d, within.1 + 1);
                } else {
                    across = (across.0 + d, across.1 + 1);
                }
            }
        }
        let mean_within = within.0 / within.1 as f64;
        let mean_across = across.0 / across.1 as f64;
        assert!(
            mean_within < mean_across,
            "within {mean_within} !< across {mean_across}"
        );
    }
}
