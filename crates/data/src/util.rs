//! Small sampling helpers shared by the generators.
//!
//! Kept dependency-free (Box-Muller over `rand`'s uniform source) so the
//! workspace stays on its allowed dependency list.

use rand::Rng;

/// One standard normal sample via Box-Muller.
pub fn sample_normal(rng: &mut impl Rng) -> f64 {
    // u1 bounded away from zero to avoid ln(0).
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roughly_standard_normal() {
        let mut rng = StdRng::seed_from_u64(1234);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let variance: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((variance - 1.0).abs() < 0.1, "variance {variance}");
    }
}
