//! Query workloads (Definition 6 of the paper).
//!
//! A workload `w = {(x_1, eps_1), ..., (x_t, eps_t)}` pairs query vectors
//! with range thresholds. k-NN experiments use the queries alone; range
//! experiments calibrate each `eps_i` as the exact k-th nearest-neighbor
//! distance of `x_i` in the database, so a range query returns the same
//! result set as the k-NN query (Section 4's correspondence).

use emd_core::{emd, CoreError, CostMatrix, Histogram};

/// A query workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Query histograms.
    pub queries: Vec<Histogram>,
    /// Range thresholds; empty for pure k-NN workloads.
    pub epsilons: Vec<f64>,
}

serde::impl_serde_struct!(Workload { queries, epsilons });

impl Workload {
    /// A k-NN workload: queries without thresholds.
    pub fn knn(queries: Vec<Histogram>) -> Self {
        Workload {
            queries,
            epsilons: Vec::new(),
        }
    }

    /// Calibrate range thresholds: `eps_i` = exact EMD of the k-th nearest
    /// database neighbor of query `i`. Costs `|queries| * |database|`
    /// exact EMD computations — a one-off workload-construction step, as
    /// in the paper's experimental setup.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when `k` is zero or exceeds the database size, or
    /// when an exact EMD computation fails during calibration.
    pub fn range_from_knn(
        queries: Vec<Histogram>,
        database: &[Histogram],
        cost: &CostMatrix,
        k: usize,
    ) -> Result<Self, CoreError> {
        assert!(k >= 1, "k-th neighbor needs k >= 1");
        assert!(
            database.len() >= k,
            "database of {} cannot have a {k}-th neighbor",
            database.len()
        );
        let mut epsilons = Vec::with_capacity(queries.len());
        let mut distances = Vec::with_capacity(database.len());
        for query in &queries {
            distances.clear();
            for object in database {
                distances.push(emd(query, object, cost)?);
            }
            // k-th smallest (1-based) via partial selection.
            let (_, kth, _) = distances.select_nth_unstable_by(k - 1, f64::total_cmp);
            epsilons.push(*kth);
        }
        Ok(Workload { queries, epsilons })
    }

    /// Iterate `(query, epsilon)` pairs; panics if the workload has no
    /// thresholds.
    pub fn ranges(&self) -> impl Iterator<Item = (&Histogram, f64)> + '_ {
        assert_eq!(
            self.queries.len(),
            self.epsilons.len(),
            "range iteration needs calibrated thresholds"
        );
        self.queries.iter().zip(self.epsilons.iter().copied())
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_core::ground;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    #[test]
    fn epsilon_is_kth_neighbor_distance() {
        let database = vec![
            h(&[1.0, 0.0, 0.0, 0.0]), // distance 0 to the query
            h(&[0.0, 1.0, 0.0, 0.0]), // distance 1
            h(&[0.0, 0.0, 1.0, 0.0]), // distance 2
            h(&[0.0, 0.0, 0.0, 1.0]), // distance 3
        ];
        let cost = ground::linear(4).unwrap();
        let query = h(&[1.0, 0.0, 0.0, 0.0]);
        let workload = Workload::range_from_knn(vec![query], &database, &cost, 3).unwrap();
        assert!((workload.epsilons[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn range_query_with_calibrated_epsilon_returns_k_objects() {
        let database = vec![
            h(&[1.0, 0.0, 0.0]),
            h(&[0.5, 0.5, 0.0]),
            h(&[0.0, 0.5, 0.5]),
            h(&[0.0, 0.0, 1.0]),
        ];
        let cost = ground::linear(3).unwrap();
        let query = h(&[0.9, 0.1, 0.0]);
        let k = 2;
        let workload = Workload::range_from_knn(vec![query.clone()], &database, &cost, k).unwrap();
        let eps = workload.epsilons[0];
        let within = database
            .iter()
            .filter(|object| emd(&query, object, &cost).unwrap() <= eps)
            .count();
        // At least k objects (ties may add more).
        assert!(within >= k);
    }

    #[test]
    fn knn_workload_has_no_thresholds() {
        let workload = Workload::knn(vec![h(&[1.0, 0.0])]);
        assert_eq!(workload.len(), 1);
        assert!(workload.epsilons.is_empty());
    }

    #[test]
    #[should_panic(expected = "range iteration needs calibrated thresholds")]
    fn ranges_panics_without_thresholds() {
        let workload = Workload::knn(vec![h(&[1.0, 0.0])]);
        let _ = workload.ranges().count();
    }
}
