#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # emd-faultkit
//!
//! Deterministic, zero-dependency fault injection for the flexemd stack.
//!
//! Production failure paths — a disk read that errors mid-open, a solver
//! that runs out of budget, a worker thread that panics — are rare in tests
//! precisely because tests run on healthy machines. This crate makes those
//! paths *reachable on demand*: a [`FaultInjector`] is threaded (behind an
//! `Option`/default no-op) through the store reader, the transport solver
//! entry, and the batch executor, and a [`FailPlan`] decides, purely from
//! per-site atomic counters, whether the *k*-th occurrence of a site should
//! fail.
//!
//! Everything is deterministic: the same plan against the same call
//! sequence injects the same faults, so every injected failure is a
//! reproducible test case. [`FailPlan::from_seed`] derives a plan from a
//! single `u64` so property tests can sweep fault schedules the same way
//! they sweep inputs.
//!
//! The crate deliberately knows nothing about the rest of the workspace:
//! sites and faults are plain enums, and consumers map [`Fault`]s onto
//! their own typed errors (`StoreError::Io`, `TransportError::BudgetExhausted`,
//! `QueryError::WorkerPanicked`).

use std::sync::atomic::{AtomicU64, Ordering};

/// A place in the engine where a fault can be injected.
///
/// Each site corresponds to one instrumented code path; consumers call
/// [`FaultInjector::check`] with the site they are about to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// A store-layer file read (manifest or segment). Occurrences are
    /// counted in the order the reader issues them.
    StoreRead,
    /// Entry into a transport solve (simplex or SSP). Occurrences are
    /// counted per [`FaultInjector`] across all solves it observes.
    Solve,
    /// A batch-executor worker, identified by its chunk index.
    Worker(usize),
    /// A WAL record append (the write of one framed record). Occurrences
    /// are counted in append order.
    WalAppend,
    /// A WAL sync point (the fsync that makes appended records durable).
    /// Occurrences are counted in sync order.
    WalSync,
    /// A compaction run (folding the WAL tail into a sealed segment).
    /// Occurrences are counted per compaction attempt.
    Compact,
}

/// The fault an injector asks a site to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the operation with an I/O error (store reads).
    Io,
    /// Report the solver budget as exhausted (transport solves).
    BudgetExhausted,
    /// Panic inside the worker (batch executor); the payload is an
    /// [`InjectedPanic`] so harnesses can tell injected panics from real
    /// ones.
    Panic,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io => write!(f, "io"),
            Self::BudgetExhausted => write!(f, "budget-exhausted"),
            Self::Panic => write!(f, "panic"),
        }
    }
}

/// Decides whether the operation at `site` should fail.
///
/// Implementations must be cheap and thread-safe: the check sits on hot
/// paths (solver entries, segment reads) guarded only by an `Option`.
pub trait FaultInjector: Send + Sync + std::fmt::Debug {
    /// Called immediately before the instrumented operation runs.
    ///
    /// Returns `Some(fault)` if this occurrence should fail, `None` to let
    /// it proceed. Implementations may advance internal counters on every
    /// call, so a site must be checked exactly once per occurrence.
    fn check(&self, site: Site) -> Option<Fault>;
}

/// The no-op injector: never injects anything.
///
/// Used as the default wherever a `&dyn FaultInjector` is required but no
/// plan is active.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn check(&self, _site: Site) -> Option<Fault> {
        None
    }
}

/// Panic payload used by injected worker panics.
///
/// Harnesses (the CLI panic hook, the executor's `catch_unwind`) downcast
/// panic payloads to this type to distinguish an injected panic from a
/// genuine bug, so only injected panics are silenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedPanic {
    /// The worker (chunk index) the panic was injected into.
    pub worker: usize,
}

impl InjectedPanic {
    /// Builds the payload for a panic injected into worker `worker`.
    #[must_use]
    pub fn new(worker: usize) -> Self {
        Self { worker }
    }
}

impl std::fmt::Display for InjectedPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected panic in worker {}", self.worker)
    }
}

/// A deterministic fault schedule: fail the `k`-th read, exhaust the
/// `j`-th solve, panic in worker `w`.
///
/// Occurrence indices are 1-based (`fail_read(1)` fails the first read).
/// Counters are per-plan atomics, so one plan tracks one engine run; build
/// a fresh plan (or the same seed again) to replay the schedule.
#[derive(Debug, Default)]
pub struct FailPlan {
    fail_read: Option<u64>,
    exhaust_solve: Option<u64>,
    panic_worker: Option<usize>,
    fail_wal_append: Option<u64>,
    fail_wal_sync: Option<u64>,
    fail_compact: Option<u64>,
    reads: AtomicU64,
    solves: AtomicU64,
    wal_appends: AtomicU64,
    wal_syncs: AtomicU64,
    compacts: AtomicU64,
}

impl FailPlan {
    /// An empty plan that injects nothing until configured.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fail the `k`-th store read (1-based) with [`Fault::Io`].
    #[must_use]
    pub fn fail_read(mut self, k: u64) -> Self {
        self.fail_read = Some(k);
        self
    }

    /// Inject [`Fault::BudgetExhausted`] at the `j`-th transport solve
    /// (1-based).
    #[must_use]
    pub fn exhaust_solve(mut self, j: u64) -> Self {
        self.exhaust_solve = Some(j);
        self
    }

    /// Panic in batch worker `w` (every query that worker runs).
    #[must_use]
    pub fn panic_worker(mut self, w: usize) -> Self {
        self.panic_worker = Some(w);
        self
    }

    /// Fail the `k`-th WAL record append (1-based) with [`Fault::Io`].
    #[must_use]
    pub fn fail_wal_append(mut self, k: u64) -> Self {
        self.fail_wal_append = Some(k);
        self
    }

    /// Fail the `k`-th WAL sync point (1-based) with [`Fault::Io`].
    #[must_use]
    pub fn fail_wal_sync(mut self, k: u64) -> Self {
        self.fail_wal_sync = Some(k);
        self
    }

    /// Fail the `k`-th compaction run (1-based) with [`Fault::Io`].
    #[must_use]
    pub fn fail_compact(mut self, k: u64) -> Self {
        self.fail_compact = Some(k);
        self
    }

    /// Derives a plan from a seed, for property-test sweeps.
    ///
    /// The seed is expanded with a splitmix64 chain into six independent
    /// draws: which read to fail (1..=8), which solve to exhaust (1..=8),
    /// which worker to panic (0..=3), which WAL append to fail (1..=8),
    /// which WAL sync to fail (1..=8), and which compaction to fail
    /// (1..=4). Each failpoint is armed with probability 1/2, so seeds
    /// cover every subset of the six faults. The first three draws use
    /// exactly the sequence earlier releases used, so a seed arms the
    /// same read/solve/panic schedule it always did.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut draw = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut plan = Self::new();
        let (arm_read, read_k) = (draw() % 2 == 0, draw() % 8 + 1);
        let (arm_solve, solve_j) = (draw() % 2 == 0, draw() % 8 + 1);
        let (arm_panic, worker_w) = (draw() % 2 == 0, draw() % 4);
        let (arm_append, append_k) = (draw() % 2 == 0, draw() % 8 + 1);
        let (arm_sync, sync_k) = (draw() % 2 == 0, draw() % 8 + 1);
        let (arm_compact, compact_k) = (draw() % 2 == 0, draw() % 4 + 1);
        if arm_read {
            plan = plan.fail_read(read_k);
        }
        if arm_solve {
            plan = plan.exhaust_solve(solve_j);
        }
        if arm_panic {
            plan = plan.panic_worker(usize::try_from(worker_w).unwrap_or(0));
        }
        if arm_append {
            plan = plan.fail_wal_append(append_k);
        }
        if arm_sync {
            plan = plan.fail_wal_sync(sync_k);
        }
        if arm_compact {
            plan = plan.fail_compact(compact_k);
        }
        plan
    }

    /// True if the plan has no armed failpoints.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fail_read.is_none()
            && self.exhaust_solve.is_none()
            && self.panic_worker.is_none()
            && self.fail_wal_append.is_none()
            && self.fail_wal_sync.is_none()
            && self.fail_compact.is_none()
    }

    /// Number of store reads observed so far.
    #[must_use]
    pub fn reads_seen(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of transport solves observed so far.
    #[must_use]
    pub fn solves_seen(&self) -> u64 {
        self.solves.load(Ordering::Relaxed)
    }

    /// Number of WAL record appends observed so far.
    #[must_use]
    pub fn wal_appends_seen(&self) -> u64 {
        self.wal_appends.load(Ordering::Relaxed)
    }

    /// Number of WAL sync points observed so far.
    #[must_use]
    pub fn wal_syncs_seen(&self) -> u64 {
        self.wal_syncs.load(Ordering::Relaxed)
    }

    /// Number of compaction runs observed so far.
    #[must_use]
    pub fn compacts_seen(&self) -> u64 {
        self.compacts.load(Ordering::Relaxed)
    }
}

impl FaultInjector for FailPlan {
    fn check(&self, site: Site) -> Option<Fault> {
        match site {
            Site::StoreRead => {
                let seen = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
                (self.fail_read == Some(seen)).then_some(Fault::Io)
            }
            Site::Solve => {
                let seen = self.solves.fetch_add(1, Ordering::Relaxed) + 1;
                (self.exhaust_solve == Some(seen)).then_some(Fault::BudgetExhausted)
            }
            Site::Worker(w) => (self.panic_worker == Some(w)).then_some(Fault::Panic),
            Site::WalAppend => {
                let seen = self.wal_appends.fetch_add(1, Ordering::Relaxed) + 1;
                (self.fail_wal_append == Some(seen)).then_some(Fault::Io)
            }
            Site::WalSync => {
                let seen = self.wal_syncs.fetch_add(1, Ordering::Relaxed) + 1;
                (self.fail_wal_sync == Some(seen)).then_some(Fault::Io)
            }
            Site::Compact => {
                let seen = self.compacts.fetch_add(1, Ordering::Relaxed) + 1;
                (self.fail_compact == Some(seen)).then_some(Fault::Io)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_never_fires() {
        for site in [
            Site::StoreRead,
            Site::Solve,
            Site::Worker(0),
            Site::WalAppend,
            Site::WalSync,
            Site::Compact,
        ] {
            assert_eq!(NoFaults.check(site), None);
        }
    }

    #[test]
    fn fail_read_hits_exactly_the_kth_read() {
        let plan = FailPlan::new().fail_read(3);
        assert_eq!(plan.check(Site::StoreRead), None);
        assert_eq!(plan.check(Site::StoreRead), None);
        assert_eq!(plan.check(Site::StoreRead), Some(Fault::Io));
        assert_eq!(plan.check(Site::StoreRead), None);
        assert_eq!(plan.reads_seen(), 4);
    }

    #[test]
    fn exhaust_solve_hits_exactly_the_jth_solve() {
        let plan = FailPlan::new().exhaust_solve(2);
        assert_eq!(plan.check(Site::Solve), None);
        assert_eq!(plan.check(Site::Solve), Some(Fault::BudgetExhausted));
        assert_eq!(plan.check(Site::Solve), None);
        assert_eq!(plan.solves_seen(), 3);
    }

    #[test]
    fn panic_worker_targets_one_worker_repeatedly() {
        let plan = FailPlan::new().panic_worker(1);
        assert_eq!(plan.check(Site::Worker(0)), None);
        assert_eq!(plan.check(Site::Worker(1)), Some(Fault::Panic));
        assert_eq!(plan.check(Site::Worker(1)), Some(Fault::Panic));
        assert_eq!(plan.check(Site::Worker(2)), None);
    }

    #[test]
    fn sites_are_counted_independently() {
        let plan = FailPlan::new().fail_read(1).exhaust_solve(1);
        assert_eq!(plan.check(Site::Solve), Some(Fault::BudgetExhausted));
        assert_eq!(plan.check(Site::StoreRead), Some(Fault::Io));
    }

    #[test]
    fn fail_wal_append_hits_exactly_the_kth_append() {
        let plan = FailPlan::new().fail_wal_append(2);
        assert_eq!(plan.check(Site::WalAppend), None);
        assert_eq!(plan.check(Site::WalAppend), Some(Fault::Io));
        assert_eq!(plan.check(Site::WalAppend), None);
        assert_eq!(plan.wal_appends_seen(), 3);
    }

    #[test]
    fn fail_wal_sync_hits_exactly_the_kth_sync() {
        let plan = FailPlan::new().fail_wal_sync(3);
        assert_eq!(plan.check(Site::WalSync), None);
        assert_eq!(plan.check(Site::WalSync), None);
        assert_eq!(plan.check(Site::WalSync), Some(Fault::Io));
        assert_eq!(plan.check(Site::WalSync), None);
        assert_eq!(plan.wal_syncs_seen(), 4);
    }

    #[test]
    fn fail_compact_hits_exactly_the_kth_run() {
        let plan = FailPlan::new().fail_compact(1);
        assert_eq!(plan.check(Site::Compact), Some(Fault::Io));
        assert_eq!(plan.check(Site::Compact), None);
        assert_eq!(plan.compacts_seen(), 2);
    }

    #[test]
    fn wal_sites_are_counted_independently_of_legacy_sites() {
        let plan = FailPlan::new()
            .fail_read(1)
            .fail_wal_append(1)
            .fail_wal_sync(1)
            .fail_compact(1);
        // WAL-site traffic must not advance the read counter and vice
        // versa: each first occurrence still fires.
        assert_eq!(plan.check(Site::WalAppend), Some(Fault::Io));
        assert_eq!(plan.check(Site::WalSync), Some(Fault::Io));
        assert_eq!(plan.check(Site::Compact), Some(Fault::Io));
        assert_eq!(plan.check(Site::StoreRead), Some(Fault::Io));
        assert_eq!(plan.reads_seen(), 1);
        assert_eq!(plan.wal_appends_seen(), 1);
    }

    #[test]
    fn from_seed_preserves_legacy_draw_sequence() {
        // The first three (arm, value) pairs come from the same splitmix64
        // positions as before the WAL sites existed, so any recorded seed
        // still arms the identical read/solve/panic schedule.
        let mut state = 7u64;
        let mut draw = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let (arm_read, read_k) = (draw() % 2 == 0, draw() % 8 + 1);
        let (arm_solve, solve_j) = (draw() % 2 == 0, draw() % 8 + 1);
        let (arm_panic, worker_w) = (draw() % 2 == 0, draw() % 4);
        let plan = FailPlan::from_seed(7);
        assert_eq!(plan.fail_read, arm_read.then_some(read_k));
        assert_eq!(plan.exhaust_solve, arm_solve.then_some(solve_j));
        assert_eq!(
            plan.panic_worker,
            arm_panic.then_some(usize::try_from(worker_w).unwrap_or(0))
        );
    }

    #[test]
    fn from_seed_covers_wal_failpoints() {
        let plans: Vec<FailPlan> = (0..256u64).map(FailPlan::from_seed).collect();
        assert!(plans.iter().any(|p| p.fail_wal_append.is_some()));
        assert!(plans.iter().any(|p| p.fail_wal_sync.is_some()));
        assert!(plans.iter().any(|p| p.fail_compact.is_some()));
        assert!(plans
            .iter()
            .any(|p| p.fail_wal_append.is_none() && p.fail_wal_sync.is_none()));
    }

    #[test]
    fn from_seed_is_deterministic() {
        for seed in 0..64u64 {
            let a = FailPlan::from_seed(seed);
            let b = FailPlan::from_seed(seed);
            assert_eq!(a.fail_read, b.fail_read);
            assert_eq!(a.exhaust_solve, b.exhaust_solve);
            assert_eq!(a.panic_worker, b.panic_worker);
            assert_eq!(a.fail_wal_append, b.fail_wal_append);
            assert_eq!(a.fail_wal_sync, b.fail_wal_sync);
            assert_eq!(a.fail_compact, b.fail_compact);
        }
    }

    #[test]
    fn from_seed_covers_armed_and_empty_plans() {
        let plans: Vec<FailPlan> = (0..256u64).map(FailPlan::from_seed).collect();
        assert!(plans.iter().any(FailPlan::is_empty));
        assert!(plans.iter().any(|p| p.fail_read.is_some()));
        assert!(plans.iter().any(|p| p.exhaust_solve.is_some()));
        assert!(plans.iter().any(|p| p.panic_worker.is_some()));
    }

    #[test]
    fn injected_panic_formats_worker() {
        assert_eq!(
            InjectedPanic::new(3).to_string(),
            "injected panic in worker 3"
        );
    }
}
