//! Process-wide atomic gauges with RAII add/sub guards.
//!
//! The thread-scoped recording model of this crate fits request-shaped
//! work (record into a scope, harvest at the end), but a long-running
//! server also needs *instantaneous* values that many threads update and
//! one scraper reads: in-flight requests, queue depth, drained state.
//! [`Gauge`] is that primitive — a named, clonable handle over an
//! `AtomicI64` that any thread can [`add`](Gauge::add) to or
//! [`sub`](Gauge::sub) from, with an RAII [`GaugeGuard`] for the
//! dominant "increment now, decrement on every exit path" pattern, and
//! [`publish`](Gauge::publish) to mirror the current value into a
//! [`MetricsRegistry`] at scrape time.
//!
//! Unlike scope-recorded metrics, a `Gauge` lives outside any recording
//! scope: creating or updating one never touches the thread-local
//! registries, so it is safe on paths (an accept loop, a connection
//! handed between threads) where no scope exists.

use crate::registry::MetricsRegistry;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A named process-wide gauge: a clonable handle over a shared atomic
/// value. Clones observe and update the same value.
///
/// ```
/// let inflight = emd_obs::Gauge::new("serve.inflight");
/// {
///     let _permit = inflight.guard(1);
///     assert_eq!(inflight.value(), 1);
/// }
/// assert_eq!(inflight.value(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Gauge {
    name: Arc<str>,
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A new gauge starting at zero.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Gauge {
            name: Arc::from(name),
            value: Arc::new(AtomicI64::new(0)),
        }
    }

    /// The gauge's registry name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add `n` to the gauge, returning the updated value.
    pub fn add(&self, n: i64) -> i64 {
        self.value.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Subtract `n` from the gauge, returning the updated value.
    pub fn sub(&self, n: i64) -> i64 {
        self.value.fetch_sub(n, Ordering::Relaxed) - n
    }

    /// The current value.
    #[must_use]
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Add `n` now and subtract it when the returned guard drops. The
    /// guard is `Send`, so it can travel with the work it accounts for
    /// (e.g. a connection handed from an accept loop to a worker).
    #[must_use = "dropping the guard immediately reverts the add"]
    pub fn guard(&self, n: i64) -> GaugeGuard {
        self.add(n);
        GaugeGuard {
            gauge: self.clone(),
            n,
        }
    }

    /// Write the current value into `registry` under this gauge's name
    /// (scrape-time mirroring; see the module docs).
    pub fn publish(&self, registry: &mut MetricsRegistry) {
        registry.gauge_set(&self.name, self.value() as f64);
    }
}

/// RAII reversal of a [`Gauge::guard`] add: subtracts on drop, on every
/// exit path including panics.
#[derive(Debug)]
pub struct GaugeGuard {
    gauge: Gauge,
    n: i64,
}

impl GaugeGuard {
    /// The gauge this guard accounts against.
    #[must_use]
    pub fn gauge(&self) -> &Gauge {
        &self.gauge
    }
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.gauge.sub(self.n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_and_value() {
        let gauge = Gauge::new("test.gauge");
        assert_eq!(gauge.value(), 0);
        assert_eq!(gauge.add(3), 3);
        assert_eq!(gauge.sub(1), 2);
        assert_eq!(gauge.value(), 2);
        assert_eq!(gauge.name(), "test.gauge");
    }

    #[test]
    fn clones_share_the_value() {
        let gauge = Gauge::new("test.shared");
        let clone = gauge.clone();
        gauge.add(5);
        assert_eq!(clone.value(), 5);
        clone.sub(2);
        assert_eq!(gauge.value(), 3);
    }

    #[test]
    fn guard_reverts_on_drop() {
        let gauge = Gauge::new("test.guarded");
        {
            let _outer = gauge.guard(1);
            let _inner = gauge.guard(2);
            assert_eq!(gauge.value(), 3);
        }
        assert_eq!(gauge.value(), 0);
    }

    #[test]
    fn guard_reverts_on_panic() {
        let gauge = Gauge::new("test.panicky");
        let result = std::panic::catch_unwind({
            let gauge = gauge.clone();
            move || {
                let _permit = gauge.guard(1);
                panic!("boom");
            }
        });
        assert!(result.is_err());
        assert_eq!(gauge.value(), 0);
    }

    #[test]
    fn guards_account_across_threads() {
        let gauge = Gauge::new("test.threads");
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let guard = gauge.guard(1);
                    scope.spawn(move || drop(guard))
                })
                .collect();
            for handle in handles {
                handle.join().expect("worker");
            }
        });
        assert_eq!(gauge.value(), 0);
    }

    #[test]
    fn publish_mirrors_into_a_registry() {
        let gauge = Gauge::new("test.published");
        gauge.add(7);
        let mut registry = MetricsRegistry::new();
        gauge.publish(&mut registry);
        assert_eq!(registry.gauge("test.published"), Some(7.0));
    }
}
