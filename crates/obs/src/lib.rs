#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # emd-obs
//!
//! Zero-dependency observability for the flexemd workspace: a
//! [`MetricsRegistry`] of monotonic counters, log-scale duration
//! histograms and gauges, plus a span-style [`Tracer`] for wall-clock
//! stage timing. The paper's evaluation (Section 5 of Wichterich et al.,
//! SIGMOD 2008) attributes query cost to individual pipeline stages —
//! filter evaluations per stage of the `Red-IM -> Red-EMD -> EMD` chain,
//! exact-EMD refinements, simplex pivots per solve — and this crate is
//! the instrumentation that produces those breakdowns for the
//! reconstructed experiments and the `flexemd --metrics json` CLI.
//!
//! ## Recording model
//!
//! Metrics are recorded into a **per-thread scope**. Nothing is recorded
//! until a thread installs one with [`Recording::start`]; while no scope
//! exists anywhere in the process, every record call is a no-op that
//! costs one relaxed atomic load and one branch — cheap enough for the
//! solver hot paths of `emd-transport`.
//!
//! ```
//! let recording = emd_obs::Recording::start();
//! emd_obs::counter_add("demo.widgets", 3);
//! {
//!     let _span = emd_obs::span("demo.work");
//!     // ... timed work ...
//! }
//! let registry = recording.finish();
//! assert_eq!(registry.counter("demo.widgets"), 3);
//! assert_eq!(registry.histogram("demo.work").map(|h| h.count()), Some(1));
//! ```
//!
//! Scopes nest (the inner scope shadows the outer until finished) and are
//! strictly thread-local: a worker thread spawned while a scope is active
//! records nothing unless it installs its own scope. The query engine's
//! `run_batch` does exactly that — one scope per worker — and merges the
//! per-thread registries in chunk order, so merged counter totals are
//! identical to a sequential run at any thread count (see
//! [`MetricsRegistry::merge`]).
//!
//! ## Determinism contract
//!
//! Recording **never** influences the instrumented computation: enabling
//! or disabling metrics yields bit-identical query results (property
//! tested in `emd-query`). Counter values are deterministic for a
//! deterministic workload; histogram *counts* are deterministic while
//! their bucket placement and sums reflect wall-clock time.
//!
//! ## Export
//!
//! [`MetricsRegistry::to_json_string`] renders a schema-versioned
//! ([`SCHEMA`]) JSON document with keys in sorted (deterministic) order;
//! see `DESIGN.md` §7 for the schema.

mod gauge;
mod registry;
mod tracer;

pub use gauge::{Gauge, GaugeGuard};
pub use registry::{DurationHistogram, MetricsRegistry, SpanEvent, SCHEMA};
pub use tracer::{span, span_with, Span, Tracer};

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of live [`Recording`] scopes across all threads. The hot-path
/// gate: record calls bail out on `0` after one relaxed load.
static ACTIVE_SCOPES: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static LOCAL: RefCell<Option<LocalScope>> = const { RefCell::new(None) };
}

/// The per-thread recording state behind a [`Recording`] guard.
struct LocalScope {
    registry: MetricsRegistry,
    events: bool,
}

/// Whether any thread currently has a recording scope installed.
///
/// This is the cheap global gate instrumented code checks first; it may
/// return `true` on a thread that itself records nothing (the scope lives
/// on another thread).
#[inline]
pub fn enabled() -> bool {
    ACTIVE_SCOPES.load(Ordering::Relaxed) != 0
}

/// Whether the *current thread* has a recording scope installed.
pub fn recording() -> bool {
    enabled() && LOCAL.with(|slot| slot.borrow().is_some())
}

/// Run `f` against the current thread's registry, if one is installed.
pub(crate) fn with_current<F: FnOnce(&mut MetricsRegistry, bool)>(f: F) {
    if !enabled() {
        return;
    }
    LOCAL.with(|slot| {
        if let Ok(mut slot) = slot.try_borrow_mut() {
            if let Some(scope) = slot.as_mut() {
                f(&mut scope.registry, scope.events);
            }
        }
    });
}

/// Add `by` to the monotonic counter `name` in the current scope (no-op
/// without one).
pub fn counter_add(name: &str, by: u64) {
    with_current(|registry, _| registry.counter_add(name, by));
}

/// Set the gauge `name` in the current scope (no-op without one).
pub fn gauge_set(name: &str, value: f64) {
    with_current(|registry, _| registry.gauge_set(name, value));
}

/// Record one duration observation into the histogram `name` in the
/// current scope (no-op without one).
pub fn observe_nanos(name: &str, nanos: u64) {
    with_current(|registry, _| registry.observe_nanos(name, nanos));
}

/// Merge a finished registry (e.g. from a worker thread) into the current
/// scope (no-op without one). Callers control determinism by absorbing in
/// a fixed order — the query engine absorbs per-thread registries in
/// chunk order.
pub fn absorb(other: &MetricsRegistry) {
    with_current(|registry, _| registry.merge(other));
}

/// A live per-thread recording scope. Create with [`Recording::start`],
/// harvest with [`Recording::finish`]. Dropping without finishing
/// discards the recorded metrics and restores the previous scope (scopes
/// nest).
#[derive(Debug)]
pub struct Recording {
    previous: Option<LocalScope>,
    finished: bool,
    /// Scopes are thread-local; keep the guard `!Send` so it is finished
    /// on the thread that started it.
    _not_send: PhantomData<*const ()>,
}

impl std::fmt::Debug for LocalScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalScope")
            .field("events", &self.events)
            .finish_non_exhaustive()
    }
}

impl Recording {
    /// Install a fresh recording scope on this thread.
    #[must_use = "dropping the guard immediately stops recording"]
    pub fn start() -> Self {
        Self::start_inner(false)
    }

    /// Like [`Recording::start`], additionally keeping a per-span event
    /// log ([`MetricsRegistry::events`]) in completion order. Costs one
    /// allocation per span; intended for single-query traces, not batch
    /// throughput runs.
    #[must_use = "dropping the guard immediately stops recording"]
    pub fn with_events() -> Self {
        Self::start_inner(true)
    }

    fn start_inner(events: bool) -> Self {
        let previous = LOCAL.with(|slot| {
            slot.borrow_mut().replace(LocalScope {
                registry: MetricsRegistry::new(),
                events,
            })
        });
        ACTIVE_SCOPES.fetch_add(1, Ordering::Relaxed);
        Recording {
            previous,
            finished: false,
            _not_send: PhantomData,
        }
    }

    /// End the scope and return everything recorded on this thread while
    /// it was active. The previously installed scope (if any) resumes.
    pub fn finish(mut self) -> MetricsRegistry {
        self.finished = true;
        self.teardown()
            .map_or_else(MetricsRegistry::new, |scope| scope.registry)
    }

    fn teardown(&mut self) -> Option<LocalScope> {
        ACTIVE_SCOPES.fetch_sub(1, Ordering::Relaxed);
        LOCAL.with(|slot| {
            let mut slot = slot.borrow_mut();
            let current = slot.take();
            *slot = self.previous.take();
            current
        })
    }
}

impl Drop for Recording {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.teardown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_scope_records_nothing() {
        counter_add("lib.orphan", 1);
        let recording = Recording::start();
        let registry = recording.finish();
        assert_eq!(registry.counter("lib.orphan"), 0);
    }

    #[test]
    fn scope_captures_and_restores() {
        let outer = Recording::start();
        counter_add("lib.outer", 1);
        {
            let inner = Recording::start();
            counter_add("lib.inner", 2);
            let inner_registry = inner.finish();
            assert_eq!(inner_registry.counter("lib.inner"), 2);
            assert_eq!(inner_registry.counter("lib.outer"), 0);
        }
        counter_add("lib.outer", 1);
        let registry = outer.finish();
        assert_eq!(registry.counter("lib.outer"), 2);
        assert_eq!(registry.counter("lib.inner"), 0);
    }

    #[test]
    fn dropped_scope_discards_and_restores() {
        let outer = Recording::start();
        {
            let _inner = Recording::start();
            counter_add("lib.dropped", 7);
        }
        counter_add("lib.kept", 1);
        let registry = outer.finish();
        assert_eq!(registry.counter("lib.dropped"), 0);
        assert_eq!(registry.counter("lib.kept"), 1);
    }

    #[test]
    fn scopes_are_thread_local() {
        let recording = Recording::start();
        std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    // Global flag is on, but this thread has no scope.
                    assert!(enabled());
                    assert!(!crate::recording());
                    counter_add("lib.worker", 5);
                    let worker = Recording::start();
                    counter_add("lib.worker", 5);
                    let registry = worker.finish();
                    assert_eq!(registry.counter("lib.worker"), 5);
                })
                .join()
                .expect("worker thread");
        });
        let registry = recording.finish();
        assert_eq!(registry.counter("lib.worker"), 0);
    }

    #[test]
    fn absorb_merges_into_current_scope() {
        let mut other = MetricsRegistry::new();
        other.counter_add("lib.absorbed", 4);
        let recording = Recording::start();
        counter_add("lib.absorbed", 1);
        absorb(&other);
        let registry = recording.finish();
        assert_eq!(registry.counter("lib.absorbed"), 5);
    }
}
