//! The metrics registry: counters, gauges, log-scale duration histograms
//! and the optional span event log, with deterministic merge and a
//! schema-versioned JSON export.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema identifier stamped into every JSON export. Bump the suffix on
/// any backwards-incompatible change to the document layout.
pub const SCHEMA: &str = "flexemd-metrics/v1";

/// Number of log2 buckets in a [`DurationHistogram`]. Bucket `k` covers
/// `[2^k, 2^(k+1))` nanoseconds (bucket 0 additionally covers 0), so 48
/// buckets span sub-nanosecond to ~3.2 days — far beyond any single query.
const BUCKETS: usize = 48;

/// A fixed-layout duration histogram with log2-scale buckets.
///
/// The layout is fixed (no dynamic rebinning) so that merging two
/// histograms is a plain element-wise sum — associative, commutative and
/// exact — which is what makes parallel batch execution produce the same
/// merged registry counts as a sequential run.
#[derive(Debug, Clone, PartialEq)]
pub struct DurationHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_nanos: u128,
    min_nanos: u64,
    max_nanos: u64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_nanos: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
        }
    }
}

/// Bucket index for a duration: floor(log2(nanos)), clamped to the fixed
/// bucket range; zero durations land in bucket 0.
fn bucket_index(nanos: u64) -> usize {
    if nanos == 0 {
        0
    } else {
        ((63 - nanos.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

impl DurationHistogram {
    /// Record one observation.
    pub fn record(&mut self, nanos: u64) {
        if let Some(slot) = self.counts.get_mut(bucket_index(nanos)) {
            *slot += 1;
        }
        self.count += 1;
        self.sum_nanos += u128::from(nanos);
        self.min_nanos = self.min_nanos.min(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed durations in nanoseconds.
    pub fn sum_nanos(&self) -> u128 {
        self.sum_nanos
    }

    /// Mean observed duration in nanoseconds (`None` when empty).
    pub fn mean_nanos(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_nanos as f64 / self.count as f64)
    }

    /// Smallest observation in nanoseconds (`None` when empty).
    pub fn min_nanos(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_nanos)
    }

    /// Largest observation in nanoseconds (`None` when empty).
    pub fn max_nanos(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_nanos)
    }

    /// Non-empty buckets as `(inclusive_upper_bound_nanos, count)` pairs
    /// in ascending bound order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| {
                let bound = if index + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (index + 1)) - 1
                };
                (bound, count)
            })
    }

    /// Element-wise sum with another histogram (exact; see the type docs).
    pub fn merge(&mut self, other: &DurationHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }
}

/// One completed span, kept only by event-logging scopes
/// ([`Recording::with_events`](crate::Recording::with_events)).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span (histogram) name.
    pub name: String,
    /// Wall-clock duration of the span.
    pub nanos: u64,
}

/// A bag of named metrics: monotonic counters, gauges, duration
/// histograms and an optional span event log.
///
/// All maps are `BTreeMap`s so iteration — and therefore the JSON export —
/// is deterministic. [`merge`](Self::merge) sums counters and histograms
/// (exact integer arithmetic) and lets the absorbed registry's gauges win,
/// so merging per-thread registries in a fixed order yields a fully
/// deterministic result for deterministic workloads.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, DurationHistogram>,
    events: Vec<SpanEvent>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
    }

    /// Add `by` to the counter `name`, creating it at zero.
    pub fn counter_add(&mut self, name: &str, by: u64) {
        if let Some(slot) = self.counters.get_mut(name) {
            *slot += by;
        } else {
            self.counters.insert(name.to_owned(), by);
        }
    }

    /// Current value of the counter `name` (zero when never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in sorted name order.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Set the gauge `name` (last write wins).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Current value of the gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All gauges in sorted name order.
    pub fn gauges(&self) -> &BTreeMap<String, f64> {
        &self.gauges
    }

    /// Record one observation into the histogram `name`.
    pub fn observe_nanos(&mut self, name: &str, nanos: u64) {
        if let Some(histogram) = self.histograms.get_mut(name) {
            histogram.record(nanos);
        } else {
            let mut histogram = DurationHistogram::default();
            histogram.record(nanos);
            self.histograms.insert(name.to_owned(), histogram);
        }
    }

    /// The histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&DurationHistogram> {
        self.histograms.get(name)
    }

    /// All histograms in sorted name order.
    pub fn histograms(&self) -> &BTreeMap<String, DurationHistogram> {
        &self.histograms
    }

    /// Append a span event (event-logging scopes only).
    pub fn push_event(&mut self, event: SpanEvent) {
        self.events.push(event);
    }

    /// Completed span events in completion order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Merge another registry into this one: counters and histograms sum,
    /// the other registry's gauges overwrite, events append. Summation is
    /// exact integer arithmetic, so merging chunk registries in chunk
    /// order reproduces the sequential totals bit for bit.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &value) in &other.counters {
            self.counter_add(name, value);
        }
        for (name, &value) in &other.gauges {
            self.gauges.insert(name.clone(), value);
        }
        for (name, histogram) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(name) {
                mine.merge(histogram);
            } else {
                self.histograms.insert(name.clone(), histogram.clone());
            }
        }
        self.events.extend(other.events.iter().cloned());
    }

    /// Render the registry as a pretty-printed, schema-versioned JSON
    /// document ([`SCHEMA`]). Keys appear in sorted order; counters and
    /// nanosecond sums are emitted as exact integers. The writer is
    /// self-contained so the crate stays dependency-free.
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        let _ = write!(out, "  \"schema\": ");
        write_json_string(&mut out, SCHEMA);
        out.push_str(",\n  \"counters\": {");
        for (index, (name, value)) in self.counters.iter().enumerate() {
            out.push_str(if index == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_json_string(&mut out, name);
            let _ = write!(out, ": {value}");
        }
        out.push_str(if self.counters.is_empty() {
            "}"
        } else {
            "\n  }"
        });
        out.push_str(",\n  \"gauges\": {");
        for (index, (name, value)) in self.gauges.iter().enumerate() {
            out.push_str(if index == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_json_string(&mut out, name);
            out.push_str(": ");
            write_json_number(&mut out, *value);
        }
        out.push_str(if self.gauges.is_empty() { "}" } else { "\n  }" });
        out.push_str(",\n  \"histograms\": {");
        for (index, (name, histogram)) in self.histograms.iter().enumerate() {
            out.push_str(if index == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_json_string(&mut out, name);
            let _ = write!(
                out,
                ": {{\"count\": {}, \"sum_nanos\": {}, \"min_nanos\": {}, \"max_nanos\": {}, \"buckets\": [",
                histogram.count(),
                histogram.sum_nanos(),
                histogram.min_nanos().unwrap_or(0),
                histogram.max_nanos().unwrap_or(0),
            );
            for (bucket_index, (bound, count)) in histogram.buckets().enumerate() {
                if bucket_index > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{{\"le_nanos\": {bound}, \"count\": {count}}}");
            }
            out.push_str("]}");
        }
        out.push_str(if self.histograms.is_empty() {
            "}"
        } else {
            "\n  }"
        });
        if !self.events.is_empty() {
            out.push_str(",\n  \"events\": [");
            for (index, event) in self.events.iter().enumerate() {
                out.push_str(if index == 0 { "\n" } else { ",\n" });
                out.push_str("    {\"name\": ");
                write_json_string(&mut out, &event.name);
                let _ = write!(out, ", \"nanos\": {}}}", event.nanos);
            }
            out.push_str("\n  ]");
        }
        out.push_str("\n}\n");
        out
    }
}

/// Write a JSON string literal with the required escapes.
fn write_json_string(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write an `f64` as a JSON number; non-finite values become `null`
/// (matching `serde_json`).
fn write_json_number(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_summarizes() {
        let mut h = DurationHistogram::default();
        assert_eq!(h.mean_nanos(), None);
        h.record(10);
        h.record(30);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_nanos(), 40);
        assert_eq!(h.min_nanos(), Some(10));
        assert_eq!(h.max_nanos(), Some(30));
        assert_eq!(h.mean_nanos(), Some(20.0));
        // 10 and 30 land in buckets [8,16) and [16,32): bounds 15 and 31.
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(15, 1), (31, 1)]);
    }

    #[test]
    fn merge_is_exact_and_order_insensitive() {
        let mut a = DurationHistogram::default();
        a.record(5);
        a.record(100);
        let mut b = DurationHistogram::default();
        b.record(7);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 3);
        assert_eq!(ab.sum_nanos(), 112);
    }

    #[test]
    fn registry_merge_sums_counters_and_appends_events() {
        let mut a = MetricsRegistry::new();
        a.counter_add("x", 1);
        a.gauge_set("g", 1.0);
        a.observe_nanos("h", 8);
        a.push_event(SpanEvent {
            name: "h".into(),
            nanos: 8,
        });
        let mut b = MetricsRegistry::new();
        b.counter_add("x", 2);
        b.counter_add("y", 5);
        b.gauge_set("g", 2.0);
        b.observe_nanos("h", 16);

        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 5);
        assert_eq!(a.gauge("g"), Some(2.0));
        assert_eq!(a.histogram("h").map(DurationHistogram::count), Some(2));
        assert_eq!(a.events().len(), 1);
    }

    #[test]
    fn registry_merge_matches_sequential_totals() {
        // Simulates the run_batch merge: recording into one registry must
        // equal recording into chunks and merging in chunk order.
        let observations: Vec<(&str, u64)> =
            vec![("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", 5), ("a", 6)];
        let mut sequential = MetricsRegistry::new();
        for (name, value) in &observations {
            sequential.counter_add(name, *value);
            sequential.observe_nanos(name, *value);
        }
        let mut merged = MetricsRegistry::new();
        for chunk in observations.chunks(2) {
            let mut part = MetricsRegistry::new();
            for (name, value) in chunk {
                part.counter_add(name, *value);
                part.observe_nanos(name, *value);
            }
            merged.merge(&part);
        }
        assert_eq!(sequential, merged);
    }

    #[test]
    fn json_export_is_schema_versioned_and_sorted() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("zeta", 1);
        registry.counter_add("alpha", 2);
        registry.gauge_set("threads", 4.0);
        registry.observe_nanos("span.work", 100);
        let json = registry.to_json_string();
        assert!(json.contains("\"schema\": \"flexemd-metrics/v1\""));
        let alpha = json.find("\"alpha\"").expect("alpha present");
        let zeta = json.find("\"zeta\"").expect("zeta present");
        assert!(alpha < zeta, "counters sorted by name");
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"sum_nanos\": 100"));
        assert!(json.contains("\"le_nanos\": 127"));
        assert!(!json.contains("\"events\""), "no events section when empty");
    }

    #[test]
    fn json_escapes_and_non_finite_gauges() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("weird\"name\\with\nescapes", 1);
        registry.gauge_set("bad", f64::INFINITY);
        let json = registry.to_json_string();
        assert!(json.contains("weird\\\"name\\\\with\\nescapes"));
        assert!(json.contains("\"bad\": null"));
    }

    #[test]
    fn empty_registry_renders_valid_json() {
        let json = MetricsRegistry::new().to_json_string();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"gauges\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }
}
