//! Span-style tracing: wall-clock timing of named stages, recorded as
//! duration histograms (and, for event-logging scopes, a per-span event
//! log) in the current thread's [`Recording`](crate::Recording) scope.

use crate::registry::SpanEvent;
use std::time::Instant;

/// A live span: created by [`span`], records its wall-clock duration into
/// the histogram of the same name when dropped. Inert (no allocation, no
/// clock read) when the current thread is not recording.
#[derive(Debug)]
#[must_use = "a span measures until dropped; binding it to `_` drops immediately"]
pub struct Span {
    inner: Option<(String, Instant)>,
}

impl Span {
    /// A span that records nothing (used when tracing is disabled).
    pub fn inert() -> Self {
        Span { inner: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, started)) = self.inner.take() {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            crate::with_current(|registry, events| {
                registry.observe_nanos(&name, nanos);
                if events {
                    registry.push_event(SpanEvent {
                        name: name.clone(),
                        nanos,
                    });
                }
            });
        }
    }
}

/// Open a span named `name`. When the current thread is not recording
/// this is a no-op costing one atomic load and one branch.
pub fn span(name: &str) -> Span {
    if crate::recording() {
        Span {
            inner: Some((name.to_owned(), Instant::now())),
        }
    } else {
        Span::inert()
    }
}

/// Open a span whose name is built lazily — use when the name needs
/// formatting (e.g. per-stage names) so the allocation only happens while
/// recording.
pub fn span_with(make_name: impl FnOnce() -> String) -> Span {
    if crate::recording() {
        Span {
            inner: Some((make_name(), Instant::now())),
        }
    } else {
        Span::inert()
    }
}

/// Handle façade over the span API, for call sites that prefer an object
/// to free functions.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tracer;

impl Tracer {
    /// The global tracer handle.
    pub fn global() -> Self {
        Tracer
    }

    /// Whether any recording scope is active anywhere in the process.
    pub fn enabled(self) -> bool {
        crate::enabled()
    }

    /// Open a span (see [`span`]).
    pub fn span(self, name: &str) -> Span {
        span(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricsRegistry, Recording};

    #[test]
    fn span_records_into_histogram() {
        let recording = Recording::start();
        {
            let _span = span("tracer.test");
            std::hint::black_box(42);
        }
        let registry = recording.finish();
        let histogram = registry.histogram("tracer.test").expect("span recorded");
        assert_eq!(histogram.count(), 1);
        assert!(registry.events().is_empty(), "plain scope keeps no events");
    }

    #[test]
    fn with_events_logs_completion_order() {
        let recording = Recording::with_events();
        {
            let _outer = span("tracer.outer");
            let _inner = span("tracer.inner");
        }
        let registry = recording.finish();
        let names: Vec<&str> = registry.events().iter().map(|e| e.name.as_str()).collect();
        // Inner drops before outer (reverse declaration order).
        assert_eq!(names, vec!["tracer.inner", "tracer.outer"]);
    }

    #[test]
    fn spans_are_inert_without_a_scope() {
        {
            let _span = span("tracer.orphan");
        }
        let recording = Recording::start();
        let registry: MetricsRegistry = recording.finish();
        assert!(registry.histogram("tracer.orphan").is_none());
    }

    #[test]
    fn tracer_facade_matches_free_functions() {
        let tracer = Tracer::global();
        let recording = Recording::start();
        assert!(tracer.enabled());
        {
            let _span = tracer.span("tracer.facade");
        }
        let registry = recording.finish();
        assert_eq!(
            registry.histogram("tracer.facade").map(|h| h.count()),
            Some(1)
        );
    }
}
