//! Cluster-pruned metric index over the reduced-space arena.
//!
//! Every stage-1 filter so far paid O(n) reduced-EMD evaluations per
//! query. This module breaks that ceiling: because the reduced EMD is a
//! *metric* whenever the reduced ground distance is (PAPER.md's metric
//! preservation lemma), the reduced arena can be partitioned into
//! clusters — each with a pivot and a covering radius — and the triangle
//! inequality prunes whole clusters with a **single** pivot evaluation:
//!
//! ```text
//! d(q, o) >= d(q, pivot) - radius      for every member o,
//! ```
//!
//! so `max(0, d(q, pivot) - radius)` is a sound lower bound for every
//! member, and (by the reduction's lower-bound property) of the exact
//! EMD as well — the chain condition KNOP needs.
//!
//! The minima of Definition 5 do not always preserve the triangle
//! inequality (merging a chain into three blocks puts the outer pair at
//! ground distance 3 with two 1-hops between them), so the index prunes
//! with the EMD over the **metric closure** of the reduced cost: every
//! entry replaced by its all-pairs shortest-path distance. The closure
//! only lowers entries, so `EMD_closure <= Red-EMD <= EMD` keeps the
//! bound chain intact, and shortest-path distances satisfy the triangle
//! inequality by construction. When the reduced cost is already a metric
//! the closure is bit-identical to it and nothing changes.
//!
//! Construction is greedy k-center (minimum-maximum, Gonzalez): pick the
//! object farthest from all chosen pivots as the next pivot, `~sqrt(n) ·
//! factor` times. A triangle shortcut (`d(new pivot, old pivot) >= 2 ·
//! d(o, old pivot)` implies the new pivot cannot steal `o`) keeps
//! construction well below the naive `k·n` solves on clustered data.
//!
//! At query time [`ClusteredIndex`] is a
//! [`CandidateSource`]: its stream holds a best-first heap mixing
//! *cluster* entries (keyed by the pruning bound) and *member* entries
//! (keyed by their evaluated reduced EMD), expanding a cluster —
//! brute-forcing its members — only when its bound reaches the frontier.
//! Cluster entries order before member entries on equal keys, so
//! candidates are emitted in exactly the ascending `(distance, id)`
//! order a full scan produces — answers are bit-identical; only the
//! number of reduced-EMD evaluations changes. Clusters whose bound
//! exceeds KNOP's stopping frontier are never expanded: that is the
//! sublinear win measured by experiment E17.
//!
//! The clustering persists through `emd-store` ([`ClusteredIndex::to_stored`]
//! / [`ClusteredIndex::from_stored`]) so `build-index --cluster` pays
//! construction once. Budgets propagate through the traversal: a firing
//! surfaces as [`QueryError::BudgetExhausted`] from the stream, with all
//! already-computed bounds — including unexpanded clusters' members at
//! their cluster bound — surrendered to the degraded answer.

use crate::engine::source::{CandidateSource, CandidateStream};
use crate::engine::Database;
use crate::error::QueryError;
use crate::filters::check_persisted;
use crate::ranking::{Key, Ranking};
use emd_core::{emd_in_context, Budget, CostMatrix, EmdContext, Histogram};
use emd_reduction::{PersistedReduction, ReducedEmd};
use emd_store::StoredClustering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Tolerance for symmetry/zero-diagonal checks on the reduced cost, and
/// for the debug metric assertion on its closure.
const METRIC_TOL: f64 = 1e-9;

/// Heap entry kinds: clusters expand before members on equal keys, which
/// is what makes the emission order identical to a full scan's.
const ENTRY_CLUSTER: u8 = 0;
const ENTRY_MEMBER: u8 = 1;

/// A greedy k-center clustering of the reduced arena, queryable as a
/// [`CandidateSource`] with triangle-inequality cluster pruning.
///
/// # Examples
///
/// Build over a snapshot, stream candidates, and round-trip the
/// clustering through its stored form:
///
/// ```
/// use emd_core::{ground, Histogram};
/// use emd_query::{CandidateSource, ClusteredIndex, Database};
/// use emd_reduction::{CombiningReduction, ReducedEmd};
/// use std::sync::Arc;
///
/// let cost = Arc::new(ground::linear(4).unwrap());
/// let database = Database::new(
///     vec![
///         Histogram::unit(4, 0).unwrap(),
///         Histogram::unit(4, 1).unwrap(),
///         Histogram::unit(4, 3).unwrap(),
///     ],
///     cost.clone(),
/// )
/// .unwrap();
/// // Symmetric 4 -> 2 reduction: the reduced EMD stays a metric.
/// let reduction = CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap();
/// let reduced = ReducedEmd::new(&cost, reduction).unwrap();
///
/// let index = ClusteredIndex::build(&database, reduced, 1.0).unwrap();
/// assert!(index.clusters() >= 1 && index.clusters() <= index.len());
///
/// let query = Histogram::unit(4, 0).unwrap();
/// let mut stream = index.prepare(&query).unwrap();
/// let (first, distance) = stream.next().unwrap().unwrap();
/// assert_eq!((first, distance), (0, 0.0));
///
/// // The geometry persists: stored form rebuilds the same index.
/// let stored = index.to_stored();
/// assert_eq!(stored.pivots.len(), index.clusters());
/// ```
#[derive(Debug, Clone)]
pub struct ClusteredIndex {
    name: String,
    reduced: ReducedEmd,
    /// Metric closure of the reduced ground distance — the cost every
    /// construction and query-time distance in this index uses.
    pruning_cost: Arc<CostMatrix>,
    reduced_database: Arc<[Histogram]>,
    pivots: Vec<u32>,
    assignments: Vec<u32>,
    radii: Vec<f64>,
    /// Member ids per cluster, ascending (includes the pivot).
    members: Vec<Vec<u32>>,
}

impl ClusteredIndex {
    /// Build the clustering from scratch: reduce every database object,
    /// then run greedy k-center into `ceil(sqrt(n) * factor)` clusters
    /// (clamped to `[1, n]`).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::EmptyDatabase`] for an empty snapshot,
    /// [`QueryError::Reduction`] when `factor` is not positive and
    /// finite, when the reduction is asymmetric, or when the reduced
    /// ground distance is not a metric (triangle pruning would be
    /// unsound), and any solver error from the construction distances.
    pub fn build(
        database: &Database,
        reduced: ReducedEmd,
        factor: f64,
    ) -> Result<Self, QueryError> {
        let arena = database
            .histograms()
            .iter()
            .map(|h| reduced.reduce_second(h))
            .collect::<Result<Vec<_>, _>>()?;
        Self::assemble(reduced, arena.into(), factor)
    }

    /// Build the clustering over a bundle's precomputed reduced arena
    /// (no re-reduction) — the `build-index --cluster` path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClusteredIndex::build`], plus
    /// [`QueryError::Reduction`] when `bundle` does not match `database`.
    pub fn from_persisted(
        database: &Database,
        bundle: &PersistedReduction,
        factor: f64,
    ) -> Result<Self, QueryError> {
        check_persisted(database, bundle)?;
        Self::assemble(
            bundle.reduced().clone(),
            bundle.reduced_database().to_vec().into(),
            factor,
        )
    }

    /// Reattach a persisted clustering to its bundle without re-running
    /// construction — the index-open path. The geometry is revalidated
    /// structurally (ranges, pivot self-assignment, finite radii) but
    /// radii are trusted, mirroring the store's contract for the reduced
    /// arena itself.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::Reduction`] when `bundle` does not match
    /// `database`, when the reduction is asymmetric or non-metric, or
    /// when `stored` is structurally inconsistent with the arena.
    pub fn from_stored(
        database: &Database,
        bundle: &PersistedReduction,
        stored: &StoredClustering,
    ) -> Result<Self, QueryError> {
        check_persisted(database, bundle)?;
        let reduced = bundle.reduced().clone();
        let pruning_cost = pruning_cost_for(&reduced)?;
        let arena: Arc<[Histogram]> = bundle.reduced_database().to_vec().into();
        validate_stored(stored, arena.len())?;
        let members = members_of(&stored.assignments, stored.pivots.len());
        Ok(ClusteredIndex {
            name: index_name(&reduced, &pruning_cost, stored.pivots.len()),
            reduced,
            pruning_cost,
            reduced_database: arena,
            pivots: stored.pivots.clone(),
            assignments: stored.assignments.clone(),
            radii: stored.radii.clone(),
            members,
        })
    }

    /// The clustering geometry in its storable form (pivots,
    /// assignments, radii), for [`Database::save_with_clusterings`].
    pub fn to_stored(&self) -> StoredClustering {
        StoredClustering {
            pivots: self.pivots.clone(),
            assignments: self.assignments.clone(),
            radii: self.radii.clone(),
        }
    }

    /// Number of clusters (pivots).
    pub fn clusters(&self) -> usize {
        self.pivots.len()
    }

    /// Pivot object ids, in cluster order.
    pub fn pivots(&self) -> &[u32] {
        &self.pivots
    }

    /// Cluster assignment per object id.
    pub fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// Covering radius per cluster (max member distance to the pivot).
    pub fn radii(&self) -> &[f64] {
        &self.radii
    }

    /// The reduced EMD the clustering was built under.
    pub fn reduced(&self) -> &ReducedEmd {
        &self.reduced
    }

    /// The cost matrix pruning distances are computed under: the metric
    /// closure of the reduced ground distance (bit-identical to it when
    /// the reduced cost is already a metric).
    pub fn pruning_cost(&self) -> &CostMatrix {
        &self.pruning_cost
    }

    fn assemble(
        reduced: ReducedEmd,
        arena: Arc<[Histogram]>,
        factor: f64,
    ) -> Result<Self, QueryError> {
        let pruning_cost = pruning_cost_for(&reduced)?;
        let n = arena.len();
        if n == 0 {
            return Err(QueryError::EmptyDatabase);
        }
        if !factor.is_finite() || factor <= 0.0 {
            return Err(QueryError::Reduction(format!(
                "cluster factor {factor} must be positive and finite"
            )));
        }
        let target = ((n as f64).sqrt() * factor).ceil() as usize;
        let k = target.clamp(1, n);
        let (pivots, assignments, radii) = greedy_k_center(&pruning_cost, &arena, k)?;
        let members = members_of(&assignments, pivots.len());
        Ok(ClusteredIndex {
            name: index_name(&reduced, &pruning_cost, pivots.len()),
            reduced,
            pruning_cost,
            reduced_database: arena,
            pivots,
            assignments,
            radii,
            members,
        })
    }

    fn stream(
        &self,
        query: &Histogram,
        budget: Budget,
    ) -> Result<Box<dyn CandidateStream + '_>, QueryError> {
        let reduced_query = self.reduced.reduce_first(query)?;
        Ok(Box::new(ClusterStream {
            index: self,
            reduced_query,
            budget,
            context: EmdContext::new(),
            heap: BinaryHeap::new(),
            next_cluster: 0,
            evaluations: 0,
            emitted: 0,
            visited: 0,
        }))
    }
}

impl CandidateSource for ClusteredIndex {
    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.reduced_database.len()
    }

    fn prepare(&self, query: &Histogram) -> Result<Box<dyn CandidateStream + '_>, QueryError> {
        self.stream(query, Budget::unlimited())
    }

    fn prepare_budgeted(
        &self,
        query: &Histogram,
        budget: &Budget,
    ) -> Result<Box<dyn CandidateStream + '_>, QueryError> {
        self.stream(query, budget.clone())
    }
}

fn index_name(reduced: &ReducedEmd, pruning_cost: &CostMatrix, clusters: usize) -> String {
    let closed = pruning_cost.entries() != reduced.reduced_cost().entries();
    format!(
        "clustered(d'={}, k={}{})",
        reduced.r1().reduced_dim(),
        clusters,
        if closed { ", closed" } else { "" }
    )
}

/// The cost every distance in the index is computed under: the metric
/// closure (all-pairs shortest paths) of the reduced ground distance.
///
/// Triangle pruning needs a metric, but the minima of Definition 5 do
/// not always deliver one. Replacing each entry by its shortest-path
/// distance restores the triangle inequality without breaking the bound
/// chain: closure entries never exceed the originals, so the EMD under
/// the closure lower-bounds the reduced EMD (and hence the exact EMD).
/// Symmetry cannot be repaired the same way, so an asymmetric reduction
/// or reduced cost is still rejected.
fn pruning_cost_for(reduced: &ReducedEmd) -> Result<Arc<CostMatrix>, QueryError> {
    if reduced.r1().assignment() != reduced.r2().assignment() {
        return Err(QueryError::Reduction(
            "clustered index requires a symmetric reduction (identical query- and \
             database-side assignments); asymmetric reduced distances are not a metric"
                .to_owned(),
        ));
    }
    let cost = reduced.reduced_cost();
    let dim = cost.rows();
    for i in 0..dim {
        if cost.at(i, i).abs() > METRIC_TOL {
            return Err(QueryError::Reduction(format!(
                "reduced cost has non-zero diagonal entry {} at bin {i}; \
                 pruning distances would not vanish on identical operands",
                cost.at(i, i)
            )));
        }
        for j in 0..i {
            if (cost.at(i, j) - cost.at(j, i)).abs() > METRIC_TOL {
                return Err(QueryError::Reduction(format!(
                    "reduced cost is asymmetric at ({i}, {j}); \
                     triangle-inequality pruning would be unsound"
                )));
            }
        }
    }
    let mut entries = cost.entries().to_vec();
    // Floyd-Warshall over the complete graph on reduced bins. The loop
    // order is fixed, so the closure is deterministic and reopen paths
    // rebuild bit-identical pruning distances.
    for k in 0..dim {
        for i in 0..dim {
            let through = entries.get(i * dim + k).copied().unwrap_or(f64::INFINITY);
            for j in 0..dim {
                let candidate =
                    through + entries.get(k * dim + j).copied().unwrap_or(f64::INFINITY);
                if let Some(entry) = entries.get_mut(i * dim + j) {
                    if candidate < *entry {
                        *entry = candidate;
                    }
                }
            }
        }
    }
    let closure = CostMatrix::new(dim, dim, entries)?;
    debug_assert!(
        closure.is_metric(METRIC_TOL),
        "shortest-path closure of a symmetric zero-diagonal cost is a metric"
    );
    Ok(Arc::new(closure))
}

/// Structural validation of an externally supplied stored clustering
/// (the store codec performs the same checks on decode; `StoredClustering`
/// has public fields, so revalidate before trusting the geometry).
fn validate_stored(stored: &StoredClustering, objects: usize) -> Result<(), QueryError> {
    let clusters = stored.pivots.len();
    if stored.assignments.len() != objects {
        return Err(QueryError::Reduction(format!(
            "clustering assigns {} objects, arena holds {objects}",
            stored.assignments.len()
        )));
    }
    if stored.radii.len() != clusters {
        return Err(QueryError::Reduction(format!(
            "clustering has {clusters} pivots but {} radii",
            stored.radii.len()
        )));
    }
    if objects > 0 && (clusters == 0 || clusters > objects) {
        return Err(QueryError::Reduction(format!(
            "clustering has {clusters} clusters for {objects} objects"
        )));
    }
    for (cluster, &pivot) in stored.pivots.iter().enumerate() {
        let owner = stored.assignments.get(pivot as usize).copied();
        if owner != Some(cluster as u32) {
            return Err(QueryError::Reduction(format!(
                "pivot {pivot} of cluster {cluster} is not assigned to its own cluster"
            )));
        }
    }
    for (id, &a) in stored.assignments.iter().enumerate() {
        if a as usize >= clusters {
            return Err(QueryError::Reduction(format!(
                "object {id} assigned to cluster {a} of {clusters}"
            )));
        }
    }
    for (cluster, &radius) in stored.radii.iter().enumerate() {
        if !radius.is_finite() || radius < 0.0 {
            return Err(QueryError::Reduction(format!(
                "cluster {cluster} has invalid radius {radius}"
            )));
        }
    }
    Ok(())
}

/// Pivot ids, per-object cluster assignments, and covering radii — the
/// geometry triple greedy k-center produces and the store persists.
type ClusterGeometry = (Vec<u32>, Vec<u32>, Vec<f64>);

/// Greedy k-center (Gonzalez): `pivots`, `assignments`, covering
/// `radii`. Deterministic — the first pivot is object 0 and ties go to
/// the smallest id.
fn greedy_k_center(
    cost: &CostMatrix,
    arena: &[Histogram],
    k: usize,
) -> Result<ClusterGeometry, QueryError> {
    let budget = Budget::unlimited();
    let mut context = EmdContext::new();
    let n = arena.len();
    let Some(first) = arena.first() else {
        return Err(QueryError::EmptyDatabase);
    };
    // d_near[o] = distance of o to its nearest chosen pivot.
    let mut d_near: Vec<f64> = Vec::with_capacity(n);
    for h in arena {
        d_near.push(emd_in_context(first, h, cost, &budget, &mut context)?);
    }
    let mut assignments: Vec<u32> = vec![0; n];
    let mut pivots: Vec<u32> = vec![0];
    while pivots.len() < k {
        // Next pivot: the object farthest from all chosen pivots.
        let mut next = 0usize;
        let mut farthest = f64::NEG_INFINITY;
        for (id, &d) in d_near.iter().enumerate() {
            if d > farthest {
                farthest = d;
                next = id;
            }
        }
        if farthest <= 0.0 {
            // Every object coincides with a pivot; more clusters would
            // only produce empty ones.
            break;
        }
        let next_h = arena.get(next).ok_or(QueryError::UnknownObject(next))?;
        // Pivot-to-pivot distances feed the triangle shortcut below.
        let mut pivot_distances: Vec<f64> = Vec::with_capacity(pivots.len());
        for &p in &pivots {
            let ph = arena
                .get(p as usize)
                .ok_or(QueryError::UnknownObject(p as usize))?;
            pivot_distances.push(emd_in_context(next_h, ph, cost, &budget, &mut context)?);
        }
        let t = pivots.len() as u32;
        for ((h, a), dn) in arena
            .iter()
            .zip(assignments.iter_mut())
            .zip(d_near.iter_mut())
        {
            // d(new, o) >= d(new, old pivot) - d(o, old pivot) >= d(o, old
            // pivot) when the pivot gap is at least twice d_near: the new
            // pivot cannot steal o, skip the solve.
            let gap = pivot_distances
                .get(*a as usize)
                .copied()
                .unwrap_or(f64::NEG_INFINITY);
            if gap >= 2.0 * *dn {
                continue;
            }
            let d = emd_in_context(next_h, h, cost, &budget, &mut context)?;
            if d < *dn {
                *dn = d;
                *a = t;
            }
        }
        pivots.push(next as u32);
    }
    let mut radii = vec![0.0f64; pivots.len()];
    for (a, dn) in assignments.iter().zip(d_near.iter()) {
        if let Some(r) = radii.get_mut(*a as usize) {
            if *dn > *r {
                *r = *dn;
            }
        }
    }
    Ok((pivots, assignments, radii))
}

/// Group object ids by cluster (ascending within each cluster).
fn members_of(assignments: &[u32], clusters: usize) -> Vec<Vec<u32>> {
    let mut members = vec![Vec::new(); clusters];
    for (id, &a) in assignments.iter().enumerate() {
        if let Some(list) = members.get_mut(a as usize) {
            list.push(id as u32);
        }
    }
    members
}

/// Per-query traversal state: a best-first heap over cluster bounds and
/// evaluated member distances.
///
/// Soundness of the emission order: when a member entry `(d, id)` is at
/// the top, every cluster entry with bound `<= d` has already been
/// expanded (cluster entries order first on ties), and every member at
/// distance `<= d` belongs to some cluster whose bound is `<= d` — so
/// all of them are already in the heap and the pop order is globally
/// ascending `(distance, id)`, exactly like a materialized scan.
struct ClusterStream<'a> {
    index: &'a ClusteredIndex,
    reduced_query: Histogram,
    budget: Budget,
    context: EmdContext,
    heap: BinaryHeap<Reverse<(Key, u8, u32)>>,
    /// Clusters whose pivot has not been evaluated yet (lazy bounding, so
    /// a budget firing mid-bounding degrades instead of erroring).
    next_cluster: usize,
    evaluations: usize,
    emitted: usize,
    visited: usize,
}

impl ClusterStream<'_> {
    fn distance_to(&mut self, object: u32) -> Result<f64, QueryError> {
        let index = self.index;
        let h = index
            .reduced_database
            .get(object as usize)
            .ok_or(QueryError::UnknownObject(object as usize))?;
        self.evaluations += 1;
        Ok(emd_in_context(
            &self.reduced_query,
            h,
            &index.pruning_cost,
            &self.budget,
            &mut self.context,
        )?)
    }

    /// Bound every cluster: one pivot evaluation each. The pivot itself
    /// is pushed as a member entry (its distance is exact already), so
    /// expansion never re-evaluates it.
    fn bound_clusters(&mut self) -> Result<(), QueryError> {
        let index = self.index;
        while self.next_cluster < index.pivots.len() {
            self.budget.check().map_err(QueryError::BudgetExhausted)?;
            let cluster = self.next_cluster;
            let Some(&pivot) = index.pivots.get(cluster) else {
                break;
            };
            let Some(&radius) = index.radii.get(cluster) else {
                break;
            };
            let d = self.distance_to(pivot)?;
            let bound = (d - radius).max(0.0);
            self.heap
                .push(Reverse((Key(bound), ENTRY_CLUSTER, cluster as u32)));
            self.heap.push(Reverse((Key(d), ENTRY_MEMBER, pivot)));
            self.next_cluster += 1;
        }
        Ok(())
    }

    /// Brute-force one cluster: evaluate every member except the
    /// already-evaluated pivot.
    fn expand(&mut self, cluster: usize) -> Result<(), QueryError> {
        self.budget.check().map_err(QueryError::BudgetExhausted)?;
        self.visited += 1;
        let index = self.index;
        let pivot = index.pivots.get(cluster).copied();
        let Some(members) = index.members.get(cluster) else {
            return Ok(());
        };
        for &m in members {
            if Some(m) == pivot {
                continue;
            }
            let d = self.distance_to(m)?;
            self.heap.push(Reverse((Key(d), ENTRY_MEMBER, m)));
        }
        Ok(())
    }
}

impl Ranking for ClusterStream<'_> {
    fn next(&mut self) -> Result<Option<(usize, f64)>, QueryError> {
        self.bound_clusters()?;
        loop {
            let Some(Reverse((Key(key), kind, id))) = self.heap.pop() else {
                return Ok(None);
            };
            if kind == ENTRY_CLUSTER {
                self.expand(id as usize)?;
            } else {
                self.emitted += 1;
                return Ok(Some((id as usize, key)));
            }
        }
    }

    fn drain_computed(&mut self) -> Vec<(usize, f64)> {
        let index = self.index;
        let mut out = Vec::new();
        for Reverse((Key(key), kind, id)) in self.heap.drain() {
            if kind == ENTRY_CLUSTER {
                // An unexpanded cluster's bound covers all its members,
                // for free; its pivot rides its own member entry.
                let pivot = index.pivots.get(id as usize).copied();
                if let Some(members) = index.members.get(id as usize) {
                    for &m in members {
                        if Some(m) == pivot {
                            continue;
                        }
                        out.push((m as usize, key));
                    }
                }
            } else {
                out.push((id as usize, key));
            }
        }
        out
    }
}

impl CandidateStream for ClusterStream<'_> {
    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

impl Drop for ClusterStream<'_> {
    fn drop(&mut self) {
        let total = self.index.pivots.len();
        emd_obs::counter_add("index.clusters_visited", self.visited as u64);
        emd_obs::counter_add(
            "index.clusters_pruned",
            total.saturating_sub(self.visited) as u64,
        );
        emd_obs::counter_add("index.candidates_emitted", self.emitted as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_core::ground;
    use emd_reduction::CombiningReduction;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_database(n: usize, dim: usize, seed: u64) -> Database {
        let mut rng = StdRng::seed_from_u64(seed);
        let histograms = (0..n)
            .map(|_| {
                let bins: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
                Histogram::normalized(bins).unwrap()
            })
            .collect();
        // Saturated chain: min-reduction over contiguous blocks keeps the
        // reduced costs in {0, 1, 2}, which satisfies the triangle
        // inequality (an unsaturated chain would not — blocks two hops
        // apart sit at ground distance 3 > 1 + 1).
        let cost = ground::saturated(&ground::linear(dim).unwrap(), 2.0).unwrap();
        Database::new(histograms, Arc::new(cost)).unwrap()
    }

    fn reduction(dim: usize, reduced_dim: usize) -> CombiningReduction {
        let assignment: Vec<usize> = (0..dim).map(|i| i * reduced_dim / dim).collect();
        CombiningReduction::new(assignment, reduced_dim).unwrap()
    }

    fn index_over(database: &Database, reduced_dim: usize, factor: f64) -> ClusteredIndex {
        let reduced =
            ReducedEmd::new(database.cost_arc(), reduction(database.dim(), reduced_dim)).unwrap();
        ClusteredIndex::build(database, reduced, factor).unwrap()
    }

    /// Reference order: reduced distance of every object, ascending
    /// (distance, id).
    fn scan_order(index: &ClusteredIndex, query: &Histogram) -> Vec<(usize, f64)> {
        let reduced_query = index.reduced.reduce_first(query).unwrap();
        let budget = Budget::unlimited();
        let mut context = EmdContext::new();
        let mut order: Vec<(usize, f64)> = index
            .reduced_database
            .iter()
            .enumerate()
            .map(|(id, h)| {
                let d = emd_in_context(
                    &reduced_query,
                    h,
                    &index.pruning_cost,
                    &budget,
                    &mut context,
                )
                .unwrap();
                (id, d)
            })
            .collect();
        order.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        order
    }

    #[test]
    fn structure_is_a_valid_partition() {
        let database = random_database(60, 8, 11);
        let index = index_over(&database, 4, 1.0);
        assert!(index.clusters() >= 1 && index.clusters() <= 60);
        assert_eq!(index.assignments().len(), 60);
        assert_eq!(index.radii().len(), index.clusters());
        // Pivots belong to their own clusters; members cover 0..n once.
        for (cluster, &pivot) in index.pivots().iter().enumerate() {
            assert_eq!(index.assignments()[pivot as usize] as usize, cluster);
        }
        let mut seen: Vec<u32> = index.members.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..60).collect::<Vec<u32>>());
        // Radii cover: every member within its cluster's radius.
        let budget = Budget::unlimited();
        let mut context = EmdContext::new();
        for (id, &a) in index.assignments().iter().enumerate() {
            let pivot = index.pivots()[a as usize] as usize;
            let d = index
                .reduced
                .distance_reduced_in_context(
                    &index.reduced_database[id],
                    &index.reduced_database[pivot],
                    &budget,
                    &mut context,
                )
                .unwrap();
            assert!(
                d <= index.radii()[a as usize] + 1e-9,
                "object {id}: {d} > radius {}",
                index.radii()[a as usize]
            );
        }
    }

    #[test]
    fn stream_emits_full_scan_order() {
        let database = random_database(50, 8, 7);
        let index = index_over(&database, 4, 1.0);
        let queries = [
            Histogram::unit(8, 0).unwrap(),
            Histogram::unit(8, 5).unwrap(),
        ];
        for query in &queries {
            let expected = scan_order(&index, query);
            let mut stream = index.prepare(query).unwrap();
            let mut got = Vec::new();
            while let Some(item) = stream.next().unwrap() {
                got.push(item);
            }
            assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(expected.iter()) {
                assert_eq!(g.0, e.0);
                assert_eq!(g.1.to_bits(), e.1.to_bits(), "object {}", g.0);
            }
        }
    }

    /// Tight, well-separated groups around three distant chain bins.
    fn separated_database(seed: u64) -> Database {
        let mut histograms = Vec::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for center in [1usize, 8, 15] {
            for _ in 0..20 {
                let mut bins = vec![0.0005; 18];
                bins[center] += 0.9 + rng.gen_range(0.0..0.05);
                histograms.push(Histogram::normalized(bins).unwrap());
            }
        }
        let cost = ground::saturated(&ground::linear(18).unwrap(), 2.0).unwrap();
        Database::new(histograms, Arc::new(cost)).unwrap()
    }

    #[test]
    fn early_stop_evaluates_fewer_objects_on_clustered_data() {
        // Pulling only the first few candidates must not bound-expand
        // every cluster.
        let database = separated_database(13);
        let index = index_over(&database, 6, 1.0);
        let query = database.get(0).unwrap().clone();
        let mut stream = index.prepare(&query).unwrap();
        for _ in 0..5 {
            stream.next().unwrap().unwrap();
        }
        assert!(
            stream.evaluations() < database.len(),
            "expected pruning: {} evaluations for {} objects",
            stream.evaluations(),
            database.len()
        );
    }

    #[test]
    fn budget_firing_surfaces_with_computed_bounds() {
        // Well-separated data keeps distant clusters unexpanded after the
        // first pull, so solves remain for the exhausted pool to fail.
        let database = separated_database(19);
        let index = index_over(&database, 6, 1.0);
        let query = database.get(0).unwrap().clone();
        // The pool is shared across clones: let the stream bound the
        // clusters under a generous cap, then exhaust the pool from the
        // outside so the next pull must surface the firing.
        let budget = Budget::unlimited().with_pivot_cap(1_000_000);
        let mut stream = index.prepare_budgeted(&query, &budget).unwrap();
        stream.next().unwrap().unwrap();
        budget.settle_pivots(1_000_000);
        // Already-computed entries may still emit for free, but expanding
        // any remaining cluster needs solves, which must fire.
        let fired = loop {
            match stream.next() {
                Ok(Some(_)) => {}
                Ok(None) => break false,
                Err(QueryError::BudgetExhausted(_)) => break true,
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert!(fired, "an exhausted pivot pool must fire before completion");
        let drained = stream.drain_computed();
        // Whatever was computed is surrendered with non-negative bounds.
        for (id, bound) in &drained {
            assert!(*id < 60);
            assert!(bound.is_finite() && *bound >= 0.0);
        }
    }

    #[test]
    fn rejects_asymmetric_and_non_metric_reductions() {
        let database = random_database(10, 8, 3);
        let r1 = reduction(8, 4);
        let r2 = reduction(8, 2);
        let reduced = ReducedEmd::with_asymmetric(database.cost_arc(), r1, r2).unwrap();
        assert!(matches!(
            ClusteredIndex::build(&database, reduced, 1.0),
            Err(QueryError::Reduction(_))
        ));
    }

    #[test]
    fn non_metric_reduced_cost_is_closed_not_rejected() {
        // An unsaturated chain merged into thirds puts the outer blocks
        // at ground distance 4 with two 1-hops between them: not a
        // metric. The index repairs it with the shortest-path closure
        // instead of rejecting.
        let mut rng = StdRng::seed_from_u64(5);
        let histograms = (0..20)
            .map(|_| {
                let bins: Vec<f64> = (0..9).map(|_| rng.gen_range(0.0..1.0)).collect();
                Histogram::normalized(bins).unwrap()
            })
            .collect();
        let database = Database::new(histograms, Arc::new(ground::linear(9).unwrap())).unwrap();
        let reduced = ReducedEmd::new(database.cost_arc(), reduction(9, 3)).unwrap();
        assert!(!reduced.reduced_cost().is_metric(1e-9));

        let index = ClusteredIndex::build(&database, reduced, 1.0).unwrap();
        assert!(index.name().contains("closed"));
        assert!(index.pruning_cost().is_metric(1e-9));
        // The closure only lowers entries, preserving the bound chain.
        for (c, o) in index
            .pruning_cost()
            .entries()
            .iter()
            .zip(index.reduced().reduced_cost().entries())
        {
            assert!(c <= o);
        }
        // Emission is still bit-identical to a scan under the closure.
        let query = Histogram::unit(9, 4).unwrap();
        let expected = scan_order(&index, &query);
        let mut stream = index.prepare(&query).unwrap();
        for e in &expected {
            let got = stream.next().unwrap().unwrap();
            assert_eq!(got.0, e.0);
            assert_eq!(got.1.to_bits(), e.1.to_bits());
        }
        assert!(stream.next().unwrap().is_none());
    }

    #[test]
    fn rejects_bad_factors_and_empty_databases() {
        let database = random_database(10, 8, 3);
        let reduced = ReducedEmd::new(database.cost_arc(), reduction(8, 4)).unwrap();
        for factor in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(ClusteredIndex::build(&database, reduced.clone(), factor).is_err());
        }
        let empty = Database::new(Vec::new(), database.cost_arc().clone()).unwrap();
        assert!(matches!(
            ClusteredIndex::build(&empty, reduced, 1.0),
            Err(QueryError::EmptyDatabase)
        ));
    }

    #[test]
    fn stored_roundtrip_rebuilds_identical_geometry() {
        let database = random_database(40, 8, 23);
        let reduced = ReducedEmd::new(database.cost_arc(), reduction(8, 4)).unwrap();
        let bundle =
            PersistedReduction::precompute("kmed:4", reduced, database.histograms()).unwrap();
        let index = ClusteredIndex::from_persisted(&database, &bundle, 1.0).unwrap();
        let stored = index.to_stored();
        let reopened = ClusteredIndex::from_stored(&database, &bundle, &stored).unwrap();
        assert_eq!(reopened.pivots(), index.pivots());
        assert_eq!(reopened.assignments(), index.assignments());
        assert_eq!(reopened.radii().len(), index.radii().len());
        for (a, b) in reopened.radii().iter().zip(index.radii().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // And it queries identically.
        let query = Histogram::unit(8, 1).unwrap();
        let mut s1 = index.prepare(&query).unwrap();
        let mut s2 = reopened.prepare(&query).unwrap();
        loop {
            let (a, b) = (s1.next().unwrap(), s2.next().unwrap());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn from_stored_rejects_tampered_geometry() {
        let database = random_database(20, 8, 29);
        let reduced = ReducedEmd::new(database.cost_arc(), reduction(8, 4)).unwrap();
        let bundle =
            PersistedReduction::precompute("kmed:4", reduced, database.histograms()).unwrap();
        let index = ClusteredIndex::from_persisted(&database, &bundle, 1.0).unwrap();
        let good = index.to_stored();

        let mut wrong_count = good.clone();
        wrong_count.assignments.pop();
        assert!(ClusteredIndex::from_stored(&database, &bundle, &wrong_count).is_err());

        let mut foreign_pivot = good.clone();
        if let Some(p) = foreign_pivot.pivots.first_mut() {
            *p = 19;
        }
        // Either the pivot now collides with another cluster's member or
        // its self-assignment breaks; both must be rejected unless object
        // 19 already was pivot 0's member assigned to cluster 0.
        if foreign_pivot.assignments[19] != 0 {
            assert!(ClusteredIndex::from_stored(&database, &bundle, &foreign_pivot).is_err());
        }

        let mut bad_radius = good;
        if let Some(r) = bad_radius.radii.first_mut() {
            *r = f64::NAN;
        }
        assert!(ClusteredIndex::from_stored(&database, &bundle, &bad_radius).is_err());
    }
}
