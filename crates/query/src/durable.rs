//! A crash-safe [`DynamicIndex`]: sealed segments + WAL tail.
//!
//! [`DynamicIndex`] gives the engine online insert/remove/compact — but
//! only in memory, so every restart forgets every ingested object.
//! `DurableIndex` makes the same operations durable with the classic
//! sealed-prefix / logged-tail split:
//!
//! ```text
//! <dir>/
//!   CURRENT             the checkpoint: "flexemd-durable/v1 <epoch>"
//!   LOCK                advisory exclusive lock (held while open)
//!   base.seg            cost matrix + R1/R2 reductions (written once)
//!   sealed-<epoch>.seg  dense histogram arena + external-id map
//!   wal-<epoch>.log     every mutation since the sealed segment
//! ```
//!
//! * **Writes** append a [`WalRecord`] first; the in-memory index applies
//!   the mutation, and durability is only claimed after an explicit
//!   [`DurableIndex::sync`] — the server acknowledges an insert exactly
//!   then, never earlier.
//! * **Open** replays the WAL over the sealed segment, re-deriving the
//!   reduced (filter) representation of every object through the same
//!   [`ReducedEmd`] used at write time, so the paper's KNOP guarantee
//!   (`LB ≤ Red-EMD ≤ EMD`) holds across restarts bit-for-bit.
//! * **Compaction** folds the tail into a new sealed segment and starts a
//!   fresh WAL whose first record is [`WalRecord::CompactEpoch`] carrying
//!   the `new_id -> external_id` map — external ids held by clients
//!   survive compaction and restarts. The checkpoint flips via
//!   write-temp + fsync + atomic rename, so a crash anywhere during
//!   compaction reopens either the old epoch or the new one, never a
//!   mixture; orphaned files are swept on the next successful open.
//! * **Ids**: clients only ever see *external* ids (`u64`, allocated
//!   monotonically, never reused). Internal slot ids renumber freely on
//!   compaction; [`DurableSnapshot`] translates.
//! * **Single owner**: both [`DurableIndex::create`] and
//!   [`DurableIndex::open`] take an advisory exclusive lock on
//!   `<dir>/LOCK` and hold it for the index's lifetime — a second
//!   process (or a second handle in the same process) opening the same
//!   directory fails with a typed [`StoreError::Locked`] instead of
//!   interleaving WAL appends and sweeping each other's epoch files.
//!   The OS releases the lock when its owner dies, so a crash never
//!   leaves a stale lock behind and kill-anywhere recovery still works.
//!
//! Copy-on-write isolation is inherited from [`DynamicIndex`]: a
//! [`DurableSnapshot`] taken before a mutation keeps answering from the
//! pre-mutation state, which is how `flexemd serve` lets readers run
//! against a frozen view while the single writer applies inserts.

use std::collections::BTreeMap;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use emd_core::{CostMatrix, Histogram};
use emd_faultkit::{Fault, FaultInjector, NoFaults, Site};
use emd_reduction::ReducedEmd;
use emd_store::sections;
use emd_store::segment::{SectionKind, SegmentReader, SegmentWriter};
use emd_store::wal::{self, TornTail, WalRecord, WalWriter};
use emd_store::StoreError;

use crate::dynamic::{DynamicIndex, DynamicSnapshot};
use crate::engine::Executor;
use crate::error::QueryError;
use crate::stats::QueryStats;

/// Schema tag written as the first token of the `CURRENT` checkpoint.
pub const CHECKPOINT_SCHEMA: &str = "flexemd-durable/v1";

/// File name of the checkpoint.
pub const CHECKPOINT_FILE: &str = "CURRENT";

/// File name of the base segment (cost matrix + reductions).
pub const BASE_SEGMENT: &str = "base.seg";

/// File name of the advisory directory lock.
pub const LOCK_FILE: &str = "LOCK";

/// Failures of the durable index: persistence errors keep their store
/// typing, engine errors keep their query typing.
#[derive(Debug)]
pub enum DurableError {
    /// The store layer failed (IO, corruption, checksum, checkpoint).
    Store(StoreError),
    /// The engine rejected data (shape mismatch, reduction failure, …).
    Query(QueryError),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Store(e) => write!(f, "store error: {e}"),
            DurableError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Store(e) => Some(e),
            DurableError::Query(e) => Some(e),
        }
    }
}

impl From<StoreError> for DurableError {
    fn from(e: StoreError) -> Self {
        DurableError::Store(e)
    }
}

impl From<QueryError> for DurableError {
    fn from(e: QueryError) -> Self {
        DurableError::Query(e)
    }
}

/// What [`DurableIndex::open`] found on disk.
#[derive(Debug)]
pub struct OpenReport {
    /// The compaction epoch the checkpoint named.
    pub epoch: u64,
    /// Objects loaded from the sealed segment.
    pub sealed_objects: usize,
    /// WAL records replayed over the sealed prefix.
    pub replayed_records: usize,
    /// A torn tail discarded during replay, if any (already truncated
    /// away; subsequent appends continue from the clean prefix).
    pub torn_tail: Option<TornTail>,
}

/// What [`DurableIndex::compact`] did.
#[derive(Debug)]
pub struct CompactReport {
    /// The epoch the index now runs at.
    pub epoch: u64,
    /// Live objects sealed into the new segment.
    pub sealed_objects: usize,
    /// WAL bytes folded away (length of the retired log file).
    pub folded_wal_bytes: u64,
}

/// [`StoreError::Io`] with the path it occurred on (the store crate's
/// own constructor is crate-private).
fn io_err(path: impl Into<PathBuf>, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.into(),
        source,
    }
}

/// [`StoreError::Invalid`] for durable-layer invariant violations.
fn invalid_err(
    path: impl Into<PathBuf>,
    section: impl Into<String>,
    reason: impl Into<String>,
) -> StoreError {
    StoreError::Invalid {
        path: path.into(),
        section: section.into(),
        reason: reason.into(),
    }
}

/// The path of epoch `epoch`'s WAL file.
fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{epoch}.log"))
}

/// The path of epoch `epoch`'s sealed segment.
fn sealed_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("sealed-{epoch}.seg"))
}

/// Take the advisory exclusive lock on `<dir>/LOCK`. The lock lives in
/// the returned handle: it is released when the handle drops or its
/// process dies, so a crashed owner never blocks recovery — only a
/// genuinely live concurrent owner is refused, with a typed
/// [`StoreError::Locked`].
fn lock_dir(dir: &Path) -> Result<File, StoreError> {
    let path = dir.join(LOCK_FILE);
    let file = File::options()
        .create(true)
        .write(true)
        .truncate(false)
        .open(&path)
        .map_err(|e| io_err(&path, e))?;
    match file.try_lock() {
        Ok(()) => Ok(file),
        Err(std::fs::TryLockError::WouldBlock) => Err(StoreError::Locked { path }),
        Err(std::fs::TryLockError::Error(e)) => Err(io_err(&path, e)),
    }
}

/// Fsync a directory so a just-renamed checkpoint survives power loss.
fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    let handle = File::open(dir).map_err(|e| io_err(dir, e))?;
    handle.sync_all().map_err(|e| io_err(dir, e))
}

/// Write the checkpoint atomically: temp file, fsync, rename, dir fsync.
fn write_checkpoint(dir: &Path, epoch: u64) -> Result<(), StoreError> {
    let tmp = dir.join("CURRENT.tmp");
    let final_path = dir.join(CHECKPOINT_FILE);
    std::fs::write(&tmp, format!("{CHECKPOINT_SCHEMA} {epoch}\n")).map_err(|e| io_err(&tmp, e))?;
    let handle = File::open(&tmp).map_err(|e| io_err(&tmp, e))?;
    handle.sync_all().map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, &final_path).map_err(|e| io_err(&final_path, e))?;
    sync_dir(dir)
}

/// Read the checkpoint; every malformation is a typed
/// [`StoreError::Manifest`].
fn read_checkpoint(dir: &Path) -> Result<u64, StoreError> {
    let path = dir.join(CHECKPOINT_FILE);
    let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
    let manifest_err = |reason: String| StoreError::Manifest {
        path: path.clone(),
        reason,
    };
    let mut tokens = text.split_whitespace();
    match tokens.next() {
        Some(schema) if schema == CHECKPOINT_SCHEMA => {}
        Some(schema) => {
            return Err(manifest_err(format!(
                "schema `{schema}` is not `{CHECKPOINT_SCHEMA}`"
            )))
        }
        None => return Err(manifest_err("empty checkpoint".to_owned())),
    }
    let epoch = tokens
        .next()
        .ok_or_else(|| manifest_err("checkpoint names no epoch".to_owned()))?;
    let epoch: u64 = epoch
        .parse()
        .map_err(|_| manifest_err(format!("epoch `{epoch}` is not a u64")))?;
    if tokens.next().is_some() {
        return Err(manifest_err("trailing tokens after the epoch".to_owned()));
    }
    Ok(epoch)
}

/// A WAL-backed, crash-safe dynamic index over one directory.
#[derive(Debug)]
pub struct DurableIndex {
    dir: PathBuf,
    index: DynamicIndex,
    /// Internal slot -> external id; `None` marks tombstoned slots.
    external_of_slot: Vec<Option<u64>>,
    /// Live external id -> internal slot. `BTreeMap` keeps iteration
    /// deterministic (this crate is under the determinism audit).
    slot_of_external: BTreeMap<u64, usize>,
    next_external: u64,
    epoch: u64,
    walw: WalWriter,
    faults: Arc<dyn FaultInjector>,
    /// Advisory exclusive lock on the directory; held (and declared
    /// last, so it drops last) for the index's whole lifetime.
    _lock: File,
}

impl DurableIndex {
    /// Create a fresh durable index at `dir` (the directory must exist
    /// and be empty of index files): writes `base.seg`, an empty
    /// `wal-0.log`, and the checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::Query`] when the reduction disagrees with
    /// `cost`, and [`DurableError::Store`] when any file cannot be
    /// written or synced — including [`StoreError::Locked`] when another
    /// live handle already owns the directory.
    pub fn create(
        dir: &Path,
        cost: Arc<CostMatrix>,
        reduced: ReducedEmd,
    ) -> Result<Self, DurableError> {
        Self::create_with(dir, cost, reduced, Arc::new(NoFaults))
    }

    /// [`DurableIndex::create`] with a fault injector for crash tests.
    ///
    /// # Errors
    ///
    /// Same contract as [`DurableIndex::create`], plus injected faults.
    pub fn create_with(
        dir: &Path,
        cost: Arc<CostMatrix>,
        reduced: ReducedEmd,
        faults: Arc<dyn FaultInjector>,
    ) -> Result<Self, DurableError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let lock = lock_dir(dir)?;
        let index = DynamicIndex::new(Arc::clone(&cost), reduced.clone())?;
        let base = dir.join(BASE_SEGMENT);
        let mut writer = SegmentWriter::create(&base)?;
        writer.section(
            SectionKind::CostMatrix,
            "cost",
            &sections::encode_cost_matrix(&cost),
        )?;
        writer.section(
            SectionKind::Reduction,
            "r1",
            &sections::encode_reduction(reduced.r1()),
        )?;
        writer.section(
            SectionKind::Reduction,
            "r2",
            &sections::encode_reduction(reduced.r2()),
        )?;
        writer.finish()?;
        let walw = WalWriter::create_with(&wal_path(dir, 0), Arc::clone(&faults))?;
        write_checkpoint(dir, 0)?;
        Ok(DurableIndex {
            dir: dir.to_path_buf(),
            index,
            external_of_slot: Vec::new(),
            slot_of_external: BTreeMap::new(),
            next_external: 0,
            epoch: 0,
            walw,
            faults,
            _lock: lock,
        })
    }

    /// Open an existing durable index, replaying its WAL over the sealed
    /// segment. A reported torn tail has already been truncated away;
    /// everything else about the open is fail-closed.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::Store`] for every form of on-disk damage
    /// (missing files, checksum mismatches, mid-file corruption, records
    /// that contradict the sealed segment) or when another live handle
    /// owns the directory ([`StoreError::Locked`]), and
    /// [`DurableError::Query`] when replayed data violates engine
    /// invariants.
    pub fn open(dir: &Path) -> Result<(Self, OpenReport), DurableError> {
        Self::open_with(dir, Arc::new(NoFaults))
    }

    /// [`DurableIndex::open`] with a fault injector for crash tests.
    ///
    /// # Errors
    ///
    /// Same contract as [`DurableIndex::open`], plus injected faults.
    pub fn open_with(
        dir: &Path,
        faults: Arc<dyn FaultInjector>,
    ) -> Result<(Self, OpenReport), DurableError> {
        let _span = emd_obs::span_with(|| format!("durable.open({})", dir.display()));
        // Own the directory before reading anything: replay truncates
        // torn tails and open sweeps orphans, neither of which may race
        // a concurrent owner.
        let lock = lock_dir(dir)?;
        let epoch = read_checkpoint(dir)?;
        let base = SegmentReader::open_with(&dir.join(BASE_SEGMENT), faults.as_ref())?;
        reject_unexpected(&base, &["cost", "r1", "r2"])?;
        let cost_section = base.typed_section(SectionKind::CostMatrix, "cost")?;
        let cost = Arc::new(sections::decode_cost_matrix(
            base.path(),
            "cost",
            cost_section.payload(),
        )?);
        let r1_section = base.typed_section(SectionKind::Reduction, "r1")?;
        let r1 = sections::decode_reduction(base.path(), "r1", r1_section.payload())?;
        let r2_section = base.typed_section(SectionKind::Reduction, "r2")?;
        let r2 = sections::decode_reduction(base.path(), "r2", r2_section.payload())?;
        let reduced = ReducedEmd::with_asymmetric(&cost, r1, r2)
            .map_err(|e| QueryError::Reduction(e.to_string()))?;
        let mut index = DynamicIndex::new(Arc::clone(&cost), reduced)?;

        let mut external_of_slot: Vec<Option<u64>> = Vec::new();
        let mut slot_of_external: BTreeMap<u64, usize> = BTreeMap::new();
        let mut next_external = 0u64;
        let mut sealed_ids: Vec<u64> = Vec::new();
        if epoch > 0 {
            let sealed_file = sealed_path(dir, epoch);
            let sealed = SegmentReader::open_with(&sealed_file, faults.as_ref())?;
            reject_unexpected(&sealed, &["histograms", "external-ids"])?;
            let arena_section = sealed.typed_section(SectionKind::HistogramArena, "histograms")?;
            let (_, histograms) = sections::decode_histogram_arena(
                sealed.path(),
                "histograms",
                arena_section.payload(),
            )?;
            let ids_section = sealed.typed_section(SectionKind::IdMap, "external-ids")?;
            sealed_ids =
                sections::decode_id_map(sealed.path(), "external-ids", ids_section.payload())?;
            if sealed_ids.len() != histograms.len() {
                return Err(invalid_err(
                    &sealed_file,
                    "external-ids",
                    format!(
                        "{} ids for {} histograms",
                        sealed_ids.len(),
                        histograms.len()
                    ),
                )
                .into());
            }
            for (histogram, &external) in histograms.into_iter().zip(&sealed_ids) {
                let slot = index.insert(histogram)?;
                external_of_slot.push(Some(external));
                slot_of_external.insert(external, slot);
                next_external = next_external.max(external + 1);
            }
        }

        let wal_file = wal_path(dir, epoch);
        let replay = wal::replay_with(&wal_file, Arc::clone(&faults))?;
        let replayed_records = replay.records.len();
        let invalid_wal =
            |reason: String| DurableError::Store(invalid_err(&wal_file, "wal", reason));
        // The compact-epoch record is fsynced before the checkpoint ever
        // names its epoch, so a post-compaction WAL without one is real
        // damage, not a survivable torn tail.
        if epoch > 0 && replay.records.is_empty() {
            return Err(invalid_wal(
                "post-compaction WAL lost its compact-epoch record".to_owned(),
            ));
        }
        for (position, (_lsn, record)) in replay.records.iter().enumerate() {
            match record {
                WalRecord::CompactEpoch {
                    epoch: sealed_epoch,
                    next_external: sealed_next,
                    external_ids,
                } => {
                    if position != 0 || epoch == 0 {
                        return Err(invalid_wal(format!(
                            "compact-epoch record at position {position}"
                        )));
                    }
                    if *sealed_epoch != epoch {
                        return Err(invalid_wal(format!(
                            "compact-epoch names epoch {sealed_epoch}, checkpoint says {epoch}"
                        )));
                    }
                    if *external_ids != sealed_ids {
                        return Err(invalid_wal(
                            "compact-epoch id map disagrees with the sealed segment".to_owned(),
                        ));
                    }
                    if *sealed_next < next_external {
                        return Err(invalid_wal(format!(
                            "compact-epoch next-external {sealed_next} below sealed maximum"
                        )));
                    }
                    next_external = *sealed_next;
                }
                WalRecord::Insert {
                    external_id,
                    histogram,
                } => {
                    if epoch > 0 && position == 0 {
                        return Err(invalid_wal(
                            "post-compaction WAL must start with a compact-epoch record".to_owned(),
                        ));
                    }
                    if *external_id != next_external {
                        return Err(invalid_wal(format!(
                            "insert carries external id {external_id}, expected {next_external}"
                        )));
                    }
                    let slot = index.insert(histogram.clone())?;
                    external_of_slot.push(Some(*external_id));
                    slot_of_external.insert(*external_id, slot);
                    next_external = *external_id + 1;
                }
                WalRecord::Remove { external_id } => {
                    let slot = slot_of_external.remove(external_id).ok_or_else(|| {
                        invalid_wal(format!("remove of unknown external id {external_id}"))
                    })?;
                    if !index.remove(slot) {
                        return Err(invalid_wal(format!(
                            "remove of already-dead slot {slot} (external id {external_id})"
                        )));
                    }
                    if let Some(entry) = external_of_slot.get_mut(slot) {
                        *entry = None;
                    }
                }
            }
        }
        let torn_tail = replay.torn_tail.clone();
        let walw = WalWriter::open_for_append(&wal_file, &replay, Arc::clone(&faults))?;
        let sealed_objects = sealed_ids.len();
        let durable = DurableIndex {
            dir: dir.to_path_buf(),
            index,
            external_of_slot,
            slot_of_external,
            next_external,
            epoch,
            walw,
            faults,
            _lock: lock,
        };
        durable.sweep_orphans();
        Ok((
            durable,
            OpenReport {
                epoch,
                sealed_objects,
                replayed_records,
                torn_tail,
            },
        ))
    }

    /// Remove files left behind by a compaction that crashed between
    /// writing new-epoch files and flipping (or after flipping) the
    /// checkpoint. Best-effort: an undeletable orphan is harmless — it
    /// is swept again on the next open.
    fn sweep_orphans(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else {
                continue;
            };
            let stale = parse_epoch_file(name).is_some_and(|epoch| epoch != self.epoch)
                || name == "CURRENT.tmp";
            if stale {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    /// The ground-distance matrix this index persists against.
    #[must_use]
    pub fn cost(&self) -> &Arc<CostMatrix> {
        self.index.cost()
    }

    /// Live object count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no live objects remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The compaction epoch currently on disk.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The directory this index persists into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Append an insert to the WAL and apply it in memory, returning the
    /// new object's external id. **Not yet durable**: call
    /// [`DurableIndex::sync`] before acknowledging it to a client. Batch
    /// loaders amortize one sync over many appends.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::Query`] when the histogram's shape or
    /// reduction is rejected (nothing is logged), and
    /// [`DurableError::Store`] when the WAL append fails (the in-memory
    /// insert is rolled back and the index stays consistent for later
    /// writes — no external id is consumed).
    pub fn append_insert(&mut self, histogram: Histogram) -> Result<u64, DurableError> {
        let slot = self.index.insert(histogram.clone())?;
        debug_assert_eq!(slot, self.external_of_slot.len());
        let external_id = self.next_external;
        if let Err(error) = self.walw.append(&WalRecord::Insert {
            external_id,
            histogram,
        }) {
            // Roll back in memory. `DynamicIndex` never reuses slots, so
            // the rolled-back slot stays tombstoned — record it as such
            // to keep `external_of_slot` aligned with the slot space
            // (a bare remove would shift every later slot's external id).
            self.index.remove(slot);
            self.external_of_slot.push(None);
            return Err(error.into());
        }
        self.external_of_slot.push(Some(external_id));
        self.slot_of_external.insert(external_id, slot);
        self.next_external = external_id + 1;
        Ok(external_id)
    }

    /// Insert with immediate durability: append + [`DurableIndex::sync`].
    ///
    /// # Errors
    ///
    /// Propagates [`DurableIndex::append_insert`] and
    /// [`DurableIndex::sync`] failures. After a sync failure the record's
    /// durability is *unknown* (it may still reach disk); reopening the
    /// directory recovers the authoritative state.
    pub fn insert(&mut self, histogram: Histogram) -> Result<u64, DurableError> {
        let external_id = self.append_insert(histogram)?;
        self.sync()?;
        Ok(external_id)
    }

    /// Append a remove to the WAL and apply it in memory. Returns `false`
    /// (logging nothing) when the external id is unknown. Like
    /// [`DurableIndex::append_insert`], durable only after
    /// [`DurableIndex::sync`].
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::Store`] when the WAL append fails; the
    /// in-memory state is untouched in that case.
    pub fn append_remove(&mut self, external_id: u64) -> Result<bool, DurableError> {
        let Some(&slot) = self.slot_of_external.get(&external_id) else {
            return Ok(false);
        };
        self.walw.append(&WalRecord::Remove { external_id })?;
        self.index.remove(slot);
        self.slot_of_external.remove(&external_id);
        if let Some(entry) = self.external_of_slot.get_mut(slot) {
            *entry = None;
        }
        Ok(true)
    }

    /// Remove with immediate durability: append + [`DurableIndex::sync`].
    ///
    /// # Errors
    ///
    /// Propagates [`DurableIndex::append_remove`] and
    /// [`DurableIndex::sync`] failures (see [`DurableIndex::insert`] for
    /// post-sync-failure semantics).
    pub fn remove(&mut self, external_id: u64) -> Result<bool, DurableError> {
        if !self.append_remove(external_id)? {
            return Ok(false);
        }
        self.sync()?;
        Ok(true)
    }

    /// Fetch a live object by external id.
    #[must_use]
    pub fn get(&self, external_id: u64) -> Option<&Histogram> {
        self.slot_of_external
            .get(&external_id)
            .and_then(|&slot| self.index.get(slot))
    }

    /// Make every appended record durable (fsync). The explicit point
    /// after which appends may be acknowledged.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::Store`] on flush/fsync failure (real or
    /// injected at `Site::WalSync`).
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.walw.sync()?;
        Ok(())
    }

    /// Fold the WAL into a new sealed segment and start a fresh log.
    ///
    /// Steps, in crash-safe order: compact the in-memory index (external
    /// ids are unaffected), write `sealed-<epoch+1>.seg`, create
    /// `wal-<epoch+1>.log` whose first record is the
    /// [`WalRecord::CompactEpoch`] id map, flip the checkpoint
    /// atomically, then retire the old epoch's files. A crash before the
    /// checkpoint flip reopens the old epoch; after it, the new one —
    /// never a mixture. Outstanding snapshots are unaffected
    /// (copy-on-write).
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::Store`] when sealing, logging or the
    /// checkpoint flip fails (real or injected at `Site::Compact`). The
    /// in-memory index stays consistent and the old epoch stays intact.
    pub fn compact(&mut self) -> Result<CompactReport, DurableError> {
        let _span = emd_obs::span("durable.compact");
        if let Some(Fault::Io) = self.faults.check(Site::Compact) {
            return Err(io_err(
                sealed_path(&self.dir, self.epoch + 1),
                std::io::Error::other("injected compaction fault"),
            )
            .into());
        }
        let new_epoch = self.epoch + 1;
        // Renumber in memory first; external ids are stable so a failure
        // below leaves a fully consistent (just un-sealed) index.
        let mapping = self.index.compact();
        let mut externals = Vec::with_capacity(mapping.len());
        for old_slot in &mapping {
            let external = self
                .external_of_slot
                .get(*old_slot)
                .copied()
                .flatten()
                .ok_or_else(|| {
                    invalid_err(
                        &self.dir,
                        "compact",
                        format!("live slot {old_slot} has no external id"),
                    )
                })?;
            externals.push(external);
        }
        self.external_of_slot = externals.iter().map(|&e| Some(e)).collect();
        self.slot_of_external = externals
            .iter()
            .enumerate()
            .map(|(slot, &external)| (external, slot))
            .collect();

        let histograms: Vec<Histogram> = (0..self.index.len())
            .filter_map(|slot| self.index.get(slot).cloned())
            .collect();
        let dim = histograms.first().map_or(0, Histogram::dim);
        let sealed_file = sealed_path(&self.dir, new_epoch);
        let mut writer = SegmentWriter::create(&sealed_file)?;
        writer.section(
            SectionKind::HistogramArena,
            "histograms",
            &sections::encode_histogram_arena(dim, &histograms),
        )?;
        writer.section(
            SectionKind::IdMap,
            "external-ids",
            &sections::encode_id_map(&externals),
        )?;
        writer.finish()?;

        let old_wal = wal_path(&self.dir, self.epoch);
        let folded_wal_bytes = std::fs::metadata(&old_wal).map_or(0, |m| m.len());
        let mut new_wal =
            WalWriter::create_with(&wal_path(&self.dir, new_epoch), Arc::clone(&self.faults))?;
        new_wal.append(&WalRecord::CompactEpoch {
            epoch: new_epoch,
            next_external: self.next_external,
            external_ids: externals,
        })?;
        new_wal.sync()?;
        write_checkpoint(&self.dir, new_epoch)?;

        // The flip is durable: swap in the new epoch and retire the old
        // files (best-effort — orphans are swept on the next open).
        let old_sealed = sealed_path(&self.dir, self.epoch);
        self.epoch = new_epoch;
        self.walw = new_wal;
        let _ = std::fs::remove_file(&old_wal);
        if old_sealed.exists() {
            let _ = std::fs::remove_file(&old_sealed);
        }
        emd_obs::counter_add("compact.runs", 1);
        Ok(CompactReport {
            epoch: new_epoch,
            sealed_objects: self.index.len(),
            folded_wal_bytes,
        })
    }

    /// An immutable, queryable snapshot translating to external ids.
    /// Cheap (copy-on-write storage sharing) and isolated from every
    /// later mutation, including compaction.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError::Query`] ([`QueryError::EmptyDatabase`])
    /// when no live objects remain.
    pub fn snapshot(&self) -> Result<DurableSnapshot, DurableError> {
        let inner = self.index.snapshot()?;
        Ok(DurableSnapshot {
            inner,
            externals: Arc::new(self.external_of_slot.clone()),
        })
    }

    /// Exact k-NN by external id.
    ///
    /// # Errors
    ///
    /// Same contract as [`DynamicIndex::knn`].
    // lint: allow(unbudgeted): convenience twin; budgets enter via the snapshot executor.
    pub fn knn(
        &self,
        query: &Histogram,
        k: usize,
    ) -> Result<(Vec<(u64, f64)>, QueryStats), DurableError> {
        self.snapshot()?.knn(query, k).map_err(DurableError::from)
    }

    /// Exact range query by external id.
    ///
    /// # Errors
    ///
    /// Same contract as [`DynamicIndex::range`].
    // lint: allow(unbudgeted): convenience twin; budgets enter via the snapshot executor.
    pub fn range(
        &self,
        query: &Histogram,
        epsilon: f64,
    ) -> Result<(Vec<(u64, f64)>, QueryStats), DurableError> {
        self.snapshot()?
            .range(query, epsilon)
            .map_err(DurableError::from)
    }
}

/// Match `wal-<epoch>.log` / `sealed-<epoch>.seg` names, returning the
/// epoch, for orphan sweeping.
fn parse_epoch_file(name: &str) -> Option<u64> {
    let epoch = name
        .strip_prefix("wal-")
        .and_then(|rest| rest.strip_suffix(".log"))
        .or_else(|| {
            name.strip_prefix("sealed-")
                .and_then(|rest| rest.strip_suffix(".seg"))
        })?;
    epoch.parse().ok()
}

/// Fail closed on section names this build does not expect — the PR 8
/// lesson: an unknown section is a format extension this build cannot
/// honor, not something to skip.
fn reject_unexpected(reader: &SegmentReader, allowed: &[&str]) -> Result<(), StoreError> {
    for section in reader.sections() {
        if !allowed.contains(&section.name()) {
            return Err(invalid_err(
                reader.path(),
                section.name(),
                "unexpected section for this segment role",
            ));
        }
    }
    Ok(())
}

/// A frozen, external-id view of a [`DurableIndex`].
#[derive(Debug)]
pub struct DurableSnapshot {
    inner: DynamicSnapshot,
    /// Slot -> external id at snapshot time.
    externals: Arc<Vec<Option<u64>>>,
}

impl DurableSnapshot {
    /// Number of live objects captured.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the snapshot is empty (never true: empty indexes refuse
    /// to snapshot).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The underlying executor (dense ids — budgeted/isolated execution
    /// for the server; map results back with
    /// [`external_id`](Self::external_id)).
    #[must_use]
    pub fn executor(&self) -> &Executor {
        self.inner.executor()
    }

    /// The external id of the object at dense (engine) position `dense`.
    #[must_use]
    pub fn external_id(&self, dense: usize) -> Option<u64> {
        let slot = self.inner.stable_id(dense)?;
        self.externals.get(slot).copied().flatten()
    }

    /// Exact k-NN returning `(external id, distance)` pairs.
    ///
    /// # Errors
    ///
    /// Same contract as [`DynamicSnapshot::knn`].
    // lint: allow(unbudgeted): convenience twin; budgets enter via the executor.
    pub fn knn(
        &self,
        query: &Histogram,
        k: usize,
    ) -> Result<(Vec<(u64, f64)>, QueryStats), QueryError> {
        let (neighbors, stats) = self.inner.knn(query, k)?;
        Ok((self.to_external(neighbors)?, stats))
    }

    /// Exact range query returning `(external id, distance)` pairs.
    ///
    /// # Errors
    ///
    /// Same contract as [`DynamicSnapshot::range`].
    // lint: allow(unbudgeted): convenience twin; budgets enter via the executor.
    pub fn range(
        &self,
        query: &Histogram,
        epsilon: f64,
    ) -> Result<(Vec<(u64, f64)>, QueryStats), QueryError> {
        let (neighbors, stats) = self.inner.range(query, epsilon)?;
        Ok((self.to_external(neighbors)?, stats))
    }

    fn to_external(&self, neighbors: Vec<crate::Neighbor>) -> Result<Vec<(u64, f64)>, QueryError> {
        neighbors
            .into_iter()
            .map(|n| {
                let external = self
                    .externals
                    .get(n.id)
                    .copied()
                    .flatten()
                    .ok_or(QueryError::UnknownObject(n.id))?;
                Ok((external, n.distance))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_core::ground;
    use emd_reduction::CombiningReduction;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    fn reduced(cost: &CostMatrix) -> ReducedEmd {
        ReducedEmd::new(cost, CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap()).unwrap()
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flexemd-durable-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fresh(dir: &Path) -> DurableIndex {
        let cost = Arc::new(ground::linear(4).unwrap());
        let r = reduced(&cost);
        DurableIndex::create(dir, cost, r).unwrap()
    }

    fn corpus() -> Vec<Histogram> {
        vec![
            h(&[1.0, 0.0, 0.0, 0.0]),
            h(&[0.0, 1.0, 0.0, 0.0]),
            h(&[0.0, 0.0, 1.0, 0.0]),
            h(&[0.0, 0.0, 0.0, 1.0]),
            h(&[0.25, 0.25, 0.25, 0.25]),
        ]
    }

    #[test]
    fn create_insert_reopen_replays_identically() {
        let dir = tmp_dir("reopen");
        let query = h(&[0.8, 0.2, 0.0, 0.0]);
        let before;
        {
            let mut index = fresh(&dir);
            for histogram in corpus() {
                index.insert(histogram).unwrap();
            }
            index.remove(1).unwrap();
            before = index.knn(&query, 3).unwrap().0;
        }
        let (reopened, report) = DurableIndex::open(&dir).unwrap();
        assert_eq!(report.epoch, 0);
        assert_eq!(report.replayed_records, 6);
        assert!(report.torn_tail.is_none());
        assert_eq!(reopened.len(), 4);
        let after = reopened.knn(&query, 3).unwrap().0;
        let bits = |v: &[(u64, f64)]| -> Vec<(u64, u64)> {
            v.iter().map(|&(i, d)| (i, d.to_bits())).collect()
        };
        assert_eq!(bits(&before), bits(&after), "bit-identical across reopen");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn external_ids_survive_compaction_and_reopen() {
        let dir = tmp_dir("compact-ids");
        let mut index = fresh(&dir);
        let ids: Vec<u64> = corpus()
            .into_iter()
            .map(|histogram| index.insert(histogram).unwrap())
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        index.remove(0).unwrap();
        index.remove(2).unwrap();
        let report = index.compact().unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.sealed_objects, 3);

        // Queries keep answering in external ids after compaction...
        let (hits, _) = index.knn(&h(&[0.0, 0.9, 0.1, 0.0]), 1).unwrap();
        assert_eq!(hits[0].0, 1, "external id 1 survives compaction");
        // ...and the persisted id map restores them after reopen.
        let next_before = index.insert(h(&[0.5, 0.0, 0.0, 0.5])).unwrap();
        assert_eq!(next_before, 5, "allocator continues after compaction");
        drop(index);
        let (reopened, report) = DurableIndex::open(&dir).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.sealed_objects, 3);
        let (hits, _) = reopened.knn(&h(&[0.0, 0.9, 0.1, 0.0]), 1).unwrap();
        assert_eq!(hits[0].0, 1, "external id survives compaction + reopen");
        assert!(reopened.get(0).is_none(), "removed ids stay removed");
        assert!(reopened.get(5).is_some(), "post-compaction insert survives");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_compaction_preserves_id_allocator() {
        let dir = tmp_dir("empty-compact");
        let mut index = fresh(&dir);
        let a = index.insert(h(&[1.0, 0.0, 0.0, 0.0])).unwrap();
        index.remove(a).unwrap();
        index.compact().unwrap();
        drop(index);
        let (mut reopened, _) = DurableIndex::open(&dir).unwrap();
        let b = reopened.insert(h(&[0.0, 1.0, 0.0, 0.0])).unwrap();
        assert!(b > a, "external ids are never reused ({b} vs {a})");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_is_isolated_from_ingest_and_compaction() {
        let dir = tmp_dir("snapshot-iso");
        let mut index = fresh(&dir);
        for histogram in corpus() {
            index.insert(histogram).unwrap();
        }
        let query = h(&[0.9, 0.1, 0.0, 0.0]);
        let snapshot = index.snapshot().unwrap();
        let frozen = snapshot.knn(&query, 2).unwrap().0;

        index.remove(0).unwrap();
        index.insert(h(&[0.95, 0.05, 0.0, 0.0])).unwrap();
        index.compact().unwrap();

        let frozen_again = snapshot.knn(&query, 2).unwrap().0;
        let bits = |v: &[(u64, f64)]| -> Vec<(u64, u64)> {
            v.iter().map(|&(i, d)| (i, d.to_bits())).collect()
        };
        assert_eq!(bits(&frozen), bits(&frozen_again), "snapshot is frozen");
        let (current, _) = index.knn(&query, 1).unwrap();
        assert_eq!(current[0].0, 5, "the index sees the new object");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsynced_appends_batch_then_sync() {
        let dir = tmp_dir("batch");
        let mut index = fresh(&dir);
        for histogram in corpus() {
            index.append_insert(histogram).unwrap();
        }
        index.sync().unwrap();
        drop(index);
        let (reopened, report) = DurableIndex::open(&dir).unwrap();
        assert_eq!(report.replayed_records, 5);
        assert_eq!(reopened.len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_of_unknown_id_logs_nothing() {
        let dir = tmp_dir("unknown-remove");
        let mut index = fresh(&dir);
        index.insert(h(&[1.0, 0.0, 0.0, 0.0])).unwrap();
        assert!(!index.remove(99).unwrap());
        drop(index);
        let (_, report) = DurableIndex::open(&dir).unwrap();
        assert_eq!(report.replayed_records, 1, "no-op removes are not logged");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_recovers_prefix_and_appends_continue() {
        let dir = tmp_dir("torn");
        {
            let mut index = fresh(&dir);
            for histogram in corpus() {
                index.insert(histogram).unwrap();
            }
        }
        let wal_file = wal_path(&dir, 0);
        let bytes = std::fs::read(&wal_file).unwrap();
        std::fs::write(&wal_file, &bytes[..bytes.len() - 5]).unwrap();
        let (mut reopened, report) = DurableIndex::open(&dir).unwrap();
        assert!(report.torn_tail.is_some(), "tear is reported");
        assert_eq!(report.replayed_records, 4, "clean prefix survives");
        assert_eq!(reopened.len(), 4);
        // The torn object's external id was never acknowledged; the
        // allocator may reuse it — what matters is appends still work.
        let id = reopened.insert(h(&[0.1, 0.2, 0.3, 0.4])).unwrap();
        assert_eq!(id, 4);
        drop(reopened);
        let (final_index, report) = DurableIndex::open(&dir).unwrap();
        assert!(report.torn_tail.is_none(), "tail was truncated on reopen");
        assert_eq!(final_index.len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn midfile_wal_corruption_fails_typed() {
        let dir = tmp_dir("midfile");
        {
            let mut index = fresh(&dir);
            for histogram in corpus() {
                index.insert(histogram).unwrap();
            }
        }
        let wal_file = wal_path(&dir, 0);
        let mut bytes = std::fs::read(&wal_file).unwrap();
        bytes[40] ^= 0x10; // inside the first record, valid records follow
        std::fs::write(&wal_file, &bytes).unwrap();
        let error = DurableIndex::open(&dir).expect_err("mid-file damage is fatal");
        assert!(
            matches!(
                error,
                DurableError::Store(StoreError::ChecksumMismatch { .. })
            ),
            "got {error}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_append_insert_keeps_id_space_aligned() {
        use emd_faultkit::FailPlan;
        let dir = tmp_dir("append-fault");
        let cost = Arc::new(ground::linear(4).unwrap());
        let r = reduced(&cost);
        let plan = Arc::new(FailPlan::new().fail_wal_append(2));
        let mut index = DurableIndex::create_with(&dir, cost, r, plan).unwrap();
        let first = index.insert(h(&[1.0, 0.0, 0.0, 0.0])).unwrap();
        let error = index
            .insert(h(&[0.0, 1.0, 0.0, 0.0]))
            .expect_err("second append injected");
        assert!(matches!(error, DurableError::Store(StoreError::Io { .. })));
        // The failed insert consumed no external id, and the rolled-back
        // (tombstoned, never reused) slot must not shift later ids.
        let second = index.insert(h(&[0.0, 0.0, 1.0, 0.0])).unwrap();
        assert_eq!((first, second), (0, 1));
        let probe = h(&[0.0, 0.0, 0.9, 0.1]);
        let (hits, _) = index.knn(&probe, 1).unwrap();
        assert_eq!(hits[0].0, 1, "external ids stay aligned after rollback");
        // Compaction skips the tombstone and stays consistent...
        let report = index.compact().unwrap();
        assert_eq!(report.sealed_objects, 2);
        let (hits, _) = index.knn(&probe, 1).unwrap();
        assert_eq!(hits[0].0, 1, "alignment survives compaction");
        // ...and so does a cold reopen (the failed append was never
        // logged, so replay sees a dense history).
        drop(index);
        let (reopened, _) = DurableIndex::open(&dir).unwrap();
        let (hits, _) = reopened.knn(&probe, 1).unwrap();
        assert_eq!(hits[0].0, 1, "alignment survives reopen");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn directory_lock_excludes_concurrent_owners() {
        let dir = tmp_dir("lock");
        let index = fresh(&dir);
        let error = DurableIndex::open(&dir).expect_err("live owner must exclude a second open");
        assert!(
            matches!(error, DurableError::Store(StoreError::Locked { .. })),
            "got {error}"
        );
        // Releasing the handle releases the lock.
        drop(index);
        let (reopened, _) = DurableIndex::open(&dir).unwrap();
        drop(reopened);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_compact_fault_leaves_old_epoch_intact() {
        use emd_faultkit::FailPlan;
        let dir = tmp_dir("compact-fault");
        let cost = Arc::new(ground::linear(4).unwrap());
        let r = reduced(&cost);
        let plan = Arc::new(FailPlan::new().fail_compact(1));
        let mut index = DurableIndex::create_with(&dir, cost, r, plan).unwrap();
        for histogram in corpus() {
            index.insert(histogram).unwrap();
        }
        index.remove(1).unwrap();
        let error = index.compact().expect_err("first compaction injected");
        assert!(matches!(error, DurableError::Store(StoreError::Io { .. })));
        // The failed compaction must not have flipped the checkpoint...
        assert_eq!(index.epoch(), 0);
        // ...and a second attempt succeeds.
        let report = index.compact().unwrap();
        assert_eq!(report.epoch, 1);
        drop(index);
        let (reopened, _) = DurableIndex::open(&dir).unwrap();
        assert_eq!(reopened.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_between_seal_and_checkpoint_reopens_old_epoch() {
        let dir = tmp_dir("crash-window");
        let mut index = fresh(&dir);
        for histogram in corpus() {
            index.insert(histogram).unwrap();
        }
        // Simulate the crash window: new-epoch files exist, checkpoint
        // still names epoch 0.
        let externals: Vec<u64> = vec![0, 1, 2, 3, 4];
        let sealed_file = sealed_path(&dir, 1);
        let mut writer = SegmentWriter::create(&sealed_file).unwrap();
        writer
            .section(
                SectionKind::HistogramArena,
                "histograms",
                &sections::encode_histogram_arena(4, &corpus()),
            )
            .unwrap();
        writer
            .section(
                SectionKind::IdMap,
                "external-ids",
                &sections::encode_id_map(&externals),
            )
            .unwrap();
        writer.finish().unwrap();
        let mut orphan_wal = WalWriter::create(&wal_path(&dir, 1)).unwrap();
        orphan_wal
            .append(&WalRecord::CompactEpoch {
                epoch: 1,
                next_external: 5,
                external_ids: externals,
            })
            .unwrap();
        orphan_wal.sync().unwrap();
        drop(index);
        let (reopened, report) = DurableIndex::open(&dir).unwrap();
        assert_eq!(report.epoch, 0, "old epoch wins before the flip");
        assert_eq!(reopened.len(), 5);
        assert!(
            !sealed_path(&dir, 1).exists() && !wal_path(&dir, 1).exists(),
            "orphans are swept"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_malformations_are_typed() {
        let dir = tmp_dir("bad-checkpoint");
        fresh(&dir);
        for bad in [
            "",
            "flexemd-durable/v1",
            "other/v1 0",
            "flexemd-durable/v1 x",
        ] {
            std::fs::write(dir.join(CHECKPOINT_FILE), bad).unwrap();
            let error = DurableIndex::open(&dir).expect_err("bad checkpoint");
            assert!(
                matches!(error, DurableError::Store(StoreError::Manifest { .. })),
                "`{bad}` gave {error}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
