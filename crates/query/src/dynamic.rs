//! A mutable EMD retrieval index.
//!
//! [`Pipeline`](crate::Pipeline) indexes an immutable database snapshot —
//! the setting of the paper's experiments. Real deployments also insert
//! and delete objects; `DynamicIndex` supports both while keeping the
//! reduced (filter) representation of every object in sync, so queries
//! retain the complete filter-and-refine behaviour without rebuilds.
//!
//! Deletions use tombstones: ids are stable, storage is reclaimed by
//! [`DynamicIndex::compact`]. Queries run the same KNOP algorithm as the
//! static pipeline, restricted to live objects.

use crate::error::QueryError;
use crate::stats::QueryStats;
use crate::Neighbor;
use emd_core::{emd_rectangular, CostMatrix, Histogram};
use emd_reduction::ReducedEmd;
use std::sync::Arc;

/// A mutable database with a reduced-EMD filter kept in sync.
///
/// ```
/// use emd_core::{ground, Histogram};
/// use emd_query::DynamicIndex;
/// use emd_reduction::{CombiningReduction, ReducedEmd};
/// use std::sync::Arc;
///
/// let cost = Arc::new(ground::linear(4)?);
/// let reduced = ReducedEmd::new(&cost, CombiningReduction::new(vec![0, 0, 1, 1], 2)?)?;
/// let mut index = DynamicIndex::new(cost, reduced)?;
///
/// let a = index.insert(Histogram::new(vec![1.0, 0.0, 0.0, 0.0])?)?;
/// let b = index.insert(Histogram::new(vec![0.0, 0.0, 0.0, 1.0])?)?;
/// let (nearest, _) = index.knn(&Histogram::new(vec![0.9, 0.1, 0.0, 0.0])?, 1)?;
/// assert_eq!(nearest[0].id, a);
///
/// index.remove(a);
/// let (nearest, _) = index.knn(&Histogram::new(vec![0.9, 0.1, 0.0, 0.0])?, 1)?;
/// assert_eq!(nearest[0].id, b);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DynamicIndex {
    cost: Arc<CostMatrix>,
    reduced: ReducedEmd,
    /// Original histograms; `None` marks a deleted id.
    objects: Vec<Option<Histogram>>,
    /// Reduced (database-side) representation of each live object.
    reduced_objects: Vec<Option<Histogram>>,
    live: usize,
}

impl DynamicIndex {
    /// Create an empty index for histograms matching `cost`, filtered by
    /// the given reduced EMD (its `R2` side applies to stored objects).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] when the reduced EMD's original dimensionality
    /// disagrees with `cost`.
    pub fn new(cost: Arc<CostMatrix>, reduced: ReducedEmd) -> Result<Self, QueryError> {
        if reduced.r2().original_dim() != cost.cols() {
            return Err(QueryError::Reduction(format!(
                "reduction covers {} dimensions, cost matrix {}",
                reduced.r2().original_dim(),
                cost.cols()
            )));
        }
        Ok(DynamicIndex {
            cost,
            reduced,
            objects: Vec::new(),
            reduced_objects: Vec::new(),
            live: 0,
        })
    }

    /// Number of live (not deleted) objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live objects remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a histogram; returns its stable id.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] when the histogram's dimensionality disagrees with
    /// the index, or the reduction of the new object fails.
    pub fn insert(&mut self, histogram: Histogram) -> Result<usize, QueryError> {
        if histogram.dim() != self.cost.cols() {
            return Err(QueryError::Core(emd_core::CoreError::DimensionMismatch {
                expected_rows: self.cost.rows(),
                expected_cols: self.cost.cols(),
                got_rows: histogram.dim(),
                got_cols: histogram.dim(),
            }));
        }
        let reduced = self.reduced.reduce_second(&histogram)?;
        let id = self.objects.len();
        self.objects.push(Some(histogram));
        self.reduced_objects.push(Some(reduced));
        self.live += 1;
        Ok(id)
    }

    /// Delete by id. Returns `true` if the object existed and was live.
    pub fn remove(&mut self, id: usize) -> bool {
        match self.objects.get_mut(id) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.reduced_objects[id] = None;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Fetch a live object.
    pub fn get(&self, id: usize) -> Option<&Histogram> {
        self.objects.get(id).and_then(Option::as_ref)
    }

    /// Drop tombstones, renumbering ids densely. Returns the mapping
    /// `new_id -> old_id`.
    pub fn compact(&mut self) -> Vec<usize> {
        let mut mapping = Vec::with_capacity(self.live);
        let mut objects = Vec::with_capacity(self.live);
        let mut reduced_objects = Vec::with_capacity(self.live);
        for (old_id, slot) in self.objects.drain(..).enumerate() {
            if let Some(histogram) = slot {
                mapping.push(old_id);
                objects.push(Some(histogram));
            }
        }
        reduced_objects.extend(self.reduced_objects.drain(..).flatten().map(Some));
        debug_assert_eq!(objects.len(), reduced_objects.len());
        self.objects = objects;
        self.reduced_objects = reduced_objects;
        mapping
    }

    /// Exact k-NN over the live objects: reduced-EMD filter ranking
    /// followed by KNOP-style refinement (complete — identical results to
    /// scanning every live object with the exact EMD).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] on query shape mismatch or if an exact EMD
    /// refinement fails.
    pub fn knn(
        &self,
        query: &Histogram,
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        if k == 0 {
            return Err(QueryError::ZeroK);
        }
        if self.live == 0 {
            return Err(QueryError::EmptyDatabase);
        }
        let reduced_query = self.reduced.reduce_first(query)?;

        // Filter scan over live objects.
        let mut ranking: Vec<(usize, f64)> = Vec::with_capacity(self.live);
        for (id, slot) in self.reduced_objects.iter().enumerate() {
            if let Some(reduced_object) = slot {
                let bound = self
                    .reduced
                    .distance_reduced(&reduced_query, reduced_object)?;
                ranking.push((id, bound));
            }
        }
        let filter_evaluations = ranking.len();
        ranking.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

        // KNOP refinement.
        let mut neighbors: Vec<Neighbor> = Vec::with_capacity(k + 1);
        let mut refinements = 0usize;
        for &(id, bound) in &ranking {
            if neighbors.len() >= k && bound > neighbors[k - 1].distance {
                break;
            }
            #[allow(clippy::expect_used)]
            // lint: allow(panic): `live` only contains ids whose slot is Some by construction
            let object = self.objects[id].as_ref().expect("live id");
            let distance = emd_rectangular(query, object, &self.cost)?;
            refinements += 1;
            if neighbors.len() < k {
                let position = neighbors.partition_point(|n| n.distance <= distance);
                neighbors.insert(position, Neighbor { id, distance });
            } else if distance < neighbors[k - 1].distance {
                let position = neighbors.partition_point(|n| n.distance <= distance);
                neighbors.insert(position, Neighbor { id, distance });
                neighbors.pop();
            }
        }

        let results = neighbors.len();
        Ok((
            neighbors,
            QueryStats {
                filter_evaluations: vec![("red-emd".to_owned(), filter_evaluations)],
                refinements,
                results,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::brute_force_knn;
    use emd_core::ground;
    use emd_reduction::CombiningReduction;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    fn index() -> DynamicIndex {
        let cost = Arc::new(ground::linear(4).unwrap());
        let r = CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap();
        let reduced = ReducedEmd::new(&cost, r).unwrap();
        DynamicIndex::new(cost, reduced).unwrap()
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut index = index();
        let a = index.insert(h(&[1.0, 0.0, 0.0, 0.0])).unwrap();
        let b = index.insert(h(&[0.0, 0.0, 0.0, 1.0])).unwrap();
        let c = index.insert(h(&[0.5, 0.5, 0.0, 0.0])).unwrap();
        assert_eq!(index.len(), 3);

        let query = h(&[0.9, 0.1, 0.0, 0.0]);
        let (neighbors, stats) = index.knn(&query, 2).unwrap();
        assert_eq!(neighbors[0].id, a);
        assert_eq!(neighbors[1].id, c);
        assert_eq!(stats.filter_evaluations[0].1, 3);

        assert!(index.remove(a));
        assert!(!index.remove(a), "double delete is a no-op");
        assert_eq!(index.len(), 2);
        let (neighbors, _) = index.knn(&query, 2).unwrap();
        assert_eq!(neighbors[0].id, c);
        assert_eq!(neighbors[1].id, b);
        assert!(index.get(a).is_none());
        assert!(index.get(b).is_some());
    }

    #[test]
    fn matches_brute_force_after_churn() {
        let mut index = index();
        let mut live = Vec::new();
        for i in 0..12 {
            let mut bins = vec![0.1; 4];
            bins[i % 4] += 0.6;
            let histogram = Histogram::normalized(bins).unwrap();
            let id = index.insert(histogram.clone()).unwrap();
            live.push((id, histogram));
        }
        // Delete every third object.
        live.retain(|(id, _)| {
            if id % 3 == 0 {
                assert!(index.remove(*id));
                false
            } else {
                true
            }
        });

        let cost = ground::linear(4).unwrap();
        let query = h(&[0.25, 0.25, 0.3, 0.2]);
        let database: Vec<Histogram> = live.iter().map(|(_, h)| h.clone()).collect();
        let expected = brute_force_knn(&query, &database, &cost, 3).unwrap();
        let (got, _) = index.knn(&query, 3).unwrap();
        let expected_distances: Vec<i64> = expected
            .iter()
            .map(|n| (n.distance * 1e9).round() as i64)
            .collect();
        let got_distances: Vec<i64> = got
            .iter()
            .map(|n| (n.distance * 1e9).round() as i64)
            .collect();
        assert_eq!(got_distances, expected_distances);
    }

    #[test]
    fn compact_renumbers_densely() {
        let mut index = index();
        let a = index.insert(h(&[1.0, 0.0, 0.0, 0.0])).unwrap();
        let b = index.insert(h(&[0.0, 1.0, 0.0, 0.0])).unwrap();
        let c = index.insert(h(&[0.0, 0.0, 1.0, 0.0])).unwrap();
        index.remove(b);
        let mapping = index.compact();
        assert_eq!(mapping, vec![a, c]);
        assert_eq!(index.len(), 2);
        let query = h(&[0.0, 0.0, 0.9, 0.1]);
        let (neighbors, _) = index.knn(&query, 1).unwrap();
        assert_eq!(neighbors[0].id, 1, "c is now id 1");
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut index = index();
        assert!(index.insert(h(&[0.5, 0.5])).is_err());
        assert!(matches!(
            index.knn(&h(&[0.25, 0.25, 0.25, 0.25]), 1).unwrap_err(),
            QueryError::EmptyDatabase
        ));
        index.insert(h(&[1.0, 0.0, 0.0, 0.0])).unwrap();
        assert!(matches!(
            index.knn(&h(&[0.25, 0.25, 0.25, 0.25]), 0).unwrap_err(),
            QueryError::ZeroK
        ));
        assert!(!index.remove(999));
    }

    #[test]
    fn completeness_with_loose_reduction() {
        // An all-in-one-group reduction has bound 0 everywhere: the filter
        // is useless but the results must still be exact.
        let cost = Arc::new(ground::linear(4).unwrap());
        let r = CombiningReduction::new(vec![0, 0, 0, 0], 1).unwrap();
        let reduced = ReducedEmd::new(&cost, r).unwrap();
        let mut index = DynamicIndex::new(cost, reduced).unwrap();
        for i in 0..4 {
            index.insert(Histogram::unit(4, i).unwrap()).unwrap();
        }
        let query = Histogram::unit(4, 2).unwrap();
        let (neighbors, stats) = index.knn(&query, 2).unwrap();
        assert_eq!(neighbors[0].id, 2);
        assert_eq!(stats.refinements, 4, "useless filter refines everything");
    }
}
