//! A mutable EMD retrieval index with copy-on-write snapshots.
//!
//! [`Pipeline`](crate::Pipeline) indexes an immutable database snapshot —
//! the setting of the paper's experiments. Real deployments also insert
//! and delete objects; `DynamicIndex` supports both while keeping the
//! reduced (filter) representation of every object in sync, so queries
//! retain the complete filter-and-refine behaviour without rebuilds.
//!
//! Deletions use tombstones: ids are stable, storage is reclaimed by
//! [`DynamicIndex::compact`]. Storage lives behind `Arc`s mutated with
//! [`Arc::make_mut`]: taking a [`DynamicSnapshot`] is O(live) in ids and
//! copies **no histogram data**, and later mutations copy-on-write
//! without disturbing outstanding snapshots. Queries execute through the
//! shared engine [`Executor`] — the KNOP refinement loop
//! lives only in [`knop`](crate::knop), not here.

use crate::engine::{Executor, QueryPlan};
use crate::error::QueryError;
use crate::filters::{Filter, PreparedFilter};
use crate::stats::QueryStats;
use crate::Neighbor;
use emd_core::{emd_rectangular, CostMatrix, Histogram};
use emd_reduction::ReducedEmd;
use std::sync::Arc;

/// A mutable database with a reduced-EMD filter kept in sync.
///
/// ```
/// use emd_core::{ground, Histogram};
/// use emd_query::DynamicIndex;
/// use emd_reduction::{CombiningReduction, ReducedEmd};
/// use std::sync::Arc;
///
/// let cost = Arc::new(ground::linear(4)?);
/// let reduced = ReducedEmd::new(&cost, CombiningReduction::new(vec![0, 0, 1, 1], 2)?)?;
/// let mut index = DynamicIndex::new(cost, reduced)?;
///
/// let a = index.insert(Histogram::new(vec![1.0, 0.0, 0.0, 0.0])?)?;
/// let b = index.insert(Histogram::new(vec![0.0, 0.0, 0.0, 1.0])?)?;
/// let (nearest, _) = index.knn(&Histogram::new(vec![0.9, 0.1, 0.0, 0.0])?, 1)?;
/// assert_eq!(nearest[0].id, a);
///
/// index.remove(a);
/// let (nearest, _) = index.knn(&Histogram::new(vec![0.9, 0.1, 0.0, 0.0])?, 1)?;
/// assert_eq!(nearest[0].id, b);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DynamicIndex {
    cost: Arc<CostMatrix>,
    reduced: ReducedEmd,
    /// Original histograms; `None` marks a deleted id. Shared with
    /// snapshots, mutated copy-on-write.
    objects: Arc<Vec<Option<Histogram>>>,
    /// Reduced (database-side) representation of each live object.
    reduced_objects: Arc<Vec<Option<Histogram>>>,
    live: usize,
}

impl DynamicIndex {
    /// Create an empty index for histograms matching `cost`, filtered by
    /// the given reduced EMD (its `R2` side applies to stored objects).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] when the reduced EMD's original dimensionality
    /// disagrees with `cost`.
    pub fn new(cost: Arc<CostMatrix>, reduced: ReducedEmd) -> Result<Self, QueryError> {
        if reduced.r2().original_dim() != cost.cols() {
            return Err(QueryError::Reduction(format!(
                "reduction covers {} dimensions, cost matrix {}",
                reduced.r2().original_dim(),
                cost.cols()
            )));
        }
        Ok(DynamicIndex {
            cost,
            reduced,
            objects: Arc::new(Vec::new()),
            reduced_objects: Arc::new(Vec::new()),
            live: 0,
        })
    }

    /// The ground-distance matrix this index was built over.
    pub fn cost(&self) -> &Arc<CostMatrix> {
        &self.cost
    }

    /// Number of live (not deleted) objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live objects remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a histogram; returns its stable id.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] when the histogram's dimensionality disagrees with
    /// the index, or the reduction of the new object fails.
    pub fn insert(&mut self, histogram: Histogram) -> Result<usize, QueryError> {
        if histogram.dim() != self.cost.cols() {
            return Err(QueryError::Core(emd_core::CoreError::DimensionMismatch {
                expected_rows: self.cost.rows(),
                expected_cols: self.cost.cols(),
                got_rows: histogram.dim(),
                got_cols: histogram.dim(),
            }));
        }
        let reduced = self.reduced.reduce_second(&histogram)?;
        let id = self.objects.len();
        Arc::make_mut(&mut self.objects).push(Some(histogram));
        Arc::make_mut(&mut self.reduced_objects).push(Some(reduced));
        self.live += 1;
        Ok(id)
    }

    /// Delete by id. Returns `true` if the object existed and was live.
    pub fn remove(&mut self, id: usize) -> bool {
        if self.get(id).is_none() {
            return false;
        }
        if let Some(slot) = Arc::make_mut(&mut self.objects).get_mut(id) {
            *slot = None;
        }
        if let Some(slot) = Arc::make_mut(&mut self.reduced_objects).get_mut(id) {
            *slot = None;
        }
        self.live -= 1;
        true
    }

    /// Fetch a live object.
    pub fn get(&self, id: usize) -> Option<&Histogram> {
        self.objects.get(id).and_then(Option::as_ref)
    }

    /// Drop tombstones, renumbering ids densely. Returns the mapping
    /// `new_id -> old_id`. Outstanding snapshots keep the old id space
    /// (copy-on-write).
    pub fn compact(&mut self) -> Vec<usize> {
        let mut mapping = Vec::with_capacity(self.live);
        let mut objects = Vec::with_capacity(self.live);
        let mut reduced_objects = Vec::with_capacity(self.live);
        for (old_id, slot) in Arc::make_mut(&mut self.objects).drain(..).enumerate() {
            if let Some(histogram) = slot {
                mapping.push(old_id);
                objects.push(Some(histogram));
            }
        }
        reduced_objects.extend(
            Arc::make_mut(&mut self.reduced_objects)
                .drain(..)
                .flatten()
                .map(Some),
        );
        debug_assert_eq!(objects.len(), reduced_objects.len());
        self.objects = Arc::new(objects);
        self.reduced_objects = Arc::new(reduced_objects);
        mapping
    }

    /// An immutable, queryable snapshot of the current live objects.
    ///
    /// Cheap: shares the histogram storage with the index (ids only are
    /// materialized); later [`insert`](Self::insert) /
    /// [`remove`](Self::remove) / [`compact`](Self::compact) calls
    /// copy-on-write and leave the snapshot untouched.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::EmptyDatabase`] when no live objects remain.
    pub fn snapshot(&self) -> Result<DynamicSnapshot, QueryError> {
        if self.live == 0 {
            return Err(QueryError::EmptyDatabase);
        }
        let ids: Arc<Vec<usize>> = Arc::new(
            self.objects
                .iter()
                .enumerate()
                .filter_map(|(id, slot)| slot.as_ref().map(|_| id))
                .collect(),
        );
        let stage = LiveReducedFilter {
            name: format!(
                "red-emd(d'={}/{})",
                self.reduced.r1().reduced_dim(),
                self.reduced.r2().reduced_dim()
            ),
            reduced: self.reduced.clone(),
            reduced_objects: Arc::clone(&self.reduced_objects),
            ids: Arc::clone(&ids),
        };
        let refiner = LiveEmdFilter {
            name: format!("emd(d={})", self.cost.rows()),
            cost: Arc::clone(&self.cost),
            objects: Arc::clone(&self.objects),
            ids: Arc::clone(&ids),
        };
        let plan = QueryPlan::new(vec![Box::new(stage)], Box::new(refiner))?;
        Ok(DynamicSnapshot {
            executor: Executor::new(plan),
            ids,
        })
    }

    /// Exact k-NN over the live objects: reduced-EMD filter ranking
    /// followed by KNOP refinement in the shared engine (complete —
    /// identical results to scanning every live object with the exact
    /// EMD).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] on `k = 0`, an empty index, a query shape
    /// mismatch, or if an exact EMD refinement fails.
    // lint: allow(unbudgeted): convenience twin; budgets enter via run_budgeted.
    pub fn knn(
        &self,
        query: &Histogram,
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        if k == 0 {
            return Err(QueryError::ZeroK);
        }
        self.snapshot()?.knn(query, k)
    }

    /// Exact range query over the live objects (all live objects with
    /// exact distance `<= epsilon`, ascending).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] on a negative or non-finite `epsilon`, an
    /// empty index, a query shape mismatch, or a refinement failure.
    // lint: allow(unbudgeted): convenience twin; budgets enter via run_budgeted.
    pub fn range(
        &self,
        query: &Histogram,
        epsilon: f64,
    ) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        self.snapshot()?.range(query, epsilon)
    }
}

/// An immutable view of a [`DynamicIndex`] at snapshot time: queries run
/// through the shared [`Executor`] against the live objects, returning
/// their *stable* ids. Unaffected by later index mutations.
#[derive(Debug)]
pub struct DynamicSnapshot {
    executor: Executor,
    /// Dense (engine) id -> stable (index) id.
    ids: Arc<Vec<usize>>,
}

impl DynamicSnapshot {
    /// Number of live objects captured.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the snapshot is empty (never true: empty indexes refuse to
    /// snapshot).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The underlying executor (dense ids; use
    /// [`knn`](Self::knn)/[`range`](Self::range) for stable ids).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The stable (index) id stored at dense (engine) position `dense`
    /// — the inverse view callers need when they run the raw
    /// [`executor`](Self::executor) and must map its ids back.
    pub fn stable_id(&self, dense: usize) -> Option<usize> {
        self.ids.get(dense).copied()
    }

    /// Exact k-NN with stable ids.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] under the same conditions as
    /// [`Executor::knn`].
    // lint: allow(unbudgeted): convenience twin; budgets enter via run_budgeted.
    pub fn knn(
        &self,
        query: &Histogram,
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        let (neighbors, stats) = self.executor.knn(query, k)?;
        Ok((self.remap(neighbors)?, stats))
    }

    /// Exact range query with stable ids.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] under the same conditions as
    /// [`Executor::range`].
    // lint: allow(unbudgeted): convenience twin; budgets enter via run_budgeted.
    pub fn range(
        &self,
        query: &Histogram,
        epsilon: f64,
    ) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        let (neighbors, stats) = self.executor.range(query, epsilon)?;
        Ok((self.remap(neighbors)?, stats))
    }

    fn remap(&self, neighbors: Vec<Neighbor>) -> Result<Vec<Neighbor>, QueryError> {
        neighbors
            .into_iter()
            .map(|n| {
                let id = *self.ids.get(n.id).ok_or(QueryError::UnknownObject(n.id))?;
                Ok(Neighbor {
                    id,
                    distance: n.distance,
                })
            })
            .collect()
    }
}

/// Reduced-EMD filter over the live subset of a dynamic index's storage.
/// Dense ids; no histogram data copied.
#[derive(Debug)]
struct LiveReducedFilter {
    name: String,
    reduced: ReducedEmd,
    reduced_objects: Arc<Vec<Option<Histogram>>>,
    ids: Arc<Vec<usize>>,
}

impl Filter for LiveReducedFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn prepare(&self, query: &Histogram) -> Result<Box<dyn PreparedFilter + '_>, QueryError> {
        let reduced_query = self.reduced.reduce_first(query)?;
        Ok(Box::new(PreparedLiveReduced {
            reduced_query,
            filter: self,
            evaluations: 0,
        }))
    }
}

struct PreparedLiveReduced<'a> {
    reduced_query: Histogram,
    filter: &'a LiveReducedFilter,
    evaluations: usize,
}

impl PreparedFilter for PreparedLiveReduced<'_> {
    fn distance(&mut self, id: usize) -> Result<f64, QueryError> {
        self.evaluations += 1;
        let stable = *self
            .filter
            .ids
            .get(id)
            .ok_or(QueryError::UnknownObject(id))?;
        let reduced_object = self
            .filter
            .reduced_objects
            .get(stable)
            .and_then(Option::as_ref)
            .ok_or(QueryError::UnknownObject(stable))?;
        Ok(self
            .filter
            .reduced
            .distance_reduced(&self.reduced_query, reduced_object)?)
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

/// Exact EMD refiner over the live subset of a dynamic index's storage.
#[derive(Debug)]
struct LiveEmdFilter {
    name: String,
    cost: Arc<CostMatrix>,
    objects: Arc<Vec<Option<Histogram>>>,
    ids: Arc<Vec<usize>>,
}

impl Filter for LiveEmdFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn prepare(&self, query: &Histogram) -> Result<Box<dyn PreparedFilter + '_>, QueryError> {
        if query.dim() != self.cost.rows() {
            return Err(QueryError::Core(emd_core::CoreError::DimensionMismatch {
                expected_rows: self.cost.rows(),
                expected_cols: self.cost.cols(),
                got_rows: query.dim(),
                got_cols: query.dim(),
            }));
        }
        Ok(Box::new(PreparedLiveEmd {
            query: query.clone(),
            filter: self,
            evaluations: 0,
        }))
    }
}

struct PreparedLiveEmd<'a> {
    query: Histogram,
    filter: &'a LiveEmdFilter,
    evaluations: usize,
}

impl PreparedFilter for PreparedLiveEmd<'_> {
    fn distance(&mut self, id: usize) -> Result<f64, QueryError> {
        self.evaluations += 1;
        let stable = *self
            .filter
            .ids
            .get(id)
            .ok_or(QueryError::UnknownObject(id))?;
        let object = self
            .filter
            .objects
            .get(stable)
            .and_then(Option::as_ref)
            .ok_or(QueryError::UnknownObject(stable))?;
        Ok(emd_rectangular(&self.query, object, &self.filter.cost)?)
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{brute_force_knn, brute_force_range};
    use emd_core::ground;
    use emd_reduction::CombiningReduction;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    fn index() -> DynamicIndex {
        let cost = Arc::new(ground::linear(4).unwrap());
        let r = CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap();
        let reduced = ReducedEmd::new(&cost, r).unwrap();
        DynamicIndex::new(cost, reduced).unwrap()
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut index = index();
        let a = index.insert(h(&[1.0, 0.0, 0.0, 0.0])).unwrap();
        let b = index.insert(h(&[0.0, 0.0, 0.0, 1.0])).unwrap();
        let c = index.insert(h(&[0.5, 0.5, 0.0, 0.0])).unwrap();
        assert_eq!(index.len(), 3);

        let query = h(&[0.9, 0.1, 0.0, 0.0]);
        let (neighbors, stats) = index.knn(&query, 2).unwrap();
        assert_eq!(neighbors[0].id, a);
        assert_eq!(neighbors[1].id, c);
        assert_eq!(stats.filter_evaluations[0].1, 3);

        assert!(index.remove(a));
        assert!(!index.remove(a), "double delete is a no-op");
        assert_eq!(index.len(), 2);
        let (neighbors, _) = index.knn(&query, 2).unwrap();
        assert_eq!(neighbors[0].id, c);
        assert_eq!(neighbors[1].id, b);
        assert!(index.get(a).is_none());
        assert!(index.get(b).is_some());
    }

    #[test]
    fn matches_brute_force_after_churn() {
        let mut index = index();
        let mut live = Vec::new();
        for i in 0..12 {
            let mut bins = vec![0.1; 4];
            bins[i % 4] += 0.6;
            let histogram = Histogram::normalized(bins).unwrap();
            let id = index.insert(histogram.clone()).unwrap();
            live.push((id, histogram));
        }
        // Delete every third object.
        live.retain(|(id, _)| {
            if id % 3 == 0 {
                assert!(index.remove(*id));
                false
            } else {
                true
            }
        });

        let cost = ground::linear(4).unwrap();
        let query = h(&[0.25, 0.25, 0.3, 0.2]);
        let database: Vec<Histogram> = live.iter().map(|(_, h)| h.clone()).collect();
        let expected = brute_force_knn(&query, &database, &cost, 3).unwrap();
        let (got, _) = index.knn(&query, 3).unwrap();
        let expected_distances: Vec<i64> = expected
            .iter()
            .map(|n| (n.distance * 1e9).round() as i64)
            .collect();
        let got_distances: Vec<i64> = got
            .iter()
            .map(|n| (n.distance * 1e9).round() as i64)
            .collect();
        assert_eq!(got_distances, expected_distances);
    }

    #[test]
    fn compact_renumbers_densely() {
        let mut index = index();
        let a = index.insert(h(&[1.0, 0.0, 0.0, 0.0])).unwrap();
        let b = index.insert(h(&[0.0, 1.0, 0.0, 0.0])).unwrap();
        let c = index.insert(h(&[0.0, 0.0, 1.0, 0.0])).unwrap();
        index.remove(b);
        let mapping = index.compact();
        assert_eq!(mapping, vec![a, c]);
        assert_eq!(index.len(), 2);
        let query = h(&[0.0, 0.0, 0.9, 0.1]);
        let (neighbors, _) = index.knn(&query, 1).unwrap();
        assert_eq!(neighbors[0].id, 1, "c is now id 1");
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut index = index();
        assert!(index.insert(h(&[0.5, 0.5])).is_err());
        assert!(matches!(
            index.knn(&h(&[0.25, 0.25, 0.25, 0.25]), 1).unwrap_err(),
            QueryError::EmptyDatabase
        ));
        index.insert(h(&[1.0, 0.0, 0.0, 0.0])).unwrap();
        assert!(matches!(
            index.knn(&h(&[0.25, 0.25, 0.25, 0.25]), 0).unwrap_err(),
            QueryError::ZeroK
        ));
        assert!(matches!(
            index
                .range(&h(&[0.25, 0.25, 0.25, 0.25]), f64::NAN)
                .unwrap_err(),
            QueryError::InvalidEpsilon(_)
        ));
        assert!(!index.remove(999));
    }

    #[test]
    fn completeness_with_loose_reduction() {
        // An all-in-one-group reduction has bound 0 everywhere: the filter
        // is useless but the results must still be exact.
        let cost = Arc::new(ground::linear(4).unwrap());
        let r = CombiningReduction::new(vec![0, 0, 0, 0], 1).unwrap();
        let reduced = ReducedEmd::new(&cost, r).unwrap();
        let mut index = DynamicIndex::new(cost, reduced).unwrap();
        for i in 0..4 {
            index.insert(Histogram::unit(4, i).unwrap()).unwrap();
        }
        let query = Histogram::unit(4, 2).unwrap();
        let (neighbors, stats) = index.knn(&query, 2).unwrap();
        assert_eq!(neighbors[0].id, 2);
        assert_eq!(stats.refinements, 4, "useless filter refines everything");
    }

    /// Sort (distance, id) pairs canonically so equal-distance results
    /// compare deterministically across implementations.
    fn canonical(neighbors: &[Neighbor]) -> Vec<(i64, usize)> {
        let mut pairs: Vec<(i64, usize)> = neighbors
            .iter()
            .map(|n| ((n.distance * 1e9).round() as i64, n.id))
            .collect();
        pairs.sort_unstable();
        pairs
    }

    #[test]
    fn interleaved_churn_matches_brute_force() {
        // Satellite: interleave insert/remove/compact with k-NN *and*
        // range queries, asserting against the brute-force oracles over
        // exactly the live objects after every phase.
        let cost = ground::linear(4).unwrap();
        let queries = [
            h(&[0.25, 0.25, 0.25, 0.25]),
            h(&[0.7, 0.1, 0.1, 0.1]),
            h(&[0.0, 0.2, 0.3, 0.5]),
        ];
        let mut index = index();
        // live: stable id -> histogram, tracking the oracle database.
        let mut live: Vec<(usize, Histogram)> = Vec::new();

        let check = |index: &DynamicIndex, live: &[(usize, Histogram)]| {
            let database: Vec<Histogram> = live.iter().map(|(_, h)| h.clone()).collect();
            for query in &queries {
                for k in [1, 2, 4] {
                    let expected = brute_force_knn(query, &database, &cost, k).unwrap();
                    let (got, _) = index.knn(query, k).unwrap();
                    assert_eq!(got.len(), expected.len().min(k));
                    assert_eq!(
                        canonical(&got).iter().map(|(d, _)| *d).collect::<Vec<_>>(),
                        canonical(&expected)
                            .iter()
                            .map(|(d, _)| *d)
                            .collect::<Vec<_>>(),
                        "k-NN distances diverge from brute force"
                    );
                }
                for epsilon in [0.3, 0.8, 2.0] {
                    let expected = brute_force_range(query, &database, &cost, epsilon).unwrap();
                    let (got, _) = index.range(query, epsilon).unwrap();
                    // Range hits are a set: map got ids back through live
                    // to histogram-level identity via distances.
                    assert_eq!(
                        canonical(&got).iter().map(|(d, _)| *d).collect::<Vec<_>>(),
                        canonical(&expected)
                            .iter()
                            .map(|(d, _)| *d)
                            .collect::<Vec<_>>(),
                        "range hits diverge from brute force at eps={epsilon}"
                    );
                }
            }
        };

        // Phase 1: bulk insert.
        for i in 0..10 {
            let mut bins = vec![0.05; 4];
            bins[i % 4] += 0.5;
            bins[(i + 1) % 4] += 0.3;
            let histogram = Histogram::normalized(bins).unwrap();
            let id = index.insert(histogram.clone()).unwrap();
            live.push((id, histogram));
        }
        check(&index, &live);

        // Phase 2: remove some, insert more.
        live.retain(|(id, _)| {
            if id % 3 == 1 {
                assert!(index.remove(*id));
                false
            } else {
                true
            }
        });
        for i in 0..4 {
            let histogram = Histogram::unit(4, i).unwrap();
            let id = index.insert(histogram.clone()).unwrap();
            live.push((id, histogram));
        }
        check(&index, &live);

        // Phase 3: compact (renumbers), then more churn.
        let mapping = index.compact();
        assert_eq!(mapping.len(), live.len());
        live = mapping
            .iter()
            .enumerate()
            .map(|(new_id, old_id)| {
                let (_, histogram) = live
                    .iter()
                    .find(|(id, _)| id == old_id)
                    .expect("mapping covers live ids");
                (new_id, histogram.clone())
            })
            .collect();
        check(&index, &live);

        let last = live.last().unwrap().0;
        assert!(index.remove(last));
        live.pop();
        check(&index, &live);
    }

    #[test]
    fn snapshot_is_isolated_from_mutations() {
        let mut index = index();
        let a = index.insert(h(&[1.0, 0.0, 0.0, 0.0])).unwrap();
        let b = index.insert(h(&[0.0, 0.0, 0.0, 1.0])).unwrap();
        let snapshot = index.snapshot().unwrap();
        assert_eq!(snapshot.len(), 2);

        // Mutate after snapshotting: remove a, insert a closer object.
        assert!(index.remove(a));
        index.insert(h(&[0.9, 0.1, 0.0, 0.0])).unwrap();

        let query = h(&[1.0, 0.0, 0.0, 0.0]);
        // The snapshot still sees the original two objects...
        let (frozen, _) = snapshot.knn(&query, 1).unwrap();
        assert_eq!(frozen[0].id, a);
        // ...while the index sees the new state.
        let (current, _) = index.knn(&query, 2).unwrap();
        assert_ne!(current[0].id, a);
        assert_eq!(current[1].id, b);
    }
}
