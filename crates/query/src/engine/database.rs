//! The shared, immutable database snapshot all filters index.
//!
//! Before the engine existed, every [`Filter`](crate::Filter) held its own
//! `Arc<Vec<Histogram>>` handle and its own copy of the ground-distance
//! matrix pointer, and nothing guaranteed two stages of one pipeline were
//! even looking at the same data. [`Database`] fixes the ownership story:
//! the histograms live once, in a single contiguous `Arc<[Histogram]>`
//! arena allocation, together with the cost matrix that defines distances
//! over them. Filters clone the (cheap, reference-counted) handle, so a
//! whole plan — and every plan built over the same snapshot — shares one
//! copy of the data.

use crate::error::QueryError;
use emd_core::{CostMatrix, Histogram};
use emd_reduction::PersistedReduction;
use emd_store::{StoreError, StoredClustering};
use std::path::Path;
use std::sync::Arc;

/// An immutable snapshot of a histogram database plus its ground-distance
/// matrix.
///
/// Cloning a `Database` is two atomic reference-count increments; the
/// histogram arena itself is never duplicated. All filter constructors
/// take `&Database` and keep a clone, which is what makes a multi-stage
/// [`QueryPlan`](crate::QueryPlan) a set of views over one arena rather
/// than a set of private copies.
#[derive(Debug, Clone)]
pub struct Database {
    /// Contiguous arena of all database histograms, in id order.
    histograms: Arc<[Histogram]>,
    /// Ground-distance matrix; database objects index its columns.
    cost: Arc<CostMatrix>,
}

impl Database {
    /// Build a snapshot from owned histograms, validating every object
    /// against the cost matrix once — downstream filters rely on this and
    /// skip per-object shape checks.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] when a histogram's dimensionality disagrees
    /// with `cost.cols()`.
    pub fn new(histograms: Vec<Histogram>, cost: Arc<CostMatrix>) -> Result<Self, QueryError> {
        for h in &histograms {
            if h.dim() != cost.cols() {
                return Err(QueryError::Core(emd_core::CoreError::DimensionMismatch {
                    expected_rows: cost.rows(),
                    expected_cols: cost.cols(),
                    got_rows: h.dim(),
                    got_cols: h.dim(),
                }));
            }
        }
        Ok(Database {
            histograms: histograms.into(),
            cost,
        })
    }

    /// Number of objects in the snapshot.
    pub fn len(&self) -> usize {
        self.histograms.len()
    }

    /// Whether the snapshot holds no objects.
    pub fn is_empty(&self) -> bool {
        self.histograms.is_empty()
    }

    /// Dimensionality of the database-side histograms.
    pub fn dim(&self) -> usize {
        self.cost.cols()
    }

    /// All histograms, in id order.
    pub fn histograms(&self) -> &[Histogram] {
        &self.histograms
    }

    /// One object by id.
    pub fn get(&self, id: usize) -> Option<&Histogram> {
        self.histograms.get(id)
    }

    /// The ground-distance matrix.
    pub fn cost(&self) -> &CostMatrix {
        &self.cost
    }

    /// Shared handle to the ground-distance matrix.
    pub fn cost_arc(&self) -> &Arc<CostMatrix> {
        &self.cost
    }

    /// Shared handle to the histogram arena (test-only: lets tests assert
    /// snapshots share one allocation).
    #[cfg(test)]
    pub(crate) fn arena(&self) -> &Arc<[Histogram]> {
        &self.histograms
    }

    /// Persist this snapshot — together with any precomputed reduction
    /// bundles — as a `flexemd-store/v1` index directory at `dir`.
    ///
    /// # Examples
    ///
    /// ```
    /// use emd_query::Database;
    /// use emd_core::{ground, Histogram};
    /// use std::sync::Arc;
    ///
    /// let dir = std::env::temp_dir().join(format!("flexemd-doc-save-{}", std::process::id()));
    /// let cost = Arc::new(ground::linear(3)?);
    /// let db = Database::new(
    ///     vec![Histogram::unit(3, 0)?, Histogram::unit(3, 2)?],
    ///     cost,
    /// )?;
    /// db.save(&dir, "demo", &[])?;
    ///
    /// let opened = Database::open(&dir)?;
    /// assert_eq!(opened.name, "demo");
    /// assert_eq!(opened.database.len(), 2);
    /// std::fs::remove_dir_all(&dir)?;
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the directory or a segment file
    /// cannot be written. (Storage failures are not [`QueryError`]s:
    /// that type is `Clone + PartialEq` for plan bookkeeping, which
    /// `std::io::Error` cannot satisfy.)
    pub fn save(
        &self,
        dir: &Path,
        name: &str,
        reductions: &[PersistedReduction],
    ) -> Result<(), StoreError> {
        emd_store::save_index(dir, name, &self.histograms, &self.cost, reductions)
    }

    /// [`Database::save`] plus per-reduction clustering geometry:
    /// `clusterings` is parallel to `reductions`, with `Some` for bundles
    /// that carry a [`ClusteredIndex`](crate::ClusteredIndex) (exported
    /// via [`ClusteredIndex::to_stored`](crate::ClusteredIndex::to_stored))
    /// and `None` for those that do not.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when a segment cannot be written or when
    /// `clusterings` and `reductions` disagree in length.
    pub fn save_with_clusterings(
        &self,
        dir: &Path,
        name: &str,
        reductions: &[PersistedReduction],
        clusterings: &[Option<StoredClustering>],
    ) -> Result<(), StoreError> {
        emd_store::save_index_with(
            dir,
            name,
            &self.histograms,
            &self.cost,
            reductions,
            clusterings,
        )
    }

    /// Open a `flexemd-store/v1` index directory, re-validating every
    /// invariant [`Database::new`] enforces (plus segment checksums and
    /// reduction consistency) before any query can run against it.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the manifest or a segment is
    /// missing, damaged (truncation, checksum mismatch, version skew)
    /// or internally inconsistent.
    pub fn open(dir: &Path) -> Result<OpenedIndex, StoreError> {
        Self::open_with(dir, &emd_faultkit::NoFaults)
    }

    /// [`Database::open`] with a deterministic fault injector probed
    /// before every file read in the open path (see
    /// [`emd_store::open_index_with`]). Production callers use
    /// [`Database::open`]; this entry point exists for the
    /// fault-injection test harness.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Database::open`], plus injected IO faults.
    pub fn open_with(
        dir: &Path,
        faults: &dyn emd_faultkit::FaultInjector,
    ) -> Result<OpenedIndex, StoreError> {
        let stored = emd_store::open_index_with(dir, faults)?;
        // `open_index` already checked arena-vs-cost shape agreement —
        // the same invariant `Database::new` re-checks here; a failure
        // at this point would be a store-layer bug, not bad data.
        let database = Database::new(stored.histograms, Arc::new(stored.cost)).map_err(|e| {
            StoreError::Invalid {
                path: dir.to_path_buf(),
                section: "histograms".to_owned(),
                reason: e.to_string(),
            }
        })?;
        Ok(OpenedIndex {
            name: stored.name,
            database,
            reductions: stored.reductions,
            clusterings: stored.clusterings,
        })
    }
}

/// A validated index loaded from disk: the snapshot plus its persisted
/// reduction bundles, ready to assemble into a plan via
/// [`ReducedEmdFilter::from_persisted`](crate::ReducedEmdFilter::from_persisted)
/// / [`ReducedImFilter::from_persisted`](crate::ReducedImFilter::from_persisted).
#[derive(Debug)]
pub struct OpenedIndex {
    /// Index name from the manifest.
    pub name: String,
    /// The database snapshot.
    pub database: Database,
    /// Reduction bundles, in manifest (pipeline) order.
    pub reductions: Vec<PersistedReduction>,
    /// Clustering geometry per reduction bundle (parallel to
    /// `reductions`): `Some` where the index was saved with a
    /// [`ClusteredIndex`](crate::ClusteredIndex), rehydrated via
    /// [`ClusteredIndex::from_stored`](crate::ClusteredIndex::from_stored).
    pub clusterings: Vec<Option<StoredClustering>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_core::ground;

    #[test]
    fn snapshot_is_shared_not_copied() {
        let cost = Arc::new(ground::linear(3).unwrap());
        let db = Database::new(
            vec![
                Histogram::unit(3, 0).unwrap(),
                Histogram::unit(3, 2).unwrap(),
            ],
            cost,
        )
        .unwrap();
        let view = db.clone();
        assert!(Arc::ptr_eq(db.arena(), view.arena()));
        assert_eq!(db.len(), 2);
        assert_eq!(db.dim(), 3);
        assert!(!db.is_empty());
        assert_eq!(db.get(1), Some(&Histogram::unit(3, 2).unwrap()));
        assert!(db.get(2).is_none());
    }

    #[test]
    fn rejects_mismatched_histograms() {
        let cost = Arc::new(ground::linear(3).unwrap());
        assert!(Database::new(vec![Histogram::unit(4, 0).unwrap()], cost).is_err());
    }

    #[test]
    fn save_open_roundtrip() {
        use emd_reduction::{CombiningReduction, PersistedReduction, ReducedEmd};

        let mut dir = std::env::temp_dir();
        dir.push(format!("emd-query-db-roundtrip-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let cost = Arc::new(ground::linear(4).unwrap());
        let db = Database::new(
            vec![
                Histogram::unit(4, 0).unwrap(),
                Histogram::unit(4, 3).unwrap(),
            ],
            cost.clone(),
        )
        .unwrap();
        let reduced =
            ReducedEmd::new(&cost, CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap()).unwrap();
        let bundle = PersistedReduction::precompute("kmed:2", reduced, db.histograms()).unwrap();
        db.save(&dir, "demo", &[bundle]).unwrap();

        let opened = Database::open(&dir).unwrap();
        assert_eq!(opened.name, "demo");
        assert_eq!(opened.database.len(), 2);
        assert_eq!(opened.database.dim(), 4);
        assert_eq!(opened.database.histograms(), db.histograms());
        assert_eq!(opened.reductions.len(), 1);
        assert_eq!(opened.reductions[0].reduced_database().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
