//! The one execution path for every query in the workspace.
//!
//! [`Executor::run`] is where a [`QueryPlan`] meets a query: it prepares
//! the per-query filter state, stacks the lazy
//! [`ChainedRanking`](crate::ranking::ChainedRanking)s of Figure 12, and
//! hands the final ranking to the KNOP refinement loop in
//! [`knop`](crate::knop) — the *only* call site of that loop. The static
//! [`Pipeline`](crate::Pipeline), the mutable
//! [`DynamicIndex`](crate::DynamicIndex) and the brute-force
//! [`scan`](crate::scan) oracles all execute through here.
//!
//! [`Executor::run_batch`] fans a query workload across std scoped
//! threads; per-thread [`QueryStats`] are merged with
//! [`QueryStats::accumulate`], and results are bit-identical to the
//! sequential path because each query runs the exact same single-query
//! code on an immutable shared plan.

use crate::error::QueryError;
use crate::filters::PreparedFilter;
use crate::knop;
use crate::ranking::{ChainedRanking, EagerRanking, Ranking};
use crate::stats::QueryStats;
use crate::Neighbor;
use emd_core::Histogram;

use super::plan::{Query, QueryMode, QueryPlan};

/// Executes [`QueryPlan`]s: sequentially, or batched across threads.
#[derive(Debug)]
pub struct Executor {
    plan: QueryPlan,
}

impl Executor {
    /// Wrap a plan for execution.
    pub fn new(plan: QueryPlan) -> Self {
        Executor { plan }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Mutable access to the plan (e.g. to
    /// [`seed_estimates`](QueryPlan::seed_estimates) from history).
    pub fn plan_mut(&mut self) -> &mut QueryPlan {
        &mut self.plan
    }

    /// Number of database objects the plan indexes.
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    /// Whether the indexed database is empty (never true for a
    /// constructed executor).
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// Exact k-nearest-neighbor query.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] for `k = 0`, a query shape mismatch, or a
    /// filter/refiner failure mid-query.
    pub fn knn(
        &self,
        query: &Histogram,
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        self.execute(query, QueryMode::Knn(k))
    }

    /// Exact range query.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] for a negative or non-finite `epsilon`, a
    /// query shape mismatch, or a filter/refiner failure mid-query.
    pub fn range(
        &self,
        query: &Histogram,
        epsilon: f64,
    ) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        self.execute(query, QueryMode::Range(epsilon))
    }

    /// Run one [`Query`] (k-NN or range, as its mode says).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] under the same conditions as [`Executor::knn`]
    /// and [`Executor::range`].
    pub fn run(&self, query: &Query) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        self.execute(&query.histogram, query.mode)
    }

    /// Run a batch of queries across `threads` std scoped threads,
    /// returning per-query results in input order plus the merged
    /// statistics.
    ///
    /// Results and statistics are bit-identical to running the same
    /// queries sequentially: every query executes the same single-query
    /// path against the same immutable plan, and the per-thread
    /// [`QueryStats`] merge ([`QueryStats::accumulate`]) is a plain sum.
    ///
    /// # Errors
    ///
    /// Returns the first [`QueryError`] (by query index) any query
    /// produced.
    pub fn run_batch(
        &self,
        queries: &[Query],
        threads: usize,
    ) -> Result<(Vec<Vec<Neighbor>>, QueryStats), QueryError> {
        let threads = threads.clamp(1, queries.len().max(1));
        if threads == 1 {
            emd_obs::gauge_set("query.batch.threads", 1.0);
            let mut results = Vec::with_capacity(queries.len());
            let mut total = QueryStats::default();
            for query in queries {
                let (neighbors, stats) = self.run(query)?;
                total.accumulate(&stats);
                results.push(neighbors);
            }
            return Ok((results, total));
        }

        // Contiguous chunks keep per-query results trivially reorderable:
        // thread t owns queries [t * chunk, (t + 1) * chunk).
        let chunk = queries.len().div_ceil(threads);
        // Metric scopes are thread-local, so workers record into their own
        // registries which the caller absorbs in chunk order below —
        // counter totals are then identical to a sequential run at any
        // thread count (histogram sums still reflect wall-clock).
        let record_metrics = emd_obs::recording();
        type ChunkResult = Result<
            (
                Vec<Vec<Neighbor>>,
                QueryStats,
                Option<emd_obs::MetricsRegistry>,
            ),
            QueryError,
        >;
        let chunk_results: Vec<ChunkResult> = std::thread::scope(|scope| {
            // Spawn every chunk before joining any: joining lazily off the
            // spawn iterator would serialize the batch.
            let mut handles = Vec::with_capacity(threads);
            for chunk_queries in queries.chunks(chunk) {
                handles.push(scope.spawn(move || -> ChunkResult {
                    let recording = record_metrics.then(emd_obs::Recording::start);
                    let mut results = Vec::with_capacity(chunk_queries.len());
                    let mut total = QueryStats::default();
                    for query in chunk_queries {
                        let (neighbors, stats) = self.run(query)?;
                        total.accumulate(&stats);
                        results.push(neighbors);
                    }
                    Ok((results, total, recording.map(emd_obs::Recording::finish)))
                }));
            }
            let mut collected = Vec::with_capacity(handles.len());
            for handle in handles {
                collected.push(match handle.join() {
                    Ok(result) => result,
                    Err(_) => Err(QueryError::Reduction(
                        "batch worker thread panicked".to_owned(),
                    )),
                });
            }
            collected
        });

        emd_obs::gauge_set("query.batch.threads", threads as f64);
        let mut results = Vec::with_capacity(queries.len());
        let mut total = QueryStats::default();
        for chunk_result in chunk_results {
            let (chunk_neighbors, chunk_stats, chunk_registry) = chunk_result?;
            total.accumulate(&chunk_stats);
            if let Some(registry) = &chunk_registry {
                emd_obs::absorb(registry);
            }
            results.extend(chunk_neighbors);
        }
        Ok((results, total))
    }

    fn execute(
        &self,
        query: &Histogram,
        mode: QueryMode,
    ) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        let _query_span = emd_obs::span("query.execute");
        emd_obs::counter_add("query.queries", 1);
        match mode {
            QueryMode::Knn(0) => return Err(QueryError::ZeroK),
            QueryMode::Range(epsilon) if epsilon.is_nan() || epsilon < 0.0 => {
                return Err(QueryError::InvalidEpsilon(epsilon));
            }
            _ => {}
        }
        let mut refiner = {
            let _span = emd_obs::span("query.refiner.prepare");
            self.plan.refiner().prepare(query)?
        };

        let mut prepared: Vec<Box<dyn PreparedFilter + '_>> =
            Vec::with_capacity(self.plan.stages().len());
        for stage in self.plan.stages() {
            let _span = emd_obs::span_with(|| format!("query.stage.{}.prepare", stage.name()));
            prepared.push(stage.prepare(query)?);
        }

        let Some((first, rest)) = prepared.split_first_mut() else {
            // Zero-stage plan — the sequential scan: refine every object
            // once and read the answer off the exact ranking.
            let neighbors = {
                let _span = emd_obs::span("query.scan");
                scan_ranking(refiner.as_mut(), self.plan.len(), mode)?
            };
            let stats = QueryStats {
                filter_evaluations: Vec::new(),
                refinements: refiner.evaluations(),
                results: neighbors.len(),
            };
            publish_stats(&stats);
            return Ok((neighbors, stats));
        };

        let (neighbors, refinements) = {
            let _span = emd_obs::span("query.knop");
            let mut ranking: Box<dyn Ranking + '_> =
                Box::new(EagerRanking::new(first.as_mut(), self.plan.len())?);
            for stage in rest {
                ranking = Box::new(ChainedRanking::new(ranking, stage.as_mut()));
            }
            match mode {
                QueryMode::Knn(k) => knop::knn(ranking.as_mut(), refiner.as_mut(), k)?,
                QueryMode::Range(epsilon) => {
                    knop::range(ranking.as_mut(), refiner.as_mut(), epsilon)?
                }
            }
        };

        let stats = QueryStats {
            filter_evaluations: self
                .plan
                .stages()
                .iter()
                .zip(prepared.iter())
                .map(|(stage, p)| (stage.name().to_owned(), p.evaluations()))
                .collect(),
            refinements,
            results: neighbors.len(),
        };
        publish_stats(&stats);
        Ok((neighbors, stats))
    }
}

/// Mirror a query's [`QueryStats`] into the ambient metrics registry, so
/// registry consumers see the same per-stage evaluation counts the stats
/// façade reports. The filters keep their own cheap counters
/// ([`PreparedFilter::evaluations`]) — publishing after the fact keeps the
/// per-candidate hot path free of registry lookups.
fn publish_stats(stats: &QueryStats) {
    if !emd_obs::recording() {
        return;
    }
    for (name, evaluations) in &stats.filter_evaluations {
        emd_obs::counter_add(
            &format!("query.stage.{name}.evaluations"),
            *evaluations as u64,
        );
    }
    emd_obs::counter_add("query.refinements", stats.refinements as u64);
    emd_obs::counter_add("query.results", stats.results as u64);
}

/// Read a query answer directly off an exact-distance ranking (the
/// zero-stage scan path; no KNOP loop involved — there is nothing left to
/// refine).
fn scan_ranking(
    refiner: &mut dyn PreparedFilter,
    len: usize,
    mode: QueryMode,
) -> Result<Vec<Neighbor>, QueryError> {
    let mut ranking = EagerRanking::new(refiner, len)?;
    let mut neighbors = Vec::new();
    while let Some((id, distance)) = ranking.next()? {
        match mode {
            QueryMode::Knn(k) if neighbors.len() >= k => break,
            QueryMode::Range(epsilon) if distance > epsilon => break,
            _ => neighbors.push(Neighbor { id, distance }),
        }
    }
    Ok(neighbors)
}
