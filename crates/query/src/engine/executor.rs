//! The one execution path for every query in the workspace.
//!
//! [`Executor::run`] is where a [`QueryPlan`] meets a query: it prepares
//! the per-query filter state, stacks the lazy
//! [`ChainedRanking`](crate::ranking::ChainedRanking)s of Figure 12, and
//! hands the final ranking to the KNOP refinement loop in
//! [`knop`](crate::knop) — the *only* call site of that loop. The static
//! [`Pipeline`](crate::Pipeline), the mutable
//! [`DynamicIndex`](crate::DynamicIndex) and the brute-force
//! [`scan`](crate::scan) oracles all execute through here.
//!
//! [`Executor::run_batch`] fans a query workload across std scoped
//! threads; per-thread [`QueryStats`] are merged with
//! [`QueryStats::accumulate`], and results are bit-identical to the
//! sequential path because each query runs the exact same single-query
//! code on an immutable shared plan.
//!
//! ## Warm-start contexts
//!
//! The solver-backed stages ([`EmdDistance`](crate::EmdDistance) and
//! [`ReducedEmdFilter`](crate::ReducedEmdFilter)) build one
//! `EmdContext` per prepared query, so every candidate evaluated for
//! that query reuses the solver's buffers and warm-starts from the
//! previous candidate's optimal basis. Preparation happens inside the
//! worker that owns the query, which gives batch execution one context
//! per in-flight query per worker with no sharing across threads —
//! worker counts cannot affect results, and the observability merge
//! below absorbs the transport warm-start counters chunk-order
//! deterministically like every other counter.
//!
//! ## Execution governance
//!
//! [`Executor::run_budgeted`] threads an execution [`Budget`] (wall-clock
//! deadline, solver pivot cap, cooperative cancellation) through filter
//! preparation and the KNOP loop. When the budget fires the executor
//! returns [`QueryOutcome::Degraded`] — the candidate ranking ordered by
//! the tightest lower bound computed so far — instead of an error or a
//! silently truncated "exact" answer. Batch execution isolates panics
//! per query ([`Executor::run_batch_isolated`]): a panicking worker turns
//! into [`QueryError::WorkerPanicked`] for its own queries only, and
//! surviving queries' results and chunk-order stats merge are unchanged.

use crate::engine::source::{CandidateSource, SourceRanking};
use crate::error::QueryError;
use crate::filters::PreparedFilter;
use crate::knop;
use crate::outcome::{sort_candidates, Candidate, DegradedResult, QueryOutcome};
use crate::ranking::{ChainedRanking, EagerRanking, Ranking};
use crate::stats::QueryStats;
use crate::Neighbor;
use emd_core::{Budget, BudgetReason, Histogram};
use emd_faultkit::{Fault, FaultInjector, InjectedPanic, Site};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use super::plan::{Query, QueryMode, QueryPlan};

/// Executes [`QueryPlan`]s: sequentially, or batched across threads.
#[derive(Debug)]
pub struct Executor {
    plan: QueryPlan,
    /// Deterministic fault injector consulted at `Site::Worker` probes in
    /// batch execution (testing only; `None` in production).
    faults: Option<Arc<dyn FaultInjector>>,
}

impl Executor {
    /// Wrap a plan for execution.
    pub fn new(plan: QueryPlan) -> Self {
        Executor { plan, faults: None }
    }

    /// Install a deterministic fault injector; batch workers probe it at
    /// [`Site::Worker`] before each query and honor [`Fault::Panic`] by
    /// panicking with an [`InjectedPanic`] payload (which panic isolation
    /// then converts into [`QueryError::WorkerPanicked`]). Used by the
    /// fault-injection test harness.
    #[must_use]
    pub fn with_faults(mut self, faults: Arc<dyn FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The underlying plan.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Mutable access to the plan (e.g. to
    /// [`seed_estimates`](QueryPlan::seed_estimates) from history).
    pub fn plan_mut(&mut self) -> &mut QueryPlan {
        &mut self.plan
    }

    /// Number of database objects the plan indexes.
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    /// Whether the indexed database is empty (never true for a
    /// constructed executor).
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// Exact k-nearest-neighbor query.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] for `k = 0`, a query shape mismatch, or a
    /// filter/refiner failure mid-query.
    // lint: allow(unbudgeted): convenience twin of run_budgeted with Budget::unlimited().
    pub fn knn(
        &self,
        query: &Histogram,
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        self.execute(query, QueryMode::Knn(k))
    }

    /// Exact range query.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] for a negative or non-finite `epsilon`, a
    /// query shape mismatch, or a filter/refiner failure mid-query.
    // lint: allow(unbudgeted): convenience twin of run_budgeted with Budget::unlimited().
    pub fn range(
        &self,
        query: &Histogram,
        epsilon: f64,
    ) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        self.execute(query, QueryMode::Range(epsilon))
    }

    /// Run one [`Query`] (k-NN or range, as its mode says).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] under the same conditions as [`Executor::knn`]
    /// and [`Executor::range`].
    // lint: allow(unbudgeted): convenience twin of run_budgeted with Budget::unlimited().
    pub fn run(&self, query: &Query) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        self.execute(&query.histogram, query.mode)
    }

    /// Run one [`Query`] under an execution [`Budget`].
    ///
    /// With an unlimited budget this takes the exact same code path as
    /// [`Executor::run`] and wraps the answer in [`QueryOutcome::Exact`] —
    /// results are bit-identical. When the budget fires mid-query the
    /// outcome is [`QueryOutcome::Degraded`]: the candidate ranking
    /// ordered by the tightest lower bound computed so far, with refined
    /// candidates flagged `exact`.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] under the same conditions as
    /// [`Executor::run`]; budget exhaustion is *not* an error here — it
    /// degrades.
    pub fn run_budgeted(
        &self,
        query: &Query,
        budget: &Budget,
    ) -> Result<(QueryOutcome, QueryStats), QueryError> {
        self.execute_budgeted(&query.histogram, query.mode, budget)
    }

    /// Budgeted k-nearest-neighbor query; see [`Executor::run_budgeted`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Executor::knn`], except budget exhaustion
    /// degrades instead of erroring.
    pub fn knn_budgeted(
        &self,
        query: &Histogram,
        k: usize,
        budget: &Budget,
    ) -> Result<(QueryOutcome, QueryStats), QueryError> {
        self.execute_budgeted(query, QueryMode::Knn(k), budget)
    }

    /// Budgeted range query; see [`Executor::run_budgeted`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Executor::range`], except budget exhaustion
    /// degrades instead of erroring.
    pub fn range_budgeted(
        &self,
        query: &Histogram,
        epsilon: f64,
        budget: &Budget,
    ) -> Result<(QueryOutcome, QueryStats), QueryError> {
        self.execute_budgeted(query, QueryMode::Range(epsilon), budget)
    }

    /// Run a batch of queries across `threads` std scoped threads,
    /// returning per-query results in input order plus the merged
    /// statistics.
    ///
    /// Results and statistics are bit-identical to running the same
    /// queries sequentially: every query executes the same single-query
    /// path against the same immutable plan, and the per-thread
    /// [`QueryStats`] merge ([`QueryStats::accumulate`]) is a plain sum.
    ///
    /// # Errors
    ///
    /// Returns the first [`QueryError`] (by query index) any query
    /// produced. Unlike older revisions, a panicking worker no longer
    /// poisons the whole batch: it surfaces as
    /// [`QueryError::WorkerPanicked`] on the affected queries (and this
    /// wrapper then reports the first of them).
    // lint: allow(unbudgeted): batch wrapper; per-query budgets ride run_budgeted.
    pub fn run_batch(
        &self,
        queries: &[Query],
        threads: usize,
    ) -> Result<(Vec<Vec<Neighbor>>, QueryStats), QueryError> {
        let (results, total) = self.run_batch_isolated(queries, threads);
        let mut neighbors = Vec::with_capacity(results.len());
        for result in results {
            neighbors.push(result?);
        }
        Ok((neighbors, total))
    }

    /// Run a batch of queries with per-query panic isolation, returning
    /// one `Result` per query in input order plus the merged statistics of
    /// every query that succeeded.
    ///
    /// Each query executes inside `catch_unwind`; a panic (a solver bug, a
    /// poisoned invariant, an injected [`Fault::Panic`]) is converted into
    /// [`QueryError::WorkerPanicked`] for that query only. Surviving
    /// queries — including later queries on the same worker thread — run
    /// to completion, and their stats merge in chunk order exactly as in
    /// the non-isolated path, so totals for survivors are bit-identical.
    ///
    /// # Errors
    ///
    /// The call itself never fails; each query's slot carries its own
    /// [`QueryError`], including [`QueryError::WorkerPanicked`] for
    /// panics caught in that worker.
    // lint: allow(unbudgeted): batch wrapper; per-query budgets ride run_budgeted.
    pub fn run_batch_isolated(
        &self,
        queries: &[Query],
        threads: usize,
    ) -> (Vec<Result<Vec<Neighbor>, QueryError>>, QueryStats) {
        let threads = threads.clamp(1, queries.len().max(1));
        if threads == 1 {
            emd_obs::gauge_set("query.batch.threads", 1.0);
            let mut results = Vec::with_capacity(queries.len());
            let mut total = QueryStats::default();
            for query in queries {
                match self.run_isolated(query, 0) {
                    Ok((neighbors, stats)) => {
                        total.accumulate(&stats);
                        results.push(Ok(neighbors));
                    }
                    Err(error) => results.push(Err(error)),
                }
            }
            return (results, total);
        }

        // Contiguous chunks keep per-query results trivially reorderable:
        // thread t owns queries [t * chunk, (t + 1) * chunk).
        let chunk = queries.len().div_ceil(threads);
        // Metric scopes are thread-local, so workers record into their own
        // registries which the caller absorbs in chunk order below —
        // counter totals are then identical to a sequential run at any
        // thread count (histogram sums still reflect wall-clock).
        let record_metrics = emd_obs::recording();
        type ChunkOutput = (
            Vec<Result<Vec<Neighbor>, QueryError>>,
            QueryStats,
            Option<emd_obs::MetricsRegistry>,
        );
        // lint: allow(nondeterminism): chunk outputs join in spawn order, so
        // batch results and counter totals match a sequential run exactly.
        let chunk_results: Vec<ChunkOutput> = std::thread::scope(|scope| {
            // Spawn every chunk before joining any: joining lazily off the
            // spawn iterator would serialize the batch.
            let mut handles = Vec::with_capacity(threads);
            for (worker, chunk_queries) in queries.chunks(chunk).enumerate() {
                handles.push(scope.spawn(move || -> ChunkOutput {
                    let recording = record_metrics.then(emd_obs::Recording::start);
                    let mut results = Vec::with_capacity(chunk_queries.len());
                    let mut total = QueryStats::default();
                    for query in chunk_queries {
                        match self.run_isolated(query, worker) {
                            Ok((neighbors, stats)) => {
                                total.accumulate(&stats);
                                results.push(Ok(neighbors));
                            }
                            Err(error) => results.push(Err(error)),
                        }
                    }
                    (results, total, recording.map(emd_obs::Recording::finish))
                }));
            }
            let mut collected = Vec::with_capacity(handles.len());
            for (worker, handle) in handles.into_iter().enumerate() {
                collected.push(match handle.join() {
                    Ok(output) => output,
                    Err(payload) => {
                        // Per-query catch_unwind makes this unreachable for
                        // query panics; a join failure means the worker loop
                        // itself died, so attribute the whole chunk.
                        let error = QueryError::WorkerPanicked {
                            worker,
                            detail: panic_detail(payload.as_ref()),
                        };
                        let len = queries.len().min((worker + 1) * chunk) - worker * chunk;
                        (vec![Err(error); len], QueryStats::default(), None)
                    }
                });
            }
            collected
        });

        emd_obs::gauge_set("query.batch.threads", threads as f64);
        let mut results = Vec::with_capacity(queries.len());
        let mut total = QueryStats::default();
        for (chunk_neighbors, chunk_stats, chunk_registry) in chunk_results {
            total.accumulate(&chunk_stats);
            if let Some(registry) = &chunk_registry {
                emd_obs::absorb(registry);
            }
            results.extend(chunk_neighbors);
        }
        (results, total)
    }

    /// Run one [`Query`] under a [`Budget`] with panic isolation: the
    /// long-running-server entry point. The query executes inside
    /// `catch_unwind`, so a panicking solve (a bug, a poisoned
    /// invariant, an injected [`Fault::Panic`]) surfaces as
    /// [`QueryError::WorkerPanicked`] attributed to `worker` — the
    /// caller keeps serving. `worker` is an arbitrary caller-chosen
    /// ordinal (the serve layer passes a per-request sequence number, so
    /// an armed [`Site::Worker`] failpoint targets exactly one request).
    ///
    /// Budget exhaustion is *not* an error: it returns
    /// [`QueryOutcome::Degraded`] exactly as [`Executor::run_budgeted`]
    /// does, and with an unlimited budget results are bit-identical to
    /// the unbudgeted path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Executor::run_budgeted`], plus
    /// [`QueryError::WorkerPanicked`] for panics caught in this call.
    pub fn run_budgeted_isolated(
        &self,
        query: &Query,
        budget: &Budget,
        worker: usize,
    ) -> Result<(QueryOutcome, QueryStats), QueryError> {
        let result = catch_unwind(AssertUnwindSafe(|| {
            if let Some(injector) = &self.faults {
                if let Some(Fault::Panic) = injector.check(Site::Worker(worker)) {
                    std::panic::panic_any(InjectedPanic::new(worker)); // lint: allow(panic)
                }
            }
            self.run_budgeted(query, budget)
        }));
        match result {
            Ok(answer) => answer,
            Err(payload) => {
                emd_obs::counter_add("query.worker_panics", 1);
                Err(QueryError::WorkerPanicked {
                    worker,
                    detail: panic_detail(payload.as_ref()),
                })
            }
        }
    }

    /// Run one query inside `catch_unwind`, converting any panic into
    /// [`QueryError::WorkerPanicked`] attributed to `worker`. Probes the
    /// installed fault injector (if any) first, honoring
    /// [`Fault::Panic`] with a typed [`InjectedPanic`] payload.
    fn run_isolated(
        &self,
        query: &Query,
        worker: usize,
    ) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        let result = catch_unwind(AssertUnwindSafe(|| {
            if let Some(injector) = &self.faults {
                if let Some(Fault::Panic) = injector.check(Site::Worker(worker)) {
                    std::panic::panic_any(InjectedPanic::new(worker)); // lint: allow(panic)
                }
            }
            self.run(query)
        }));
        match result {
            Ok(answer) => answer,
            Err(payload) => {
                emd_obs::counter_add("query.worker_panics", 1);
                Err(QueryError::WorkerPanicked {
                    worker,
                    detail: panic_detail(payload.as_ref()),
                })
            }
        }
    }

    fn execute(
        &self,
        query: &Histogram,
        mode: QueryMode,
    ) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        let _query_span = emd_obs::span("query.execute");
        emd_obs::counter_add("query.queries", 1);
        match mode {
            QueryMode::Knn(0) => return Err(QueryError::ZeroK),
            QueryMode::Range(epsilon) if epsilon.is_nan() || epsilon < 0.0 => {
                return Err(QueryError::InvalidEpsilon(epsilon));
            }
            _ => {}
        }
        if let Some(source) = self.plan.source() {
            return self.execute_from_source(source, query, mode);
        }
        let mut refiner = {
            let _span = emd_obs::span("query.refiner.prepare");
            self.plan.refiner().prepare(query)?
        };

        let mut prepared: Vec<Box<dyn PreparedFilter + '_>> =
            Vec::with_capacity(self.plan.stages().len());
        for stage in self.plan.stages() {
            let _span = emd_obs::span_with(|| format!("query.stage.{}.prepare", stage.name()));
            prepared.push(stage.prepare(query)?);
        }

        let Some((first, rest)) = prepared.split_first_mut() else {
            // Zero-stage plan — the sequential scan: refine every object
            // once and read the answer off the exact ranking.
            let neighbors = {
                let _span = emd_obs::span("query.scan");
                scan_ranking(refiner.as_mut(), self.plan.len(), mode)?
            };
            let stats = QueryStats {
                filter_evaluations: Vec::new(),
                refinements: refiner.evaluations(),
                results: neighbors.len(),
            };
            publish_stats(&stats);
            return Ok((neighbors, stats));
        };

        let (neighbors, refinements) = {
            let _span = emd_obs::span("query.knop");
            let mut ranking: Box<dyn Ranking + '_> =
                Box::new(EagerRanking::new(first.as_mut(), self.plan.len())?);
            for stage in rest {
                ranking = Box::new(ChainedRanking::new(ranking, stage.as_mut()));
            }
            match mode {
                QueryMode::Knn(k) => knop::knn(ranking.as_mut(), refiner.as_mut(), k)?,
                QueryMode::Range(epsilon) => {
                    knop::range(ranking.as_mut(), refiner.as_mut(), epsilon)?
                }
            }
        };

        let stats = QueryStats {
            filter_evaluations: self
                .plan
                .stages()
                .iter()
                .zip(prepared.iter())
                .map(|(stage, p)| (stage.name().to_owned(), p.evaluations()))
                .collect(),
            refinements,
            results: neighbors.len(),
        };
        publish_stats(&stats);
        Ok((neighbors, stats))
    }

    fn execute_budgeted(
        &self,
        query: &Histogram,
        mode: QueryMode,
        budget: &Budget,
    ) -> Result<(QueryOutcome, QueryStats), QueryError> {
        if budget.is_unlimited() {
            // Bit-identical guarantee: with nothing to enforce, take the
            // exact unbudgeted path.
            let (neighbors, stats) = self.execute(query, mode)?;
            return Ok((QueryOutcome::Exact(neighbors), stats));
        }
        let _query_span = emd_obs::span("query.execute");
        emd_obs::counter_add("query.queries", 1);
        match mode {
            QueryMode::Knn(0) => return Err(QueryError::ZeroK),
            QueryMode::Range(epsilon) if epsilon.is_nan() || epsilon < 0.0 => {
                return Err(QueryError::InvalidEpsilon(epsilon));
            }
            _ => {}
        }
        if let Some(source) = self.plan.source() {
            return self.execute_from_source_budgeted(source, query, mode, budget);
        }
        let mut refiner = {
            let _span = emd_obs::span("query.refiner.prepare");
            self.plan.refiner().prepare_budgeted(query, budget)?
        };

        let mut prepared: Vec<Box<dyn PreparedFilter + '_>> =
            Vec::with_capacity(self.plan.stages().len());
        for stage in self.plan.stages() {
            let _span = emd_obs::span_with(|| format!("query.stage.{}.prepare", stage.name()));
            prepared.push(stage.prepare_budgeted(query, budget)?);
        }

        let finish = finish_outcome;

        if prepared.is_empty() {
            // Zero-stage plan — the sequential scan. Materialize the exact
            // ranking one refinement at a time so the bounds computed
            // before a budget firing survive into the degraded answer.
            let _span = emd_obs::span("query.scan");
            let mut computed: Vec<(usize, f64)> = Vec::new();
            let mut fired: Option<BudgetReason> = None;
            for id in 0..self.plan.len() {
                if let Err(reason) = budget.check() {
                    fired = Some(reason);
                    break;
                }
                match refiner.distance(id) {
                    Ok(distance) => computed.push((id, distance)),
                    Err(QueryError::BudgetExhausted(reason)) => {
                        fired = Some(reason);
                        break;
                    }
                    Err(error) => return Err(error),
                }
            }
            let refinements = refiner.evaluations();
            let outcome = match fired {
                Some(reason) => {
                    let mut candidates: Vec<Candidate> = computed
                        .into_iter()
                        .map(|(id, bound)| Candidate {
                            id,
                            bound,
                            exact: true,
                        })
                        .collect();
                    sort_candidates(&mut candidates);
                    match mode {
                        QueryMode::Knn(k) => candidates.truncate(k),
                        QueryMode::Range(epsilon) => {
                            candidates.retain(|c| c.bound <= epsilon);
                        }
                    }
                    QueryOutcome::Degraded(DegradedResult { candidates, reason })
                }
                None => {
                    let mut ranking = EagerRanking::from_computed(computed);
                    let mut neighbors = Vec::new();
                    while let Some((id, distance)) = ranking.next()? {
                        match mode {
                            QueryMode::Knn(k) if neighbors.len() >= k => break,
                            QueryMode::Range(epsilon) if distance > epsilon => break,
                            _ => neighbors.push(Neighbor { id, distance }),
                        }
                    }
                    QueryOutcome::Exact(neighbors)
                }
            };
            return Ok(finish(outcome, refinements, Vec::new()));
        }

        let (outcome, refinements) = {
            let _span = emd_obs::span("query.knop");
            // Materialize the first filter stage by hand (instead of
            // EagerRanking::new) so a budget firing mid-materialization
            // still yields the bounds computed so far.
            let len = self.plan.len();
            let mut computed: Vec<(usize, f64)> = Vec::with_capacity(len);
            let mut fired: Option<BudgetReason> = None;
            if let Some(first) = prepared.first_mut() {
                for id in 0..len {
                    if let Err(reason) = budget.check() {
                        fired = Some(reason);
                        break;
                    }
                    match first.distance(id) {
                        Ok(distance) => computed.push((id, distance)),
                        Err(QueryError::BudgetExhausted(reason)) => {
                            fired = Some(reason);
                            break;
                        }
                        Err(error) => return Err(error),
                    }
                }
            }
            if let Some(reason) = fired {
                // Nothing refined yet: every computed bound is a filter
                // lower bound of the exact distance.
                let mut candidates: Vec<Candidate> = computed
                    .into_iter()
                    .map(|(id, bound)| Candidate {
                        id,
                        bound,
                        exact: false,
                    })
                    .collect();
                sort_candidates(&mut candidates);
                match mode {
                    QueryMode::Knn(k) => candidates.truncate(k),
                    QueryMode::Range(epsilon) => candidates.retain(|c| c.bound <= epsilon),
                }
                (
                    QueryOutcome::Degraded(DegradedResult { candidates, reason }),
                    0,
                )
            } else {
                let mut stages = prepared.iter_mut();
                // First stage was consumed into `computed` above.
                let _first = stages.next();
                let mut ranking: Box<dyn Ranking + '_> =
                    Box::new(EagerRanking::from_computed(computed));
                for stage in stages {
                    ranking = Box::new(ChainedRanking::new(ranking, stage.as_mut()));
                }
                match mode {
                    QueryMode::Knn(k) => {
                        knop::knn_budgeted(ranking.as_mut(), refiner.as_mut(), k, budget)?
                    }
                    QueryMode::Range(epsilon) => {
                        knop::range_budgeted(ranking.as_mut(), refiner.as_mut(), epsilon, budget)?
                    }
                }
            }
        };

        let evaluations: Vec<(String, usize)> = self
            .plan
            .stages()
            .iter()
            .zip(prepared.iter())
            .map(|(stage, p)| (stage.name().to_owned(), p.evaluations()))
            .collect();
        Ok(finish(outcome, refinements, evaluations))
    }

    /// Source-driven execution: the plan's [`CandidateSource`] stream
    /// replaces the materialized first stage; any filter stages chain on
    /// top of it, and the KNOP loop is unchanged.
    fn execute_from_source(
        &self,
        source: &dyn CandidateSource,
        query: &Histogram,
        mode: QueryMode,
    ) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        let mut refiner = {
            let _span = emd_obs::span("query.refiner.prepare");
            self.plan.refiner().prepare(query)?
        };
        let mut prepared: Vec<Box<dyn PreparedFilter + '_>> =
            Vec::with_capacity(self.plan.stages().len());
        for stage in self.plan.stages() {
            let _span = emd_obs::span_with(|| format!("query.stage.{}.prepare", stage.name()));
            prepared.push(stage.prepare(query)?);
        }
        let mut stream = {
            let _span = emd_obs::span_with(|| format!("query.source.{}.prepare", source.name()));
            source.prepare(query)?
        };

        let (neighbors, refinements) = {
            let _span = emd_obs::span("query.knop");
            let mut ranking: Box<dyn Ranking + '_> = Box::new(SourceRanking::new(stream.as_mut()));
            for stage in prepared.iter_mut() {
                ranking = Box::new(ChainedRanking::new(ranking, stage.as_mut()));
            }
            match mode {
                QueryMode::Knn(k) => knop::knn(ranking.as_mut(), refiner.as_mut(), k)?,
                QueryMode::Range(epsilon) => {
                    knop::range(ranking.as_mut(), refiner.as_mut(), epsilon)?
                }
            }
        };

        let stats = QueryStats {
            filter_evaluations: source_evaluations(
                source,
                stream.evaluations(),
                &self.plan,
                &prepared,
            ),
            refinements,
            results: neighbors.len(),
        };
        publish_stats(&stats);
        Ok((neighbors, stats))
    }

    /// Budgeted twin of [`Executor::execute_from_source`]. The stream
    /// probes the budget as it traverses: a firing surfaces as
    /// [`QueryError::BudgetExhausted`] from the ranking, which the KNOP
    /// loop converts into a degraded outcome built from
    /// `drain_computed` — including the source's already-computed bounds.
    fn execute_from_source_budgeted(
        &self,
        source: &dyn CandidateSource,
        query: &Histogram,
        mode: QueryMode,
        budget: &Budget,
    ) -> Result<(QueryOutcome, QueryStats), QueryError> {
        let mut refiner = {
            let _span = emd_obs::span("query.refiner.prepare");
            self.plan.refiner().prepare_budgeted(query, budget)?
        };
        let mut prepared: Vec<Box<dyn PreparedFilter + '_>> =
            Vec::with_capacity(self.plan.stages().len());
        for stage in self.plan.stages() {
            let _span = emd_obs::span_with(|| format!("query.stage.{}.prepare", stage.name()));
            prepared.push(stage.prepare_budgeted(query, budget)?);
        }
        let mut stream = {
            let _span = emd_obs::span_with(|| format!("query.source.{}.prepare", source.name()));
            source.prepare_budgeted(query, budget)?
        };

        let (outcome, refinements) = {
            let _span = emd_obs::span("query.knop");
            let mut ranking: Box<dyn Ranking + '_> = Box::new(SourceRanking::new(stream.as_mut()));
            for stage in prepared.iter_mut() {
                ranking = Box::new(ChainedRanking::new(ranking, stage.as_mut()));
            }
            match mode {
                QueryMode::Knn(k) => {
                    knop::knn_budgeted(ranking.as_mut(), refiner.as_mut(), k, budget)?
                }
                QueryMode::Range(epsilon) => {
                    knop::range_budgeted(ranking.as_mut(), refiner.as_mut(), epsilon, budget)?
                }
            }
        };

        let evaluations = source_evaluations(source, stream.evaluations(), &self.plan, &prepared);
        Ok(finish_outcome(outcome, refinements, evaluations))
    }
}

/// Stats rows for a source-driven execution: the source first (its
/// lower-bound evaluations are the stage-1 cost), then the chained
/// stages in plan order.
fn source_evaluations(
    source: &dyn CandidateSource,
    stream_evaluations: usize,
    plan: &QueryPlan,
    prepared: &[Box<dyn PreparedFilter + '_>],
) -> Vec<(String, usize)> {
    let mut evaluations = Vec::with_capacity(1 + prepared.len());
    evaluations.push((source.name().to_owned(), stream_evaluations));
    evaluations.extend(
        plan.stages()
            .iter()
            .zip(prepared.iter())
            .map(|(stage, p)| (stage.name().to_owned(), p.evaluations())),
    );
    evaluations
}

/// Wrap a KNOP outcome into stats, mirroring counters for degraded
/// answers (shared by the legacy budgeted path and the source path).
fn finish_outcome(
    outcome: QueryOutcome,
    refinements: usize,
    evaluations: Vec<(String, usize)>,
) -> (QueryOutcome, QueryStats) {
    let results = match &outcome {
        QueryOutcome::Exact(neighbors) => neighbors.len(),
        QueryOutcome::Degraded(result) => result.candidates.len(),
    };
    let stats = QueryStats {
        filter_evaluations: evaluations,
        refinements,
        results,
    };
    publish_stats(&stats);
    if let QueryOutcome::Degraded(result) = &outcome {
        emd_obs::counter_add("query.degraded", 1);
        if result.reason == BudgetReason::Deadline {
            emd_obs::counter_add("query.deadline_exceeded", 1);
        }
    }
    (outcome, stats)
}

/// Render a panic payload to text, preferring the typed
/// [`InjectedPanic`] marker, then the conventional `&str` / `String`
/// payloads of `panic!`.
fn panic_detail(payload: &(dyn Any + Send)) -> String {
    if let Some(injected) = payload.downcast_ref::<InjectedPanic>() {
        injected.to_string()
    } else if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Mirror a query's [`QueryStats`] into the ambient metrics registry, so
/// registry consumers see the same per-stage evaluation counts the stats
/// façade reports. The filters keep their own cheap counters
/// ([`PreparedFilter::evaluations`]) — publishing after the fact keeps the
/// per-candidate hot path free of registry lookups.
fn publish_stats(stats: &QueryStats) {
    if !emd_obs::recording() {
        return;
    }
    for (name, evaluations) in &stats.filter_evaluations {
        emd_obs::counter_add(
            &format!("query.stage.{name}.evaluations"),
            *evaluations as u64,
        );
    }
    emd_obs::counter_add("query.refinements", stats.refinements as u64);
    emd_obs::counter_add("query.results", stats.results as u64);
}

/// Read a query answer directly off an exact-distance ranking (the
/// zero-stage scan path; no KNOP loop involved — there is nothing left to
/// refine).
fn scan_ranking(
    refiner: &mut dyn PreparedFilter,
    len: usize,
    mode: QueryMode,
) -> Result<Vec<Neighbor>, QueryError> {
    let mut ranking = EagerRanking::new(refiner, len)?;
    let mut neighbors = Vec::new();
    while let Some((id, distance)) = ranking.next()? {
        match mode {
            QueryMode::Knn(k) if neighbors.len() >= k => break,
            QueryMode::Range(epsilon) if distance > epsilon => break,
            _ => neighbors.push(Neighbor { id, distance }),
        }
    }
    Ok(neighbors)
}
