//! The query engine: one snapshot, one plan, one executor.
//!
//! Section 4's multistep query processing used to be implemented three
//! times over — the static [`Pipeline`](crate::Pipeline), the mutable
//! [`DynamicIndex`](crate::DynamicIndex) and the brute-force
//! [`scan`](crate::scan) oracles each walked their own copy of the
//! database with their own refinement loop. This module is the single
//! execution layer they all share now:
//!
//! * [`Database`] — an immutable snapshot: all histograms in one shared
//!   contiguous arena, paired with the ground-distance matrix. Filters
//!   hold cheap reference-counted views instead of private copies.
//! * [`QueryPlan`] — the declarative filter chain
//!   (`Red-IM -> Red-EMD -> ... -> EMD`) with per-stage cost estimates
//!   seeded from [`QueryStats`](crate::QueryStats) history.
//! * [`Executor`] — prepares per-query state, chains the lazy rankings of
//!   Figure 12, and invokes the KNOP loop in [`knop`](crate::knop)
//!   exactly once per query. [`Executor::run_batch`] fans workloads
//!   across std scoped threads with deterministic, bit-identical results.

mod database;
mod executor;
mod plan;
pub mod source;

pub use database::{Database, OpenedIndex};
pub use executor::Executor;
pub use plan::{Query, QueryMode, QueryPlan, StageEstimate};
pub use source::{CandidateSource, CandidateStream, FilterScanSource};
