//! Query plans: a declarative description of one multistep execution.
//!
//! A [`QueryPlan`] is the engine's unit of configuration — the ordered
//! lower-bounding filter chain (e.g. `Red-IM -> Red-EMD`), the exact
//! refinement distance, and per-stage cost estimates seeded from
//! [`QueryStats`] history. The [`Executor`](crate::Executor) consumes a
//! plan and runs the KNOP algorithm over it; everything that used to be
//! an ad-hoc `Vec<Box<dyn Filter>>` scattered across the pipeline, the
//! dynamic index and the bench harness is now a plan.

use crate::engine::source::CandidateSource;
use crate::error::QueryError;
use crate::filters::Filter;
use crate::stats::QueryStats;
use emd_core::Histogram;

/// Result-set mode of one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryMode {
    /// The `k` exact nearest neighbors.
    Knn(usize),
    /// All objects with exact distance `<= epsilon`.
    Range(f64),
}

/// One query: the histogram plus its result-set mode. Batch execution
/// ([`Executor::run_batch`](crate::Executor::run_batch)) fans slices of
/// these across threads.
#[derive(Debug, Clone)]
pub struct Query {
    /// The query histogram.
    pub histogram: Histogram,
    /// k-NN or range mode.
    pub mode: QueryMode,
}

impl Query {
    /// A k-nearest-neighbor query.
    // lint: allow(unbudgeted): plan constructor; executes nothing itself.
    pub fn knn(histogram: Histogram, k: usize) -> Self {
        Query {
            histogram,
            mode: QueryMode::Knn(k),
        }
    }

    /// A range query.
    // lint: allow(unbudgeted): plan constructor; executes nothing itself.
    pub fn range(histogram: Histogram, epsilon: f64) -> Self {
        Query {
            histogram,
            mode: QueryMode::Range(epsilon),
        }
    }
}

/// Expected per-query cost of one plan stage, seeded from observed
/// [`QueryStats`] history via [`QueryPlan::seed_estimates`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageEstimate {
    /// Stage name (matches [`Filter::name`]).
    pub stage: String,
    /// Mean filter evaluations per query observed for this stage.
    pub mean_evaluations: f64,
    /// Fraction of this stage's evaluations that survived to the next
    /// stage (the last stage's survivors are the exact refinements).
    pub pass_fraction: f64,
}

/// A filter chain plus the exact refinement distance — the declarative
/// half of the engine. Build one, hand it to an
/// [`Executor`](crate::Executor).
pub struct QueryPlan {
    /// Optional stage-1 candidate source (index scan); `None` means the
    /// first filter stage is materialized as a full scan.
    source: Option<Box<dyn CandidateSource>>,
    stages: Vec<Box<dyn Filter>>,
    refiner: Box<dyn Filter>,
    estimates: Vec<StageEstimate>,
}

impl std::fmt::Debug for QueryPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryPlan")
            .field("source", &self.source.as_ref().map(|s| s.name()))
            .field("stages", &self.stage_names())
            .field("refiner", &self.refiner.name())
            .field("estimates", &self.estimates)
            .finish()
    }
}

impl QueryPlan {
    /// Assemble a plan. `stages` run in order, loosest/cheapest first;
    /// every stage must lower-bound the next (unchecked — establishing
    /// the bound chain is the caller's modelling decision, cf. Section 4
    /// of the paper) and index the same database as `refiner`.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::EmptyDatabase`] when `refiner` indexes no
    /// objects and [`QueryError::Reduction`] when a stage indexes a
    /// database of a different size than `refiner`.
    pub fn new(stages: Vec<Box<dyn Filter>>, refiner: Box<dyn Filter>) -> Result<Self, QueryError> {
        if refiner.is_empty() {
            return Err(QueryError::EmptyDatabase);
        }
        for stage in &stages {
            if stage.len() != refiner.len() {
                return Err(QueryError::Reduction(format!(
                    "stage {} indexes {} objects, refiner {}",
                    stage.name(),
                    stage.len(),
                    refiner.len()
                )));
            }
        }
        Ok(QueryPlan {
            source: None,
            stages,
            refiner,
            estimates: Vec::new(),
        })
    }

    /// A plan with no filter stages: the sequential-scan baseline (every
    /// object refined exactly once).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::EmptyDatabase`] when `refiner` indexes no
    /// objects.
    pub fn sequential(refiner: Box<dyn Filter>) -> Result<Self, QueryError> {
        Self::new(Vec::new(), refiner)
    }

    /// Attach a stage-1 [`CandidateSource`] (e.g. a
    /// [`ClusteredIndex`](crate::ClusteredIndex) or
    /// [`FilterScanSource`](crate::FilterScanSource)): the executor pulls
    /// candidates from the source's stream instead of materializing the
    /// first filter stage, and any `stages` of this plan are chained *on
    /// top* of the source in the usual Figure 12 way. The source's
    /// emitted bound must lower-bound the first stage (or the refiner,
    /// for a stage-less plan) — the same unchecked modelling obligation
    /// as the stage chain itself.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::Reduction`] when the source indexes a
    /// database of a different size than the refiner.
    pub fn with_source(mut self, source: Box<dyn CandidateSource>) -> Result<Self, QueryError> {
        if source.len() != self.refiner.len() {
            return Err(QueryError::Reduction(format!(
                "source {} indexes {} objects, refiner {}",
                source.name(),
                source.len(),
                self.refiner.len()
            )));
        }
        self.source = Some(source);
        Ok(self)
    }

    /// The attached stage-1 candidate source, if any.
    pub fn source(&self) -> Option<&dyn CandidateSource> {
        self.source.as_deref()
    }

    /// Names of the filter stages, in chain order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// The filter stages, in chain order.
    pub(crate) fn stages(&self) -> &[Box<dyn Filter>] {
        &self.stages
    }

    /// The exact refinement distance.
    pub(crate) fn refiner(&self) -> &dyn Filter {
        self.refiner.as_ref()
    }

    /// Number of database objects the plan indexes.
    pub fn len(&self) -> usize {
        self.refiner.len()
    }

    /// Whether the indexed database is empty (never true for a
    /// constructed plan).
    pub fn is_empty(&self) -> bool {
        self.refiner.is_empty()
    }

    /// Seed per-stage cost estimates from accumulated query history —
    /// `history` is the [`QueryStats`] total over `queries` queries
    /// against this plan (or one shaped like it). Stages are matched by
    /// name; stages without history keep no estimate.
    pub fn seed_estimates(&mut self, history: &QueryStats, queries: usize) {
        let per_query = 1.0 / queries.max(1) as f64;
        self.estimates = self
            .stages
            .iter()
            .enumerate()
            .filter_map(|(index, stage)| {
                let (_, evaluations) = history
                    .filter_evaluations
                    .iter()
                    .find(|(name, _)| name == stage.name())?;
                // Survivors of this stage: the next stage's evaluations,
                // or the exact refinements after the last stage.
                let survivors = self
                    .stages
                    .get(index + 1)
                    .and_then(|next| {
                        history
                            .filter_evaluations
                            .iter()
                            .find(|(name, _)| name == next.name())
                            .map(|(_, n)| *n)
                    })
                    .unwrap_or(history.refinements);
                Some(StageEstimate {
                    stage: stage.name().to_owned(),
                    mean_evaluations: *evaluations as f64 * per_query,
                    pass_fraction: if *evaluations > 0 {
                        survivors as f64 / *evaluations as f64
                    } else {
                        0.0
                    },
                })
            })
            .collect();
    }

    /// Per-stage cost estimates (empty until
    /// [`seed_estimates`](Self::seed_estimates) is called).
    pub fn estimates(&self) -> &[StageEstimate] {
        &self.estimates
    }

    /// Expected exact refinements per query under the seeded estimates:
    /// the last stage's mean evaluations times its pass fraction. `None`
    /// until estimates are seeded (or for a zero-stage plan, where every
    /// object is refined).
    pub fn estimated_refinements(&self) -> Option<f64> {
        let last = self.estimates.last()?;
        Some(last.mean_evaluations * last.pass_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_estimates_matches_by_name_and_derives_pass_fractions() {
        struct Named(&'static str);
        impl Filter for Named {
            fn name(&self) -> &str {
                self.0
            }
            fn len(&self) -> usize {
                100
            }
            fn prepare(
                &self,
                _query: &Histogram,
            ) -> Result<Box<dyn crate::PreparedFilter + '_>, QueryError> {
                Err(QueryError::ZeroK)
            }
        }
        let mut plan = QueryPlan::new(
            vec![Box::new(Named("red-im")), Box::new(Named("red-emd"))],
            Box::new(Named("emd")),
        )
        .unwrap();
        assert!(plan.estimates().is_empty());
        assert!(plan.estimated_refinements().is_none());

        let history = QueryStats {
            filter_evaluations: vec![("red-im".into(), 400), ("red-emd".into(), 100)],
            refinements: 20,
            results: 40,
        };
        plan.seed_estimates(&history, 4);
        assert_eq!(plan.estimates().len(), 2);
        assert_eq!(plan.estimates()[0].mean_evaluations, 100.0);
        assert_eq!(plan.estimates()[0].pass_fraction, 0.25);
        assert_eq!(plan.estimates()[1].mean_evaluations, 25.0);
        assert_eq!(plan.estimates()[1].pass_fraction, 0.2);
        assert_eq!(plan.estimated_refinements(), Some(5.0));
    }
}
