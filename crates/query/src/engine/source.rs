//! Stage-1 candidate sources: pluggable generators of the first ranking.
//!
//! Every plan so far produced its stage-1 ranking the same way: evaluate
//! the first filter against *all* `n` objects, sort, pop — O(n) filter
//! evaluations per query, forever. A [`CandidateSource`] abstracts that
//! first ranking behind a trait so a [`QueryPlan`](super::QueryPlan) can
//! swap the full scan for a metric index (the cluster-pruned
//! [`ClusteredIndex`](crate::ClusteredIndex), the
//! [`VpTree`](crate::VpTree) baseline) that emits candidates in the same
//! ascending lower-bound order while *evaluating only a subset* of the
//! database.
//!
//! The contract mirrors [`Ranking`]: a prepared [`CandidateStream`]
//! yields `(id, lower bound)` pairs in ascending `(bound, id)` order, and
//! every emitted bound must lower-bound the exact distance (the chain
//! condition), so KNOP's correctness argument is untouched — the executor
//! simply stacks the usual [`ChainedRanking`](crate::ranking::ChainedRanking)s
//! on top. Budgets propagate through [`CandidateSource::prepare_budgeted`]:
//! a firing budget surfaces as [`QueryError::BudgetExhausted`] from
//! [`Ranking::next`], and [`Ranking::drain_computed`] surrenders the
//! bounds already computed so degraded answers work exactly as they do
//! for filter scans.
//!
//! [`FilterScanSource`] adapts any [`Filter`] to this interface with the
//! executor's historical semantics (evaluate everything, sort once), so
//! "full scan" is itself just a source and comparisons between sources
//! are apples-to-apples.

use crate::error::QueryError;
use crate::filters::{Filter, PreparedFilter};
use crate::ranking::Ranking;
use emd_core::{Budget, Histogram};

/// A prepared, per-query stream of stage-1 candidates.
///
/// Extends [`Ranking`] (ascending `(bound, id)` emission, budget
/// propagation, degraded drains) with an evaluation counter so
/// [`QueryStats`](crate::QueryStats) can report how much lower-bound work
/// the source performed — the number an index must keep sublinear.
pub trait CandidateStream: Ranking {
    /// Lower-bound distance evaluations performed so far.
    fn evaluations(&self) -> usize;
}

/// Produces the stage-1 candidate ranking of a query plan.
///
/// Implementations hold everything precomputed per database (reduced
/// arenas, cluster geometry, tree nodes); [`prepare`](Self::prepare)
/// builds the cheap per-query state. `Send + Sync` so a plan can be
/// shared across the batch executor's threads.
///
/// # Examples
///
/// Wrapping a filter as a source and streaming its ranking directly:
///
/// ```
/// use emd_core::{CostMatrix, Histogram};
/// use emd_query::{CandidateSource, Database, EmdDistance, FilterScanSource};
///
/// let histograms = vec![
///     Histogram::new(vec![1.0, 0.0]).unwrap(),
///     Histogram::new(vec![0.0, 1.0]).unwrap(),
/// ];
/// let cost = CostMatrix::from_fn(2, |i, j| if i == j { 0.0 } else { 1.0 }).unwrap();
/// let database = Database::new(histograms, std::sync::Arc::new(cost)).unwrap();
/// let source = FilterScanSource::new(EmdDistance::new(&database).unwrap());
///
/// let query = Histogram::new(vec![1.0, 0.0]).unwrap();
/// let mut stream = source.prepare(&query).unwrap();
/// assert_eq!(stream.next().unwrap(), Some((0, 0.0)));
/// assert_eq!(stream.next().unwrap(), Some((1, 1.0)));
/// assert_eq!(stream.evaluations(), 2);
/// ```
pub trait CandidateSource: Send + Sync {
    /// Source name for [`QueryStats`](crate::QueryStats) and obs counters.
    fn name(&self) -> &str;

    /// Number of database objects the source indexes.
    fn len(&self) -> usize;

    /// Whether the indexed database is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Build the per-query candidate stream.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] when the query's shape does not match the
    /// indexed database.
    fn prepare(&self, query: &Histogram) -> Result<Box<dyn CandidateStream + '_>, QueryError>;

    /// Build the per-query candidate stream under an execution budget.
    ///
    /// The stream must probe `budget` as it traverses and surface a
    /// firing as [`QueryError::BudgetExhausted`] from `next`, keeping the
    /// already-computed bounds available via `drain_computed`. The
    /// default ignores the budget, which is correct only for sources
    /// whose traversal does no solver work.
    ///
    /// # Errors
    ///
    /// Same conditions as [`prepare`](Self::prepare).
    fn prepare_budgeted(
        &self,
        query: &Histogram,
        budget: &Budget,
    ) -> Result<Box<dyn CandidateStream + '_>, QueryError> {
        let _ = budget;
        self.prepare(query)
    }
}

/// Borrowing adapter so a prepared stream can feed the executor's
/// `Box<dyn Ranking>` chain while the caller keeps the stream (for its
/// evaluation count) after the KNOP loop returns.
pub(crate) struct SourceRanking<'a> {
    stream: &'a mut (dyn CandidateStream + 'a),
}

impl<'a> SourceRanking<'a> {
    pub(crate) fn new(stream: &'a mut (dyn CandidateStream + 'a)) -> Self {
        SourceRanking { stream }
    }
}

impl Ranking for SourceRanking<'_> {
    fn next(&mut self) -> Result<Option<(usize, f64)>, QueryError> {
        self.stream.next()
    }

    fn drain_computed(&mut self) -> Vec<(usize, f64)> {
        self.stream.drain_computed()
    }
}

/// The full scan as a [`CandidateSource`]: evaluates `filter` on every
/// object, exactly as the executor's historical first-stage
/// materialization did (same evaluation order, same ascending
/// `(distance, id)` emission, same partial-bounds surrender when a
/// budget fires mid-scan) — so plans routed through a source and legacy
/// staged plans produce bit-identical answers.
#[derive(Debug)]
pub struct FilterScanSource<F: Filter> {
    name: String,
    filter: F,
}

impl<F: Filter> FilterScanSource<F> {
    /// Wrap `filter` as a scan source.
    pub fn new(filter: F) -> Self {
        let name = format!("scan:{}", filter.name());
        FilterScanSource { name, filter }
    }

    /// The wrapped filter.
    pub fn filter(&self) -> &F {
        &self.filter
    }
}

impl<F: Filter> CandidateSource for FilterScanSource<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.filter.len()
    }

    fn prepare(&self, query: &Histogram) -> Result<Box<dyn CandidateStream + '_>, QueryError> {
        Ok(Box::new(ScanStream {
            prepared: self.filter.prepare(query)?,
            len: self.filter.len(),
            budget: Budget::unlimited(),
            next_id: 0,
            computed: Vec::new(),
            sorted: None,
        }))
    }

    fn prepare_budgeted(
        &self,
        query: &Histogram,
        budget: &Budget,
    ) -> Result<Box<dyn CandidateStream + '_>, QueryError> {
        Ok(Box::new(ScanStream {
            prepared: self.filter.prepare_budgeted(query, budget)?,
            len: self.filter.len(),
            budget: budget.clone(),
            next_id: 0,
            computed: Vec::new(),
            sorted: None,
        }))
    }
}

/// Per-query state of a [`FilterScanSource`]: lazy full materialization
/// with budget probes between evaluations, so bounds computed before a
/// firing survive into the degraded answer.
struct ScanStream<'a> {
    prepared: Box<dyn PreparedFilter + 'a>,
    len: usize,
    budget: Budget,
    next_id: usize,
    /// Bounds evaluated so far (partial until materialization finishes).
    computed: Vec<(usize, f64)>,
    /// Sorted descending once complete, so `pop` yields ascending.
    sorted: Option<Vec<(usize, f64)>>,
}

impl Ranking for ScanStream<'_> {
    fn next(&mut self) -> Result<Option<(usize, f64)>, QueryError> {
        if self.sorted.is_none() {
            while self.next_id < self.len {
                self.budget.check().map_err(QueryError::BudgetExhausted)?;
                let distance = self.prepared.distance(self.next_id)?;
                self.computed.push((self.next_id, distance));
                self.next_id += 1;
            }
            let mut computed = std::mem::take(&mut self.computed);
            computed.sort_by(|a, b| b.1.total_cmp(&a.1).then(b.0.cmp(&a.0)));
            self.sorted = Some(computed);
        }
        Ok(self.sorted.as_mut().and_then(Vec::pop))
    }

    fn drain_computed(&mut self) -> Vec<(usize, f64)> {
        let mut out = std::mem::take(&mut self.computed);
        if let Some(rest) = self.sorted.take() {
            out.extend(rest);
        }
        out
    }
}

impl CandidateStream for ScanStream<'_> {
    fn evaluations(&self) -> usize {
        self.prepared.evaluations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Database;
    use crate::filters::EmdDistance;
    use emd_core::{CostMatrix, Histogram};

    fn database() -> Database {
        let histograms = vec![
            Histogram::new(vec![1.0, 0.0, 0.0]).unwrap(),
            Histogram::new(vec![0.0, 1.0, 0.0]).unwrap(),
            Histogram::new(vec![0.0, 0.0, 1.0]).unwrap(),
        ];
        let cost = CostMatrix::from_fn(3, |i, j| (i as f64 - j as f64).abs()).unwrap();
        Database::new(histograms, std::sync::Arc::new(cost)).unwrap()
    }

    #[test]
    fn filter_scan_source_emits_ascending_distance_then_id() {
        let database = database();
        let source = FilterScanSource::new(EmdDistance::new(&database).unwrap());
        assert_eq!(source.len(), 3);
        assert!(!source.is_empty());
        assert_eq!(source.name(), "scan:emd(d=3)");
        let query = Histogram::new(vec![0.0, 1.0, 0.0]).unwrap();
        let mut stream = source.prepare(&query).unwrap();
        assert_eq!(stream.next().unwrap(), Some((1, 0.0)));
        assert_eq!(stream.next().unwrap(), Some((0, 1.0)));
        assert_eq!(stream.next().unwrap(), Some((2, 1.0)));
        assert_eq!(stream.next().unwrap(), None);
        assert_eq!(stream.evaluations(), 3);
    }

    #[test]
    fn exhausted_budget_surfaces_from_next_with_no_bounds() {
        let database = database();
        let source = FilterScanSource::new(EmdDistance::new(&database).unwrap());
        let query = Histogram::new(vec![1.0, 0.0, 0.0]).unwrap();
        let budget = Budget::unlimited().with_pivot_cap(0);
        budget.settle_pivots(1);
        let mut stream = source.prepare_budgeted(&query, &budget).unwrap();
        assert!(matches!(stream.next(), Err(QueryError::BudgetExhausted(_))));
        assert!(stream.drain_computed().is_empty());
    }
}
