//! Error types for `emd-query`.

use std::fmt;

/// Errors reported by `emd-query`.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Error from the EMD core (dimension mismatch, solver failure, ...).
    Core(emd_core::CoreError),
    /// Error from the reduction layer.
    Reduction(String),
    /// The database is empty but a query was issued.
    EmptyDatabase,
    /// `k = 0` requested.
    ZeroK,
    /// A range query with a negative or non-finite epsilon.
    InvalidEpsilon(f64),
    /// An object id outside the indexed database was evaluated.
    UnknownObject(usize),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Core(e) => write!(f, "core error: {e}"),
            QueryError::Reduction(msg) => write!(f, "reduction error: {msg}"),
            QueryError::EmptyDatabase => write!(f, "query against an empty database"),
            QueryError::ZeroK => write!(f, "k must be at least 1"),
            QueryError::InvalidEpsilon(epsilon) => {
                write!(
                    f,
                    "range epsilon must be finite and non-negative, got {epsilon}"
                )
            }
            QueryError::UnknownObject(id) => {
                write!(f, "object id {id} is outside the indexed database")
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<emd_core::CoreError> for QueryError {
    fn from(e: emd_core::CoreError) -> Self {
        QueryError::Core(e)
    }
}

impl From<emd_reduction::ReductionError> for QueryError {
    fn from(e: emd_reduction::ReductionError) -> Self {
        QueryError::Reduction(e.to_string())
    }
}
