//! Error types for `emd-query`.

use std::fmt;

/// Errors reported by `emd-query`.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Error from the EMD core (dimension mismatch, solver failure, ...).
    Core(emd_core::CoreError),
    /// Error from the reduction layer.
    Reduction(String),
    /// The database is empty but a query was issued.
    EmptyDatabase,
    /// `k = 0` requested.
    ZeroK,
    /// A range query with a negative or non-finite epsilon.
    InvalidEpsilon(f64),
    /// An object id outside the indexed database was evaluated.
    UnknownObject(usize),
    /// The execution budget (deadline, pivot cap, or cancellation) fired
    /// mid-query. The executor converts this into a degraded
    /// [`QueryOutcome`](crate::QueryOutcome) wherever partial results
    /// exist; it only surfaces as an error from unbudgeted entry points.
    BudgetExhausted(emd_core::BudgetReason),
    /// A batch worker thread panicked while running this query. Only the
    /// queries of the panicking worker receive this error; surviving
    /// workers' results and stats are unaffected.
    WorkerPanicked {
        /// Chunk index of the worker that panicked.
        worker: usize,
        /// Panic payload rendered to text (best effort).
        detail: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Core(e) => write!(f, "core error: {e}"),
            QueryError::Reduction(msg) => write!(f, "reduction error: {msg}"),
            QueryError::EmptyDatabase => write!(f, "query against an empty database"),
            QueryError::ZeroK => write!(f, "k must be at least 1"),
            QueryError::InvalidEpsilon(epsilon) => {
                write!(
                    f,
                    "range epsilon must be finite and non-negative, got {epsilon}"
                )
            }
            QueryError::UnknownObject(id) => {
                write!(f, "object id {id} is outside the indexed database")
            }
            QueryError::BudgetExhausted(reason) => {
                write!(f, "execution budget exhausted: {reason}")
            }
            QueryError::WorkerPanicked { worker, detail } => {
                write!(f, "batch worker {worker} panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<emd_core::CoreError> for QueryError {
    fn from(e: emd_core::CoreError) -> Self {
        match e {
            // Keep budget exhaustion typed all the way up: the degradation
            // logic must distinguish it from genuine solver failures.
            emd_core::CoreError::BudgetExhausted(reason) => QueryError::BudgetExhausted(reason),
            other => QueryError::Core(other),
        }
    }
}

impl From<emd_reduction::ReductionError> for QueryError {
    fn from(e: emd_reduction::ReductionError) -> Self {
        match e {
            emd_reduction::ReductionError::Core(emd_core::CoreError::BudgetExhausted(reason)) => {
                QueryError::BudgetExhausted(reason)
            }
            other => QueryError::Reduction(other.to_string()),
        }
    }
}
