//! Filter distances over an indexed database snapshot.
//!
//! A [`Filter`] holds everything that can be precomputed *per database*
//! (reduced vectors, sorted cost rows, centroids) over a shared
//! [`Database`] snapshot; [`Filter::prepare`] builds the cheap
//! *per-query* state (the reduced query, its centroid, ...), and
//! [`PreparedFilter::distance`] evaluates one object in the hot loop,
//! counting evaluations for the experiment harness.
//!
//! All filters except [`EmdDistance`] are lower bounds of the exact EMD,
//! so any of them — and any chain of them ordered by increasing tightness
//! — yields complete multistep query processing (GEMINI/KNOP, \[10, 18\]).
//! Filters are `Send + Sync` by construction so a
//! [`QueryPlan`](crate::QueryPlan) can be shared across the batch
//! executor's threads.

use crate::engine::Database;
use crate::error::QueryError;
use emd_core::ground::Metric;
use emd_core::lower_bounds::{CentroidBound, LbIm, ScaledL1};
use emd_core::{
    emd_in_context, emd_rectangular_budgeted, Budget, CostMatrix, EmdContext, Histogram,
};
use emd_reduction::{PersistedReduction, ReducedEmd};
use std::sync::Arc;

/// Check that a persisted bundle matches the snapshot it will filter:
/// same object count, and reductions built for the snapshot's
/// dimensionality. The store's open path already validated the bundle
/// internally; this guards against pairing a bundle with the *wrong*
/// (e.g. freshly rebuilt, differently sized) snapshot.
pub(crate) fn check_persisted(
    database: &Database,
    bundle: &PersistedReduction,
) -> Result<(), QueryError> {
    if bundle.reduced_database().len() != database.len() {
        return Err(QueryError::Reduction(format!(
            "persisted bundle `{}` indexes {} objects, snapshot holds {}",
            bundle.name(),
            bundle.reduced_database().len(),
            database.len()
        )));
    }
    let original = bundle.reduced().r2().original_dim();
    if original != database.dim() {
        return Err(QueryError::Reduction(format!(
            "persisted bundle `{}` reduces {original} dimensions, snapshot has {}",
            bundle.name(),
            database.dim()
        )));
    }
    Ok(())
}

/// A database-indexed distance function, instantiable per query.
///
/// `Send + Sync` is a supertrait so plans built from boxed filters can be
/// shared by reference across the batch executor's worker threads.
pub trait Filter: Send + Sync {
    /// Stage name used in statistics (e.g. `"red-emd(d'=8)"`).
    fn name(&self) -> &str;
    /// Number of indexed objects.
    fn len(&self) -> usize;
    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Build the per-query evaluator.
    fn prepare(&self, query: &Histogram) -> Result<Box<dyn PreparedFilter + '_>, QueryError>;
    /// Build the per-query evaluator under an execution [`Budget`].
    ///
    /// Solver-backed filters ([`EmdDistance`], [`ReducedEmdFilter`])
    /// override this to probe the budget inside every LP solve, surfacing
    /// [`QueryError::BudgetExhausted`] from
    /// [`PreparedFilter::distance`]. Closed-form filters evaluate in
    /// microseconds and ignore the budget (the KNOP loop checks it between
    /// candidates), which is what this default does.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Filter::prepare`].
    fn prepare_budgeted(
        &self,
        query: &Histogram,
        budget: &Budget,
    ) -> Result<Box<dyn PreparedFilter + '_>, QueryError> {
        let _ = budget;
        self.prepare(query)
    }
}

/// Per-query filter state; evaluates single objects.
pub trait PreparedFilter {
    /// Distance from the prepared query to database object `id`.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] on an out-of-range id or when the
    /// underlying distance computation fails (solver failure); shape
    /// mismatches are ruled out at [`Filter`] construction.
    fn distance(&mut self, id: usize) -> Result<f64, QueryError>;
    /// Number of `distance` calls so far.
    fn evaluations(&self) -> usize;
}

fn object(database: &[Histogram], id: usize) -> Result<&Histogram, QueryError> {
    database.get(id).ok_or(QueryError::UnknownObject(id))
}

// ---------------------------------------------------------------------
// Exact EMD (refinement distance / no-filter baseline)
// ---------------------------------------------------------------------

/// The exact, original-dimensionality EMD. Used as the refinement
/// distance of every plan and as the sequential-scan baseline.
#[derive(Debug, Clone)]
pub struct EmdDistance {
    name: String,
    database: Database,
    warm_start: bool,
}

impl EmdDistance {
    /// Index a database snapshot for exact EMD evaluation. Prepared
    /// evaluators carry a per-query [`EmdContext`], so consecutive
    /// candidates warm-start each other; disable with
    /// [`EmdDistance::with_warm_start`].
    ///
    /// # Errors
    ///
    /// Infallible today (the snapshot is already validated against its
    /// cost matrix); the `Result` keeps the constructor uniform with the
    /// other filters.
    pub fn new(database: &Database) -> Result<Self, QueryError> {
        Ok(EmdDistance {
            name: format!("emd(d={})", database.cost().rows()),
            database: database.clone(),
            warm_start: true,
        })
    }

    /// Enable or disable per-query solver contexts. With `false`, every
    /// evaluation allocates and solves cold — the pre-context behavior,
    /// kept for A/B regression tests and benchmarks.
    #[must_use]
    // lint: allow(unbudgeted): builder flag, performs no solver work
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// The ground-distance matrix.
    pub fn cost(&self) -> &CostMatrix {
        self.database.cost()
    }

    /// The indexed histograms.
    pub fn database(&self) -> &[Histogram] {
        self.database.histograms()
    }
}

impl Filter for EmdDistance {
    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.database.len()
    }

    fn prepare(&self, query: &Histogram) -> Result<Box<dyn PreparedFilter + '_>, QueryError> {
        self.prepare_budgeted(query, &Budget::unlimited())
    }

    fn prepare_budgeted(
        &self,
        query: &Histogram,
        budget: &Budget,
    ) -> Result<Box<dyn PreparedFilter + '_>, QueryError> {
        check_dim(query, self.database.cost().rows())?;
        Ok(Box::new(PreparedEmd {
            query: query.clone(),
            database: self.database.histograms(),
            cost: self.database.cost(),
            budget: budget.clone(),
            context: self.warm_start.then(EmdContext::new),
            evaluations: 0,
        }))
    }
}

struct PreparedEmd<'a> {
    query: Histogram,
    database: &'a [Histogram],
    cost: &'a CostMatrix,
    budget: Budget,
    /// `Some` when warm starts are enabled: one solver context per
    /// prepared query, reused (and warm-started) across candidates.
    context: Option<EmdContext>,
    evaluations: usize,
}

impl PreparedFilter for PreparedEmd<'_> {
    fn distance(&mut self, id: usize) -> Result<f64, QueryError> {
        self.evaluations += 1;
        let y = object(self.database, id)?;
        match &mut self.context {
            Some(ctx) => Ok(emd_in_context(
                &self.query,
                y,
                self.cost,
                &self.budget,
                ctx,
            )?),
            None => Ok(emd_rectangular_budgeted(
                &self.query,
                y,
                self.cost,
                &self.budget,
            )?),
        }
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

// ---------------------------------------------------------------------
// Reduced EMD (the paper's Red-EMD filter)
// ---------------------------------------------------------------------

/// The paper's dimensionality-reduction filter: reduced-vector EMD under
/// the optimal reduced cost matrix. Database vectors are reduced once at
/// construction; the query is reduced once per query.
#[derive(Debug, Clone)]
pub struct ReducedEmdFilter {
    name: String,
    reduced: ReducedEmd,
    reduced_database: Arc<[Histogram]>,
    warm_start: bool,
}

impl ReducedEmdFilter {
    /// Reduce and index a database snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] when a database histogram cannot be reduced by
    /// `reduced` (shape mismatch).
    pub fn new(database: &Database, reduced: ReducedEmd) -> Result<Self, QueryError> {
        let reduced_database = database
            .histograms()
            .iter()
            .map(|h| reduced.reduce_second(h))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ReducedEmdFilter {
            name: format!(
                "red-emd(d'={}/{})",
                reduced.r1().reduced_dim(),
                reduced.r2().reduced_dim()
            ),
            reduced,
            reduced_database: reduced_database.into(),
            warm_start: true,
        })
    }

    /// Enable or disable per-query solver contexts. With `false`, every
    /// evaluation allocates and solves cold — the pre-context behavior,
    /// kept for A/B regression tests and benchmarks.
    #[must_use]
    // lint: allow(unbudgeted): builder flag, performs no solver work
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Index a database snapshot from a persisted bundle, reusing the
    /// precomputed reduced arena instead of re-reducing every object.
    /// The stage name is derived from the reduction dimensionalities
    /// exactly as in [`ReducedEmdFilter::new`], so statistics from a
    /// disk-opened plan merge with (and are comparable to) an in-memory
    /// plan's.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::Reduction`] when the bundle's object count
    /// or original dimensionality disagrees with `database`.
    pub fn from_persisted(
        database: &Database,
        bundle: PersistedReduction,
    ) -> Result<Self, QueryError> {
        check_persisted(database, &bundle)?;
        let (_, reduced, reduced_database) = bundle.into_parts();
        Ok(ReducedEmdFilter {
            name: format!(
                "red-emd(d'={}/{})",
                reduced.r1().reduced_dim(),
                reduced.r2().reduced_dim()
            ),
            reduced,
            reduced_database: reduced_database.into(),
            warm_start: true,
        })
    }

    /// The underlying reduced EMD (reductions + reduced cost matrix).
    pub fn reduced(&self) -> &ReducedEmd {
        &self.reduced
    }

    /// The reduced database vectors.
    pub fn reduced_database(&self) -> &[Histogram] {
        &self.reduced_database
    }
}

impl Filter for ReducedEmdFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.reduced_database.len()
    }

    fn prepare(&self, query: &Histogram) -> Result<Box<dyn PreparedFilter + '_>, QueryError> {
        self.prepare_budgeted(query, &Budget::unlimited())
    }

    fn prepare_budgeted(
        &self,
        query: &Histogram,
        budget: &Budget,
    ) -> Result<Box<dyn PreparedFilter + '_>, QueryError> {
        let reduced_query = self.reduced.reduce_first(query)?;
        Ok(Box::new(PreparedReducedEmd {
            reduced_query,
            filter: self,
            budget: budget.clone(),
            context: self.warm_start.then(EmdContext::new),
            evaluations: 0,
        }))
    }
}

struct PreparedReducedEmd<'a> {
    reduced_query: Histogram,
    filter: &'a ReducedEmdFilter,
    budget: Budget,
    /// `Some` when warm starts are enabled: one solver context per
    /// prepared query, reused (and warm-started) across candidates.
    context: Option<EmdContext>,
    evaluations: usize,
}

impl PreparedFilter for PreparedReducedEmd<'_> {
    fn distance(&mut self, id: usize) -> Result<f64, QueryError> {
        self.evaluations += 1;
        let ry = object(&self.filter.reduced_database, id)?;
        match &mut self.context {
            Some(ctx) => Ok(self.filter.reduced.distance_reduced_in_context(
                &self.reduced_query,
                ry,
                &self.budget,
                ctx,
            )?),
            None => Ok(self.filter.reduced.distance_reduced_budgeted(
                &self.reduced_query,
                ry,
                &self.budget,
            )?),
        }
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

// ---------------------------------------------------------------------
// LB_IM on reduced features (the paper's Red-IM filter, Figure 10)
// ---------------------------------------------------------------------

/// LB_IM evaluated on the *reduced* vectors under the *reduced* cost
/// matrix — filter 1 of the paper's chained setup (Figure 10). A lower
/// bound of the reduced EMD, hence transitively of the exact EMD.
#[derive(Debug, Clone)]
pub struct ReducedImFilter {
    name: String,
    bound: LbIm,
    reduced: ReducedEmd,
    reduced_database: Arc<[Histogram]>,
}

impl ReducedImFilter {
    /// Reduce and index a database snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] when a database histogram cannot be reduced by
    /// `reduced` (shape mismatch).
    pub fn new(database: &Database, reduced: ReducedEmd) -> Result<Self, QueryError> {
        let reduced_database = database
            .histograms()
            .iter()
            .map(|h| reduced.reduce_second(h))
            .collect::<Result<Vec<_>, _>>()?;
        let bound = LbIm::new(reduced.reduced_cost().clone());
        Ok(ReducedImFilter {
            name: format!(
                "red-im(d'={}/{})",
                reduced.r1().reduced_dim(),
                reduced.r2().reduced_dim()
            ),
            bound,
            reduced,
            reduced_database: reduced_database.into(),
        })
    }

    /// Index a database snapshot from a persisted bundle, reusing the
    /// precomputed reduced arena. Stage-name and semantics match
    /// [`ReducedImFilter::new`] exactly.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::Reduction`] when the bundle's object count
    /// or original dimensionality disagrees with `database`.
    pub fn from_persisted(
        database: &Database,
        bundle: PersistedReduction,
    ) -> Result<Self, QueryError> {
        check_persisted(database, &bundle)?;
        let (_, reduced, reduced_database) = bundle.into_parts();
        let bound = LbIm::new(reduced.reduced_cost().clone());
        Ok(ReducedImFilter {
            name: format!(
                "red-im(d'={}/{})",
                reduced.r1().reduced_dim(),
                reduced.r2().reduced_dim()
            ),
            bound,
            reduced,
            reduced_database: reduced_database.into(),
        })
    }
}

impl Filter for ReducedImFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.reduced_database.len()
    }

    fn prepare(&self, query: &Histogram) -> Result<Box<dyn PreparedFilter + '_>, QueryError> {
        let reduced_query = self.reduced.reduce_first(query)?;
        Ok(Box::new(PreparedReducedIm {
            reduced_query,
            filter: self,
            evaluations: 0,
        }))
    }
}

struct PreparedReducedIm<'a> {
    reduced_query: Histogram,
    filter: &'a ReducedImFilter,
    evaluations: usize,
}

impl PreparedFilter for PreparedReducedIm<'_> {
    fn distance(&mut self, id: usize) -> Result<f64, QueryError> {
        self.evaluations += 1;
        Ok(self.filter.bound.bound(
            &self.reduced_query,
            object(&self.filter.reduced_database, id)?,
        )?)
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

// ---------------------------------------------------------------------
// Classic full-dimensional filters
// ---------------------------------------------------------------------

/// LB_IM on the original dimensionality (the baseline filter of
/// reference \[1\], used standalone for comparison).
#[derive(Debug, Clone)]
pub struct FullLbImFilter {
    name: String,
    bound: LbIm,
    database: Database,
}

impl FullLbImFilter {
    /// Index a database snapshot under its own cost matrix.
    ///
    /// # Errors
    ///
    /// Infallible today (the snapshot is already validated); the `Result`
    /// keeps the constructor uniform with the other filters.
    pub fn new(database: &Database) -> Result<Self, QueryError> {
        Ok(FullLbImFilter {
            name: format!("lb-im(d={})", database.cost().rows()),
            bound: LbIm::new(database.cost().clone()),
            database: database.clone(),
        })
    }
}

impl Filter for FullLbImFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.database.len()
    }

    fn prepare(&self, query: &Histogram) -> Result<Box<dyn PreparedFilter + '_>, QueryError> {
        check_dim(query, self.bound.cost().rows())?;
        Ok(Box::new(PreparedFullIm {
            query: query.clone(),
            filter: self,
            evaluations: 0,
        }))
    }
}

struct PreparedFullIm<'a> {
    query: Histogram,
    filter: &'a FullLbImFilter,
    evaluations: usize,
}

impl PreparedFilter for PreparedFullIm<'_> {
    fn distance(&mut self, id: usize) -> Result<f64, QueryError> {
        self.evaluations += 1;
        Ok(self
            .filter
            .bound
            .bound(&self.query, object(self.filter.database.histograms(), id)?)?)
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

/// Rubner's centroid bound as a filter: database centroids are
/// precomputed, each evaluation is one `metric` call in feature space.
#[derive(Debug, Clone)]
pub struct CentroidFilter {
    name: String,
    bound: CentroidBound,
    database_centroids: Vec<Vec<f64>>,
    metric: Metric,
}

impl CentroidFilter {
    /// Index a database snapshot given the bin positions inducing the
    /// ground distance.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] when the centroid bound rejects `positions`
    /// or their dimensionality disagrees with the snapshot.
    pub fn new(
        database: &Database,
        positions: Vec<Vec<f64>>,
        metric: Metric,
    ) -> Result<Self, QueryError> {
        let bound = CentroidBound::new(positions, metric)?;
        if !database.is_empty() {
            check_dim_count(database.dim(), bound.dim())?;
        }
        let database_centroids = database
            .histograms()
            .iter()
            .map(|h| bound.centroid(h))
            .collect();
        Ok(CentroidFilter {
            name: format!("centroid(d={})", bound.dim()),
            bound,
            database_centroids,
            metric,
        })
    }
}

impl Filter for CentroidFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.database_centroids.len()
    }

    fn prepare(&self, query: &Histogram) -> Result<Box<dyn PreparedFilter + '_>, QueryError> {
        check_dim(query, self.bound.dim())?;
        Ok(Box::new(PreparedCentroid {
            query_centroid: self.bound.centroid(query),
            filter: self,
            evaluations: 0,
        }))
    }
}

struct PreparedCentroid<'a> {
    query_centroid: Vec<f64>,
    filter: &'a CentroidFilter,
    evaluations: usize,
}

impl PreparedFilter for PreparedCentroid<'_> {
    fn distance(&mut self, id: usize) -> Result<f64, QueryError> {
        self.evaluations += 1;
        let centroid = self
            .filter
            .database_centroids
            .get(id)
            .ok_or(QueryError::UnknownObject(id))?;
        Ok(self.filter.metric.distance(&self.query_centroid, centroid))
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

/// The scaled-L1 bound as a filter — the cheapest possible first stage.
#[derive(Debug, Clone)]
pub struct ScaledL1Filter {
    name: String,
    bound: ScaledL1,
    database: Database,
}

impl ScaledL1Filter {
    /// Index a database snapshot under its own cost matrix.
    ///
    /// # Errors
    ///
    /// Infallible today (the snapshot is already validated); the `Result`
    /// keeps the constructor uniform with the other filters.
    pub fn new(database: &Database) -> Result<Self, QueryError> {
        Ok(ScaledL1Filter {
            name: format!("scaled-l1(d={})", database.cost().rows()),
            bound: ScaledL1::new(database.cost()),
            database: database.clone(),
        })
    }
}

impl Filter for ScaledL1Filter {
    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.database.len()
    }

    fn prepare(&self, query: &Histogram) -> Result<Box<dyn PreparedFilter + '_>, QueryError> {
        Ok(Box::new(PreparedScaledL1 {
            query: query.clone(),
            filter: self,
            evaluations: 0,
        }))
    }
}

struct PreparedScaledL1<'a> {
    query: Histogram,
    filter: &'a ScaledL1Filter,
    evaluations: usize,
}

impl PreparedFilter for PreparedScaledL1<'_> {
    fn distance(&mut self, id: usize) -> Result<f64, QueryError> {
        self.evaluations += 1;
        Ok(self
            .filter
            .bound
            .bound(&self.query, object(self.filter.database.histograms(), id)?)?)
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

/// The anchor (weak-duality) bound as a filter: database projections are
/// precomputed, each evaluation is `O(#anchors)` — the cheapest filter in
/// the toolbox. Requires a metric ground distance (validated at
/// construction). Not comparable to the reduced EMD, so use it standalone
/// in front of the refiner rather than inside a Red-IM/Red-EMD chain.
#[derive(Debug, Clone)]
pub struct AnchorFilter {
    name: String,
    bound: emd_core::lower_bounds::AnchorBound,
    database_projections: Vec<Vec<f64>>,
}

impl AnchorFilter {
    /// Index a database snapshot with `anchors` spread anchor bins.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] when the anchor bound cannot be built (bad
    /// anchor count) or a database projection fails.
    pub fn new(database: &Database, anchors: usize) -> Result<Self, QueryError> {
        let bound =
            emd_core::lower_bounds::AnchorBound::with_spread_anchors(database.cost(), anchors)?;
        let database_projections = database
            .histograms()
            .iter()
            .map(|h| Ok(bound.project(h)?))
            .collect::<Result<Vec<_>, QueryError>>()?;
        Ok(AnchorFilter {
            name: format!("anchor(a={})", bound.num_anchors()),
            bound,
            database_projections,
        })
    }
}

impl Filter for AnchorFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.database_projections.len()
    }

    fn prepare(&self, query: &Histogram) -> Result<Box<dyn PreparedFilter + '_>, QueryError> {
        let query_projection = self.bound.project(query)?;
        Ok(Box::new(PreparedAnchor {
            query_projection,
            filter: self,
            evaluations: 0,
        }))
    }
}

struct PreparedAnchor<'a> {
    query_projection: Vec<f64>,
    filter: &'a AnchorFilter,
    evaluations: usize,
}

impl PreparedFilter for PreparedAnchor<'_> {
    fn distance(&mut self, id: usize) -> Result<f64, QueryError> {
        self.evaluations += 1;
        let projection = self
            .filter
            .database_projections
            .get(id)
            .ok_or(QueryError::UnknownObject(id))?;
        Ok(self
            .filter
            .bound
            .bound_from_projections(&self.query_projection, projection))
    }

    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

fn check_dim(h: &Histogram, expected: usize) -> Result<(), QueryError> {
    check_dim_count(h.dim(), expected)
}

fn check_dim_count(got: usize, expected: usize) -> Result<(), QueryError> {
    if got != expected {
        return Err(QueryError::Core(emd_core::CoreError::DimensionMismatch {
            expected_rows: expected,
            expected_cols: expected,
            got_rows: got,
            got_cols: got,
        }));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_core::{emd, ground};
    use emd_reduction::CombiningReduction;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    fn database() -> Database {
        let db = vec![
            h(&[1.0, 0.0, 0.0, 0.0]),
            h(&[0.0, 1.0, 0.0, 0.0]),
            h(&[0.25, 0.25, 0.25, 0.25]),
            h(&[0.0, 0.0, 0.5, 0.5]),
        ];
        Database::new(db, Arc::new(ground::linear(4).unwrap())).unwrap()
    }

    #[test]
    fn exact_filter_matches_direct_emd() {
        let db = database();
        let filter = EmdDistance::new(&db).unwrap();
        let query = h(&[0.5, 0.5, 0.0, 0.0]);
        let mut prepared = filter.prepare(&query).unwrap();
        for (id, object) in db.histograms().iter().enumerate() {
            let expected = emd(&query, object, db.cost()).unwrap();
            assert!((prepared.distance(id).unwrap() - expected).abs() < 1e-12);
        }
        assert_eq!(prepared.evaluations(), 4);
        assert!(matches!(
            prepared.distance(4).unwrap_err(),
            QueryError::UnknownObject(4)
        ));
    }

    #[test]
    fn all_filters_lower_bound_exact() {
        let db = database();
        let query = h(&[0.4, 0.1, 0.3, 0.2]);
        let reduction = CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap();
        let reduced = ReducedEmd::new(db.cost(), reduction).unwrap();

        let filters: Vec<Box<dyn Filter>> = vec![
            Box::new(ReducedEmdFilter::new(&db, reduced.clone()).unwrap()),
            Box::new(ReducedImFilter::new(&db, reduced).unwrap()),
            Box::new(FullLbImFilter::new(&db).unwrap()),
            Box::new(
                CentroidFilter::new(&db, ground::linear_positions(4), Metric::Manhattan).unwrap(),
            ),
            Box::new(ScaledL1Filter::new(&db).unwrap()),
        ];
        let exact = EmdDistance::new(&db).unwrap();
        let mut exact_prepared = exact.prepare(&query).unwrap();
        for filter in &filters {
            let mut prepared = filter.prepare(&query).unwrap();
            for id in 0..db.len() {
                let bound = prepared.distance(id).unwrap();
                let truth = exact_prepared.distance(id).unwrap();
                assert!(
                    bound <= truth + 1e-9,
                    "{} returned {bound} > exact {truth} for object {id}",
                    filter.name()
                );
            }
        }
    }

    #[test]
    fn red_im_lower_bounds_red_emd() {
        // The Figure 10 chain requires each stage to bound the next.
        let db = database();
        let query = h(&[0.1, 0.2, 0.3, 0.4]);
        let reduction = CombiningReduction::new(vec![0, 1, 1, 0], 2).unwrap();
        let reduced = ReducedEmd::new(db.cost(), reduction).unwrap();
        let red_emd = ReducedEmdFilter::new(&db, reduced.clone()).unwrap();
        let red_im = ReducedImFilter::new(&db, reduced).unwrap();
        let mut p_emd = red_emd.prepare(&query).unwrap();
        let mut p_im = red_im.prepare(&query).unwrap();
        for id in 0..db.len() {
            assert!(p_im.distance(id).unwrap() <= p_emd.distance(id).unwrap() + 1e-9);
        }
    }

    #[test]
    fn snapshot_construction_rejects_dimension_mismatch() {
        let db = database();
        let wrong_cost = Arc::new(ground::linear(3).unwrap());
        assert!(Database::new(db.histograms().to_vec(), wrong_cost).is_err());
    }

    #[test]
    fn prepare_rejects_mismatched_query() {
        let db = database();
        let filter = EmdDistance::new(&db).unwrap();
        assert!(filter.prepare(&h(&[0.5, 0.5])).is_err());
    }

    #[test]
    fn asymmetric_reduction_filter() {
        // Query stays at full dimensionality, database is halved.
        let db = database();
        let r1 = CombiningReduction::identity(4).unwrap();
        let r2 = CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap();
        let reduced = ReducedEmd::with_asymmetric(db.cost(), r1, r2).unwrap();
        let filter = ReducedEmdFilter::new(&db, reduced).unwrap();
        let query = h(&[0.4, 0.1, 0.3, 0.2]);
        let exact = EmdDistance::new(&db).unwrap();
        let mut p = filter.prepare(&query).unwrap();
        let mut e = exact.prepare(&query).unwrap();
        for id in 0..db.len() {
            assert!(p.distance(id).unwrap() <= e.distance(id).unwrap() + 1e-9);
        }
    }
}

#[cfg(test)]
mod anchor_tests {
    use super::*;
    use crate::engine::{Executor, QueryPlan};
    use emd_core::{emd, ground};
    use std::sync::Arc;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    #[test]
    fn anchor_filter_lower_bounds_and_is_complete() {
        let db = Database::new(
            vec![
                h(&[1.0, 0.0, 0.0, 0.0]),
                h(&[0.0, 0.5, 0.5, 0.0]),
                h(&[0.0, 0.0, 0.0, 1.0]),
                h(&[0.25, 0.25, 0.25, 0.25]),
            ],
            Arc::new(ground::linear(4).unwrap()),
        )
        .unwrap();
        let filter = AnchorFilter::new(&db, 2).unwrap();
        let query = h(&[0.6, 0.4, 0.0, 0.0]);
        {
            let mut prepared = filter.prepare(&query).unwrap();
            for (id, object) in db.histograms().iter().enumerate() {
                let exact = emd(&query, object, db.cost()).unwrap();
                assert!(prepared.distance(id).unwrap() <= exact + 1e-9);
            }
        }
        // Standalone anchor -> EMD plan returns brute-force results.
        let executor = Executor::new(
            QueryPlan::new(
                vec![Box::new(filter)],
                Box::new(EmdDistance::new(&db).unwrap()),
            )
            .unwrap(),
        );
        let (got, stats) = executor.knn(&query, 2).unwrap();
        let expected = crate::scan::brute_force_knn(&query, db.histograms(), db.cost(), 2).unwrap();
        assert_eq!(
            got.iter().map(|n| n.id).collect::<Vec<_>>(),
            expected.iter().map(|n| n.id).collect::<Vec<_>>()
        );
        assert!(stats.refinements <= db.len());
    }
}
