//! The optimal multistep k-NN algorithm (Figure 11 of the paper, after
//! Seidl & Kriegel's KNOP) and the corresponding complete range query.
//!
//! Both consume a lower-bounding filter [`Ranking`] and refine candidates
//! with the exact distance. KNOP is *optimal* in the number of
//! refinements: it refines exactly the objects whose filter distance does
//! not exceed the k-th exact nearest-neighbor distance — no multistep
//! algorithm using the same filter can refine fewer (see \[18\]).
//!
//! This module is the **only** implementation of the refinement loop in
//! the workspace; every entry point — [`Pipeline`](crate::Pipeline),
//! [`DynamicIndex`](crate::DynamicIndex), the brute-force oracles — runs
//! it through the [`Executor`](crate::Executor).
//!
//! The loop itself holds no solver state: consecutive refinements of the
//! same query warm-start each other because the *prepared refiner* (and
//! each solver-backed filter stage) carries a per-query `EmdContext`
//! that reuses the transport workspace and the previous candidate's
//! optimal basis across `distance` calls.

use crate::error::QueryError;
use crate::filters::PreparedFilter;
use crate::outcome::{sort_candidates, Candidate, DegradedResult, QueryOutcome};
use crate::ranking::Ranking;
use crate::Neighbor;
use emd_core::{Budget, BudgetReason};

/// k-NN by filter ranking + refinement (Figure 11).
///
/// Returns the exact k nearest neighbors in ascending distance order and
/// the number of refinements performed. Completeness requires `ranking`'s
/// distances to lower-bound `refiner`'s.
///
/// # Errors
///
/// Returns [`QueryError::ZeroK`] for `k = 0` and propagates ranking or
/// refiner failures.
// lint: allow(unbudgeted): inner kernel; the executor meters it via Budget probes.
pub fn knn(
    ranking: &mut dyn Ranking,
    refiner: &mut dyn PreparedFilter,
    k: usize,
) -> Result<(Vec<Neighbor>, usize), QueryError> {
    if k == 0 {
        return Err(QueryError::ZeroK);
    }
    let mut neighbors: Vec<Neighbor> = Vec::with_capacity(k + 1);
    let mut refinements = 0usize;

    // Phase 1: refine k initial candidates from the ranking.
    while neighbors.len() < k {
        let Some((id, filter_distance)) = ranking.next()? else {
            // Fewer than k objects in the database.
            neighbors.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
            return Ok((neighbors, refinements));
        };
        let distance = refiner.distance(id)?;
        refinements += 1;
        emd_core::certify::debug_check_lower_bound("knn filter ranking", filter_distance, distance);
        neighbors.push(Neighbor { id, distance });
    }
    neighbors.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));

    // Phase 2: keep pulling while the filter distance can still beat the
    // current k-th exact distance.
    while let Some((id, filter_distance)) = ranking.next()? {
        // bounds: phase 1 established neighbors.len() == k >= 1
        let kth = neighbors[k - 1].distance;
        if filter_distance > kth {
            // Lower-bounding filter: every remaining object's exact
            // distance is >= its filter distance > kth. Done.
            break;
        }
        let distance = refiner.distance(id)?;
        refinements += 1;
        emd_core::certify::debug_check_lower_bound("knn filter ranking", filter_distance, distance);
        if distance < kth {
            let position = neighbors.partition_point(|n| n.distance <= distance);
            neighbors.insert(position, Neighbor { id, distance });
            neighbors.pop();
        }
    }
    Ok((neighbors, refinements))
}

/// Complete range query: all objects with exact distance `<= epsilon`.
///
/// Pulls candidates while their filter distance is within `epsilon`
/// (lower-bounding ⇒ nothing beyond can qualify), refines each, and keeps
/// the true hits, sorted ascending.
///
/// # Errors
///
/// Propagates ranking or refiner failures.
// lint: allow(unbudgeted): inner kernel; the executor meters it via Budget probes.
pub fn range(
    ranking: &mut dyn Ranking,
    refiner: &mut dyn PreparedFilter,
    epsilon: f64,
) -> Result<(Vec<Neighbor>, usize), QueryError> {
    let mut hits = Vec::new();
    let mut refinements = 0usize;
    while let Some((id, filter_distance)) = ranking.next()? {
        if filter_distance > epsilon {
            break;
        }
        let distance = refiner.distance(id)?;
        refinements += 1;
        emd_core::certify::debug_check_lower_bound(
            "range filter ranking",
            filter_distance,
            distance,
        );
        if distance <= epsilon {
            hits.push(Neighbor { id, distance });
        }
    }
    hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
    Ok((hits, refinements))
}

/// Builds the degraded candidate ranking at the moment a budget fired:
/// refined neighbors keep their exact distance (`exact: true`), the
/// candidate whose refinement was interrupted and every already-computed
/// filter bound still inside the ranking join with `exact: false`. Sorted
/// ascending by bound, ties by id.
fn degraded_candidates(
    refined: &[Neighbor],
    pending: Option<(usize, f64)>,
    ranking: &mut dyn Ranking,
) -> Vec<Candidate> {
    let mut candidates: Vec<Candidate> = refined
        .iter()
        .map(|n| Candidate {
            id: n.id,
            bound: n.distance,
            exact: true,
        })
        .collect();
    if let Some((id, bound)) = pending {
        candidates.push(Candidate {
            id,
            bound,
            exact: false,
        });
    }
    candidates.extend(
        ranking
            .drain_computed()
            .into_iter()
            .map(|(id, bound)| Candidate {
                id,
                bound,
                exact: false,
            }),
    );
    sort_candidates(&mut candidates);
    candidates
}

/// [`knn`] under an execution [`Budget`].
///
/// Identical to [`knn`] until the budget fires (checked between candidates
/// here, and inside every solver call via the budgeted filters); then it
/// returns [`QueryOutcome::Degraded`] carrying the current candidate
/// ranking — refined results with exact distances, unrefined candidates
/// with their tightest computed lower bound — truncated to the best `k`.
/// With `Budget::unlimited()` the result is bit-identical to [`knn`].
///
/// # Errors
///
/// Returns [`QueryError::ZeroK`] for `k = 0` and propagates non-budget
/// ranking or refiner failures; budget exhaustion is *not* an error but a
/// degraded outcome.
pub fn knn_budgeted(
    ranking: &mut dyn Ranking,
    refiner: &mut dyn PreparedFilter,
    k: usize,
    budget: &Budget,
) -> Result<(QueryOutcome, usize), QueryError> {
    if k == 0 {
        return Err(QueryError::ZeroK);
    }
    let degrade = |reason: BudgetReason,
                   mut refined: Vec<Neighbor>,
                   pending: Option<(usize, f64)>,
                   ranking: &mut dyn Ranking| {
        refined.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        let mut candidates = degraded_candidates(&refined, pending, ranking);
        candidates.truncate(k);
        QueryOutcome::Degraded(DegradedResult { candidates, reason })
    };
    let mut neighbors: Vec<Neighbor> = Vec::with_capacity(k + 1);
    let mut refinements = 0usize;

    // Phase 1: refine k initial candidates from the ranking.
    while neighbors.len() < k {
        if let Err(reason) = budget.check() {
            return Ok((degrade(reason, neighbors, None, ranking), refinements));
        }
        let pulled = match ranking.next() {
            Ok(pulled) => pulled,
            Err(QueryError::BudgetExhausted(reason)) => {
                return Ok((degrade(reason, neighbors, None, ranking), refinements));
            }
            Err(e) => return Err(e),
        };
        let Some((id, filter_distance)) = pulled else {
            neighbors.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
            return Ok((QueryOutcome::Exact(neighbors), refinements));
        };
        let distance = match refiner.distance(id) {
            Ok(distance) => distance,
            Err(QueryError::BudgetExhausted(reason)) => {
                let pending = Some((id, filter_distance));
                return Ok((degrade(reason, neighbors, pending, ranking), refinements));
            }
            Err(e) => return Err(e),
        };
        refinements += 1;
        emd_core::certify::debug_check_lower_bound("knn filter ranking", filter_distance, distance);
        neighbors.push(Neighbor { id, distance });
    }
    neighbors.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));

    // Phase 2: keep pulling while the filter distance can still beat the
    // current k-th exact distance.
    loop {
        if let Err(reason) = budget.check() {
            return Ok((degrade(reason, neighbors, None, ranking), refinements));
        }
        let pulled = match ranking.next() {
            Ok(pulled) => pulled,
            Err(QueryError::BudgetExhausted(reason)) => {
                return Ok((degrade(reason, neighbors, None, ranking), refinements));
            }
            Err(e) => return Err(e),
        };
        let Some((id, filter_distance)) = pulled else {
            break;
        };
        // bounds: phase 1 established neighbors.len() == k >= 1
        let kth = neighbors[k - 1].distance;
        if filter_distance > kth {
            break;
        }
        let distance = match refiner.distance(id) {
            Ok(distance) => distance,
            Err(QueryError::BudgetExhausted(reason)) => {
                let pending = Some((id, filter_distance));
                return Ok((degrade(reason, neighbors, pending, ranking), refinements));
            }
            Err(e) => return Err(e),
        };
        refinements += 1;
        emd_core::certify::debug_check_lower_bound("knn filter ranking", filter_distance, distance);
        if distance < kth {
            let position = neighbors.partition_point(|n| n.distance <= distance);
            neighbors.insert(position, Neighbor { id, distance });
            neighbors.pop();
        }
    }
    Ok((QueryOutcome::Exact(neighbors), refinements))
}

/// [`range`] under an execution [`Budget`]; see [`knn_budgeted`] for the
/// degradation model. Degraded candidates are limited to those whose bound
/// is within `epsilon` (no other object can be a hit).
///
/// # Errors
///
/// Propagates non-budget ranking or refiner failures; budget exhaustion is
/// a degraded outcome, not an error.
pub fn range_budgeted(
    ranking: &mut dyn Ranking,
    refiner: &mut dyn PreparedFilter,
    epsilon: f64,
    budget: &Budget,
) -> Result<(QueryOutcome, usize), QueryError> {
    let degrade = |reason: BudgetReason,
                   mut hits: Vec<Neighbor>,
                   pending: Option<(usize, f64)>,
                   ranking: &mut dyn Ranking| {
        hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        let mut candidates = degraded_candidates(&hits, pending, ranking);
        candidates.retain(|c| c.bound <= epsilon);
        QueryOutcome::Degraded(DegradedResult { candidates, reason })
    };
    let mut hits: Vec<Neighbor> = Vec::new();
    let mut refinements = 0usize;
    loop {
        if let Err(reason) = budget.check() {
            return Ok((degrade(reason, hits, None, ranking), refinements));
        }
        let pulled = match ranking.next() {
            Ok(pulled) => pulled,
            Err(QueryError::BudgetExhausted(reason)) => {
                return Ok((degrade(reason, hits, None, ranking), refinements));
            }
            Err(e) => return Err(e),
        };
        let Some((id, filter_distance)) = pulled else {
            break;
        };
        if filter_distance > epsilon {
            break;
        }
        let distance = match refiner.distance(id) {
            Ok(distance) => distance,
            Err(QueryError::BudgetExhausted(reason)) => {
                let pending = Some((id, filter_distance));
                return Ok((degrade(reason, hits, pending, ranking), refinements));
            }
            Err(e) => return Err(e),
        };
        refinements += 1;
        emd_core::certify::debug_check_lower_bound(
            "range filter ranking",
            filter_distance,
            distance,
        );
        if distance <= epsilon {
            hits.push(Neighbor { id, distance });
        }
    }
    hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
    Ok((QueryOutcome::Exact(hits), refinements))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::Filter;
    use crate::ranking::EagerRanking;
    use emd_core::Histogram;

    struct TableFilter {
        table: Vec<f64>,
    }

    struct PreparedTable<'a> {
        table: &'a [f64],
        evaluations: usize,
    }

    impl Filter for TableFilter {
        fn name(&self) -> &str {
            "table"
        }
        fn len(&self) -> usize {
            self.table.len()
        }
        fn prepare(&self, _query: &Histogram) -> Result<Box<dyn PreparedFilter + '_>, QueryError> {
            Ok(Box::new(PreparedTable {
                table: &self.table,
                evaluations: 0,
            }))
        }
    }

    impl PreparedFilter for PreparedTable<'_> {
        fn distance(&mut self, id: usize) -> Result<f64, QueryError> {
            self.evaluations += 1;
            self.table
                .get(id)
                .copied()
                .ok_or(QueryError::UnknownObject(id))
        }
        fn evaluations(&self) -> usize {
            self.evaluations
        }
    }

    fn query() -> Histogram {
        Histogram::new(vec![1.0]).unwrap()
    }

    /// exact[i] >= filter[i] everywhere: a valid lower-bounding filter.
    fn setup() -> (TableFilter, TableFilter) {
        let filter = TableFilter {
            table: vec![2.0, 0.5, 3.0, 0.0, 1.0, 4.5],
        };
        let exact = TableFilter {
            table: vec![2.5, 1.5, 3.0, 0.2, 2.8, 5.0],
        };
        (filter, exact)
    }

    #[test]
    fn knn_returns_true_neighbors() {
        let (filter, exact) = setup();
        let mut filter_prepared = filter.prepare(&query()).unwrap();
        let mut exact_prepared = exact.prepare(&query()).unwrap();
        let mut ranking = EagerRanking::new(filter_prepared.as_mut(), 6).unwrap();
        let (neighbors, refinements) = knn(&mut ranking, exact_prepared.as_mut(), 3).unwrap();
        let ids: Vec<_> = neighbors.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 1, 0], "true 3-NN by exact distance");
        // Optimality: object 5 (filter 4.5 > kth exact 2.5) is never
        // refined; object 2 and 4 must be (filter <= 2.5).
        assert!(refinements <= 5);
        assert!(refinements >= 3);
    }

    #[test]
    fn knn_handles_small_database() {
        let (filter, exact) = setup();
        let mut filter_prepared = filter.prepare(&query()).unwrap();
        let mut exact_prepared = exact.prepare(&query()).unwrap();
        let mut ranking = EagerRanking::new(filter_prepared.as_mut(), 2).unwrap();
        let (neighbors, _) = knn(&mut ranking, exact_prepared.as_mut(), 5).unwrap();
        assert_eq!(neighbors.len(), 2);
        assert!(neighbors[0].distance <= neighbors[1].distance);
    }

    #[test]
    fn knn_distances_ascending() {
        let (filter, exact) = setup();
        let mut filter_prepared = filter.prepare(&query()).unwrap();
        let mut exact_prepared = exact.prepare(&query()).unwrap();
        let mut ranking = EagerRanking::new(filter_prepared.as_mut(), 6).unwrap();
        let (neighbors, _) = knn(&mut ranking, exact_prepared.as_mut(), 6).unwrap();
        for pair in neighbors.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
        assert_eq!(neighbors.len(), 6);
    }

    #[test]
    fn range_returns_exactly_the_hits() {
        let (filter, exact) = setup();
        let mut filter_prepared = filter.prepare(&query()).unwrap();
        let mut exact_prepared = exact.prepare(&query()).unwrap();
        let mut ranking = EagerRanking::new(filter_prepared.as_mut(), 6).unwrap();
        let (hits, refinements) = range(&mut ranking, exact_prepared.as_mut(), 2.5).unwrap();
        let ids: Vec<_> = hits.iter().map(|n| n.id).collect();
        // exact <= 2.5: objects 3 (0.2), 1 (1.5), 0 (2.5). Object 4 has
        // filter 1.0 <= 2.5 but exact 2.8: refined yet rejected.
        assert_eq!(ids, vec![3, 1, 0]);
        assert_eq!(refinements, 4);
    }

    #[test]
    fn range_with_zero_epsilon() {
        let (filter, exact) = setup();
        let mut filter_prepared = filter.prepare(&query()).unwrap();
        let mut exact_prepared = exact.prepare(&query()).unwrap();
        let mut ranking = EagerRanking::new(filter_prepared.as_mut(), 6).unwrap();
        let (hits, _) = range(&mut ranking, exact_prepared.as_mut(), 0.0).unwrap();
        assert!(hits.is_empty(), "no exact distance is 0.0");
    }

    #[test]
    fn knn_rejects_zero_k() {
        let (filter, exact) = setup();
        let mut filter_prepared = filter.prepare(&query()).unwrap();
        let mut exact_prepared = exact.prepare(&query()).unwrap();
        let mut ranking = EagerRanking::new(filter_prepared.as_mut(), 6).unwrap();
        assert!(matches!(
            knn(&mut ranking, exact_prepared.as_mut(), 0),
            Err(QueryError::ZeroK)
        ));
    }

    /// A refiner that reports budget exhaustion starting at the n-th call.
    struct ExhaustingTable<'a> {
        table: &'a [f64],
        evaluations: usize,
        fail_from: usize,
    }

    impl PreparedFilter for ExhaustingTable<'_> {
        fn distance(&mut self, id: usize) -> Result<f64, QueryError> {
            self.evaluations += 1;
            if self.evaluations >= self.fail_from {
                return Err(QueryError::BudgetExhausted(BudgetReason::PivotCap));
            }
            self.table
                .get(id)
                .copied()
                .ok_or(QueryError::UnknownObject(id))
        }
        fn evaluations(&self) -> usize {
            self.evaluations
        }
    }

    #[test]
    fn budgeted_knn_with_unlimited_budget_matches_knn() {
        let (filter, exact) = setup();
        let mut fp1 = filter.prepare(&query()).unwrap();
        let mut ep1 = exact.prepare(&query()).unwrap();
        let mut ranking1 = EagerRanking::new(fp1.as_mut(), 6).unwrap();
        let (plain, plain_ref) = knn(&mut ranking1, ep1.as_mut(), 3).unwrap();

        let mut fp2 = filter.prepare(&query()).unwrap();
        let mut ep2 = exact.prepare(&query()).unwrap();
        let mut ranking2 = EagerRanking::new(fp2.as_mut(), 6).unwrap();
        let (outcome, budgeted_ref) =
            knn_budgeted(&mut ranking2, ep2.as_mut(), 3, &Budget::unlimited()).unwrap();
        assert_eq!(outcome.exact(), Some(plain.as_slice()));
        assert_eq!(plain_ref, budgeted_ref);
    }

    #[test]
    fn cancelled_budget_degrades_before_any_refinement() {
        let (filter, exact) = setup();
        let mut fp = filter.prepare(&query()).unwrap();
        let mut ep = exact.prepare(&query()).unwrap();
        let mut ranking = EagerRanking::new(fp.as_mut(), 6).unwrap();
        let token = emd_core::CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel(token);
        let (outcome, refinements) = knn_budgeted(&mut ranking, ep.as_mut(), 3, &budget).unwrap();
        assert_eq!(refinements, 0);
        let degraded = outcome.degraded().expect("must degrade");
        assert_eq!(degraded.reason, BudgetReason::Cancelled);
        // Best 3 filter bounds: object 3 (0.0), 1 (0.5), 4 (1.0).
        let ids: Vec<_> = degraded.candidates.iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![3, 1, 4]);
        assert!(degraded.candidates.iter().all(|c| !c.exact));
    }

    #[test]
    fn mid_refinement_exhaustion_keeps_exact_prefix() {
        let (filter, exact) = setup();
        let mut fp = filter.prepare(&query()).unwrap();
        let mut ranking = EagerRanking::new(fp.as_mut(), 6).unwrap();
        // First two refinements succeed, the third reports exhaustion.
        let mut refiner = ExhaustingTable {
            table: &exact.table,
            evaluations: 0,
            fail_from: 3,
        };
        let (outcome, refinements) =
            knn_budgeted(&mut ranking, &mut refiner, 4, &Budget::unlimited()).unwrap();
        assert_eq!(refinements, 2);
        let degraded = outcome.degraded().expect("must degrade");
        assert_eq!(degraded.reason, BudgetReason::PivotCap);
        assert_eq!(degraded.candidates.len(), 4);
        // Refined candidates (objects 3 and 1, exact 0.2 and 1.5) carry
        // exact distances; the rest are filter bounds.
        for candidate in &degraded.candidates {
            match candidate.id {
                3 => assert!(candidate.exact && (candidate.bound - 0.2).abs() < 1e-12),
                1 => assert!(candidate.exact && (candidate.bound - 1.5).abs() < 1e-12),
                _ => assert!(!candidate.exact),
            }
        }
        // Ordered ascending by bound.
        for pair in degraded.candidates.windows(2) {
            assert!(pair[0].bound <= pair[1].bound);
        }
    }

    #[test]
    fn budgeted_range_degrades_within_epsilon() {
        let (filter, exact) = setup();
        let mut fp = filter.prepare(&query()).unwrap();
        let mut ranking = EagerRanking::new(fp.as_mut(), 6).unwrap();
        let mut refiner = ExhaustingTable {
            table: &exact.table,
            evaluations: 0,
            fail_from: 2,
        };
        let (outcome, refinements) =
            range_budgeted(&mut ranking, &mut refiner, 2.5, &Budget::unlimited()).unwrap();
        assert_eq!(refinements, 1);
        let degraded = outcome.degraded().expect("must degrade");
        assert!(degraded.candidates.iter().all(|c| c.bound <= 2.5));
        assert!(degraded.candidates.iter().any(|c| c.exact));
    }

    #[test]
    fn budgeted_range_with_unlimited_budget_matches_range() {
        let (filter, exact) = setup();
        let mut fp1 = filter.prepare(&query()).unwrap();
        let mut ep1 = exact.prepare(&query()).unwrap();
        let mut ranking1 = EagerRanking::new(fp1.as_mut(), 6).unwrap();
        let (plain, plain_ref) = range(&mut ranking1, ep1.as_mut(), 2.5).unwrap();

        let mut fp2 = filter.prepare(&query()).unwrap();
        let mut ep2 = exact.prepare(&query()).unwrap();
        let mut ranking2 = EagerRanking::new(fp2.as_mut(), 6).unwrap();
        let (outcome, budgeted_ref) =
            range_budgeted(&mut ranking2, ep2.as_mut(), 2.5, &Budget::unlimited()).unwrap();
        assert_eq!(outcome.exact(), Some(plain.as_slice()));
        assert_eq!(plain_ref, budgeted_ref);
    }
}
