#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # emd-query
//!
//! Multistep filter-and-refine query processing for EMD similarity search
//! (Section 4 of the paper).
//!
//! * [`Filter`] / [`PreparedFilter`] — lower-bounding filter distances
//!   over an indexed database; implementations cover the paper's reduced
//!   EMD (`Red-EMD`), LB_IM on reduced features (`Red-IM`), the classic
//!   full-dimensional filters, and the exact EMD itself (as the
//!   refinement distance).
//! * [`ranking`] — lazy ascending-distance rankings, including the
//!   ranking-over-ranking chaining of Figure 12.
//! * [`knop`] — the optimal multistep k-NN algorithm (Figure 11, after
//!   Seidl & Kriegel) and the corresponding complete range query.
//! * [`pipeline`] — end-to-end query pipelines (Figure 10:
//!   `Red-IM -> Red-EMD -> exact EMD`) with per-stage statistics.
//! * [`scan`] — the sequential-scan baseline.

pub mod dynamic;
mod error;
pub mod filters;
pub mod knop;
pub mod pipeline;
pub mod ranking;
pub mod scan;
mod stats;
pub mod vptree;

pub use dynamic::DynamicIndex;
pub use error::QueryError;
pub use filters::{
    AnchorFilter, CentroidFilter, EmdDistance, Filter, FullLbImFilter, PreparedFilter,
    ReducedEmdFilter, ReducedImFilter, ScaledL1Filter,
};
pub use pipeline::Pipeline;
pub use stats::QueryStats;
pub use vptree::VpTree;

/// A retrieval result: database object id plus its exact distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the object in the database.
    pub id: usize,
    /// Exact (refined) distance to the query.
    pub distance: f64,
}
