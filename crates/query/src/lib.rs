#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # emd-query
//!
//! Multistep filter-and-refine query processing for EMD similarity search
//! (Section 4 of the paper), unified behind one query engine.
//!
//! ## Layers
//!
//! * [`engine`] — the execution core: [`Database`] (a shared immutable
//!   snapshot holding every histogram once, in a contiguous arena),
//!   [`QueryPlan`] (the declarative filter chain
//!   `Red-IM -> Red-EMD -> ... -> EMD` with per-stage cost estimates
//!   seeded from [`QueryStats`] history), and [`Executor`] (the single
//!   owner of query execution, including parallel
//!   [`run_batch`](Executor::run_batch)).
//! * [`Filter`] / [`PreparedFilter`] — lower-bounding filter distances
//!   over a database snapshot; implementations cover the paper's reduced
//!   EMD (`Red-EMD`), LB_IM on reduced features (`Red-IM`), the classic
//!   full-dimensional filters, and the exact EMD itself (as the
//!   refinement distance).
//! * [`ranking`] — lazy ascending-distance rankings, including the
//!   ranking-over-ranking chaining of Figure 12.
//! * [`knop`] — the optimal multistep k-NN algorithm (Figure 11, after
//!   Seidl & Kriegel) and the corresponding complete range query; the
//!   only refinement loop in the workspace.
//! * [`engine::source`] — the [`CandidateSource`] abstraction: pluggable
//!   stage-1 candidate generators (full scan, VP-tree, clustered index)
//!   that stream candidates in ascending lower-bound order into the same
//!   KNOP loop.
//! * [`cluster`] — [`ClusteredIndex`], a pivot-based cluster index over
//!   the reduced space with triangle-inequality pruning; the sublinear
//!   stage-1 candidate generator.
//! * [`pipeline`] — the [`Pipeline`] façade (Figure 10 configurations)
//!   over plan + executor.
//! * [`dynamic`] — a mutable index with copy-on-write snapshots that
//!   execute through the same engine.
//! * [`scan`] — brute-force oracles, implemented as zero-stage plans.
//!
//! ## Observability
//!
//! The [`Executor`] is the integration point for the `emd-obs` metrics
//! layer: under an active recording scope every query is wrapped in a
//! `query.execute` span with nested spans per stage preparation
//! (`query.stage.<name>.prepare`) and around the KNOP loop
//! (`query.knop`), and the per-stage evaluation counts that feed
//! [`QueryStats`] are mirrored into registry counters
//! (`query.stage.<name>.evaluations`, `query.refinements`,
//! `query.results`). [`Executor::run_batch`] installs one scope per
//! worker thread and absorbs the per-thread registries in chunk order, so
//! merged counter totals are identical to a sequential run at any thread
//! count. Recording never changes answers — results are bit-identical
//! with metrics on and off (property-tested in
//! `tests/metrics_observability.rs`).

pub mod cluster;
pub mod durable;
pub mod dynamic;
pub mod engine;
mod error;
pub mod filters;
pub mod knop;
pub mod outcome;
pub mod pipeline;
pub mod ranking;
pub mod scan;
mod stats;
pub mod vptree;

pub use cluster::ClusteredIndex;
pub use durable::{CompactReport, DurableError, DurableIndex, DurableSnapshot, OpenReport};
pub use dynamic::DynamicIndex;
pub use engine::{
    CandidateSource, CandidateStream, Database, Executor, FilterScanSource, OpenedIndex, Query,
    QueryMode, QueryPlan, StageEstimate,
};
pub use error::QueryError;
pub use outcome::{Candidate, DegradedResult, QueryOutcome};
// Budget types re-exported so downstream users can build budgets without
// depending on emd-transport directly.
pub use emd_core::{Budget, BudgetReason, CancelToken};
// Clustering geometry codec re-exported so index builders can persist a
// ClusteredIndex without depending on emd-store directly.
pub use emd_store::StoredClustering;
pub use filters::{
    AnchorFilter, CentroidFilter, EmdDistance, Filter, FullLbImFilter, PreparedFilter,
    ReducedEmdFilter, ReducedImFilter, ScaledL1Filter,
};
pub use pipeline::Pipeline;
pub use stats::QueryStats;
pub use vptree::{VpTree, VpTreeSource};

/// A retrieval result: database object id plus its exact distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the object in the database.
    pub id: usize,
    /// Exact (refined) distance to the query.
    pub distance: f64,
}
