//! Query outcomes under execution budgets: exact answers or principled
//! degraded rankings.
//!
//! When a budget (deadline, pivot cap, cancellation) fires mid-query, the
//! engine does not panic and does not return a silently wrong "exact"
//! answer. It returns [`QueryOutcome::Degraded`]: the current candidate
//! ranking ordered by the *tightest lower bound computed so far*. Refined
//! candidates carry their exact distance (`exact: true`); unrefined ones
//! carry a filter lower bound (`exact: false`). By the completeness of the
//! paper's filters, every bound is `<=` the candidate's exact EMD, so the
//! degraded ranking is a principled approximation in exactly the sense the
//! reduced-EMD filters are.

use crate::Neighbor;
use emd_core::BudgetReason;

/// One entry of a degraded candidate ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Database object id.
    pub id: usize,
    /// The tightest distance information available when the budget fired:
    /// the exact EMD if the candidate was refined, otherwise a filter
    /// lower bound of it.
    pub bound: f64,
    /// Whether `bound` is the exact distance.
    pub exact: bool,
}

/// A degraded answer: the best-effort candidate ranking at the moment the
/// budget fired, sorted ascending by [`Candidate::bound`] (ties by id).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedResult {
    /// Candidate ranking ordered by tightest known bound.
    pub candidates: Vec<Candidate>,
    /// Which budget limit stopped the query.
    pub reason: BudgetReason,
}

/// The outcome of a budgeted query: exact neighbors, or a degraded
/// ranking if the budget fired first.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// The budget never fired; results are exact and identical to the
    /// unbudgeted execution.
    Exact(Vec<Neighbor>),
    /// The budget fired; see [`DegradedResult`].
    Degraded(DegradedResult),
}

impl QueryOutcome {
    /// True for [`QueryOutcome::Degraded`].
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        matches!(self, QueryOutcome::Degraded(_))
    }

    /// The exact neighbors, or `None` if degraded.
    #[must_use]
    pub fn exact(&self) -> Option<&[Neighbor]> {
        match self {
            QueryOutcome::Exact(neighbors) => Some(neighbors),
            QueryOutcome::Degraded(_) => None,
        }
    }

    /// The degraded result, or `None` if exact.
    #[must_use]
    pub fn degraded(&self) -> Option<&DegradedResult> {
        match self {
            QueryOutcome::Exact(_) => None,
            QueryOutcome::Degraded(result) => Some(result),
        }
    }
}

/// Sorts candidates ascending by bound (ties by id) — the canonical order
/// of every degraded ranking.
pub(crate) fn sort_candidates(candidates: &mut [Candidate]) {
    candidates.sort_by(|a, b| a.bound.total_cmp(&b.bound).then(a.id.cmp(&b.id)));
}
