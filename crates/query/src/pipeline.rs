//! End-to-end multistep query pipelines (Figure 10 of the paper).
//!
//! A [`Pipeline`] chains any number of lower-bounding filter stages —
//! ordered loosest/cheapest to tightest/most expensive, each stage
//! required to lower-bound the next — in front of the exact EMD
//! refinement. The paper's flagship configuration is
//! `Red-IM -> Red-EMD -> EMD`; a pipeline with zero stages degrades to the
//! sequential scan.

use crate::error::QueryError;
use crate::filters::{EmdDistance, Filter, PreparedFilter};
use crate::knop;
use crate::ranking::{ChainedRanking, EagerRanking, Ranking};
use crate::stats::QueryStats;
use crate::Neighbor;
use emd_core::Histogram;

/// A filter chain plus the exact refinement distance.
pub struct Pipeline {
    stages: Vec<Box<dyn Filter>>,
    refiner: EmdDistance,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("stages", &self.stage_names())
            .field("refiner", &self.refiner.name())
            .finish()
    }
}

/// Query mode dispatched by [`Pipeline::run`].
#[derive(Debug, Clone, Copy)]
enum Mode {
    Knn(usize),
    Range(f64),
}

impl Pipeline {
    /// Assemble a pipeline. `stages` are consumed in order: `stages[0]`
    /// produces the base ranking, later stages re-rank lazily. Every
    /// stage must index the same database as `refiner` and lower-bound
    /// the next stage (unchecked — establishing the bound chain is the
    /// caller's modelling decision, cf. Section 4).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] when `stages` is empty or a stage indexes a
    /// database of a different size than `refiner`.
    pub fn new(stages: Vec<Box<dyn Filter>>, refiner: EmdDistance) -> Result<Self, QueryError> {
        if refiner.is_empty() {
            return Err(QueryError::EmptyDatabase);
        }
        for stage in &stages {
            if stage.len() != refiner.len() {
                return Err(QueryError::Reduction(format!(
                    "stage {} indexes {} objects, refiner {}",
                    stage.name(),
                    stage.len(),
                    refiner.len()
                )));
            }
        }
        Ok(Pipeline { stages, refiner })
    }

    /// A pipeline without filters: pure sequential scan baseline.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; the `Result` keeps the constructor
    /// signature uniform with [`Pipeline::new`].
    pub fn sequential(refiner: EmdDistance) -> Result<Self, QueryError> {
        Self::new(Vec::new(), refiner)
    }

    /// Names of the filter stages, in chain order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Number of database objects.
    pub fn len(&self) -> usize {
        self.refiner.len()
    }

    /// Whether the database is empty (never true for a constructed
    /// pipeline).
    pub fn is_empty(&self) -> bool {
        self.refiner.is_empty()
    }

    /// Exact k-nearest-neighbor query with per-stage statistics.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] on query shape mismatch or when a filter or the
    /// exact refiner fails mid-query.
    pub fn knn(
        &self,
        query: &Histogram,
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        if k == 0 {
            return Err(QueryError::ZeroK);
        }
        self.run(query, Mode::Knn(k))
    }

    /// Exact range query with per-stage statistics.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] on query shape mismatch, a negative `epsilon`, or
    /// a filter/refiner failure mid-query.
    pub fn range(
        &self,
        query: &Histogram,
        epsilon: f64,
    ) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        self.run(query, Mode::Range(epsilon))
    }

    fn run(
        &self,
        query: &Histogram,
        mode: Mode,
    ) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        let mut refiner = self.refiner.prepare(query)?;

        // Sequential scan: refine every object once and read the answer
        // off the exact ranking.
        if self.stages.is_empty() {
            let mut ranking = EagerRanking::new(refiner.as_mut(), self.refiner.len());
            let mut neighbors = Vec::new();
            while let Some((id, distance)) = ranking.next() {
                match mode {
                    Mode::Knn(k) if neighbors.len() >= k => break,
                    Mode::Range(epsilon) if distance > epsilon => break,
                    _ => neighbors.push(Neighbor { id, distance }),
                }
            }
            let stats = QueryStats {
                filter_evaluations: Vec::new(),
                refinements: refiner.evaluations(),
                results: neighbors.len(),
            };
            return Ok((neighbors, stats));
        }

        let mut prepared: Vec<Box<dyn PreparedFilter + '_>> = self
            .stages
            .iter()
            .map(|stage| stage.prepare(query))
            .collect::<Result<_, _>>()?;

        let (neighbors, refinements) = {
            let mut stage_iter = prepared.iter_mut();
            #[allow(clippy::expect_used)]
            // lint: allow(panic): `Pipeline::new` rejects empty stage lists
            let first = stage_iter.next().expect("stages checked non-empty");
            let mut ranking: Box<dyn Ranking + '_> =
                Box::new(EagerRanking::new(first.as_mut(), self.refiner.len()));
            for stage in stage_iter {
                ranking = Box::new(ChainedRanking::new(ranking, stage.as_mut()));
            }
            match mode {
                Mode::Knn(k) => knop::knn(ranking.as_mut(), refiner.as_mut(), k),
                Mode::Range(epsilon) => knop::range(ranking.as_mut(), refiner.as_mut(), epsilon),
            }
        };

        let stats = QueryStats {
            filter_evaluations: self
                .stages
                .iter()
                .zip(prepared.iter())
                .map(|(stage, p)| (stage.name().to_owned(), p.evaluations()))
                .collect(),
            refinements,
            results: neighbors.len(),
        };
        Ok((neighbors, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::{ReducedEmdFilter, ReducedImFilter};
    use emd_core::{ground, CostMatrix};
    use emd_reduction::{CombiningReduction, ReducedEmd};
    use std::sync::Arc;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    fn database() -> (Arc<Vec<Histogram>>, Arc<CostMatrix>) {
        let db = vec![
            h(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
            h(&[0.0, 1.0, 0.0, 0.0, 0.0, 0.0]),
            h(&[0.0, 0.5, 0.5, 0.0, 0.0, 0.0]),
            h(&[0.0, 0.0, 0.0, 0.5, 0.5, 0.0]),
            h(&[0.0, 0.0, 0.0, 0.0, 0.5, 0.5]),
            h(&[0.2, 0.2, 0.2, 0.2, 0.1, 0.1]),
            h(&[0.0, 0.0, 1.0, 0.0, 0.0, 0.0]),
            h(&[0.1, 0.0, 0.0, 0.0, 0.0, 0.9]),
        ];
        (Arc::new(db), Arc::new(ground::linear(6).unwrap()))
    }

    fn full_pipeline() -> Pipeline {
        let (db, cost) = database();
        let r = CombiningReduction::new(vec![0, 0, 1, 1, 2, 2], 3).unwrap();
        let reduced = ReducedEmd::new(&cost, r).unwrap();
        let red_im = ReducedImFilter::new(&db, reduced.clone()).unwrap();
        let red_emd = ReducedEmdFilter::new(&db, reduced).unwrap();
        let refiner = EmdDistance::new(db, cost).unwrap();
        Pipeline::new(vec![Box::new(red_im), Box::new(red_emd)], refiner).unwrap()
    }

    #[test]
    fn pipeline_matches_sequential_scan() {
        let (db, cost) = database();
        let scan = Pipeline::sequential(EmdDistance::new(db, cost).unwrap()).unwrap();
        let pipeline = full_pipeline();
        for query in [
            h(&[0.9, 0.1, 0.0, 0.0, 0.0, 0.0]),
            h(&[0.0, 0.0, 0.3, 0.4, 0.3, 0.0]),
            h(&[1.0 / 6.0; 6]),
        ] {
            for k in [1, 3, 5] {
                let (expected, _) = scan.knn(&query, k).unwrap();
                let (got, stats) = pipeline.knn(&query, k).unwrap();
                // Equal-distance results may come back in either order;
                // compare (distance, id) pairs canonically sorted.
                let canonical = |neighbors: &[crate::Neighbor]| {
                    let mut pairs: Vec<(i64, usize)> = neighbors
                        .iter()
                        .map(|n| ((n.distance * 1e9).round() as i64, n.id))
                        .collect();
                    pairs.sort_unstable();
                    pairs
                };
                assert_eq!(canonical(&got), canonical(&expected), "k={k} completeness");
                assert!(stats.refinements <= 8);
            }
        }
    }

    #[test]
    fn chained_pipeline_reduces_stage_two_evaluations() {
        let pipeline = full_pipeline();
        let query = h(&[0.9, 0.1, 0.0, 0.0, 0.0, 0.0]);
        let (_, stats) = pipeline.knn(&query, 2).unwrap();
        // Stage 1 (Red-IM) scans everything; stage 2 (Red-EMD) must not.
        assert_eq!(stats.filter_evaluations[0].1, 8);
        assert!(
            stats.filter_evaluations[1].1 <= 8,
            "stage 2 evaluated {} objects",
            stats.filter_evaluations[1].1
        );
        assert!(stats.refinements <= stats.filter_evaluations[1].1.max(2));
    }

    #[test]
    fn range_query_matches_scan() {
        let (db, cost) = database();
        let scan = Pipeline::sequential(EmdDistance::new(db, cost).unwrap()).unwrap();
        let pipeline = full_pipeline();
        let query = h(&[0.0, 0.3, 0.4, 0.3, 0.0, 0.0]);
        let (expected, _) = scan.range(&query, 1.0).unwrap();
        let (got, _) = pipeline.range(&query, 1.0).unwrap();
        assert_eq!(
            got.iter().map(|n| n.id).collect::<Vec<_>>(),
            expected.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sequential_scan_counts_all_refinements() {
        let (db, cost) = database();
        let scan = Pipeline::sequential(EmdDistance::new(db, cost).unwrap()).unwrap();
        let (_, stats) = scan.knn(&h(&[1.0 / 6.0; 6]), 3).unwrap();
        assert_eq!(stats.refinements, 8);
        assert!(stats.filter_evaluations.is_empty());
    }

    #[test]
    fn rejects_empty_database_and_zero_k() {
        let (_, cost) = database();
        let empty = EmdDistance::new(Arc::new(Vec::new()), cost).unwrap();
        assert!(matches!(
            Pipeline::sequential(empty).unwrap_err(),
            QueryError::EmptyDatabase
        ));
        let pipeline = full_pipeline();
        assert!(matches!(
            pipeline.knn(&h(&[1.0 / 6.0; 6]), 0).unwrap_err(),
            QueryError::ZeroK
        ));
    }
}
