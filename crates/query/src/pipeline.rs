//! End-to-end multistep query pipelines (Figure 10 of the paper).
//!
//! A [`Pipeline`] chains any number of lower-bounding filter stages —
//! ordered loosest/cheapest to tightest/most expensive, each stage
//! required to lower-bound the next — in front of the exact EMD
//! refinement. The paper's flagship configuration is
//! `Red-IM -> Red-EMD -> EMD`; a pipeline with zero stages degrades to the
//! sequential scan.
//!
//! Since the engine refactor, `Pipeline` is a thin convenience façade: it
//! assembles a [`QueryPlan`] and delegates every query
//! to an [`Executor`], which owns the single KNOP
//! refinement loop shared by all entry points.

use crate::engine::{Executor, QueryPlan};
use crate::error::QueryError;
use crate::filters::{EmdDistance, Filter};
use crate::stats::QueryStats;
use crate::Neighbor;
use emd_core::Histogram;

/// A filter chain plus the exact refinement distance, executed through
/// the shared query [`Executor`].
#[derive(Debug)]
pub struct Pipeline {
    executor: Executor,
}

impl Pipeline {
    /// Assemble a pipeline. `stages` are consumed in order: `stages[0]`
    /// produces the base ranking, later stages re-rank lazily. Every
    /// stage must index the same database as `refiner` and lower-bound
    /// the next stage (unchecked — establishing the bound chain is the
    /// caller's modelling decision, cf. Section 4).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] when the database is empty or a stage
    /// indexes a database of a different size than `refiner`.
    pub fn new(stages: Vec<Box<dyn Filter>>, refiner: EmdDistance) -> Result<Self, QueryError> {
        Ok(Pipeline {
            executor: Executor::new(QueryPlan::new(stages, Box::new(refiner))?),
        })
    }

    /// A pipeline without filters: pure sequential scan baseline.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::EmptyDatabase`] for an empty database.
    pub fn sequential(refiner: EmdDistance) -> Result<Self, QueryError> {
        Self::new(Vec::new(), refiner)
    }

    /// The underlying executor (e.g. for batch execution via
    /// [`Executor::run_batch`]).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Unwrap into the underlying executor.
    pub fn into_executor(self) -> Executor {
        self.executor
    }

    /// Names of the filter stages, in chain order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.executor.plan().stage_names()
    }

    /// Number of database objects.
    pub fn len(&self) -> usize {
        self.executor.len()
    }

    /// Whether the database is empty (never true for a constructed
    /// pipeline).
    pub fn is_empty(&self) -> bool {
        self.executor.is_empty()
    }

    /// Exact k-nearest-neighbor query with per-stage statistics.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] on `k = 0`, a query shape mismatch, or when
    /// a filter or the exact refiner fails mid-query.
    // lint: allow(unbudgeted): convenience twin; knn_budgeted threads a Budget.
    pub fn knn(
        &self,
        query: &Histogram,
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        self.executor.knn(query, k)
    }

    /// Exact range query with per-stage statistics.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] on a query shape mismatch, a negative
    /// `epsilon`, or a filter/refiner failure mid-query.
    // lint: allow(unbudgeted): convenience twin; range_budgeted threads a Budget.
    pub fn range(
        &self,
        query: &Histogram,
        epsilon: f64,
    ) -> Result<(Vec<Neighbor>, QueryStats), QueryError> {
        self.executor.range(query, epsilon)
    }

    /// k-NN under an execution [`Budget`](crate::Budget); see
    /// [`Executor::knn_budgeted`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pipeline::knn`], except budget exhaustion
    /// degrades the outcome instead of erroring.
    pub fn knn_budgeted(
        &self,
        query: &Histogram,
        k: usize,
        budget: &crate::Budget,
    ) -> Result<(crate::QueryOutcome, QueryStats), QueryError> {
        self.executor.knn_budgeted(query, k, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Database;
    use crate::filters::{ReducedEmdFilter, ReducedImFilter};
    use emd_core::ground;
    use emd_reduction::{CombiningReduction, ReducedEmd};
    use std::sync::Arc;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    fn database() -> Database {
        let db = vec![
            h(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
            h(&[0.0, 1.0, 0.0, 0.0, 0.0, 0.0]),
            h(&[0.0, 0.5, 0.5, 0.0, 0.0, 0.0]),
            h(&[0.0, 0.0, 0.0, 0.5, 0.5, 0.0]),
            h(&[0.0, 0.0, 0.0, 0.0, 0.5, 0.5]),
            h(&[0.2, 0.2, 0.2, 0.2, 0.1, 0.1]),
            h(&[0.0, 0.0, 1.0, 0.0, 0.0, 0.0]),
            h(&[0.1, 0.0, 0.0, 0.0, 0.0, 0.9]),
        ];
        Database::new(db, Arc::new(ground::linear(6).unwrap())).unwrap()
    }

    fn full_pipeline() -> Pipeline {
        let db = database();
        let r = CombiningReduction::new(vec![0, 0, 1, 1, 2, 2], 3).unwrap();
        let reduced = ReducedEmd::new(db.cost(), r).unwrap();
        let red_im = ReducedImFilter::new(&db, reduced.clone()).unwrap();
        let red_emd = ReducedEmdFilter::new(&db, reduced).unwrap();
        let refiner = EmdDistance::new(&db).unwrap();
        Pipeline::new(vec![Box::new(red_im), Box::new(red_emd)], refiner).unwrap()
    }

    #[test]
    fn pipeline_matches_sequential_scan() {
        let db = database();
        let scan = Pipeline::sequential(EmdDistance::new(&db).unwrap()).unwrap();
        let pipeline = full_pipeline();
        for query in [
            h(&[0.9, 0.1, 0.0, 0.0, 0.0, 0.0]),
            h(&[0.0, 0.0, 0.3, 0.4, 0.3, 0.0]),
            h(&[1.0 / 6.0; 6]),
        ] {
            for k in [1, 3, 5] {
                let (expected, _) = scan.knn(&query, k).unwrap();
                let (got, stats) = pipeline.knn(&query, k).unwrap();
                // Equal-distance results may come back in either order;
                // compare (distance, id) pairs canonically sorted.
                let canonical = |neighbors: &[crate::Neighbor]| {
                    let mut pairs: Vec<(i64, usize)> = neighbors
                        .iter()
                        .map(|n| ((n.distance * 1e9).round() as i64, n.id))
                        .collect();
                    pairs.sort_unstable();
                    pairs
                };
                assert_eq!(canonical(&got), canonical(&expected), "k={k} completeness");
                assert!(stats.refinements <= 8);
            }
        }
    }

    #[test]
    fn chained_pipeline_reduces_stage_two_evaluations() {
        let pipeline = full_pipeline();
        let query = h(&[0.9, 0.1, 0.0, 0.0, 0.0, 0.0]);
        let (_, stats) = pipeline.knn(&query, 2).unwrap();
        // Stage 1 (Red-IM) scans everything; stage 2 (Red-EMD) must not.
        assert_eq!(stats.filter_evaluations[0].1, 8);
        assert!(
            stats.filter_evaluations[1].1 <= 8,
            "stage 2 evaluated {} objects",
            stats.filter_evaluations[1].1
        );
        assert!(stats.refinements <= stats.filter_evaluations[1].1.max(2));
    }

    #[test]
    fn range_query_matches_scan() {
        let db = database();
        let scan = Pipeline::sequential(EmdDistance::new(&db).unwrap()).unwrap();
        let pipeline = full_pipeline();
        let query = h(&[0.0, 0.3, 0.4, 0.3, 0.0, 0.0]);
        let (expected, _) = scan.range(&query, 1.0).unwrap();
        let (got, _) = pipeline.range(&query, 1.0).unwrap();
        assert_eq!(
            got.iter().map(|n| n.id).collect::<Vec<_>>(),
            expected.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sequential_scan_counts_all_refinements() {
        let db = database();
        let scan = Pipeline::sequential(EmdDistance::new(&db).unwrap()).unwrap();
        let (_, stats) = scan.knn(&h(&[1.0 / 6.0; 6]), 3).unwrap();
        assert_eq!(stats.refinements, 8);
        assert!(stats.filter_evaluations.is_empty());
    }

    #[test]
    fn rejects_empty_database_and_zero_k() {
        let db = database();
        let empty_db = Database::new(Vec::new(), Arc::new(ground::linear(6).unwrap())).unwrap();
        let empty = EmdDistance::new(&empty_db).unwrap();
        assert!(matches!(
            Pipeline::sequential(empty).unwrap_err(),
            QueryError::EmptyDatabase
        ));
        let pipeline = full_pipeline();
        assert!(matches!(
            pipeline.knn(&h(&[1.0 / 6.0; 6]), 0).unwrap_err(),
            QueryError::ZeroK
        ));
        assert!(matches!(
            pipeline.range(&h(&[1.0 / 6.0; 6]), -0.5).unwrap_err(),
            QueryError::InvalidEpsilon(_)
        ));
        let _ = db;
    }
}
