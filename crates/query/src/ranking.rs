//! Ascending-distance rankings over filter distances.
//!
//! Multistep algorithms consume database objects in ascending order of a
//! lower-bounding filter distance. [`EagerRanking`] materializes one
//! filter stage (each object evaluated exactly once, as a sequential
//! filter scan does); [`ChainedRanking`] implements the
//! ranking-over-ranking `getNext` of the paper's Figure 12, evaluating its
//! (tighter, more expensive) filter *only* for objects that survive the
//! base ranking's frontier. Both propagate filter errors instead of
//! panicking, so a failed solver call surfaces as a
//! [`QueryError`] from the executor.

use crate::error::QueryError;
use crate::filters::PreparedFilter;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Yields `(object id, filter distance)` in ascending distance order.
pub trait Ranking {
    /// Next-best object, or `Ok(None)` when exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] when the underlying filter evaluation fails.
    fn next(&mut self) -> Result<Option<(usize, f64)>, QueryError>;

    /// Drains every not-yet-emitted candidate whose filter bound is
    /// *already computed*, without any further filter evaluation.
    ///
    /// Used to build degraded answers when an execution budget fires: the
    /// returned `(id, bound)` pairs are valid lower bounds of the exact
    /// distance (the chain condition), obtained for free. Order is
    /// unspecified; callers sort. The default returns nothing, which is
    /// always sound.
    fn drain_computed(&mut self) -> Vec<(usize, f64)> {
        Vec::new()
    }
}

/// Total-ordered f64 wrapper for heap keys (distances are never NaN:
/// filters validate inputs at construction). Shared with the candidate
/// sources, whose traversal heaps need the same total order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Key(pub(crate) f64);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A fully materialized ranking: evaluates the filter for every object,
/// sorts once, then pops in ascending order.
#[derive(Debug)]
pub struct EagerRanking {
    /// Sorted descending so `pop` yields ascending.
    sorted: Vec<(usize, f64)>,
}

impl EagerRanking {
    /// Evaluate `filter` on all `len` objects and sort.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] when any filter evaluation fails.
    pub fn new(filter: &mut dyn PreparedFilter, len: usize) -> Result<Self, QueryError> {
        let mut computed = Vec::with_capacity(len);
        for id in 0..len {
            computed.push((id, filter.distance(id)?));
        }
        Ok(Self::from_computed(computed))
    }

    /// Build a ranking from already-computed `(id, distance)` pairs (used
    /// by the budgeted executor, which materializes the first stage itself
    /// so partially computed bounds survive a budget firing).
    pub(crate) fn from_computed(mut computed: Vec<(usize, f64)>) -> Self {
        computed.sort_by(|a, b| b.1.total_cmp(&a.1).then(b.0.cmp(&a.0)));
        EagerRanking { sorted: computed }
    }
}

impl Ranking for EagerRanking {
    fn next(&mut self) -> Result<Option<(usize, f64)>, QueryError> {
        Ok(self.sorted.pop())
    }

    fn drain_computed(&mut self) -> Vec<(usize, f64)> {
        // Everything was evaluated at construction; hand over the rest.
        std::mem::take(&mut self.sorted)
    }
}

/// Figure 12: a ranking with respect to a tighter filter, computed lazily
/// on top of a base ranking of a looser filter.
///
/// Invariant required for correctness: the base ranking's distance is a
/// lower bound of this ranking's filter distance on every object (each
/// chain stage bounds the next — the paper's chaining condition). Then an
/// object from the candidate heap may be emitted as soon as its (tight)
/// distance does not exceed the base ranking's frontier: every unseen
/// object's tight distance is at least its base distance, which is at
/// least the frontier.
pub struct ChainedRanking<'a> {
    base: Box<dyn Ranking + 'a>,
    filter: &'a mut dyn PreparedFilter,
    /// Candidates pulled from the base, keyed by the tight distance.
    heap: BinaryHeap<Reverse<(Key, usize)>>,
    /// Peeked-but-unconsumed base frontier.
    frontier: Option<(usize, f64)>,
    base_exhausted: bool,
}

impl<'a> ChainedRanking<'a> {
    /// Chain `filter` on top of `base`.
    pub fn new(base: Box<dyn Ranking + 'a>, filter: &'a mut dyn PreparedFilter) -> Self {
        ChainedRanking {
            base,
            filter,
            heap: BinaryHeap::new(),
            frontier: None,
            base_exhausted: false,
        }
    }

    fn advance_base(&mut self) -> Result<(), QueryError> {
        debug_assert!(self.frontier.is_none());
        match self.base.next()? {
            Some(item) => self.frontier = Some(item),
            None => self.base_exhausted = true,
        }
        Ok(())
    }
}

impl Ranking for ChainedRanking<'_> {
    fn next(&mut self) -> Result<Option<(usize, f64)>, QueryError> {
        loop {
            if self.frontier.is_none() && !self.base_exhausted {
                self.advance_base()?;
            }
            let emit_top = match (self.heap.peek(), self.frontier) {
                // Heap top is safe to emit: no unseen object can beat it.
                (Some(&Reverse((Key(top), _))), Some((_, base_distance))) => top <= base_distance,
                // Base exhausted: drain the heap.
                (Some(_), None) => true,
                (None, None) => return Ok(None),
                (None, Some(_)) => false,
            };
            if emit_top {
                if let Some(Reverse((Key(distance), id))) = self.heap.pop() {
                    return Ok(Some((id, distance)));
                }
                continue;
            }
            // Frontier might still produce something smaller: consume it,
            // evaluate the tight filter, and keep pulling.
            if let Some((id, _)) = self.frontier.take() {
                let tight = self.filter.distance(id)?;
                self.heap.push(Reverse((Key(tight), id)));
            }
        }
    }

    fn drain_computed(&mut self) -> Vec<(usize, f64)> {
        // Heap entries carry this stage's (tight) bound; the peeked
        // frontier and the base's leftovers carry base-stage bounds. All
        // are valid lower bounds by the chaining condition.
        let mut out: Vec<(usize, f64)> = self
            .heap
            .drain()
            .map(|Reverse((Key(distance), id))| (id, distance))
            .collect();
        if let Some(item) = self.frontier.take() {
            out.push(item);
        }
        out.extend(self.base.drain_computed());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::Filter;
    use emd_core::Histogram;

    /// Test filter backed by a fixed distance table.
    struct TableFilter {
        name: String,
        table: Vec<f64>,
    }

    struct PreparedTable<'a> {
        table: &'a [f64],
        evaluations: usize,
    }

    impl Filter for TableFilter {
        fn name(&self) -> &str {
            &self.name
        }
        fn len(&self) -> usize {
            self.table.len()
        }
        fn prepare(&self, _query: &Histogram) -> Result<Box<dyn PreparedFilter + '_>, QueryError> {
            Ok(Box::new(PreparedTable {
                table: &self.table,
                evaluations: 0,
            }))
        }
    }

    impl PreparedFilter for PreparedTable<'_> {
        fn distance(&mut self, id: usize) -> Result<f64, QueryError> {
            self.evaluations += 1;
            self.table
                .get(id)
                .copied()
                .ok_or(QueryError::UnknownObject(id))
        }
        fn evaluations(&self) -> usize {
            self.evaluations
        }
    }

    fn query() -> Histogram {
        Histogram::new(vec![1.0]).unwrap()
    }

    fn drain(ranking: &mut dyn Ranking) -> Vec<(usize, f64)> {
        let mut order = Vec::new();
        while let Some(item) = ranking.next().unwrap() {
            order.push(item);
        }
        order
    }

    #[test]
    fn eager_ranking_ascending() {
        let filter = TableFilter {
            name: "t".into(),
            table: vec![3.0, 1.0, 2.0, 0.5],
        };
        let mut prepared = filter.prepare(&query()).unwrap();
        let mut ranking = EagerRanking::new(prepared.as_mut(), 4).unwrap();
        assert_eq!(
            drain(&mut ranking),
            vec![(3, 0.5), (1, 1.0), (2, 2.0), (0, 3.0)]
        );
        assert_eq!(prepared.evaluations(), 4);
    }

    #[test]
    fn eager_ranking_propagates_filter_errors() {
        let filter = TableFilter {
            name: "t".into(),
            table: vec![1.0],
        };
        let mut prepared = filter.prepare(&query()).unwrap();
        // Asking for more objects than the table holds fails fast.
        assert!(matches!(
            EagerRanking::new(prepared.as_mut(), 2),
            Err(QueryError::UnknownObject(1))
        ));
    }

    #[test]
    fn chained_ranking_matches_direct_ranking() {
        // Base (loose) distances lower-bound tight distances.
        let loose = TableFilter {
            name: "loose".into(),
            table: vec![1.0, 0.5, 2.0, 0.0, 1.5],
        };
        let tight = TableFilter {
            name: "tight".into(),
            table: vec![1.5, 2.5, 2.0, 0.5, 3.0],
        };
        let mut loose_prepared = loose.prepare(&query()).unwrap();
        let mut tight_prepared = tight.prepare(&query()).unwrap();
        let base = Box::new(EagerRanking::new(loose_prepared.as_mut(), 5).unwrap());
        let mut chained = ChainedRanking::new(base, tight_prepared.as_mut());
        assert_eq!(
            drain(&mut chained),
            vec![(3, 0.5), (0, 1.5), (2, 2.0), (1, 2.5), (4, 3.0)]
        );
    }

    #[test]
    fn chained_ranking_evaluates_lazily() {
        // The first result should not require evaluating every object's
        // tight distance: object 3 has loose 0.0 / tight 0.9, and the next
        // loose frontier (1.0) stops the pull at tight <= frontier.
        let loose = TableFilter {
            name: "loose".into(),
            table: vec![1.0, 5.0, 6.0, 0.0, 7.0],
        };
        let tight = TableFilter {
            name: "tight".into(),
            table: vec![1.5, 5.5, 6.5, 0.9, 7.5],
        };
        let mut loose_prepared = loose.prepare(&query()).unwrap();
        let mut tight_prepared = tight.prepare(&query()).unwrap();
        let base = Box::new(EagerRanking::new(loose_prepared.as_mut(), 5).unwrap());
        let mut chained = ChainedRanking::new(base, tight_prepared.as_mut());
        assert_eq!(chained.next().unwrap(), Some((3, 0.9)));
        drop(chained);
        assert!(
            tight_prepared.evaluations() <= 2,
            "expected lazy evaluation, got {}",
            tight_prepared.evaluations()
        );
    }

    #[test]
    fn chained_ranking_handles_empty_base() {
        let tight = TableFilter {
            name: "tight".into(),
            table: vec![],
        };
        let mut tight_prepared = tight.prepare(&query()).unwrap();
        let base = Box::new(EagerRanking { sorted: Vec::new() });
        let mut chained = ChainedRanking::new(base, tight_prepared.as_mut());
        assert_eq!(chained.next().unwrap(), None);
        assert_eq!(chained.next().unwrap(), None);
    }

    #[test]
    fn ties_are_deterministic() {
        let filter = TableFilter {
            name: "t".into(),
            table: vec![1.0, 1.0, 1.0],
        };
        let mut prepared = filter.prepare(&query()).unwrap();
        let mut ranking = EagerRanking::new(prepared.as_mut(), 3).unwrap();
        let ids: Vec<_> = drain(&mut ranking).into_iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
