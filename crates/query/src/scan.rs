//! Brute-force oracles.
//!
//! These free functions compute exact k-NN and range answers by refining
//! every database object. Tests use them to prove completeness of the
//! multistep pipelines; benches use them as the no-filter baseline cost.
//!
//! Since the engine refactor they are front-ends over a *zero-stage*
//! [`QueryPlan`] run by the shared
//! [`Executor`] — the same sequential-scan path every
//! zero-stage pipeline takes, so the oracles and the engine cannot drift
//! apart.
//!
//! The refiner runs with warm-start contexts forced **off**: an oracle
//! must not depend on the order it visits candidates, and on cost
//! matrices with tied optima a warm-started solve may settle on a
//! different (equally optimal) basis whose objective differs in the last
//! ulp. Cold solves are the deterministic reference those comparisons
//! need.

use crate::engine::{Database, Executor, QueryPlan};
use crate::error::QueryError;
use crate::filters::EmdDistance;
use crate::Neighbor;
use emd_core::{CostMatrix, Histogram};
use std::sync::Arc;

fn scan_executor(database: &[Histogram], cost: &CostMatrix) -> Result<Executor, QueryError> {
    let db = Database::new(database.to_vec(), Arc::new(cost.clone()))?;
    Ok(Executor::new(QueryPlan::sequential(Box::new(
        EmdDistance::new(&db)?.with_warm_start(false),
    ))?))
}

/// Exact k-NN by full scan. Returns up to `k` neighbors in ascending
/// distance order (ties broken by id).
///
/// # Errors
///
/// Returns [`QueryError`] when `k = 0`, the query or a database histogram
/// disagrees with `cost`, or an exact EMD computation fails.
pub fn brute_force_knn(
    query: &Histogram,
    database: &[Histogram],
    cost: &CostMatrix,
    k: usize,
) -> Result<Vec<Neighbor>, QueryError> {
    if k == 0 {
        return Err(QueryError::ZeroK);
    }
    if database.is_empty() {
        return Ok(Vec::new());
    }
    let (neighbors, _) = scan_executor(database, cost)?.knn(query, k)?;
    Ok(neighbors)
}

/// Exact range query by full scan, ascending distance order.
///
/// # Errors
///
/// Returns [`QueryError`] when shapes disagree with `cost`, `epsilon` is
/// negative or non-finite, or an exact EMD computation fails.
pub fn brute_force_range(
    query: &Histogram,
    database: &[Histogram],
    cost: &CostMatrix,
    epsilon: f64,
) -> Result<Vec<Neighbor>, QueryError> {
    if database.is_empty() {
        return Ok(Vec::new());
    }
    let (hits, _) = scan_executor(database, cost)?.range(query, epsilon)?;
    Ok(hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_core::ground;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    #[test]
    fn knn_finds_nearest() {
        let database = vec![
            h(&[0.0, 0.0, 1.0]),
            h(&[0.0, 1.0, 0.0]),
            h(&[1.0, 0.0, 0.0]),
        ];
        let cost = ground::linear(3).unwrap();
        let query = h(&[0.9, 0.1, 0.0]);
        let neighbors = brute_force_knn(&query, &database, &cost, 2).unwrap();
        assert_eq!(neighbors[0].id, 2);
        assert_eq!(neighbors[1].id, 1);
        assert!(brute_force_knn(&query, &database, &cost, 0).is_err());
    }

    #[test]
    fn range_includes_boundary() {
        let database = vec![h(&[1.0, 0.0]), h(&[0.0, 1.0])];
        let cost = ground::linear(2).unwrap();
        let query = h(&[1.0, 0.0]);
        let hits = brute_force_range(&query, &database, &cost, 1.0).unwrap();
        assert_eq!(hits.len(), 2, "distance exactly 1.0 is included");
        let hits = brute_force_range(&query, &database, &cost, 0.5).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn empty_database_returns_empty_answers() {
        let cost = ground::linear(2).unwrap();
        let query = h(&[1.0, 0.0]);
        assert!(brute_force_knn(&query, &[], &cost, 3).unwrap().is_empty());
        assert!(brute_force_range(&query, &[], &cost, 1.0)
            .unwrap()
            .is_empty());
    }
}
