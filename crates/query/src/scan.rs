//! Brute-force oracles.
//!
//! Independent of the ranking/KNOP machinery, these free functions compute
//! exact k-NN and range answers by evaluating the EMD against every
//! database object. Tests use them to prove completeness of the multistep
//! pipelines; benches use them as the no-filter baseline cost.

use crate::error::QueryError;
use crate::Neighbor;
use emd_core::{emd, CostMatrix, Histogram};

/// Exact k-NN by full scan. Returns up to `k` neighbors in ascending
/// distance order (ties broken by id).
///
/// # Errors
///
/// Returns [`QueryError`] when the query or a database histogram disagrees
/// with `cost`, or an exact EMD computation fails.
pub fn brute_force_knn(
    query: &Histogram,
    database: &[Histogram],
    cost: &CostMatrix,
    k: usize,
) -> Result<Vec<Neighbor>, QueryError> {
    if k == 0 {
        return Err(QueryError::ZeroK);
    }
    let mut neighbors = database
        .iter()
        .enumerate()
        .map(|(id, object)| {
            Ok(Neighbor {
                id,
                distance: emd(query, object, cost)?,
            })
        })
        .collect::<Result<Vec<_>, QueryError>>()?;
    neighbors.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
    neighbors.truncate(k);
    Ok(neighbors)
}

/// Exact range query by full scan, ascending distance order.
///
/// # Errors
///
/// Returns [`QueryError`] when shapes disagree with `cost`, `epsilon` is
/// negative, or an exact EMD computation fails.
pub fn brute_force_range(
    query: &Histogram,
    database: &[Histogram],
    cost: &CostMatrix,
    epsilon: f64,
) -> Result<Vec<Neighbor>, QueryError> {
    let mut hits = Vec::new();
    for (id, object) in database.iter().enumerate() {
        let distance = emd(query, object, cost)?;
        if distance <= epsilon {
            hits.push(Neighbor { id, distance });
        }
    }
    hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
    Ok(hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_core::ground;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    #[test]
    fn knn_finds_nearest() {
        let database = vec![
            h(&[0.0, 0.0, 1.0]),
            h(&[0.0, 1.0, 0.0]),
            h(&[1.0, 0.0, 0.0]),
        ];
        let cost = ground::linear(3).unwrap();
        let query = h(&[0.9, 0.1, 0.0]);
        let neighbors = brute_force_knn(&query, &database, &cost, 2).unwrap();
        assert_eq!(neighbors[0].id, 2);
        assert_eq!(neighbors[1].id, 1);
        assert!(brute_force_knn(&query, &database, &cost, 0).is_err());
    }

    #[test]
    fn range_includes_boundary() {
        let database = vec![h(&[1.0, 0.0]), h(&[0.0, 1.0])];
        let cost = ground::linear(2).unwrap();
        let query = h(&[1.0, 0.0]);
        let hits = brute_force_range(&query, &database, &cost, 1.0).unwrap();
        assert_eq!(hits.len(), 2, "distance exactly 1.0 is included");
        let hits = brute_force_range(&query, &database, &cost, 0.5).unwrap();
        assert_eq!(hits.len(), 1);
    }
}
