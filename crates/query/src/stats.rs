/// Per-query cost accounting.
///
/// The paper's evaluation reports the number of expensive refinements
/// (full-dimensional EMD computations) and the per-stage filter
/// evaluations — the quantities that dimensionality reduction exists to
/// shrink. All counters in this crate feed into `QueryStats`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryStats {
    /// `(stage name, evaluations)` for every filter stage, in chain order.
    pub filter_evaluations: Vec<(String, usize)>,
    /// Number of exact (original-dimensionality) EMD computations.
    pub refinements: usize,
    /// Number of results returned.
    pub results: usize,
}

impl QueryStats {
    /// Total filter evaluations across all stages.
    pub fn total_filter_evaluations(&self) -> usize {
        self.filter_evaluations.iter().map(|(_, n)| n).sum()
    }

    /// Merge another query's stats into an aggregate (stage lists must
    /// match in order; missing stages are appended).
    pub fn accumulate(&mut self, other: &QueryStats) {
        for (index, (name, count)) in other.filter_evaluations.iter().enumerate() {
            match self.filter_evaluations.get_mut(index) {
                Some((existing, total)) if existing == name => *total += count,
                _ => self.filter_evaluations.push((name.clone(), *count)),
            }
        }
        self.refinements += other.refinements;
        self.results += other.results;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_matching_stages() {
        let mut total = QueryStats {
            filter_evaluations: vec![("red-im".into(), 100), ("red-emd".into(), 10)],
            refinements: 5,
            results: 10,
        };
        total.accumulate(&QueryStats {
            filter_evaluations: vec![("red-im".into(), 100), ("red-emd".into(), 20)],
            refinements: 7,
            results: 10,
        });
        assert_eq!(total.filter_evaluations[0].1, 200);
        assert_eq!(total.filter_evaluations[1].1, 30);
        assert_eq!(total.refinements, 12);
        assert_eq!(total.results, 20);
        assert_eq!(total.total_filter_evaluations(), 230);
    }
}
