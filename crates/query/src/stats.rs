//! Per-query cost accounting: the `QueryStats` façade every execution
//! path reports through (and, under an `emd-obs` recording scope, the
//! numbers the executor mirrors into the metrics registry).

/// Per-query cost accounting.
///
/// The paper's evaluation reports the number of expensive refinements
/// (full-dimensional EMD computations) and the per-stage filter
/// evaluations — the quantities that dimensionality reduction exists to
/// shrink. All counters in this crate feed into `QueryStats`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryStats {
    /// `(stage name, evaluations)` for every filter stage, in chain order.
    pub filter_evaluations: Vec<(String, usize)>,
    /// Number of exact (original-dimensionality) EMD computations.
    pub refinements: usize,
    /// Number of results returned.
    pub results: usize,
}

impl QueryStats {
    /// Total filter evaluations across all stages.
    pub fn total_filter_evaluations(&self) -> usize {
        self.filter_evaluations.iter().map(|(_, n)| n).sum()
    }

    /// Merge another query's stats into an aggregate. Stages are matched
    /// *by name* wherever they sit in either list (chains of different
    /// shapes merge correctly); unseen stages are appended in encounter
    /// order. The merge is associative and commutative up to stage order,
    /// which is what makes parallel batch execution
    /// ([`Executor::run_batch`](crate::Executor::run_batch)) produce
    /// totals identical to a sequential run.
    pub fn accumulate(&mut self, other: &QueryStats) {
        for (name, count) in &other.filter_evaluations {
            match self
                .filter_evaluations
                .iter_mut()
                .find(|(existing, _)| existing == name)
            {
                Some((_, total)) => *total += count,
                None => self.filter_evaluations.push((name.clone(), *count)),
            }
        }
        self.refinements += other.refinements;
        self.results += other.results;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_matching_stages() {
        let mut total = QueryStats {
            filter_evaluations: vec![("red-im".into(), 100), ("red-emd".into(), 10)],
            refinements: 5,
            results: 10,
        };
        total.accumulate(&QueryStats {
            filter_evaluations: vec![("red-im".into(), 100), ("red-emd".into(), 20)],
            refinements: 7,
            results: 10,
        });
        assert_eq!(total.filter_evaluations[0].1, 200);
        assert_eq!(total.filter_evaluations[1].1, 30);
        assert_eq!(total.refinements, 12);
        assert_eq!(total.results, 20);
        assert_eq!(total.total_filter_evaluations(), 230);
    }

    #[test]
    fn accumulate_merges_mismatched_chains_by_name() {
        // Regression: positional matching used to append a duplicate
        // entry when stage lists disagreed at some index, double-counting
        // the stage in totals.
        let mut total = QueryStats {
            filter_evaluations: vec![("red-im".into(), 100)],
            refinements: 1,
            results: 1,
        };
        total.accumulate(&QueryStats {
            filter_evaluations: vec![("scaled-l1".into(), 50), ("red-im".into(), 30)],
            refinements: 2,
            results: 3,
        });
        assert_eq!(
            total.filter_evaluations,
            vec![("red-im".into(), 130), ("scaled-l1".into(), 50)],
            "stages merge by name, no duplicates"
        );
        assert_eq!(total.total_filter_evaluations(), 180);
        assert_eq!(total.refinements, 3);
        assert_eq!(total.results, 4);
    }

    #[test]
    fn accumulate_is_order_insensitive_in_totals() {
        let a = QueryStats {
            filter_evaluations: vec![("s1".into(), 10), ("s2".into(), 5)],
            refinements: 2,
            results: 1,
        };
        let b = QueryStats {
            filter_evaluations: vec![("s2".into(), 7)],
            refinements: 1,
            results: 2,
        };
        let mut ab = QueryStats::default();
        ab.accumulate(&a);
        ab.accumulate(&b);
        let mut ba = QueryStats::default();
        ba.accumulate(&b);
        ba.accumulate(&a);
        for stats in [&ab, &ba] {
            assert_eq!(stats.total_filter_evaluations(), 22);
            assert_eq!(stats.refinements, 3);
            assert_eq!(stats.results, 3);
        }
    }
}
