//! A vantage-point tree over the exact EMD.
//!
//! The paper notes that reducing database vectors to low dimensionality
//! enables "indexing in multidimensional structures". This module provides
//! the metric-space counterpart for comparison: a VP-tree that prunes with
//! the triangle inequality of the EMD itself (the EMD is a metric whenever
//! the ground distance is — see `CostMatrix::is_metric`).
//!
//! Trade-off versus the filter pipelines: the VP-tree pays `O(N log N)`
//! *exact* EMD computations once at build time and needs no reduction
//! tuning, but every pruning decision during search is again a full
//! EMD — so its queries beat a linear scan only when the triangle
//! inequality prunes aggressively. The ablation bench (A4) puts both
//! approaches side by side.

use crate::engine::source::{CandidateSource, CandidateStream};
use crate::engine::Database;
use crate::error::QueryError;
use crate::ranking::{Key, Ranking};
use crate::Neighbor;
use emd_core::{emd, emd_in_context, Budget, CostMatrix, EmdContext, Histogram};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One tree node: a vantage object, the median distance to its subtree,
/// and the inner (<= radius) / outer (> radius) children.
#[derive(Debug, Clone)]
struct Node {
    object: u32,
    radius: f64,
    inner: i32,
    outer: i32,
}

const NO_CHILD: i32 = -1;

/// A static VP-tree over a histogram database under the exact EMD.
#[derive(Debug, Clone)]
pub struct VpTree {
    database: Database,
    nodes: Vec<Node>,
    root: i32,
}

/// Search statistics: how many exact EMD computations the traversal
/// needed (the quantity to compare against a scan's `N`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VpSearchStats {
    /// Exact EMD evaluations during the search.
    pub distance_computations: usize,
}

impl VpTree {
    /// Build the tree. Costs `O(N log N)` exact EMD computations.
    ///
    /// Correct pruning requires the EMD to satisfy the triangle
    /// inequality, which holds when `cost` is a metric (symmetric, zero
    /// diagonal, triangle inequality) and all histograms share total
    /// mass 1 — both enforced elsewhere in this workspace; the metric
    /// property of `cost` is the caller's responsibility and can be
    /// checked with [`CostMatrix::is_metric`].
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] when a database histogram disagrees with `cost` in
    /// dimensionality or a vantage-point distance computation fails.
    pub fn build(database: &Database) -> Result<Self, QueryError> {
        if database.is_empty() {
            return Err(QueryError::EmptyDatabase);
        }
        for h in database.histograms() {
            if h.dim() != database.cost().rows() {
                return Err(QueryError::Core(emd_core::CoreError::DimensionMismatch {
                    expected_rows: database.cost().rows(),
                    expected_cols: database.cost().cols(),
                    got_rows: h.dim(),
                    got_cols: h.dim(),
                }));
            }
        }
        let mut ids: Vec<u32> = (0..database.len() as u32).collect();
        let mut nodes = Vec::with_capacity(database.len());
        let root = build_recursive(database.histograms(), database.cost(), &mut ids, &mut nodes)?;
        Ok(VpTree {
            database: database.clone(),
            nodes,
            root,
        })
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (never true for a built tree).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Exact k-NN by best-first traversal with triangle-inequality
    /// pruning. Returns ascending by distance (ties by id), plus stats.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] on query shape mismatch or when a distance
    /// computation fails during traversal.
    // lint: allow(unbudgeted): baseline structure for comparison experiments only.
    pub fn knn(
        &self,
        query: &Histogram,
        k: usize,
    ) -> Result<(Vec<Neighbor>, VpSearchStats), QueryError> {
        if k == 0 {
            return Err(QueryError::ZeroK);
        }
        let mut stats = VpSearchStats::default();
        // Max-heap of the current k best (distance, id).
        let mut best: BinaryHeap<(OrdF64, u32)> = BinaryHeap::new();
        self.search(self.root, query, k, &mut best, &mut stats)?;
        let mut neighbors: Vec<Neighbor> = best
            .into_iter()
            .map(|(OrdF64(distance), id)| Neighbor {
                id: id as usize,
                distance,
            })
            .collect();
        neighbors.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        Ok((neighbors, stats))
    }

    /// Exact range query with triangle-inequality pruning.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] on query shape mismatch, a negative `epsilon`, or
    /// a failed distance computation during traversal.
    // lint: allow(unbudgeted): baseline structure for comparison experiments only.
    pub fn range(
        &self,
        query: &Histogram,
        epsilon: f64,
    ) -> Result<(Vec<Neighbor>, VpSearchStats), QueryError> {
        let mut stats = VpSearchStats::default();
        let mut hits = Vec::new();
        self.range_search(self.root, query, epsilon, &mut hits, &mut stats)?;
        hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        Ok((hits, stats))
    }

    fn distance(
        &self,
        query: &Histogram,
        object: u32,
        stats: &mut VpSearchStats,
    ) -> Result<f64, QueryError> {
        stats.distance_computations += 1;
        let object = self
            .database
            .get(object as usize)
            .ok_or(QueryError::UnknownObject(object as usize))?;
        Ok(emd(query, object, self.database.cost())?)
    }

    fn search(
        &self,
        node_index: i32,
        query: &Histogram,
        k: usize,
        best: &mut BinaryHeap<(OrdF64, u32)>,
        stats: &mut VpSearchStats,
    ) -> Result<(), QueryError> {
        if node_index == NO_CHILD {
            return Ok(());
        }
        let node = &self.nodes[node_index as usize];
        let d = self.distance(query, node.object, stats)?;
        if best.len() < k {
            best.push((OrdF64(d), node.object));
        } else if let Some(&(OrdF64(worst), _)) = best.peek() {
            if d < worst {
                best.pop();
                best.push((OrdF64(d), node.object));
            }
        }
        // Visit the side containing the query first; prune the other side
        // when the annulus |d - radius| already exceeds the current k-th
        // best distance (re-read after the near descent tightened it).
        let (near, far) = if d <= node.radius {
            (node.inner, node.outer)
        } else {
            (node.outer, node.inner)
        };
        self.search(near, query, k, best, stats)?;
        let threshold = if best.len() < k {
            f64::INFINITY
        } else {
            best.peek().map_or(f64::INFINITY, |&(OrdF64(w), _)| w)
        };
        if (d - node.radius).abs() <= threshold {
            self.search(far, query, k, best, stats)?;
        }
        Ok(())
    }

    fn range_search(
        &self,
        node_index: i32,
        query: &Histogram,
        epsilon: f64,
        hits: &mut Vec<Neighbor>,
        stats: &mut VpSearchStats,
    ) -> Result<(), QueryError> {
        if node_index == NO_CHILD {
            return Ok(());
        }
        let node = &self.nodes[node_index as usize];
        let d = self.distance(query, node.object, stats)?;
        if d <= epsilon {
            hits.push(Neighbor {
                id: node.object as usize,
                distance: d,
            });
        }
        // Triangle inequality: the inner ball can contain results only if
        // d - radius <= epsilon; the outer shell only if radius - d <= eps.
        if d - node.radius <= epsilon {
            self.range_search(node.inner, query, epsilon, hits, stats)?;
        }
        if node.radius - d <= epsilon {
            self.range_search(node.outer, query, epsilon, hits, stats)?;
        }
        Ok(())
    }
}

/// Build subtree over `ids`, returning its node index (or NO_CHILD).
fn build_recursive(
    database: &[Histogram],
    cost: &CostMatrix,
    ids: &mut [u32],
    nodes: &mut Vec<Node>,
) -> Result<i32, QueryError> {
    let Some((&vantage, rest)) = ids.split_first() else {
        return Ok(NO_CHILD);
    };
    if rest.is_empty() {
        nodes.push(Node {
            object: vantage,
            radius: 0.0,
            inner: NO_CHILD,
            outer: NO_CHILD,
        });
        return Ok(nodes.len() as i32 - 1);
    }

    // Distance of every remaining object to the vantage point.
    let mut with_distance: Vec<(f64, u32)> = rest
        .iter()
        .map(|&id| {
            Ok((
                emd(&database[vantage as usize], &database[id as usize], cost)?,
                id,
            ))
        })
        .collect::<Result<_, QueryError>>()?;
    with_distance.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let median_index = with_distance.len() / 2;
    // Radius = largest inner distance, so `<= radius` matches the split.
    let radius = if median_index > 0 {
        with_distance[median_index - 1].0
    } else {
        // Single-element outer side.
        with_distance[0].0 / 2.0
    };

    let mut inner_ids: Vec<u32> = with_distance[..median_index]
        .iter()
        .map(|&(_, id)| id)
        .collect();
    let mut outer_ids: Vec<u32> = with_distance[median_index..]
        .iter()
        .map(|&(_, id)| id)
        .collect();

    let inner = build_recursive(database, cost, &mut inner_ids, nodes)?;
    let outer = build_recursive(database, cost, &mut outer_ids, nodes)?;
    nodes.push(Node {
        object: vantage,
        radius,
        inner,
        outer,
    });
    Ok(nodes.len() as i32 - 1)
}

/// The VP-tree as a [`CandidateSource`]: a best-first traversal that
/// emits objects in ascending exact-EMD order, pruning subtrees with the
/// triangle inequality. This puts the A4 baseline behind the same plan
/// abstraction as the clustered index, so the two candidate generators
/// compare apples-to-apples inside one [`QueryPlan`](crate::QueryPlan).
///
/// Because the emitted key is the *exact* EMD, this source is its own
/// refinement — stacking it under an `EmdDistance` refiner is correct
/// but wasteful. Its value is as a comparison baseline: every pruning
/// decision costs a full-dimensional EMD, where the clustered index pays
/// only reduced-space solves.
#[derive(Debug, Clone)]
pub struct VpTreeSource {
    name: String,
    tree: VpTree,
}

impl VpTreeSource {
    /// Wrap a built tree as a candidate source.
    pub fn new(tree: VpTree) -> Self {
        VpTreeSource {
            name: format!("vptree(n={})", tree.len()),
            tree,
        }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &VpTree {
        &self.tree
    }
}

impl CandidateSource for VpTreeSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn prepare(&self, query: &Histogram) -> Result<Box<dyn CandidateStream + '_>, QueryError> {
        self.prepare_budgeted(query, &Budget::unlimited())
    }

    fn prepare_budgeted(
        &self,
        query: &Histogram,
        budget: &Budget,
    ) -> Result<Box<dyn CandidateStream + '_>, QueryError> {
        if query.dim() != self.tree.database.dim() {
            return Err(QueryError::Core(emd_core::CoreError::DimensionMismatch {
                expected_rows: self.tree.database.cost().rows(),
                expected_cols: self.tree.database.cost().cols(),
                got_rows: query.dim(),
                got_cols: query.dim(),
            }));
        }
        let mut heap = BinaryHeap::new();
        if self.tree.root != NO_CHILD {
            heap.push(Reverse((Key(0.0), VP_ENTRY_NODE, self.tree.root as u32)));
        }
        Ok(Box::new(VpStream {
            tree: &self.tree,
            query: query.clone(),
            budget: budget.clone(),
            context: EmdContext::new(),
            heap,
            evaluations: 0,
        }))
    }
}

/// Heap entry kinds for [`VpStream`]: nodes expand before objects on
/// equal keys, so emission is globally ascending `(distance, id)`.
const VP_ENTRY_NODE: u8 = 0;
const VP_ENTRY_OBJECT: u8 = 1;

/// Best-first VP-tree traversal: node entries carry a sound lower bound
/// of every object in their subtree (the parent bound joined with the
/// annulus bound `d − radius` / `radius − d`); object entries carry the
/// evaluated exact distance of the node's vantage point.
struct VpStream<'a> {
    tree: &'a VpTree,
    query: Histogram,
    budget: Budget,
    context: EmdContext,
    heap: BinaryHeap<Reverse<(Key, u8, u32)>>,
    evaluations: usize,
}

impl VpStream<'_> {
    /// Expand one node: evaluate its vantage point and push the children
    /// with tightened bounds.
    fn expand(&mut self, node_index: usize, bound: f64) -> Result<(), QueryError> {
        self.budget.check().map_err(QueryError::BudgetExhausted)?;
        let tree = self.tree;
        let Some(node) = tree.nodes.get(node_index) else {
            return Err(QueryError::UnknownObject(node_index));
        };
        let object = tree
            .database
            .get(node.object as usize)
            .ok_or(QueryError::UnknownObject(node.object as usize))?;
        self.evaluations += 1;
        let d = emd_in_context(
            &self.query,
            object,
            tree.database.cost(),
            &self.budget,
            &mut self.context,
        )?;
        self.heap
            .push(Reverse((Key(d), VP_ENTRY_OBJECT, node.object)));
        // Triangle inequality: inner objects are within `radius` of the
        // vantage, so their distance is at least `d - radius`; outer
        // objects are beyond `radius`, so at least `radius - d`. The
        // parent bound stays valid for both.
        if node.inner != NO_CHILD {
            let inner_bound = bound.max(d - node.radius).max(0.0);
            self.heap.push(Reverse((
                Key(inner_bound),
                VP_ENTRY_NODE,
                node.inner as u32,
            )));
        }
        if node.outer != NO_CHILD {
            let outer_bound = bound.max(node.radius - d).max(0.0);
            self.heap.push(Reverse((
                Key(outer_bound),
                VP_ENTRY_NODE,
                node.outer as u32,
            )));
        }
        Ok(())
    }
}

impl Ranking for VpStream<'_> {
    fn next(&mut self) -> Result<Option<(usize, f64)>, QueryError> {
        loop {
            let Some(Reverse((Key(key), kind, id))) = self.heap.pop() else {
                return Ok(None);
            };
            if kind == VP_ENTRY_NODE {
                self.expand(id as usize, key)?;
            } else {
                return Ok(Some((id as usize, key)));
            }
        }
    }

    fn drain_computed(&mut self) -> Vec<(usize, f64)> {
        let tree = self.tree;
        let mut out = Vec::new();
        for Reverse((Key(key), kind, id)) in self.heap.drain() {
            if kind == VP_ENTRY_NODE {
                // A node bound covers every object in its subtree — valid
                // lower bounds obtained for free.
                collect_subtree(&tree.nodes, id as i32, key, &mut out);
            } else {
                out.push((id as usize, key));
            }
        }
        out
    }
}

impl CandidateStream for VpStream<'_> {
    fn evaluations(&self) -> usize {
        self.evaluations
    }
}

/// Push every object of `node_index`'s subtree at `bound`.
fn collect_subtree(nodes: &[Node], node_index: i32, bound: f64, out: &mut Vec<(usize, f64)>) {
    let Some(node) = usize::try_from(node_index).ok().and_then(|i| nodes.get(i)) else {
        return;
    };
    out.push((node.object as usize, bound));
    collect_subtree(nodes, node.inner, bound, out);
    collect_subtree(nodes, node.outer, bound, out);
}

/// Total-ordered f64 for the result heap (distances are never NaN).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{brute_force_knn, brute_force_range};
    use emd_core::ground;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn random_database(n: usize, dim: usize, seed: u64) -> Vec<Histogram> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let bins: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
                Histogram::normalized(bins).unwrap()
            })
            .collect()
    }

    #[test]
    fn knn_matches_brute_force() {
        let cost = Arc::new(ground::linear(8).unwrap());
        assert!(cost.is_metric(1e-9), "pruning requires a metric");
        let database = Database::new(random_database(40, 8, 1), cost).unwrap();
        let tree = VpTree::build(&database).unwrap();
        let queries = random_database(5, 8, 2);
        for query in &queries {
            for k in [1, 3, 7] {
                let expected =
                    brute_force_knn(query, database.histograms(), database.cost(), k).unwrap();
                let (got, stats) = tree.knn(query, k).unwrap();
                let e: Vec<i64> = expected
                    .iter()
                    .map(|n| (n.distance * 1e9).round() as i64)
                    .collect();
                let g: Vec<i64> = got
                    .iter()
                    .map(|n| (n.distance * 1e9).round() as i64)
                    .collect();
                assert_eq!(g, e, "k={k}");
                assert!(stats.distance_computations <= database.len());
            }
        }
    }

    #[test]
    fn range_matches_brute_force() {
        let cost = Arc::new(ground::linear(6).unwrap());
        let database = Database::new(random_database(30, 6, 3), cost).unwrap();
        let tree = VpTree::build(&database).unwrap();
        let queries = random_database(4, 6, 4);
        for query in &queries {
            for epsilon in [0.1, 0.5, 1.5] {
                let expected =
                    brute_force_range(query, database.histograms(), database.cost(), epsilon)
                        .unwrap();
                let (got, _) = tree.range(query, epsilon).unwrap();
                assert_eq!(
                    got.iter().map(|n| n.id).collect::<Vec<_>>(),
                    expected.iter().map(|n| n.id).collect::<Vec<_>>(),
                    "epsilon={epsilon}"
                );
            }
        }
    }

    #[test]
    fn pruning_beats_scan_on_clustered_data() {
        // Two tight clusters far apart: the tree should prune the far one.
        let mut database = Vec::new();
        let mut rng = StdRng::seed_from_u64(5);
        for center in [2usize, 17] {
            for _ in 0..15 {
                let mut bins = vec![0.001; 20];
                bins[center] += 0.9 + rng.gen_range(0.0..0.1);
                bins[center + 1] += 0.1;
                database.push(Histogram::normalized(bins).unwrap());
            }
        }
        let cost = Arc::new(ground::linear(20).unwrap());
        let database = Database::new(database, cost).unwrap();
        let tree = VpTree::build(&database).unwrap();
        let (_, stats) = tree.knn(database.get(0).unwrap(), 3).unwrap();
        assert!(
            stats.distance_computations < database.len(),
            "expected pruning, got {} of {}",
            stats.distance_computations,
            database.len()
        );
    }

    #[test]
    fn single_object_tree() {
        let cost = Arc::new(ground::linear(3).unwrap());
        let database = Database::new(vec![Histogram::unit(3, 1).unwrap()], cost).unwrap();
        let tree = VpTree::build(&database).unwrap();
        let query = Histogram::unit(3, 0).unwrap();
        let (neighbors, _) = tree.knn(&query, 5).unwrap();
        assert_eq!(neighbors.len(), 1);
        assert!((neighbors[0].distance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty_and_zero_k() {
        let cost = Arc::new(ground::linear(3).unwrap());
        let empty = Database::new(Vec::new(), cost.clone()).unwrap();
        assert!(matches!(
            VpTree::build(&empty).unwrap_err(),
            QueryError::EmptyDatabase
        ));
        let database = Database::new(vec![Histogram::unit(3, 0).unwrap()], cost).unwrap();
        let tree = VpTree::build(&database).unwrap();
        assert!(matches!(
            tree.knn(&Histogram::unit(3, 0).unwrap(), 0).unwrap_err(),
            QueryError::ZeroK
        ));
    }

    #[test]
    fn duplicate_objects_are_all_retrievable() {
        let h = Histogram::new(vec![0.5, 0.5]).unwrap();
        let cost = Arc::new(ground::linear(2).unwrap());
        let database = Database::new(vec![h.clone(), h.clone(), h.clone()], cost).unwrap();
        let tree = VpTree::build(&database).unwrap();
        let (neighbors, _) = tree.knn(&h, 3).unwrap();
        assert_eq!(neighbors.len(), 3);
        assert!(neighbors.iter().all(|n| n.distance < 1e-12));
    }
}
