//! Kill-anywhere recovery for the durable index: the WAL may be cut at
//! *every* byte position, flipped at every byte, or the process may be
//! failed at every injected fault point — and reopening must yield
//! either a typed error or a bit-identical prefix of the uncrashed
//! history. Corruption never surfaces as a wrong query answer.

// Test helpers outside #[test] fns still get test-style panic latitude.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use emd_core::{ground, CostMatrix, Histogram};
use emd_faultkit::FailPlan;
use emd_query::{DurableError, DurableIndex};
use emd_reduction::{CombiningReduction, ReducedEmd};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const DIM: usize = 4;

fn cost() -> Arc<CostMatrix> {
    Arc::new(ground::linear(DIM).unwrap())
}

fn reduced(cost: &CostMatrix) -> ReducedEmd {
    ReducedEmd::new(cost, CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap()).unwrap()
}

fn h(bins: &[f64]) -> Histogram {
    Histogram::new(bins.to_vec()).unwrap()
}

/// A deterministic corpus: distinct, normalized, dimension `DIM`.
fn object(i: u64) -> Histogram {
    let mut bins = vec![0.0; DIM];
    let mut weight = 1.0;
    let mut x = i + 1;
    for bin in bins.iter_mut() {
        x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let fraction = f64::from(u32::try_from(x >> 40).unwrap_or(0)) / f64::from(1u32 << 24);
        *bin = fraction.max(1e-3);
        weight += fraction;
    }
    let total: f64 = bins.iter().sum();
    let _ = weight;
    Histogram::new(bins.into_iter().map(|b| b / total).collect()).unwrap()
}

fn unique_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("flexemd-crash-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One logical mutation of the reference history.
#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(u64),
    Remove(u64),
}

/// Apply `ops` to a fresh durable index at `dir`, syncing once at the
/// end. Returns the external ids the inserts produced.
fn apply_ops(dir: &Path, ops: &[Op]) -> DurableIndex {
    let c = cost();
    let r = reduced(&c);
    let mut index = DurableIndex::create(dir, c, r).unwrap();
    for op in ops {
        match op {
            Op::Insert(seed) => {
                index.append_insert(object(*seed)).unwrap();
            }
            Op::Remove(id) => {
                index.append_remove(*id).unwrap();
            }
        }
    }
    index.sync().unwrap();
    index
}

/// Bit-exact fingerprint of an index's answer surface: k-NN over a probe
/// set, external ids and `f64::to_bits` distances.
fn fingerprint(index: &DurableIndex) -> Vec<Vec<(u64, u64)>> {
    if index.is_empty() {
        return Vec::new();
    }
    let probes = [
        h(&[1.0, 0.0, 0.0, 0.0]),
        h(&[0.0, 0.0, 0.0, 1.0]),
        h(&[0.25, 0.25, 0.25, 0.25]),
        h(&[0.1, 0.4, 0.4, 0.1]),
    ];
    probes
        .iter()
        .map(|probe| {
            let k = index.len().min(5);
            let (hits, _) = index.knn(probe, k).unwrap();
            hits.iter().map(|&(id, d)| (id, d.to_bits())).collect()
        })
        .collect()
}

/// The reference history: inserts interleaved with removes, including a
/// remove of a not-yet-compacted early id.
fn history() -> Vec<Op> {
    vec![
        Op::Insert(0),
        Op::Insert(1),
        Op::Insert(2),
        Op::Remove(1),
        Op::Insert(3),
        Op::Insert(4),
        Op::Remove(0),
        Op::Insert(5),
        Op::Remove(4),
        Op::Insert(6),
    ]
}

/// Kill-at-every-WAL-position: truncate the log at *every* byte offset,
/// reopen, and demand the recovered index answer bit-identically to an
/// uncrashed index that only saw the surviving record prefix.
#[test]
fn kill_at_every_wal_position_recovers_a_bit_identical_prefix() {
    let ops = history();
    let full_dir = unique_dir("full");
    drop(apply_ops(&full_dir, &ops));
    let wal_file = full_dir.join("wal-0.log");
    let wal_bytes = std::fs::read(&wal_file).unwrap();

    // Reference fingerprints for every operation prefix, computed from
    // uncrashed replays.
    let mut reference = Vec::new();
    for prefix_len in 0..=ops.len() {
        let dir = unique_dir("ref");
        let index = apply_ops(&dir, &ops[..prefix_len]);
        reference.push(fingerprint(&index));
        drop(index);
        std::fs::remove_dir_all(&dir).ok();
    }

    for cut in 0..=wal_bytes.len() {
        let dir = unique_dir("cut");
        std::fs::copy(full_dir.join("base.seg"), dir.join("base.seg")).unwrap();
        std::fs::copy(full_dir.join("CURRENT"), dir.join("CURRENT")).unwrap();
        std::fs::write(dir.join("wal-0.log"), &wal_bytes[..cut]).unwrap();

        match DurableIndex::open(&dir) {
            Ok((index, report)) => {
                let survived = report.replayed_records;
                assert!(
                    survived <= ops.len(),
                    "cut {cut}: more records than operations"
                );
                assert_eq!(
                    fingerprint(&index),
                    reference[survived],
                    "cut {cut}: recovered index must answer exactly like an \
                     uncrashed index over the surviving {survived}-record prefix"
                );
                if cut < wal_bytes.len() {
                    assert!(
                        report.torn_tail.is_some() || survived < ops.len() || cut == 0,
                        "cut {cut}: dropped bytes must be reported"
                    );
                }
            }
            Err(error) => {
                // A cut inside the 12-byte WAL header is unrecoverable
                // metadata loss; everywhere else recovery must succeed.
                assert!(cut < 12, "cut {cut} should recover, got: {error}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&full_dir).ok();
}

/// The same matrix, post-compaction: cuts land in `wal-1.log` whose
/// first record is the compact-epoch id map.
#[test]
fn kill_at_every_position_after_compaction() {
    let full_dir = unique_dir("compact-full");
    let mut index = apply_ops(&full_dir, &history());
    index.compact().unwrap();
    // Post-compaction tail: one insert, one remove.
    index.insert(object(7)).unwrap();
    index.remove(3).unwrap();
    let tail_fingerprints = [
        fingerprint(&{
            let d = unique_dir("ct0");
            std::mem::drop(std::fs::remove_dir_all(&d));
            let dir2 = unique_dir("ct0b");
            let mut i = apply_ops(&dir2, &history());
            i.compact().unwrap();
            std::fs::remove_dir_all(&d).ok();
            i
        }),
        fingerprint(&{
            let dir2 = unique_dir("ct1");
            let mut i = apply_ops(&dir2, &history());
            i.compact().unwrap();
            i.insert(object(7)).unwrap();
            i
        }),
        fingerprint(&{
            let dir2 = unique_dir("ct2");
            let mut i = apply_ops(&dir2, &history());
            i.compact().unwrap();
            i.insert(object(7)).unwrap();
            i.remove(3).unwrap();
            i
        }),
    ];
    drop(index);
    let wal_file = full_dir.join("wal-1.log");
    let wal_bytes = std::fs::read(&wal_file).unwrap();

    for cut in 0..=wal_bytes.len() {
        let dir = unique_dir("ccut");
        std::fs::copy(full_dir.join("base.seg"), dir.join("base.seg")).unwrap();
        std::fs::copy(full_dir.join("sealed-1.seg"), dir.join("sealed-1.seg")).unwrap();
        std::fs::copy(full_dir.join("CURRENT"), dir.join("CURRENT")).unwrap();
        std::fs::write(dir.join("wal-1.log"), &wal_bytes[..cut]).unwrap();

        match DurableIndex::open(&dir) {
            Ok((recovered, report)) => {
                // The compact-epoch record is mandatory: an open that
                // succeeds replayed it plus 0..=2 tail records.
                assert!(
                    (1..=3).contains(&report.replayed_records),
                    "cut {cut}: unexpected record count {}",
                    report.replayed_records
                );
                let tail_records = report.replayed_records - 1;
                assert_eq!(
                    fingerprint(&recovered),
                    tail_fingerprints[tail_records],
                    "cut {cut}: post-compaction recovery must match the \
                     uncrashed {tail_records}-tail-record run"
                );
            }
            Err(error) => {
                // Losing the header or the mandatory compact-epoch
                // record is a typed failure, never a silent empty index.
                assert!(
                    matches!(error, DurableError::Store(_)),
                    "cut {cut}: {error}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&full_dir).ok();
}

/// Every single-byte flip in the WAL either reopens with a reported
/// clean prefix or fails typed — never a wrong answer, never a panic.
#[test]
fn byte_flips_never_corrupt_answers() {
    let ops = history();
    let full_dir = unique_dir("flip-full");
    drop(apply_ops(&full_dir, &ops));
    let wal_bytes = std::fs::read(full_dir.join("wal-0.log")).unwrap();

    let mut reference = Vec::new();
    for prefix_len in 0..=ops.len() {
        let dir = unique_dir("flip-ref");
        reference.push(fingerprint(&apply_ops(&dir, &ops[..prefix_len])));
        std::fs::remove_dir_all(&dir).ok();
    }

    for position in 0..wal_bytes.len() {
        let mut mutated = wal_bytes.clone();
        mutated[position] ^= 0x40;
        let dir = unique_dir("flip");
        std::fs::copy(full_dir.join("base.seg"), dir.join("base.seg")).unwrap();
        std::fs::copy(full_dir.join("CURRENT"), dir.join("CURRENT")).unwrap();
        std::fs::write(dir.join("wal-0.log"), &mutated).unwrap();

        if let Ok((recovered, report)) = DurableIndex::open(&dir) {
            let survived = report.replayed_records;
            assert_eq!(
                fingerprint(&recovered),
                reference[survived],
                "flip at {position}: surviving prefix must be bit-identical"
            );
            assert!(
                survived == ops.len() || report.torn_tail.is_some(),
                "flip at {position}: dropped records must be reported"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&full_dir).ok();
}

/// Faultkit sweep: for every seed, run ingest + compaction under the
/// seeded fault schedule. Whatever fails, fails typed; reopening with no
/// faults recovers an index whose answers are internally consistent.
#[test]
fn seeded_fault_schedules_always_recover() {
    for seed in 0..64 {
        let plan = Arc::new(FailPlan::from_seed(seed));
        let dir = unique_dir("seeded");
        let c = cost();
        let r = reduced(&c);
        let outcome = (|| -> Result<(), DurableError> {
            let mut index = DurableIndex::create_with(&dir, c, r, plan.clone())?;
            for i in 0..6 {
                index.insert(object(i))?;
            }
            index.remove(2)?;
            index.compact()?;
            index.insert(object(6))?;
            Ok(())
        })();
        if let Err(error) = outcome {
            // Injected failures must surface as store-typed errors.
            assert!(
                matches!(error, DurableError::Store(_)),
                "seed {seed}: {error}"
            );
        }
        // Recovery with faults disarmed: open must succeed (or the
        // directory predates even `create` finishing its checkpoint).
        match DurableIndex::open(&dir) {
            Ok((recovered, _)) => {
                if !recovered.is_empty() {
                    let (hits, _) = recovered.knn(&h(&[0.25, 0.25, 0.25, 0.25]), 1).unwrap();
                    assert_eq!(hits.len(), 1, "seed {seed}: recovered index answers");
                }
            }
            Err(DurableError::Store(_)) => {
                // A schedule that killed `create` before the checkpoint
                // flip leaves no index — acceptable, typed.
            }
            Err(other) => panic!("seed {seed}: unexpected {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Arbitrary insert/remove interleavings, written durably and reopened,
/// replay to a bit-identical index.
#[derive(Clone, Copy, Debug)]
enum RawOp {
    Insert(u64),
    RemoveNth(usize),
}

fn raw_ops() -> impl Strategy<Value = Vec<RawOp>> {
    // Low two bits select the op kind (3 = remove, else insert); the
    // rest seeds the histogram or picks the victim.
    prop::collection::vec(0u64..4000, 1..24).prop_map(|codes| {
        codes
            .into_iter()
            .map(|code| {
                if code % 4 == 3 {
                    RawOp::RemoveNth(usize::try_from(code / 4).unwrap_or(0) % 32)
                } else {
                    RawOp::Insert(code)
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn interleavings_replay_bit_identically(ops in raw_ops(), compact_at in 0usize..24) {
        let dir = unique_dir("prop");
        let c = cost();
        let r = reduced(&c);
        let mut index = DurableIndex::create(&dir, c, r).unwrap();
        let mut live: Vec<u64> = Vec::new();
        for (step, op) in ops.iter().enumerate() {
            match op {
                RawOp::Insert(seed) => {
                    live.push(index.append_insert(object(*seed)).unwrap());
                }
                RawOp::RemoveNth(n) => {
                    if !live.is_empty() {
                        let id = live.remove(n % live.len());
                        prop_assert!(index.append_remove(id).unwrap());
                    }
                }
            }
            if step + 1 == compact_at && !index.is_empty() {
                index.sync().unwrap();
                index.compact().unwrap();
            }
        }
        index.sync().unwrap();
        let before = fingerprint(&index);
        drop(index);
        let (reopened, _) = DurableIndex::open(&dir).unwrap();
        prop_assert_eq!(before, fingerprint(&reopened));
        std::fs::remove_dir_all(&dir).ok();
    }
}
