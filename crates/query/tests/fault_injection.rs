//! Deterministic fault injection through the query engine: every
//! injected fault surfaces as the right typed error or a principled
//! degraded outcome — and the engine keeps answering afterwards.

// Test helpers outside #[test] fns still get test-style panic latitude.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use emd_core::{ground, Budget, BudgetReason, Histogram};
use emd_faultkit::{FailPlan, FaultInjector, InjectedPanic};
use emd_query::{
    Database, EmdDistance, Executor, Filter, Query, QueryError, QueryPlan, ReducedEmdFilter,
};
use emd_reduction::{CombiningReduction, PersistedReduction, ReducedEmd};
use emd_store::StoreError;
use std::path::PathBuf;
use std::sync::Arc;

const DIM: usize = 4;

/// Suppress the default panic-hook noise for *injected* panics only;
/// genuine panics still print as usual.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

fn histograms() -> Vec<Histogram> {
    vec![
        Histogram::new(vec![1.0, 0.0, 0.0, 0.0]).unwrap(),
        Histogram::new(vec![0.0, 1.0, 0.0, 0.0]).unwrap(),
        Histogram::new(vec![0.0, 0.5, 0.5, 0.0]).unwrap(),
        Histogram::new(vec![0.25, 0.25, 0.25, 0.25]).unwrap(),
        Histogram::new(vec![0.0, 0.0, 0.0, 1.0]).unwrap(),
        Histogram::new(vec![0.5, 0.0, 0.0, 0.5]).unwrap(),
    ]
}

fn database() -> Database {
    let cost = Arc::new(ground::linear(DIM).unwrap());
    Database::new(histograms(), cost).unwrap()
}

fn executor(database: &Database) -> Executor {
    let reduced = ReducedEmd::new(
        database.cost(),
        CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap(),
    )
    .unwrap();
    let stages: Vec<Box<dyn Filter>> =
        vec![Box::new(ReducedEmdFilter::new(database, reduced).unwrap())];
    let refiner = Box::new(EmdDistance::new(database).unwrap());
    Executor::new(QueryPlan::new(stages, refiner).unwrap())
}

fn query() -> Histogram {
    Histogram::new(vec![0.5, 0.5, 0.0, 0.0]).unwrap()
}

fn workload() -> Vec<Query> {
    histograms().into_iter().map(|h| Query::knn(h, 2)).collect()
}

#[test]
fn injected_solve_exhaustion_degrades_then_engine_recovers() {
    let database = database();
    let executor = executor(&database);
    let (baseline, _) = executor.knn(&query(), 2).unwrap();

    // Walk the failpoint over every solve position in the query (filter
    // materialization + refinements; 32 safely covers both).
    let mut degraded_seen = 0;
    for j in 1..=32u64 {
        let plan: Arc<dyn FaultInjector> = Arc::new(FailPlan::new().exhaust_solve(j));
        let budget = Budget::unlimited().with_faults(plan);
        let (outcome, _) = executor.knn_budgeted(&query(), 2, &budget).unwrap();
        if let Some(result) = outcome.degraded() {
            degraded_seen += 1;
            assert_eq!(result.reason, BudgetReason::Injected, "solve {j}");
        }

        // The fault lived only in that budget: the same executor answers
        // the next query exactly.
        let (again, _) = executor.knn(&query(), 2).unwrap();
        assert_eq!(again, baseline, "after injected solve {j}");
    }
    assert!(degraded_seen > 0, "no solve position ever degraded");
}

#[test]
fn injected_worker_panic_is_isolated_to_its_chunk() {
    quiet_injected_panics();
    let database = database();
    let clean = executor(&database);
    let queries = workload();
    let (baseline, _) = clean.run_batch(&queries, 1).unwrap();

    // 3 threads over 6 queries: worker 1 owns queries 2 and 3.
    let faulty = executor(&database).with_faults(Arc::new(FailPlan::new().panic_worker(1)));
    let (results, stats) = faulty.run_batch_isolated(&queries, 3);
    assert_eq!(results.len(), queries.len());
    for (i, result) in results.iter().enumerate() {
        if i == 2 || i == 3 {
            assert!(
                matches!(result, Err(QueryError::WorkerPanicked { worker: 1, .. })),
                "query {i}: expected WorkerPanicked, got {result:?}"
            );
        } else {
            assert_eq!(result.as_ref().unwrap(), &baseline[i], "query {i}");
        }
    }

    // Survivor stats merge exactly as a batch over the surviving queries.
    let survivors: Vec<Query> = queries
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 2 && *i != 3)
        .map(|(_, q)| q.clone())
        .collect();
    let (_, expected_stats) = clean.run_batch(&survivors, 1).unwrap();
    assert_eq!(stats, expected_stats);
}

#[test]
fn run_batch_reports_worker_panic_as_typed_error() {
    quiet_injected_panics();
    let database = database();
    let faulty = executor(&database).with_faults(Arc::new(FailPlan::new().panic_worker(0)));
    let err = faulty.run_batch(&workload(), 2).unwrap_err();
    assert!(
        matches!(err, QueryError::WorkerPanicked { worker: 0, .. }),
        "expected WorkerPanicked, got {err:?}"
    );
    let detail = err.to_string();
    assert!(
        detail.contains("worker 0"),
        "diagnostic names the worker: {detail}"
    );

    // The executor is not poisoned: sequential queries still succeed.
    let (neighbors, _) = faulty.knn(&query(), 2).unwrap();
    assert_eq!(neighbors.len(), 2);
}

#[test]
fn injected_store_read_faults_surface_and_clear() {
    let mut dir: PathBuf = std::env::temp_dir();
    dir.push(format!("emd-query-faults-open-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let database = database();
    let reduced = ReducedEmd::new(
        database.cost(),
        CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap(),
    )
    .unwrap();
    let bundle = PersistedReduction::precompute("kmed:2", reduced, database.histograms()).unwrap();
    database.save(&dir, "faulty", &[bundle]).unwrap();

    // Reads: 1 = manifest, 2 = database segment, 3 = reduction segment.
    for k in 1..=3u64 {
        let plan = FailPlan::new().fail_read(k);
        let err = Database::open_with(&dir, &plan).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "read {k}: {err}");
    }

    // Injection never touched the directory: a clean open serves queries.
    let opened = Database::open(&dir).unwrap();
    let executor = executor(&opened.database);
    let (neighbors, _) = executor.knn(&query(), 2).unwrap();
    assert_eq!(neighbors.len(), 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn seeded_fault_plans_never_leave_the_engine_wedged() {
    quiet_injected_panics();
    let database = database();
    let queries = workload();
    let clean = executor(&database);
    let (baseline, _) = clean.run_batch(&queries, 1).unwrap();

    for seed in 0..64u64 {
        let plan = Arc::new(FailPlan::from_seed(seed));
        let faulty = executor(&database).with_faults(plan.clone());
        let budget = Budget::unlimited().with_faults(plan);

        // Batched with panic isolation: every per-query result is either
        // exact or the typed worker-panic error.
        let (results, _) = faulty.run_batch_isolated(&queries, 2);
        for (i, result) in results.iter().enumerate() {
            match result {
                Ok(neighbors) => assert_eq!(neighbors, &baseline[i], "seed {seed} query {i}"),
                Err(QueryError::WorkerPanicked { .. }) => {}
                Err(other) => panic!("seed {seed} query {i}: unexpected error {other:?}"),
            }
        }

        // Budgeted single query: exact or degraded, never an error.
        let (outcome, _) = clean.knn_budgeted(&query(), 2, &budget).unwrap();
        if let Some(result) = outcome.degraded() {
            assert_eq!(result.reason, BudgetReason::Injected, "seed {seed}");
        }

        // And the engine always answers the next clean query.
        let (again, _) = clean.knn(&query(), 2).unwrap();
        assert_eq!(again.len(), 2, "seed {seed}");
    }
}
