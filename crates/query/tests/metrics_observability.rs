//! Observability must never change answers: queries executed under a
//! metrics recording scope return bit-identical neighbors to unscoped
//! execution, and the `run_batch` per-thread registry merge produces
//! counter totals invariant under the thread count.

// Test helpers outside #[test] fns still get test-style panic latitude.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use emd_core::{ground, Histogram};
use emd_query::{Database, EmdDistance, Executor, Filter, Query, QueryPlan, ReducedEmdFilter};
use emd_reduction::{CombiningReduction, ReducedEmd};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const DIM: usize = 6;

fn histogram() -> impl Strategy<Value = Histogram> {
    prop::collection::vec(0.0_f64..1.0, DIM).prop_filter_map("positive mass", |raw| {
        let total: f64 = raw.iter().sum();
        (total > 1e-6)
            .then(|| Histogram::new(raw.iter().map(|x| x / total).collect()).ok())
            .flatten()
    })
}

/// The paper's canonical chain for these tests: one Red-EMD stage over a
/// 3-bin combining reduction, refined by the exact EMD.
fn chained_executor(database: &Database) -> Executor {
    let r = CombiningReduction::new(vec![0, 0, 1, 1, 2, 2], 3).unwrap();
    let reduced = ReducedEmd::new(database.cost(), r).unwrap();
    let stages: Vec<Box<dyn Filter>> =
        vec![Box::new(ReducedEmdFilter::new(database, reduced).unwrap())];
    let refiner = Box::new(EmdDistance::new(database).unwrap());
    Executor::new(QueryPlan::new(stages, refiner).unwrap())
}

fn fixed_database(n: usize) -> Database {
    let cost = Arc::new(ground::linear(DIM).unwrap());
    let histograms: Vec<Histogram> = (0..n)
        .map(|i| {
            let mut bins = [1.0; DIM];
            // bounds: i % DIM and (i / DIM) % DIM are both < DIM
            bins[i % DIM] += (i + 1) as f64;
            bins[(i / DIM) % DIM] += 2.0;
            let total: f64 = bins.iter().sum();
            Histogram::new(bins.iter().map(|b| b / total).collect()).unwrap()
        })
        .collect();
    Database::new(histograms, cost).unwrap()
}

fn fixed_workload(n: usize) -> Vec<Query> {
    (0..n)
        .map(|i| {
            let mut bins = [1.0; DIM];
            // bounds: (i * 2 + 1) % DIM < DIM
            bins[(i * 2 + 1) % DIM] += i as f64;
            let total: f64 = bins.iter().sum();
            let histogram = Histogram::new(bins.iter().map(|b| b / total).collect()).unwrap();
            if i % 2 == 0 {
                Query::knn(histogram, 1 + i % 3)
            } else {
                Query::range(histogram, (i as f64).mul_add(0.25, 0.5))
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recording metrics is invisible to the computation: identical ids
    /// and the exact same f64 distances with and without a scope.
    #[test]
    fn metrics_scope_never_changes_answers(
        database in prop::collection::vec(histogram(), 4..12),
        query in histogram(),
        k in 1usize..5,
        epsilon in 0.0_f64..2.5,
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(database, cost).unwrap();
        let executor = chained_executor(&database);

        let (plain_knn, plain_knn_stats) = executor.knn(&query, k).unwrap();
        let (plain_range, plain_range_stats) = executor.range(&query, epsilon).unwrap();

        let recording = emd_obs::Recording::start();
        let (scoped_knn, scoped_knn_stats) = executor.knn(&query, k).unwrap();
        let (scoped_range, scoped_range_stats) = executor.range(&query, epsilon).unwrap();
        let registry = recording.finish();

        // Bit-identical results and identical stats façade output.
        prop_assert_eq!(plain_knn, scoped_knn);
        prop_assert_eq!(plain_range, scoped_range);
        prop_assert_eq!(&plain_knn_stats, &scoped_knn_stats);
        prop_assert_eq!(&plain_range_stats, &scoped_range_stats);

        // And the registry mirrors the stats façade exactly.
        prop_assert_eq!(registry.counter("query.queries"), 2);
        let expected_refinements =
            (plain_knn_stats.refinements + plain_range_stats.refinements) as u64;
        prop_assert_eq!(registry.counter("query.refinements"), expected_refinements);
        let expected_stage: usize = plain_knn_stats
            .filter_evaluations
            .iter()
            .chain(plain_range_stats.filter_evaluations.iter())
            .map(|(_, n)| n)
            .sum();
        prop_assert_eq!(
            registry.counter("query.stage.red-emd(d'=3/3).evaluations"),
            expected_stage as u64
        );
    }
}

/// Registry counters recorded through `run_batch` are invariant under the
/// thread count: workers record into thread-local registries and the
/// caller absorbs them in chunk order, so the merged totals match the
/// sequential run exactly. (Histogram *sums* reflect wall-clock and are
/// deliberately excluded; their observation counts are compared.)
#[test]
fn batch_registry_merge_is_thread_count_invariant() {
    let database = fixed_database(24);
    let executor = chained_executor(&database);
    let workload = fixed_workload(12);

    let totals = |threads: usize| -> (BTreeMap<String, u64>, BTreeMap<String, u64>) {
        let recording = emd_obs::Recording::start();
        let (results, _) = executor.run_batch(&workload, threads).unwrap();
        let registry = recording.finish();
        assert_eq!(results.len(), workload.len());
        let histogram_counts = registry
            .histograms()
            .iter()
            .map(|(name, h)| (name.clone(), h.count()))
            .collect();
        (registry.counters().clone(), histogram_counts)
    };

    let (baseline_counters, baseline_histograms) = totals(1);
    assert!(
        baseline_counters.contains_key("query.queries"),
        "sequential batch must record query counters"
    );
    assert!(
        baseline_histograms.contains_key("query.execute"),
        "sequential batch must record span histograms"
    );
    for threads in [2, 3, 5, 8] {
        let (counters, histograms) = totals(threads);
        assert_eq!(
            baseline_counters, counters,
            "counter totals diverged at {threads} threads"
        );
        assert_eq!(
            baseline_histograms, histograms,
            "span observation counts diverged at {threads} threads"
        );
    }
}
