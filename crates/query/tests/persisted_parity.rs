//! Disk/memory parity: a pipeline rebuilt from a persisted index answers
//! every query bit-identically to the pipeline built in memory — same
//! neighbors, same distances, and the same per-stage candidate counts.

// Test helpers outside #[test] fns still get test-style panic latitude.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use emd_core::{ground, Histogram};
use emd_query::{
    Database, EmdDistance, Executor, Filter, QueryPlan, ReducedEmdFilter, ReducedImFilter,
};
use emd_reduction::{CombiningReduction, PersistedReduction, ReducedEmd};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const DIM: usize = 6;

fn scratch_dir() -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("emd-query-parity-{}-{id}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn histogram() -> impl Strategy<Value = Histogram> {
    prop::collection::vec(0.0_f64..1.0, DIM).prop_filter_map("positive mass", |raw| {
        let total: f64 = raw.iter().sum();
        (total > 1e-6)
            .then(|| Histogram::new(raw.iter().map(|x| x / total).collect()).ok())
            .flatten()
    })
}

fn reduction() -> impl Strategy<Value = CombiningReduction> {
    (1..=DIM).prop_flat_map(|k| {
        (
            Just(k),
            prop::collection::vec(0..k, DIM),
            prop::sample::subsequence((0..DIM).collect::<Vec<_>>(), k),
        )
            .prop_map(|(k, mut assignment, seeds)| {
                for (group, &dimension) in seeds.iter().enumerate() {
                    assignment[dimension] = group;
                }
                CombiningReduction::new(assignment, k).expect("valid by construction")
            })
    })
}

fn executor(database: &Database, stages: Vec<Box<dyn Filter>>) -> Executor {
    let refiner = Box::new(EmdDistance::new(database).unwrap());
    Executor::new(QueryPlan::new(stages, refiner).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Red-IM -> Red-EMD -> EMD` built from a save/open round trip is
    /// indistinguishable from the in-memory build: bit-identical k-NN
    /// results AND identical filter-stage evaluation counts.
    #[test]
    fn persisted_pipeline_matches_in_memory_bit_for_bit(
        histograms in prop::collection::vec(histogram(), 4..14),
        query in histogram(),
        r in reduction(),
        chain in prop::sample::select(vec![false, true]),
        k in 1usize..6,
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(histograms, cost).unwrap();
        let reduced = ReducedEmd::new(database.cost(), r).unwrap();
        let bundle =
            PersistedReduction::precompute("parity", reduced.clone(), database.histograms())
                .unwrap();

        // Persist and reopen: the index-backed database and bundle.
        let dir = scratch_dir();
        database.save(&dir, "parity-corpus", &[bundle]).unwrap();
        let opened = Database::open(&dir).unwrap();
        prop_assert_eq!(opened.name.as_str(), "parity-corpus");
        prop_assert_eq!(opened.reductions.len(), 1);
        let reopened_bundle = opened.reductions.into_iter().next().unwrap();

        let mut memory_stages: Vec<Box<dyn Filter>> = Vec::new();
        let mut disk_stages: Vec<Box<dyn Filter>> = Vec::new();
        if chain {
            memory_stages.push(Box::new(
                ReducedImFilter::new(&database, reduced.clone()).unwrap(),
            ));
            disk_stages.push(Box::new(
                ReducedImFilter::from_persisted(&opened.database, reopened_bundle.clone())
                    .unwrap(),
            ));
        }
        memory_stages.push(Box::new(ReducedEmdFilter::new(&database, reduced).unwrap()));
        disk_stages.push(Box::new(
            ReducedEmdFilter::from_persisted(&opened.database, reopened_bundle).unwrap(),
        ));

        let memory = executor(&database, memory_stages);
        let disk = executor(&opened.database, disk_stages);

        let (memory_neighbors, memory_stats) = memory.knn(&query, k).unwrap();
        let (disk_neighbors, disk_stats) = disk.knn(&query, k).unwrap();

        // Bit-identical results: same ids and the exact same f64 bits.
        prop_assert_eq!(memory_neighbors.len(), disk_neighbors.len());
        for (m, d) in memory_neighbors.iter().zip(&disk_neighbors) {
            prop_assert_eq!(m.id, d.id);
            prop_assert_eq!(m.distance.to_bits(), d.distance.to_bits());
        }
        // Identical filter behavior: same stage names, same candidate
        // counts, same number of exact refinements.
        prop_assert_eq!(&memory_stats.filter_evaluations, &disk_stats.filter_evaluations);
        prop_assert_eq!(memory_stats.refinements, disk_stats.refinements);

        std::fs::remove_dir_all(&dir).ok();
    }
}
