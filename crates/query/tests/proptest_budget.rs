//! Properties of budgeted execution: degraded rankings are principled
//! (every bound is a valid lower bound of the exact EMD, ordered
//! ascending, exact flags truthful), and an unlimited budget is
//! bit-identical to the unbudgeted path.

// Test helpers outside #[test] fns still get test-style panic latitude.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use emd_core::{emd_rectangular, ground, Budget, CancelToken, Histogram};
use emd_query::{
    Database, EmdDistance, Executor, Filter, QueryOutcome, QueryPlan, ReducedEmdFilter,
    ReducedImFilter,
};
use emd_reduction::{CombiningReduction, ReducedEmd};
use proptest::prelude::*;
use std::sync::Arc;

const DIM: usize = 6;

fn histogram() -> impl Strategy<Value = Histogram> {
    prop::collection::vec(0.0_f64..1.0, DIM).prop_filter_map("positive mass", |raw| {
        let total: f64 = raw.iter().sum();
        (total > 1e-6)
            .then(|| Histogram::new(raw.iter().map(|x| x / total).collect()).ok())
            .flatten()
    })
}

/// The paper's standard two-stage chain (`Red-IM -> Red-EMD`) over an
/// exact-EMD refiner: both solver-backed stages consult the budget.
///
/// Warm starting is forced off: the properties below compare exact-flagged
/// bounds bit-for-bit against a cold [`emd_rectangular`] oracle, and on the
/// tie-prone linear ground distance a warm-started solve may settle on a
/// different (equally optimal) basis whose objective differs in the last
/// ulp.
fn executor(database: &Database) -> Executor {
    let reduced = ReducedEmd::new(
        database.cost(),
        CombiningReduction::new(vec![0, 0, 1, 1, 2, 2], 3).unwrap(),
    )
    .unwrap();
    let stages: Vec<Box<dyn Filter>> = vec![
        Box::new(ReducedImFilter::new(database, reduced.clone()).unwrap()),
        Box::new(
            ReducedEmdFilter::new(database, reduced)
                .unwrap()
                .with_warm_start(false),
        ),
    ];
    let refiner = Box::new(EmdDistance::new(database).unwrap().with_warm_start(false));
    Executor::new(QueryPlan::new(stages, refiner).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under any pivot cap, a budgeted k-NN query either returns the
    /// exact answer (bit-identical to the unbudgeted run) or degrades to
    /// a ranking in which every bound is a valid lower bound of the
    /// exact EMD, exact flags are truthful, and the order is ascending
    /// `(bound, id)`.
    #[test]
    fn degraded_rankings_are_principled(
        database in prop::collection::vec(histogram(), 4..12),
        query in histogram(),
        k in 1usize..5,
        cap in 0u64..48,
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(database, cost).unwrap();
        let executor = executor(&database);
        let (exact, _) = executor.knn(&query, k).unwrap();

        let budget = Budget::unlimited().with_pivot_cap(cap);
        let (outcome, _) = executor.knn_budgeted(&query, k, &budget).unwrap();
        match outcome {
            QueryOutcome::Exact(neighbors) => {
                // The budget never fired: the answer is the exact answer,
                // down to the last distance bit.
                prop_assert_eq!(neighbors.len(), exact.len());
                for (a, b) in neighbors.iter().zip(&exact) {
                    prop_assert_eq!(a.id, b.id);
                    prop_assert_eq!(a.distance.to_bits(), b.distance.to_bits());
                }
            }
            QueryOutcome::Degraded(result) => {
                prop_assert!(result.candidates.len() <= k);
                for pair in result.candidates.windows(2) {
                    let earlier = (pair[0].bound, pair[0].id);
                    let later = (pair[1].bound, pair[1].id);
                    prop_assert!(earlier < later, "ranking not ascending: {earlier:?} vs {later:?}");
                }
                for candidate in &result.candidates {
                    let object = database.get(candidate.id).unwrap();
                    let distance = emd_rectangular(&query, object, database.cost()).unwrap();
                    if candidate.exact {
                        prop_assert_eq!(
                            candidate.bound.to_bits(),
                            distance.to_bits(),
                            "exact-flagged bound must be the exact distance"
                        );
                    } else {
                        prop_assert!(
                            candidate.bound <= distance + 1e-9,
                            "lower bound {} exceeds exact distance {} for object {}",
                            candidate.bound, distance, candidate.id
                        );
                    }
                }
            }
        }
    }

    /// Unlimited budgets take the exact unbudgeted code path: results are
    /// bit-identical and never degraded.
    #[test]
    fn unlimited_budget_is_bit_identical(
        database in prop::collection::vec(histogram(), 4..10),
        query in histogram(),
        k in 1usize..5,
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(database, cost).unwrap();
        let executor = executor(&database);
        let (exact, exact_stats) = executor.knn(&query, k).unwrap();
        let (outcome, stats) = executor.knn_budgeted(&query, k, &Budget::unlimited()).unwrap();
        let neighbors = outcome.exact().expect("unlimited budget cannot degrade");
        prop_assert_eq!(neighbors.len(), exact.len());
        for (a, b) in neighbors.iter().zip(&exact) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
        prop_assert_eq!(stats, exact_stats);
    }

    /// Degraded range answers only ever contain candidates whose bound is
    /// within epsilon, and bounds stay valid lower bounds.
    #[test]
    fn degraded_range_respects_epsilon(
        database in prop::collection::vec(histogram(), 4..10),
        query in histogram(),
        epsilon in 0.0_f64..3.0,
        cap in 0u64..32,
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(database, cost).unwrap();
        let executor = executor(&database);
        let budget = Budget::unlimited().with_pivot_cap(cap);
        let (outcome, _) = executor.range_budgeted(&query, epsilon, &budget).unwrap();
        if let QueryOutcome::Degraded(result) = outcome {
            for candidate in &result.candidates {
                prop_assert!(candidate.bound <= epsilon);
                let object = database.get(candidate.id).unwrap();
                let distance = emd_rectangular(&query, object, database.cost()).unwrap();
                if candidate.exact {
                    prop_assert_eq!(candidate.bound.to_bits(), distance.to_bits());
                } else {
                    prop_assert!(candidate.bound <= distance + 1e-9);
                }
            }
        }
    }

    /// A pre-cancelled budget degrades before any refinement: every
    /// candidate is a non-exact filter bound (or the ranking is empty),
    /// and re-running without a budget still yields the exact answer.
    #[test]
    fn cancellation_degrades_and_execution_recovers(
        database in prop::collection::vec(histogram(), 4..10),
        query in histogram(),
        k in 1usize..5,
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(database, cost).unwrap();
        let executor = executor(&database);

        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel(token);
        let (outcome, _) = executor.knn_budgeted(&query, k, &budget).unwrap();
        let result = outcome.degraded().expect("cancelled budget must degrade");
        prop_assert_eq!(result.reason, emd_core::BudgetReason::Cancelled);
        prop_assert!(result.candidates.iter().all(|c| !c.exact));

        // Same executor, no budget: exact answer, full size.
        let (exact, _) = executor.knn(&query, k).unwrap();
        prop_assert_eq!(exact.len(), k.min(database.len()));
    }
}
