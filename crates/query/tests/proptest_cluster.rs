//! Property-based validation of the clustered candidate source: for
//! random databases (including ones whose min-reduced ground distance is
//! *not* a metric and must be closed), a plan driven by
//! [`ClusteredIndex`] answers k-NN and range queries bit-identically to
//! the full Red-EMD scan plan, budgeted execution stays principled, and
//! the persisted geometry round-trips into an index with the same
//! answers.

// Test helpers outside #[test] fns still get test-style panic latitude.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use emd_core::{emd_rectangular, ground, Budget, Histogram};
use emd_query::{
    ClusteredIndex, Database, EmdDistance, Executor, Filter, QueryOutcome, QueryPlan,
    ReducedEmdFilter,
};
use emd_reduction::{CombiningReduction, PersistedReduction, ReducedEmd};
use proptest::prelude::*;
use std::sync::Arc;

const DIM: usize = 6;

fn histogram() -> impl Strategy<Value = Histogram> {
    prop::collection::vec(0.0_f64..1.0, DIM).prop_filter_map("positive mass", |raw| {
        let total: f64 = raw.iter().sum();
        (total > 1e-6)
            .then(|| Histogram::new(raw.iter().map(|x| x / total).collect()).ok())
            .flatten()
    })
}

/// The shared reduction of every plan in this suite: contiguous pairs,
/// `d' = 3`. Min-reducing the plain 6-bin chain over these blocks
/// violates the triangle inequality, so every property here exercises
/// the metric-closure construction path.
fn reduced(database: &Database) -> ReducedEmd {
    ReducedEmd::new(
        database.cost(),
        CombiningReduction::new(vec![0, 0, 1, 1, 2, 2], 3).unwrap(),
    )
    .unwrap()
}

/// Full-scan comparison plan: one Red-EMD stage over a cold exact-EMD
/// refiner. Warm starts are off so refined distances are independent of
/// refinement order and cross-plan answers can be compared bit-for-bit.
fn scan_executor(database: &Database) -> Executor {
    let stages: Vec<Box<dyn Filter>> = vec![Box::new(
        ReducedEmdFilter::new(database, reduced(database))
            .unwrap()
            .with_warm_start(false),
    )];
    let refiner = Box::new(EmdDistance::new(database).unwrap().with_warm_start(false));
    Executor::new(QueryPlan::new(stages, refiner).unwrap())
}

/// Clustered plan: the same snapshot behind a [`ClusteredIndex`]
/// candidate source (no filter stages) over the same cold refiner.
fn clustered_executor(database: &Database, factor: f64) -> Executor {
    let index = ClusteredIndex::build(database, reduced(database), factor).unwrap();
    let refiner = Box::new(EmdDistance::new(database).unwrap().with_warm_start(false));
    let plan = QueryPlan::new(Vec::new(), refiner)
        .unwrap()
        .with_source(Box::new(index))
        .unwrap();
    Executor::new(plan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Clustered k-NN answers equal the full-scan plan's answers down to
    /// the last distance bit, for any cluster-count factor.
    #[test]
    fn clustered_knn_is_bit_identical_to_scan(
        database in prop::collection::vec(histogram(), 3..24),
        query in histogram(),
        k in 1usize..6,
        factor in prop::sample::select(vec![0.5_f64, 1.0, 2.0]),
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(database, cost).unwrap();
        let scan = scan_executor(&database);
        let clustered = clustered_executor(&database, factor);

        let (expected, _) = scan.knn(&query, k).unwrap();
        let (got, _) = clustered.knn(&query, k).unwrap();
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            prop_assert_eq!(g.id, e.id);
            prop_assert_eq!(g.distance.to_bits(), e.distance.to_bits());
        }
    }

    /// Clustered range answers equal the full-scan plan's answers —
    /// same hit set, same bits (boundary inclusion must match).
    #[test]
    fn clustered_range_is_bit_identical_to_scan(
        database in prop::collection::vec(histogram(), 3..20),
        query in histogram(),
        epsilon in 0.0_f64..3.0,
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(database, cost).unwrap();
        let scan = scan_executor(&database);
        let clustered = clustered_executor(&database, 1.0);

        let (expected, _) = scan.range(&query, epsilon).unwrap();
        let (got, _) = clustered.range(&query, epsilon).unwrap();
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            prop_assert_eq!(g.id, e.id);
            prop_assert_eq!(g.distance.to_bits(), e.distance.to_bits());
        }
    }

    /// An unlimited budget through the clustered source never degrades
    /// and matches the unbudgeted clustered run bit-for-bit.
    #[test]
    fn clustered_unlimited_budget_is_bit_identical(
        database in prop::collection::vec(histogram(), 3..16),
        query in histogram(),
        k in 1usize..5,
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(database, cost).unwrap();
        let clustered = clustered_executor(&database, 1.0);

        let (exact, exact_stats) = clustered.knn(&query, k).unwrap();
        let (outcome, stats) =
            clustered.knn_budgeted(&query, k, &Budget::unlimited()).unwrap();
        let neighbors = outcome.exact().expect("unlimited budget cannot degrade");
        prop_assert_eq!(neighbors.len(), exact.len());
        for (a, b) in neighbors.iter().zip(&exact) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
        prop_assert_eq!(stats, exact_stats);
    }

    /// Under any pivot cap, budgeted clustered k-NN either matches the
    /// exact answer bit-for-bit or degrades to a principled ranking:
    /// ascending `(bound, id)`, every bound a valid lower bound of the
    /// exact EMD, exact flags truthful.
    #[test]
    fn clustered_degraded_rankings_are_principled(
        database in prop::collection::vec(histogram(), 4..12),
        query in histogram(),
        k in 1usize..5,
        cap in 0u64..48,
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(database, cost).unwrap();
        let clustered = clustered_executor(&database, 1.0);
        let (exact, _) = clustered.knn(&query, k).unwrap();

        let budget = Budget::unlimited().with_pivot_cap(cap);
        let (outcome, _) = clustered.knn_budgeted(&query, k, &budget).unwrap();
        match outcome {
            QueryOutcome::Exact(neighbors) => {
                prop_assert_eq!(neighbors.len(), exact.len());
                for (a, b) in neighbors.iter().zip(&exact) {
                    prop_assert_eq!(a.id, b.id);
                    prop_assert_eq!(a.distance.to_bits(), b.distance.to_bits());
                }
            }
            QueryOutcome::Degraded(result) => {
                prop_assert!(result.candidates.len() <= k);
                for pair in result.candidates.windows(2) {
                    let earlier = (pair[0].bound, pair[0].id);
                    let later = (pair[1].bound, pair[1].id);
                    prop_assert!(earlier < later, "ranking not ascending: {earlier:?} vs {later:?}");
                }
                for candidate in &result.candidates {
                    let object = database.get(candidate.id).unwrap();
                    let distance = emd_rectangular(&query, object, database.cost()).unwrap();
                    if candidate.exact {
                        prop_assert_eq!(
                            candidate.bound.to_bits(),
                            distance.to_bits(),
                            "exact-flagged bound must be the exact distance"
                        );
                    } else {
                        prop_assert!(
                            candidate.bound <= distance + 1e-9,
                            "lower bound {} exceeds exact distance {} for object {}",
                            candidate.bound, distance, candidate.id
                        );
                    }
                }
            }
        }
    }

    /// Exporting the clustering and reattaching it to its bundle
    /// reproduces the geometry bit-for-bit and answers queries
    /// identically to the freshly built index.
    #[test]
    fn stored_roundtrip_preserves_geometry_and_answers(
        database in prop::collection::vec(histogram(), 3..16),
        query in histogram(),
        k in 1usize..5,
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(database, cost).unwrap();
        let bundle = PersistedReduction::precompute(
            "pairs:3",
            reduced(&database),
            database.histograms(),
        )
        .unwrap();
        let built = ClusteredIndex::from_persisted(&database, &bundle, 1.0).unwrap();
        let stored = built.to_stored();
        let reopened = ClusteredIndex::from_stored(&database, &bundle, &stored).unwrap();

        prop_assert_eq!(reopened.pivots(), built.pivots());
        prop_assert_eq!(reopened.assignments(), built.assignments());
        prop_assert_eq!(
            reopened.radii().iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            built.radii().iter().map(|r| r.to_bits()).collect::<Vec<_>>()
        );

        let refiner = |db: &Database| {
            Box::new(EmdDistance::new(db).unwrap().with_warm_start(false))
        };
        let built_exec = Executor::new(
            QueryPlan::new(Vec::new(), refiner(&database))
                .unwrap()
                .with_source(Box::new(built))
                .unwrap(),
        );
        let reopened_exec = Executor::new(
            QueryPlan::new(Vec::new(), refiner(&database))
                .unwrap()
                .with_source(Box::new(reopened))
                .unwrap(),
        );
        let (expected, expected_stats) = built_exec.knn(&query, k).unwrap();
        let (got, got_stats) = reopened_exec.knn(&query, k).unwrap();
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            prop_assert_eq!(g.id, e.id);
            prop_assert_eq!(g.distance.to_bits(), e.distance.to_bits());
        }
        prop_assert_eq!(got_stats, expected_stats);
    }
}
