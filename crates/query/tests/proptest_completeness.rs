//! Completeness of multistep query processing: against random databases,
//! queries and reductions, the filter-and-refine pipelines return exactly
//! the brute-force answers (no false dismissals — the paper's central
//! correctness claim for its filters).

// Test helpers outside #[test] fns still get test-style panic latitude.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use emd_core::{ground, Histogram};
use emd_query::scan::{brute_force_knn, brute_force_range};
use emd_query::{Database, EmdDistance, Neighbor, Pipeline, ReducedEmdFilter, ReducedImFilter};
use emd_reduction::{CombiningReduction, ReducedEmd};
use proptest::prelude::*;
use std::sync::Arc;

const DIM: usize = 6;

fn histogram() -> impl Strategy<Value = Histogram> {
    prop::collection::vec(0.0_f64..1.0, DIM).prop_filter_map("positive mass", |raw| {
        let total: f64 = raw.iter().sum();
        (total > 1e-6)
            .then(|| Histogram::new(raw.iter().map(|x| x / total).collect()).ok())
            .flatten()
    })
}

fn reduction() -> impl Strategy<Value = CombiningReduction> {
    (1..=DIM).prop_flat_map(|k| {
        (
            Just(k),
            prop::collection::vec(0..k, DIM),
            prop::sample::subsequence((0..DIM).collect::<Vec<_>>(), k),
        )
            .prop_map(|(k, mut assignment, seeds)| {
                for (group, &dimension) in seeds.iter().enumerate() {
                    assignment[dimension] = group;
                }
                CombiningReduction::new(assignment, k).expect("valid by construction")
            })
    })
}

/// Canonicalize results so equal-distance ties compare equal.
fn canonical(neighbors: &[Neighbor]) -> Vec<(i64, usize)> {
    let mut pairs: Vec<(i64, usize)> = neighbors
        .iter()
        .map(|n| ((n.distance * 1e9).round() as i64, n.id))
        .collect();
    pairs.sort_unstable();
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chained Red-IM -> Red-EMD -> EMD k-NN equals brute force.
    #[test]
    fn chained_knn_is_complete(
        database in prop::collection::vec(histogram(), 4..14),
        query in histogram(),
        r in reduction(),
        k in 1usize..6,
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(database, cost.clone()).unwrap();
        let reduced = ReducedEmd::new(&cost, r).unwrap();
        let pipeline = Pipeline::new(
            vec![
                Box::new(ReducedImFilter::new(&database, reduced.clone()).unwrap()),
                Box::new(ReducedEmdFilter::new(&database, reduced).unwrap()),
            ],
            EmdDistance::new(&database).unwrap(),
        )
        .unwrap();

        let expected = brute_force_knn(&query, database.histograms(), &cost, k).unwrap();
        let (got, stats) = pipeline.knn(&query, k).unwrap();
        prop_assert_eq!(canonical(&got), canonical(&expected));
        prop_assert!(stats.refinements <= database.len());
    }

    /// Single-stage Red-EMD range query equals brute force.
    #[test]
    fn range_is_complete(
        database in prop::collection::vec(histogram(), 4..12),
        query in histogram(),
        r in reduction(),
        epsilon in 0.0_f64..3.0,
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(database, cost.clone()).unwrap();
        let reduced = ReducedEmd::new(&cost, r).unwrap();
        let pipeline = Pipeline::new(
            vec![Box::new(ReducedEmdFilter::new(&database, reduced).unwrap())],
            EmdDistance::new(&database).unwrap(),
        )
        .unwrap();

        let expected = brute_force_range(&query, database.histograms(), &cost, epsilon).unwrap();
        let (got, _) = pipeline.range(&query, epsilon).unwrap();
        prop_assert_eq!(canonical(&got), canonical(&expected));
    }

    /// Asymmetric reductions (query unreduced) are also complete.
    #[test]
    fn asymmetric_knn_is_complete(
        database in prop::collection::vec(histogram(), 4..10),
        query in histogram(),
        r2 in reduction(),
        k in 1usize..4,
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(database, cost.clone()).unwrap();
        let r1 = CombiningReduction::identity(DIM).unwrap();
        let reduced = ReducedEmd::with_asymmetric(&cost, r1, r2).unwrap();
        let pipeline = Pipeline::new(
            vec![Box::new(ReducedEmdFilter::new(&database, reduced).unwrap())],
            EmdDistance::new(&database).unwrap(),
        )
        .unwrap();
        let expected = brute_force_knn(&query, database.histograms(), &cost, k).unwrap();
        let (got, _) = pipeline.knn(&query, k).unwrap();
        prop_assert_eq!(canonical(&got), canonical(&expected));
    }
}
