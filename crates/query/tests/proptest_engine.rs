//! Plan/executor equivalence: for random databases and *any* valid
//! filter-chain plan (every stage lower-bounds the next), the engine
//! returns exactly the brute-force answer set — k-NN and range, and
//! batched execution is bit-identical to sequential.

// Test helpers outside #[test] fns still get test-style panic latitude.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use emd_core::ground::Metric;
use emd_core::{ground, Histogram};
use emd_query::scan::{brute_force_knn, brute_force_range};
use emd_query::{
    CentroidFilter, Database, EmdDistance, Executor, Filter, FullLbImFilter, Neighbor, Query,
    QueryPlan, ReducedEmdFilter, ReducedImFilter, ScaledL1Filter,
};
use emd_reduction::{CombiningReduction, ReducedEmd};
use proptest::prelude::*;
use std::sync::Arc;

const DIM: usize = 6;

fn histogram() -> impl Strategy<Value = Histogram> {
    prop::collection::vec(0.0_f64..1.0, DIM).prop_filter_map("positive mass", |raw| {
        let total: f64 = raw.iter().sum();
        (total > 1e-6)
            .then(|| Histogram::new(raw.iter().map(|x| x / total).collect()).ok())
            .flatten()
    })
}

fn reduction() -> impl Strategy<Value = CombiningReduction> {
    (1..=DIM).prop_flat_map(|k| {
        (
            Just(k),
            prop::collection::vec(0..k, DIM),
            prop::sample::subsequence((0..DIM).collect::<Vec<_>>(), k),
        )
            .prop_map(|(k, mut assignment, seeds)| {
                for (group, &dimension) in seeds.iter().enumerate() {
                    assignment[dimension] = group;
                }
                CombiningReduction::new(assignment, k).expect("valid by construction")
            })
    })
}

/// Build one of the valid filter chains for `database`. Every produced
/// chain satisfies the chaining condition (stage i lower-bounds stage
/// i+1, the last stage lower-bounds the exact EMD); `0` is the zero-stage
/// sequential scan.
fn chain(database: &Database, variant: u8, r: CombiningReduction) -> Vec<Box<dyn Filter>> {
    let reduced = ReducedEmd::new(database.cost(), r).unwrap();
    match variant {
        0 => vec![],
        1 => vec![Box::new(ReducedEmdFilter::new(database, reduced).unwrap())],
        2 => vec![
            Box::new(ReducedImFilter::new(database, reduced.clone()).unwrap()),
            Box::new(ReducedEmdFilter::new(database, reduced).unwrap()),
        ],
        3 => vec![Box::new(FullLbImFilter::new(database).unwrap())],
        4 => vec![Box::new(ScaledL1Filter::new(database).unwrap())],
        _ => vec![Box::new(
            CentroidFilter::new(database, ground::linear_positions(DIM), Metric::Manhattan)
                .unwrap(),
        )],
    }
}

fn executor(database: &Database, variant: u8, r: CombiningReduction) -> Executor {
    let stages = chain(database, variant, r);
    let refiner = Box::new(EmdDistance::new(database).unwrap());
    Executor::new(QueryPlan::new(stages, refiner).unwrap())
}

/// Canonicalize results so equal-distance ties compare equal.
fn canonical(neighbors: &[Neighbor]) -> Vec<(i64, usize)> {
    let mut pairs: Vec<(i64, usize)> = neighbors
        .iter()
        .map(|n| ((n.distance * 1e9).round() as i64, n.id))
        .collect();
    pairs.sort_unstable();
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any valid plan answers k-NN exactly like brute force.
    #[test]
    fn any_plan_knn_is_complete(
        database in prop::collection::vec(histogram(), 4..14),
        query in histogram(),
        r in reduction(),
        variant in 0u8..6,
        k in 1usize..6,
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(database, cost).unwrap();
        let executor = executor(&database, variant, r);
        let expected =
            brute_force_knn(&query, database.histograms(), database.cost(), k).unwrap();
        let (got, stats) = executor.knn(&query, k).unwrap();
        prop_assert_eq!(canonical(&got), canonical(&expected), "variant {}", variant);
        prop_assert!(stats.refinements <= database.len());
    }

    /// Any valid plan answers range queries exactly like brute force.
    #[test]
    fn any_plan_range_is_complete(
        database in prop::collection::vec(histogram(), 4..12),
        query in histogram(),
        r in reduction(),
        variant in 0u8..6,
        epsilon in 0.0_f64..3.0,
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(database, cost).unwrap();
        let executor = executor(&database, variant, r);
        let expected =
            brute_force_range(&query, database.histograms(), database.cost(), epsilon).unwrap();
        let (got, _) = executor.range(&query, epsilon).unwrap();
        prop_assert_eq!(canonical(&got), canonical(&expected), "variant {}", variant);
    }

    /// Threaded batch execution returns bit-identical neighbors and
    /// merged stats versus the sequential path.
    #[test]
    fn batch_matches_sequential_bit_for_bit(
        database in prop::collection::vec(histogram(), 4..10),
        queries in prop::collection::vec(histogram(), 1..8),
        r in reduction(),
        variant in 0u8..6,
        threads in 2usize..5,
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(database, cost).unwrap();
        let executor = executor(&database, variant, r);
        let workload: Vec<Query> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                if i % 2 == 0 {
                    Query::knn(q.clone(), 1 + i % 3)
                } else {
                    Query::range(q.clone(), (i as f64).mul_add(0.25, 0.5))
                }
            })
            .collect();
        let (sequential, seq_stats) = executor.run_batch(&workload, 1).unwrap();
        let (parallel, par_stats) = executor.run_batch(&workload, threads).unwrap();
        // Bit-identical: same ids AND the exact same f64 distances.
        prop_assert_eq!(sequential, parallel);
        prop_assert_eq!(seq_stats, par_stats);
    }
}
