//! Property-based validation of the VP-tree against brute force under a
//! metric ground distance.

// Test helpers outside #[test] fns still get test-style panic latitude.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use emd_core::{ground, Histogram};
use emd_query::scan::{brute_force_knn, brute_force_range};
use emd_query::{Database, VpTree};
use proptest::prelude::*;
use std::sync::Arc;

const DIM: usize = 6;

fn histogram() -> impl Strategy<Value = Histogram> {
    prop::collection::vec(0.0_f64..1.0, DIM).prop_filter_map("positive mass", |raw| {
        let total: f64 = raw.iter().sum();
        (total > 1e-6)
            .then(|| Histogram::new(raw.iter().map(|x| x / total).collect()).ok())
            .flatten()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// VP-tree k-NN equals brute force (distances; ids up to exact ties).
    #[test]
    fn knn_matches_brute_force(
        database in prop::collection::vec(histogram(), 3..20),
        query in histogram(),
        k in 1usize..6,
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(database, cost.clone()).unwrap();
        let tree = VpTree::build(&database).unwrap();
        let expected = brute_force_knn(&query, database.histograms(), &cost, k).unwrap();
        let (got, stats) = tree.knn(&query, k).unwrap();
        let e: Vec<i64> = expected.iter().map(|n| (n.distance * 1e9).round() as i64).collect();
        let g: Vec<i64> = got.iter().map(|n| (n.distance * 1e9).round() as i64).collect();
        prop_assert_eq!(g, e);
        prop_assert!(stats.distance_computations <= database.len());
    }

    /// VP-tree range query equals brute force exactly (hit sets, not just
    /// distances — boundary inclusion must match).
    #[test]
    fn range_matches_brute_force(
        database in prop::collection::vec(histogram(), 3..16),
        query in histogram(),
        epsilon in 0.0_f64..3.0,
    ) {
        let cost = Arc::new(ground::linear(DIM).unwrap());
        let database = Database::new(database, cost.clone()).unwrap();
        let tree = VpTree::build(&database).unwrap();
        let expected = brute_force_range(&query, database.histograms(), &cost, epsilon).unwrap();
        let (got, _) = tree.range(&query, epsilon).unwrap();
        prop_assert_eq!(
            got.iter().map(|n| n.id).collect::<Vec<_>>(),
            expected.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }
}
