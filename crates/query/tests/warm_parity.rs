//! Query-level warm-start regression: `Executor::knn` answers (ids,
//! distances, refinement counts, per-stage stats) must be **bit-identical**
//! between the default warm-start mode and a forced
//! cold-start-every-candidate mode, sequentially and batched at 1 and 4
//! threads.
//!
//! The corpus uses full-support histograms under a continuous random cost
//! matrix, so every LP has a generically unique optimal basis and
//! bit-parity is exact, not a tolerance statement.

// Test helpers outside #[test] fns still get test-style panic latitude.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use emd_core::{CostMatrix, Histogram};
use emd_query::{
    Database, EmdDistance, Executor, Filter, Query, QueryPlan, ReducedEmdFilter, ReducedImFilter,
};
use emd_reduction::{CombiningReduction, ReducedEmd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const DIM: usize = 16;
const OBJECTS: usize = 48;
const QUERIES: usize = 6;
const K: usize = 5;
const SEED: u64 = 20080609;

fn random_histogram(rng: &mut StdRng) -> Histogram {
    // Strictly positive bins: full support, so every stripped tableau for
    // one query has the same shape and warm starts actually engage.
    let bins: Vec<f64> = (0..DIM).map(|_| rng.gen_range(0.05_f64..1.0)).collect();
    Histogram::normalized(bins).unwrap()
}

/// A continuous random cost matrix — no ties, hence a unique optimal
/// basis for every LP and well-defined warm/cold bit-parity.
fn random_cost(rng: &mut StdRng) -> CostMatrix {
    let costs: Vec<f64> = (0..DIM * DIM)
        .map(|_| rng.gen_range(0.01_f64..4.0))
        .collect();
    CostMatrix::new(DIM, DIM, costs).unwrap()
}

fn corpus() -> (Database, Vec<Histogram>, ReducedEmd) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let cost = random_cost(&mut rng);
    let objects: Vec<Histogram> = (0..OBJECTS).map(|_| random_histogram(&mut rng)).collect();
    let queries: Vec<Histogram> = (0..QUERIES).map(|_| random_histogram(&mut rng)).collect();
    let database = Database::new(objects, Arc::new(cost)).unwrap();
    let assignment: Vec<usize> = (0..DIM).map(|i| i / 2).collect();
    let reduction = CombiningReduction::new(assignment, DIM / 2).unwrap();
    let reduced = ReducedEmd::new(database.cost(), reduction).unwrap();
    (database, queries, reduced)
}

/// Build the Figure 10 chain (Red-IM -> Red-EMD -> exact EMD refiner)
/// with warm-start contexts enabled or forced off on every solver-backed
/// stage.
fn executor(database: &Database, reduced: &ReducedEmd, warm: bool) -> Executor {
    let stages: Vec<Box<dyn Filter>> = vec![
        Box::new(ReducedImFilter::new(database, reduced.clone()).unwrap()),
        Box::new(
            ReducedEmdFilter::new(database, reduced.clone())
                .unwrap()
                .with_warm_start(warm),
        ),
    ];
    let refiner = Box::new(EmdDistance::new(database).unwrap().with_warm_start(warm));
    Executor::new(QueryPlan::new(stages, refiner).unwrap())
}

#[test]
fn knn_results_bit_identical_warm_vs_cold_sequential() {
    let (database, queries, reduced) = corpus();
    let warm = executor(&database, &reduced, true);
    let cold = executor(&database, &reduced, false);
    for query in &queries {
        let (warm_neighbors, warm_stats) = warm.knn(query, K).unwrap();
        let (cold_neighbors, cold_stats) = cold.knn(query, K).unwrap();
        assert_eq!(warm_neighbors.len(), cold_neighbors.len());
        for (w, c) in warm_neighbors.iter().zip(&cold_neighbors) {
            assert_eq!(w.id, c.id);
            assert_eq!(
                w.distance.to_bits(),
                c.distance.to_bits(),
                "distance bits diverged for object {}",
                w.id
            );
        }
        assert_eq!(
            warm_stats, cold_stats,
            "refinement counts and per-stage evaluations must match"
        );
    }
}

#[test]
fn knn_results_bit_identical_warm_vs_cold_batched() {
    let (database, queries, reduced) = corpus();
    let warm = executor(&database, &reduced, true);
    let cold = executor(&database, &reduced, false);
    let batch: Vec<Query> = queries.iter().map(|q| Query::knn(q.clone(), K)).collect();
    for threads in [1usize, 4] {
        let (warm_results, warm_stats) = warm.run_batch(&batch, threads).unwrap();
        let (cold_results, cold_stats) = cold.run_batch(&batch, threads).unwrap();
        assert_eq!(warm_results.len(), cold_results.len());
        for (w_neighbors, c_neighbors) in warm_results.iter().zip(&cold_results) {
            assert_eq!(w_neighbors.len(), c_neighbors.len());
            for (w, c) in w_neighbors.iter().zip(c_neighbors) {
                assert_eq!(w.id, c.id);
                assert_eq!(w.distance.to_bits(), c.distance.to_bits());
            }
        }
        assert_eq!(
            warm_stats, cold_stats,
            "merged batch stats must match at {threads} threads"
        );
    }
}

#[test]
fn warm_contexts_actually_warm_start() {
    // Sanity check the regression is non-vacuous: the warm executor's
    // transport layer must report warm attempts and hits under an obs
    // recording scope, and the cold executor must report none.
    let (database, queries, reduced) = corpus();
    for (warm, expect_warm) in [(true, true), (false, false)] {
        let executor = executor(&database, &reduced, warm);
        let recording = emd_obs::Recording::start();
        executor.knn(&queries[0], K).unwrap();
        let registry = recording.finish();
        let attempts = registry.counter("transport.warm.attempts");
        let hits = registry.counter("transport.warm.hits");
        if expect_warm {
            assert!(attempts > 0, "warm mode recorded no warm attempts");
            assert!(hits > 0, "warm mode recorded no warm hits");
        } else {
            assert_eq!(attempts, 0, "cold mode must never attempt a warm start");
        }
    }
}
