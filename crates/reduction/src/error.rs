//! Error types for `emd-reduction`.

use std::fmt;

/// Errors reported by `emd-reduction`.
#[derive(Debug, Clone, PartialEq)]
pub enum ReductionError {
    /// An assignment entry points at a reduced dimension that does not
    /// exist.
    AssignmentOutOfRange {
        /// The original dimension with the bad assignment.
        original: usize,
        /// The out-of-range target it was assigned to.
        target: usize,
        /// The declared reduced dimensionality.
        reduced_dim: usize,
    },
    /// A reduced dimension has no original dimensions assigned — violates
    /// restriction (8) of Definition 3.
    EmptyReducedDimension(usize),
    /// The reduction would be trivial or impossible (e.g. `d' = 0` or
    /// `d' > d`).
    InvalidTargetDimension {
        /// Original dimensionality `d`.
        original_dim: usize,
        /// Requested reduced dimensionality `d'`.
        reduced_dim: usize,
    },
    /// An input's dimensionality does not match the reduction.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Actual dimensionality.
        got: usize,
    },
    /// A sample for the flow-based reduction is too small to produce any
    /// histogram pair.
    SampleTooSmall(usize),
    /// Stored reduction parts disagree with what the reduction matrices
    /// derive — the persisted bundle was corrupted or mixed across
    /// indexes (see `PersistedReduction::from_parts`).
    PersistedMismatch {
        /// Which derived quantity disagreed.
        what: String,
    },
    /// Error propagated from `emd-core`.
    Core(emd_core::CoreError),
}

impl fmt::Display for ReductionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReductionError::AssignmentOutOfRange {
                original,
                target,
                reduced_dim,
            } => write!(
                f,
                "original dimension {original} assigned to {target}, \
                 but only {reduced_dim} reduced dimensions exist"
            ),
            ReductionError::EmptyReducedDimension(i) => {
                write!(
                    f,
                    "reduced dimension {i} has no assigned original dimensions"
                )
            }
            ReductionError::InvalidTargetDimension {
                original_dim,
                reduced_dim,
            } => write!(
                f,
                "cannot reduce {original_dim} dimensions to {reduced_dim}"
            ),
            ReductionError::DimensionMismatch { expected, got } => {
                write!(f, "expected dimensionality {expected}, got {got}")
            }
            ReductionError::SampleTooSmall(n) => {
                write!(f, "flow sample needs at least 2 histograms, got {n}")
            }
            ReductionError::PersistedMismatch { what } => {
                write!(f, "persisted reduction mismatch: {what}")
            }
            ReductionError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl std::error::Error for ReductionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReductionError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<emd_core::CoreError> for ReductionError {
    fn from(e: emd_core::CoreError) -> Self {
        ReductionError::Core(e)
    }
}
