//! Globally optimal reductions by exhaustive enumeration.
//!
//! Section 3.2.2 of the paper notes that the truly optimal reduction
//! (Definition 6: fewest candidates over a query workload) requires an
//! infeasibly large search — `d^(d-d') * |w| * |DB|` reduced EMDs. For
//! *tiny* dimensionalities the search is still tractable, which makes it a
//! valuable oracle: the heuristics of Sections 3.3/3.4 can be validated
//! against the true optimum in tests and ablation benches.
//!
//! Two optimality criteria are provided:
//! * [`optimal_by_tightness`] — maximizes the expected tightness
//!   (Equation 12), the objective the FB heuristics climb.
//! * [`optimal_by_candidates`] — minimizes the total number of range-query
//!   candidates over a workload (Definition 6 verbatim).

use crate::flow_sample::FlowSample;
use crate::matrix::CombiningReduction;
use crate::reduced_emd::ReducedEmd;
use crate::tightness::TightnessEvaluator;
use crate::ReductionError;
use emd_core::{CostMatrix, Histogram};

/// Iterate over all partitions of `0..d` into exactly `k` non-empty,
/// unlabeled groups (restricted growth strings), invoking `visit` with the
/// assignment vector of each.
fn for_each_partition(d: usize, k: usize, mut visit: impl FnMut(&[usize])) {
    // Restricted growth string a[0..d]: a[i] <= max(a[0..i]) + 1, with the
    // extra constraint that exactly k distinct values appear.
    fn recurse(
        assignment: &mut Vec<usize>,
        used: usize,
        d: usize,
        k: usize,
        visit: &mut impl FnMut(&[usize]),
    ) {
        let position = assignment.len();
        if position == d {
            if used == k {
                visit(assignment);
            }
            return;
        }
        // After consuming this slot on an existing group, the remaining
        // slots must still be able to open the missing groups.
        let remaining = d - position;
        for value in 0..used.min(k) {
            if used + remaining > k {
                assignment.push(value);
                recurse(assignment, used, d, k, visit);
                assignment.pop();
            }
        }
        if used < k {
            assignment.push(used);
            recurse(assignment, used + 1, d, k, visit);
            assignment.pop();
        }
    }
    let mut assignment = Vec::with_capacity(d);
    recurse(&mut assignment, 0, d, k, &mut visit);
}

/// The reduction to `k` dimensions maximizing expected tightness
/// (Equation 12). Exponential in `d` — intended for `d <= 12`.
///
/// # Errors
///
/// Returns [`ReductionError`] when `k` is zero or exceeds the flow sample's
/// dimensionality, when shapes disagree, or when a candidate reduction fails
/// to build.
pub fn optimal_by_tightness(
    flows: &FlowSample,
    cost: &CostMatrix,
    k: usize,
) -> Result<(CombiningReduction, f64), ReductionError> {
    let d = flows.dim();
    if k == 0 || k > d {
        return Err(ReductionError::InvalidTargetDimension {
            original_dim: d,
            reduced_dim: k,
        });
    }
    let mut evaluator = TightnessEvaluator::new(d);
    let mut best: Option<(CombiningReduction, f64)> = None;
    let mut error = None;
    for_each_partition(d, k, |assignment| {
        if error.is_some() {
            return;
        }
        match CombiningReduction::new(assignment.to_vec(), k) {
            Ok(r) => {
                let tightness = evaluator.tightness(flows, cost, &r);
                if best.as_ref().is_none_or(|(_, t)| tightness > *t) {
                    best = Some((r, tightness));
                }
            }
            Err(e) => error = Some(e),
        }
    });
    if let Some(e) = error {
        return Err(e);
    }
    best.ok_or(ReductionError::InvalidTargetDimension {
        original_dim: d,
        reduced_dim: k,
    })
}

/// Definition 6 verbatim: the reduction to `k` dimensions minimizing the
/// total candidate count of the workload's range queries against the
/// database. Exponential in `d` *times* `|w| * |DB|` reduced EMDs —
/// strictly a test oracle.
///
/// # Errors
///
/// Returns [`ReductionError`] when `k` is out of range or shapes disagree,
/// and propagates any reduced-EMD evaluation failure over the workload.
pub fn optimal_by_candidates(
    cost: &CostMatrix,
    database: &[Histogram],
    workload: &[(Histogram, f64)],
    k: usize,
) -> Result<(CombiningReduction, usize), ReductionError> {
    let d = cost.rows();
    if k == 0 || k > d {
        return Err(ReductionError::InvalidTargetDimension {
            original_dim: d,
            reduced_dim: k,
        });
    }
    let mut best: Option<(CombiningReduction, usize)> = None;
    let mut error: Option<ReductionError> = None;
    for_each_partition(d, k, |assignment| {
        if error.is_some() {
            return;
        }
        let result = (|| -> Result<(CombiningReduction, usize), ReductionError> {
            let r = CombiningReduction::new(assignment.to_vec(), k)?;
            let reduced = ReducedEmd::new(cost, r.clone())?;
            let mut candidates = 0usize;
            for (query, epsilon) in workload {
                let rq = reduced.reduce_first(query)?;
                for object in database {
                    let ro = reduced.reduce_second(object)?;
                    if reduced.distance_reduced(&rq, &ro)? <= *epsilon {
                        candidates += 1;
                    }
                }
            }
            Ok((r, candidates))
        })();
        match result {
            Ok((r, candidates)) => {
                if best.as_ref().is_none_or(|(_, c)| candidates < *c) {
                    best = Some((r, candidates));
                }
            }
            Err(e) => error = Some(e),
        }
    });
    if let Some(e) = error {
        return Err(e);
    }
    best.ok_or(ReductionError::InvalidTargetDimension {
        original_dim: d,
        reduced_dim: k,
    })
}

/// Number of partitions of `d` elements into exactly `k` non-empty groups
/// (Stirling numbers of the second kind). Used to size enumeration tests.
pub fn stirling2(d: usize, k: usize) -> u128 {
    if k == 0 {
        return u128::from(d == 0);
    }
    if k > d {
        return 0;
    }
    let mut row = vec![0u128; k + 1];
    row[0] = 1; // S(0, 0)
    for n in 1..=d {
        for j in (1..=k.min(n)).rev() {
            row[j] = j as u128 * row[j] + row[j - 1];
        }
        row[0] = 0;
    }
    row[k]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fb::{fb_all, FbOptions};
    use emd_core::ground;

    #[test]
    fn partition_count_matches_stirling() {
        for (d, k) in [(4, 2), (5, 3), (6, 2), (6, 4)] {
            let mut count = 0u128;
            for_each_partition(d, k, |_| count += 1);
            assert_eq!(count, stirling2(d, k), "partitions of {d} into {k}");
        }
    }

    #[test]
    fn stirling_known_values() {
        assert_eq!(stirling2(0, 0), 1);
        assert_eq!(stirling2(4, 2), 7);
        assert_eq!(stirling2(5, 3), 25);
        assert_eq!(stirling2(10, 5), 42525);
        assert_eq!(stirling2(3, 5), 0);
    }

    #[test]
    fn partitions_are_valid_reductions() {
        for_each_partition(5, 3, |assignment| {
            assert!(CombiningReduction::new(assignment.to_vec(), 3).is_ok());
        });
    }

    #[test]
    fn exhaustive_tightness_dominates_fb_all() {
        // The oracle is a global optimum, so it must match or beat the
        // heuristic.
        let cost = ground::linear(6).unwrap();
        let mut flows_dense = vec![0.0; 36];
        // Concentrated flows between 0<->5 and 1<->2.
        flows_dense[5] = 0.3;
        flows_dense[30] = 0.3;
        flows_dense[8] = 0.2;
        flows_dense[13] = 0.2;
        let flows = FlowSample::from_dense(6, flows_dense).unwrap();
        let (_, best_tightness) = optimal_by_tightness(&flows, &cost, 3).unwrap();
        let heuristic = fb_all(
            CombiningReduction::base(6, 3).unwrap(),
            &flows,
            &cost,
            FbOptions::default(),
        );
        assert!(best_tightness >= heuristic.tightness - 1e-12);
    }

    #[test]
    fn rejects_invalid_k() {
        let flows = FlowSample::from_dense(3, vec![0.0; 9]).unwrap();
        let cost = ground::linear(3).unwrap();
        assert!(optimal_by_tightness(&flows, &cost, 0).is_err());
        assert!(optimal_by_tightness(&flows, &cost, 4).is_err());
    }
}
