//! Flow-based (data-dependent) dimensionality reduction — Section 3.4,
//! Figures 8 and 9 of the paper.
//!
//! Starting from an initial reduction matrix (the paper's `Base` or the
//! k-medoids result `KMed`), both algorithms iteratively reassign one
//! original dimension at a time to maximize the expected lower-bound
//! tightness (Equation 12) measured against the sampled average flow
//! matrix `F^S`:
//!
//! * [`fb_mod`] (*FB-Mod*, Figure 8) — first-improvement: scans the
//!   original dimensions round-robin ("modulo") and commits the first
//!   reassignment that improves tightness by more than the relative
//!   threshold; stops after a full pass without changes.
//! * [`fb_all`] (*FB-All*, Figure 9) — best-improvement: evaluates every
//!   (original dimension, reduced dimension) reassignment and commits only
//!   the single best one per iteration; stops when no move improves.
//!
//! Reassignments that would empty a reduced dimension are skipped: they
//! would leave the matrix outside Definition 3 (the pseudo-code in the
//! paper does not spell this case out; see DESIGN.md).

use crate::flow_sample::FlowSample;
use crate::matrix::CombiningReduction;
use crate::tightness::TightnessEvaluator;
use emd_core::CostMatrix;

/// Tunables shared by FB-Mod and FB-All.
#[derive(Debug, Clone, Copy)]
pub struct FbOptions {
    /// The paper's `THRESH`: a reassignment must improve tightness by more
    /// than `current_tightness * threshold` to be taken. Guards against
    /// float-noise oscillation; `0.0` accepts any strict improvement.
    pub threshold: f64,
    /// Safety cap on committed reassignments. The objective strictly
    /// increases over a finite state space, so the algorithms terminate
    /// without it; the cap bounds worst-case preprocessing time.
    pub max_reassignments: usize,
}

impl Default for FbOptions {
    fn default() -> Self {
        FbOptions {
            threshold: 1e-9,
            max_reassignments: 100_000,
        }
    }
}

/// Outcome of a flow-based optimization run.
#[derive(Debug, Clone)]
pub struct FbResult {
    /// The optimized reduction matrix.
    pub reduction: CombiningReduction,
    /// Expected tightness (Equation 12) of the final matrix.
    pub tightness: f64,
    /// Number of committed reassignments.
    pub reassignments: usize,
}

/// FB-Mod (Figure 8): round-robin first-improvement local search.
pub fn fb_mod(
    initial: CombiningReduction,
    flows: &FlowSample,
    cost: &CostMatrix,
    options: FbOptions,
) -> FbResult {
    let d = initial.original_dim();
    let d_red = initial.reduced_dim();
    let mut r = initial;
    let mut evaluator = TightnessEvaluator::new(d);
    let mut current = evaluator.tightness(flows, cost, &r);
    let mut reassignments = 0usize;

    let mut orig_dim = 0usize;
    let mut last_changed = 0usize;
    let mut visited_without_change = 0usize;
    loop {
        let threshold = current * options.threshold;
        let mut changed = false;
        for red_dim in 0..d_red {
            if red_dim == r.target_of(orig_dim) {
                continue;
            }
            let Some(swap_tightness) =
                evaluator.tightness_with_reassignment(flows, cost, &mut r, orig_dim, red_dim)
            else {
                continue;
            };
            if swap_tightness - current > threshold {
                let committed = r.try_reassign(orig_dim, red_dim);
                debug_assert!(committed);
                last_changed = orig_dim;
                current = swap_tightness;
                reassignments += 1;
                changed = true;
                break;
            }
        }
        if changed {
            visited_without_change = 0;
            if reassignments >= options.max_reassignments {
                break;
            }
        } else {
            visited_without_change += 1;
        }
        orig_dim = (orig_dim + 1) % d;
        // Figure 8 stops when the scan returns to the last-changed
        // dimension without further changes; the extra counter also stops
        // a change-free very first pass.
        if (orig_dim == last_changed && visited_without_change > 0) || visited_without_change >= d {
            break;
        }
    }

    FbResult {
        reduction: r,
        tightness: current,
        reassignments,
    }
}

/// FB-All (Figure 9): best-improvement local search.
pub fn fb_all(
    initial: CombiningReduction,
    flows: &FlowSample,
    cost: &CostMatrix,
    options: FbOptions,
) -> FbResult {
    let d = initial.original_dim();
    let d_red = initial.reduced_dim();
    let mut r = initial;
    let mut evaluator = TightnessEvaluator::new(d);
    let mut current = evaluator.tightness(flows, cost, &r);
    let mut reassignments = 0usize;

    loop {
        let threshold = current * options.threshold;
        let mut best: Option<(usize, usize, f64)> = None;
        for orig_dim in 0..d {
            for red_dim in 0..d_red {
                if red_dim == r.target_of(orig_dim) {
                    continue;
                }
                let Some(swap_tightness) =
                    evaluator.tightness_with_reassignment(flows, cost, &mut r, orig_dim, red_dim)
                else {
                    continue;
                };
                let improves_enough = swap_tightness - current > threshold;
                let beats_best = best.is_none_or(|(_, _, t)| swap_tightness > t);
                if improves_enough && beats_best {
                    best = Some((orig_dim, red_dim, swap_tightness));
                }
            }
        }
        match best {
            Some((orig_dim, red_dim, tightness)) => {
                let committed = r.try_reassign(orig_dim, red_dim);
                debug_assert!(committed);
                current = tightness;
                reassignments += 1;
                if reassignments >= options.max_reassignments {
                    break;
                }
            }
            None => break,
        }
    }

    FbResult {
        reduction: r,
        tightness: current,
        reassignments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow_sample::FlowSample;
    use emd_core::ground;
    use emd_core::Histogram;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    /// Sample whose mass lives in two well-separated bin groups {0,1} and
    /// {4,5}: a good reduction must keep the two groups apart.
    fn bimodal_sample() -> (Vec<Histogram>, CostMatrix) {
        let sample = vec![
            h(&[0.9, 0.1, 0.0, 0.0, 0.0, 0.0]),
            h(&[0.1, 0.9, 0.0, 0.0, 0.0, 0.0]),
            h(&[0.0, 0.0, 0.0, 0.0, 0.9, 0.1]),
            h(&[0.0, 0.0, 0.0, 0.0, 0.1, 0.9]),
            h(&[0.5, 0.0, 0.0, 0.0, 0.5, 0.0]),
        ];
        (sample, ground::linear(6).unwrap())
    }

    #[test]
    fn fb_mod_improves_over_base() {
        let (sample, cost) = bimodal_sample();
        let flows = FlowSample::from_histograms(&sample, &cost).unwrap();
        let base = CombiningReduction::base(6, 2).unwrap();
        let mut evaluator = TightnessEvaluator::new(6);
        let base_tightness = evaluator.tightness(&flows, &cost, &base);
        let result = fb_mod(base, &flows, &cost, FbOptions::default());
        assert!(result.tightness >= base_tightness - 1e-12);
        // Some reassignment must have happened: Base lumps the separated
        // groups together.
        assert!(result.reassignments > 0);
    }

    #[test]
    fn fb_all_improves_over_base() {
        let (sample, cost) = bimodal_sample();
        let flows = FlowSample::from_histograms(&sample, &cost).unwrap();
        let base = CombiningReduction::base(6, 2).unwrap();
        let mut evaluator = TightnessEvaluator::new(6);
        let base_tightness = evaluator.tightness(&flows, &cost, &base);
        let result = fb_all(base, &flows, &cost, FbOptions::default());
        assert!(result.tightness >= base_tightness - 1e-12);
    }

    #[test]
    fn fb_all_separates_bimodal_groups() {
        let (sample, cost) = bimodal_sample();
        let flows = FlowSample::from_histograms(&sample, &cost).unwrap();
        let base = CombiningReduction::base(6, 2).unwrap();
        let result = fb_all(base, &flows, &cost, FbOptions::default());
        let a = result.reduction.target_of(0);
        let b = result.reduction.target_of(4);
        assert_ne!(
            a,
            b,
            "bins 0 and 4 carry the dominant cross-flow and must not merge: {:?}",
            result.reduction.assignment()
        );
    }

    #[test]
    fn stable_at_local_optimum() {
        // Running a second time from the result must change nothing.
        let (sample, cost) = bimodal_sample();
        let flows = FlowSample::from_histograms(&sample, &cost).unwrap();
        let base = CombiningReduction::base(6, 3).unwrap();
        let first = fb_all(base, &flows, &cost, FbOptions::default());
        let second = fb_all(first.reduction.clone(), &flows, &cost, FbOptions::default());
        assert_eq!(second.reassignments, 0);
        assert_eq!(first.reduction, second.reduction);
    }

    #[test]
    fn respects_reassignment_cap() {
        let (sample, cost) = bimodal_sample();
        let flows = FlowSample::from_histograms(&sample, &cost).unwrap();
        let base = CombiningReduction::base(6, 2).unwrap();
        let result = fb_mod(
            base,
            &flows,
            &cost,
            FbOptions {
                threshold: 0.0,
                max_reassignments: 1,
            },
        );
        assert!(result.reassignments <= 1);
    }

    #[test]
    fn terminates_without_any_improvement() {
        // Identity-like start on uniform flows: nothing to gain.
        let flows = FlowSample::from_dense(4, vec![1.0 / 16.0; 16]).unwrap();
        let cost = ground::linear(4).unwrap();
        let r = CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap();
        let result = fb_mod(r.clone(), &flows, &cost, FbOptions::default());
        // The chain-with-uniform-flows optimum for d'=2 is the contiguous
        // split, which is where we started.
        assert_eq!(result.reduction, r);
        assert_eq!(result.reassignments, 0);
    }

    #[test]
    fn fb_all_matches_or_beats_fb_mod_tightness() {
        let (sample, cost) = bimodal_sample();
        let flows = FlowSample::from_histograms(&sample, &cost).unwrap();
        let base = CombiningReduction::base(6, 2).unwrap();
        let result_mod = fb_mod(base.clone(), &flows, &cost, FbOptions::default());
        let result_all = fb_all(base, &flows, &cost, FbOptions::default());
        // Not guaranteed in general (different local optima), but holds on
        // this small, well-separated instance.
        assert!(result_all.tightness >= result_mod.tightness - 1e-9);
    }
}
