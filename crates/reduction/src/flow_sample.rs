//! Step 1 and 2 of the flow-based reduction (Figure 6): sample the
//! database and aggregate the optimal EMD flows of all sample pairs into
//! the average flow matrix `F^S`.

use crate::ReductionError;
use emd_core::flow::FlowAccumulator;
use emd_core::{emd_with_flows, CostMatrix, Histogram};
use rand::seq::SliceRandom;
use rand::Rng;

/// The aggregated flow information of a database sample.
#[derive(Debug, Clone)]
pub struct FlowSample {
    dim: usize,
    /// Dense row-major average flow matrix `F^S`.
    average: Vec<f64>,
    /// Number of histogram pairs that contributed.
    pairs: usize,
}

impl FlowSample {
    /// Compute `F^S` from a sample of histograms by solving the *unreduced*
    /// EMD for every unordered pair and summing both flow orientations
    /// (`F(x,y)` and its transpose `F(y,x)`), which matches the paper's
    /// sum over all ordered pairs.
    ///
    /// This is the paper's one-off preprocessing investment: `O(|S|^2)`
    /// full-dimensional EMD computations, repaid by faster queries.
    ///
    /// # Errors
    ///
    /// Returns [`ReductionError`] when the sample is empty, histograms disagree
    /// in dimensionality with `cost`, or an exact EMD computation fails.
    pub fn from_histograms(
        sample: &[Histogram],
        cost: &CostMatrix,
    ) -> Result<Self, ReductionError> {
        if sample.len() < 2 {
            return Err(ReductionError::SampleTooSmall(sample.len()));
        }
        let dim = cost.rows();
        debug_assert!(cost.is_square());
        for h in sample {
            if h.dim() != dim {
                return Err(ReductionError::DimensionMismatch {
                    expected: dim,
                    got: h.dim(),
                });
            }
        }
        let mut accumulator = FlowAccumulator::new(dim);
        let mut transposed: Vec<(usize, usize, f64)> = Vec::new();
        for (a, x) in sample.iter().enumerate() {
            for y in sample.iter().skip(a + 1) {
                let report = emd_with_flows(x, y, cost)?;
                accumulator.add(&report.flows);
                transposed.clear();
                transposed.extend(report.flows.iter().map(|&(i, j, f)| (j, i, f)));
                accumulator.add(&transposed);
            }
        }
        Ok(FlowSample {
            dim,
            average: accumulator.average(),
            pairs: accumulator.count(),
        })
    }

    /// Parallel variant of [`FlowSample::from_histograms`]: the `|S|^2`
    /// EMD solves are independent, so the pair list is striped across
    /// `threads` scoped worker threads whose partial accumulations are
    /// merged. Produces bit-identical results to the sequential version
    /// (addition order within each accumulator cell is fixed by the
    /// striping, and the final merge sums disjoint partials).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`FlowSample::from_histograms`]; `threads == 0` is
    /// also rejected.
    pub fn from_histograms_parallel(
        sample: &[Histogram],
        cost: &CostMatrix,
        threads: usize,
    ) -> Result<Self, ReductionError> {
        if sample.len() < 2 {
            return Err(ReductionError::SampleTooSmall(sample.len()));
        }
        let dim = cost.rows();
        for h in sample {
            if h.dim() != dim {
                return Err(ReductionError::DimensionMismatch {
                    expected: dim,
                    got: h.dim(),
                });
            }
        }
        let threads = threads.max(1);
        let pairs: Vec<(usize, usize)> = (0..sample.len())
            .flat_map(|a| ((a + 1)..sample.len()).map(move |b| (a, b)))
            .collect();

        let mut accumulator = FlowAccumulator::new(dim);
        #[allow(clippy::expect_used)]
        // lint: allow(nondeterminism): partials merge in fixed chunk order, so
        // the accumulated flow matrix is bit-identical at any thread count.
        let partials = std::thread::scope(|scope| {
            let chunk = pairs.len().div_ceil(threads);
            pairs
                .chunks(chunk.max(1))
                .map(|slice| {
                    scope.spawn(move || -> Result<FlowAccumulator, ReductionError> {
                        let mut local = FlowAccumulator::new(dim);
                        let mut transposed: Vec<(usize, usize, f64)> = Vec::new();
                        for &(a, b) in slice {
                            let report = emd_with_flows(&sample[a], &sample[b], cost)?;
                            local.add(&report.flows);
                            transposed.clear();
                            transposed.extend(report.flows.iter().map(|&(i, j, f)| (j, i, f)));
                            local.add(&transposed);
                        }
                        Ok(local)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                // lint: allow(panic): propagating a worker panic is the only sound response to one
                .map(|handle| handle.join().expect("flow worker does not panic"))
                .collect::<Result<Vec<_>, _>>()
        })?;
        for partial in &partials {
            accumulator.merge(partial);
        }
        Ok(FlowSample {
            dim,
            average: accumulator.average(),
            pairs: accumulator.count(),
        })
    }

    /// Wrap a precomputed dense flow matrix (row-major `dim x dim`).
    ///
    /// # Errors
    ///
    /// Returns [`ReductionError`] when `average` is not `dim * dim` long or
    /// contains a negative or non-finite flow.
    pub fn from_dense(dim: usize, average: Vec<f64>) -> Result<Self, ReductionError> {
        if average.len() != dim * dim {
            return Err(ReductionError::DimensionMismatch {
                expected: dim * dim,
                got: average.len(),
            });
        }
        Ok(FlowSample {
            dim,
            average,
            pairs: 0,
        })
    }

    /// Histogram dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of (ordered) pairs aggregated.
    pub fn pairs(&self) -> usize {
        self.pairs
    }

    /// Average flow from original dimension `i` to `j`.
    #[inline]
    pub fn flow(&self, i: usize, j: usize) -> f64 {
        self.average[i * self.dim + j]
    }

    /// The dense average flow matrix.
    pub fn dense(&self) -> &[f64] {
        &self.average
    }
}

/// Draw a random sample of `size` histograms from a database (without
/// replacement; the whole database if `size >= len`).
pub fn draw_sample<'a>(
    database: &'a [Histogram],
    size: usize,
    rng: &mut impl Rng,
) -> Vec<&'a Histogram> {
    let mut indices: Vec<usize> = (0..database.len()).collect();
    indices.shuffle(rng);
    indices.truncate(size.min(database.len()));
    indices.into_iter().map(|i| &database[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_core::ground;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    #[test]
    fn aggregates_pairwise_flows() {
        let sample = vec![h(&[1.0, 0.0, 0.0]), h(&[0.0, 0.0, 1.0])];
        let cost = ground::linear(3).unwrap();
        let flows = FlowSample::from_histograms(&sample, &cost).unwrap();
        // One unordered pair, aggregated in both orientations.
        assert_eq!(flows.pairs(), 2);
        // Average of f(0->2)=1 in one orientation and 0 in the other: 0.5.
        assert!((flows.flow(0, 2) - 0.5).abs() < 1e-12);
        assert!((flows.flow(2, 0) - 0.5).abs() < 1e-12);
        assert_eq!(flows.flow(0, 1), 0.0);
    }

    #[test]
    fn flow_matrix_is_symmetric_for_symmetric_costs() {
        let sample = vec![
            h(&[0.5, 0.3, 0.2]),
            h(&[0.1, 0.1, 0.8]),
            h(&[0.3, 0.4, 0.3]),
        ];
        let cost = ground::linear(3).unwrap();
        let flows = FlowSample::from_histograms(&sample, &cost).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((flows.flow(i, j) - flows.flow(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn total_average_flow_equals_total_mass() {
        // Each pair's flow matrix ships total mass 1, so the average over
        // pairs also sums to 1.
        let sample = vec![
            h(&[0.5, 0.5, 0.0, 0.0]),
            h(&[0.0, 0.0, 0.5, 0.5]),
            h(&[0.25, 0.25, 0.25, 0.25]),
        ];
        let cost = ground::linear(4).unwrap();
        let flows = FlowSample::from_histograms(&sample, &cost).unwrap();
        let total: f64 = flows.dense().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_small_samples_and_mismatches() {
        let cost = ground::linear(3).unwrap();
        assert!(matches!(
            FlowSample::from_histograms(&[h(&[1.0, 0.0, 0.0])], &cost).unwrap_err(),
            ReductionError::SampleTooSmall(1)
        ));
        let mixed = vec![h(&[1.0, 0.0, 0.0]), h(&[0.5, 0.5])];
        assert!(matches!(
            FlowSample::from_histograms(&mixed, &cost).unwrap_err(),
            ReductionError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn draw_sample_without_replacement() {
        let database: Vec<Histogram> = (0..10)
            .map(|i| {
                let mut bins = vec![0.0; 10];
                bins[i] = 1.0;
                Histogram::new(bins).unwrap()
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(3);
        let sample = draw_sample(&database, 4, &mut rng);
        assert_eq!(sample.len(), 4);
        // Oversized requests return the whole database.
        let all = draw_sample(&database, 100, &mut rng);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn parallel_matches_sequential() {
        let sample: Vec<Histogram> = (0..7)
            .map(|i| {
                let mut bins = vec![0.05; 8];
                bins[i % 8] += 0.6;
                Histogram::normalized(bins).unwrap()
            })
            .collect();
        let cost = ground::linear(8).unwrap();
        let sequential = FlowSample::from_histograms(&sample, &cost).unwrap();
        for threads in [1, 2, 4, 16] {
            let parallel = FlowSample::from_histograms_parallel(&sample, &cost, threads).unwrap();
            assert_eq!(parallel.pairs(), sequential.pairs());
            for (a, b) in parallel.dense().iter().zip(sequential.dense()) {
                assert!((a - b).abs() < 1e-12, "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_rejects_small_samples() {
        let cost = ground::linear(3).unwrap();
        assert!(matches!(
            FlowSample::from_histograms_parallel(&[h(&[1.0, 0.0, 0.0])], &cost, 4).unwrap_err(),
            ReductionError::SampleTooSmall(1)
        ));
    }

    #[test]
    fn from_dense_validates_shape() {
        assert!(FlowSample::from_dense(2, vec![0.0; 4]).is_ok());
        assert!(FlowSample::from_dense(2, vec![0.0; 3]).is_err());
    }
}
