//! Grid-based merging reductions — the special case of reference \[14\]
//! (Ljosa et al.) that the paper generalizes in Section 3.1.
//!
//! For image features on a `width x height` tiling, \[14\] builds a
//! hierarchy of filters by merging *spatially adjacent* tiles, shrinking
//! the dimensionality by a fixed factor of 4 per level (2x2 blocks). The
//! functions here express that scheme — and arbitrary block sizes — as
//! [`CombiningReduction`]s, making the fixed hierarchy directly comparable
//! to the paper's flexible reductions in the benches.

use crate::matrix::CombiningReduction;
use crate::ReductionError;

/// Merge a `width x height` tiling (row-major bins) into blocks of
/// `block_w x block_h` tiles. Partial blocks at the right/bottom edges are
/// allowed and simply contain fewer tiles.
///
/// # Errors
///
/// Returns [`ReductionError`] when any of the four sizes is zero.
pub fn block_merge(
    width: usize,
    height: usize,
    block_w: usize,
    block_h: usize,
) -> Result<CombiningReduction, ReductionError> {
    if width == 0 || height == 0 || block_w == 0 || block_h == 0 {
        return Err(ReductionError::InvalidTargetDimension {
            original_dim: width * height,
            reduced_dim: 0,
        });
    }
    let blocks_x = width.div_ceil(block_w);
    let blocks_y = height.div_ceil(block_h);
    let assignment: Vec<usize> = (0..width * height)
        .map(|bin| {
            let x = bin % width;
            let y = bin / width;
            (y / block_h) * blocks_x + (x / block_w)
        })
        .collect();
    CombiningReduction::new(assignment, blocks_x * blocks_y)
}

/// The fixed factor-4 hierarchy of \[14\]: level 0 is the identity, each
/// further level merges 2x2 blocks of the previous level's tiles.
/// Returns the reductions from original resolution down to a single tile
/// (the last level where the grid still shrinks).
///
/// # Errors
///
/// Returns [`ReductionError`] when either side of the grid is zero.
pub fn hierarchy(width: usize, height: usize) -> Result<Vec<CombiningReduction>, ReductionError> {
    let mut levels = Vec::new();
    let mut block = 1usize;
    loop {
        let reduction = block_merge(width, height, block, block)?;
        let done = reduction.reduced_dim() == 1;
        levels.push(reduction);
        if done {
            break;
        }
        block *= 2;
    }
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_by_two_blocks_on_4x4() {
        let r = block_merge(4, 4, 2, 2).unwrap();
        assert_eq!(r.original_dim(), 16);
        assert_eq!(r.reduced_dim(), 4);
        // Top-left 2x2 block: bins 0, 1, 4, 5.
        assert_eq!(r.target_of(0), 0);
        assert_eq!(r.target_of(1), 0);
        assert_eq!(r.target_of(4), 0);
        assert_eq!(r.target_of(5), 0);
        // Bottom-right block: bins 10, 11, 14, 15.
        assert_eq!(r.target_of(15), 3);
        assert_eq!(r.target_of(10), 3);
    }

    #[test]
    fn partial_blocks_at_edges() {
        // 5x3 grid with 2x2 blocks: 3x2 = 6 blocks, edge blocks partial.
        let r = block_merge(5, 3, 2, 2).unwrap();
        assert_eq!(r.reduced_dim(), 6);
        // Bin (4, 0) lives in block column 2.
        assert_eq!(r.target_of(4), 2);
        // Bin (0, 2) lives in block row 1.
        assert_eq!(r.target_of(10), 3);
    }

    #[test]
    fn hierarchy_shrinks_by_factor_four() {
        let levels = hierarchy(8, 8).unwrap();
        let dims: Vec<usize> = levels.iter().map(|r| r.reduced_dim()).collect();
        assert_eq!(dims, vec![64, 16, 4, 1]);
    }

    #[test]
    fn hierarchy_on_non_square_grid() {
        let levels = hierarchy(12, 8).unwrap();
        let dims: Vec<usize> = levels.iter().map(|r| r.reduced_dim()).collect();
        // 12x8 -> 6x4 -> 3x2 -> 2x1 -> 1x1
        assert_eq!(dims, vec![96, 24, 6, 2, 1]);
    }

    #[test]
    fn rejects_zero_sizes() {
        assert!(block_merge(0, 4, 2, 2).is_err());
        assert!(block_merge(4, 4, 0, 2).is_err());
    }
}
