//! Clustering-based (data-independent) dimensionality reduction
//! (Section 3.3 of the paper).
//!
//! The original dimensions are clustered by k-medoids, with the ground
//! distance `c_ij` between dimensions as the dissimilarity. Medoids —
//! unlike means — only require pairwise dissimilarities, so any EMD
//! instance can be reduced from its cost matrix alone, even when the
//! ground distance function is not explicitly known.
//!
//! The motivation comes from the paper's Theorem 2 (monotony): larger
//! reduced cost entries give tighter bounds, so dimensions that are close
//! in the ground distance should be merged (small intra-cluster "lost"
//! distance, large preserved inter-cluster distance — Figure 5).

use crate::matrix::CombiningReduction;
use crate::ReductionError;
use emd_core::CostMatrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// Result of a k-medoids clustering over EMD dimensions.
#[derive(Debug, Clone)]
pub struct KMedoids {
    /// The combining reduction: cluster `i'` = reduced dimension `i'`.
    pub reduction: CombiningReduction,
    /// The representing original dimension of each cluster.
    pub medoids: Vec<usize>,
    /// The clustering objective
    /// `TD = sum_{i'} sum_{i in cluster i'} c_{i, m_{i'}}`.
    pub total_distance: f64,
}

/// Cluster the `d` dimensions of a square cost matrix into `k` groups.
///
/// Starts from `k` random medoids, assigns every dimension to its nearest
/// medoid, then greedily applies the best medoid/non-medoid swap until no
/// swap improves the total distance (the PAM-style procedure sketched in
/// Section 3.3). Deterministic for a fixed RNG.
///
/// # Errors
///
/// Returns [`ReductionError`] when `cost` is not square, `k` is zero, or `k`
/// exceeds the number of dimensions.
pub fn kmedoids_reduction(
    cost: &CostMatrix,
    k: usize,
    rng: &mut impl Rng,
) -> Result<KMedoids, ReductionError> {
    let d = cost.rows();
    debug_assert!(cost.is_square(), "clustering needs a square cost matrix");
    if k == 0 || k > d {
        return Err(ReductionError::InvalidTargetDimension {
            original_dim: d,
            reduced_dim: k,
        });
    }

    // Random initial medoids.
    let mut indices: Vec<usize> = (0..d).collect();
    indices.shuffle(rng);
    let mut medoids: Vec<usize> = indices[..k].to_vec();
    let mut is_medoid = vec![false; d];
    for &m in &medoids {
        is_medoid[m] = true;
    }

    let mut total = total_distance(cost, &medoids);

    // Greedy best-swap improvement.
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for slot in 0..medoids.len() {
            for (candidate, _) in is_medoid.iter().enumerate().filter(|(_, &m)| !m) {
                let mut trial = medoids.clone();
                trial[slot] = candidate;
                let td = total_distance(cost, &trial);
                if td < total - 1e-12 && best.is_none_or(|(_, _, b)| td < b) {
                    best = Some((slot, candidate, td));
                }
            }
        }
        match best {
            Some((slot, candidate, td)) => {
                is_medoid[medoids[slot]] = false;
                is_medoid[candidate] = true;
                medoids[slot] = candidate;
                total = td;
            }
            None => break,
        }
    }

    let assignment = assign(cost, &medoids);
    let reduction = CombiningReduction::new(assignment, k)?;
    Ok(KMedoids {
        reduction,
        medoids,
        total_distance: total,
    })
}

/// [`kmedoids_reduction`] with random restarts: runs the clustering
/// `restarts` times from independent random initializations and keeps the
/// result with the smallest total distance. PAM-style greedy search only
/// finds local optima; a handful of restarts reliably smooths out bad
/// initial medoid draws at linear extra preprocessing cost.
///
/// # Errors
///
/// Returns [`ReductionError`] when `restarts` is zero or any single
/// [`kmedoids_reduction`] run fails.
#[allow(clippy::expect_used)]
pub fn kmedoids_reduction_restarts(
    cost: &CostMatrix,
    k: usize,
    restarts: usize,
    rng: &mut impl Rng,
) -> Result<KMedoids, ReductionError> {
    let restarts = restarts.max(1);
    let mut best: Option<KMedoids> = None;
    for _ in 0..restarts {
        let candidate = kmedoids_reduction(cost, k, rng)?;
        if best
            .as_ref()
            .is_none_or(|b| candidate.total_distance < b.total_distance)
        {
            best = Some(candidate);
        }
    }
    // lint: allow(panic): restarts >= 1 is validated above, so `best` is always Some
    Ok(best.expect("restarts >= 1"))
}

/// Assign every dimension to its nearest medoid (medoids assign to
/// themselves; ties go to the earlier medoid slot for determinism).
#[allow(clippy::needless_range_loop)] // i is a dimension index, not a position
fn assign(cost: &CostMatrix, medoids: &[usize]) -> Vec<usize> {
    let d = cost.rows();
    let mut assignment = vec![0usize; d];
    for i in 0..d {
        let mut best_slot = 0;
        let mut best_cost = f64::INFINITY;
        for (slot, &m) in medoids.iter().enumerate() {
            let c = if i == m { -1.0 } else { cost.at(i, m) };
            if c < best_cost {
                best_cost = c;
                best_slot = slot;
            }
        }
        assignment[i] = best_slot;
    }
    assignment
}

/// The clustering objective `TD` for a medoid set.
fn total_distance(cost: &CostMatrix, medoids: &[usize]) -> f64 {
    let d = cost.rows();
    let mut total = 0.0;
    for i in 0..d {
        let nearest = medoids
            .iter()
            .map(|&m| if i == m { 0.0 } else { cost.at(i, m) })
            .fold(f64::INFINITY, f64::min);
        total += nearest;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_core::ground;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clusters_chain_into_contiguous_blocks() {
        // On a 1-D chain, optimal clusters are contiguous runs.
        let cost = ground::linear(8).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let result = kmedoids_reduction(&cost, 2, &mut rng).unwrap();
        assert_eq!(result.reduction.reduced_dim(), 2);
        let assignment = result.reduction.assignment();
        // Contiguity: assignment is monotone along the chain.
        let mut sorted = assignment.to_vec();
        sorted.sort_unstable();
        let mut monotone = assignment.to_vec();
        if monotone.first() > monotone.last() {
            monotone.reverse();
        }
        assert_eq!(monotone, sorted, "chain clusters must be contiguous");
        // TD for 8 dims in 2 balanced clusters of 4 with central medoids:
        // each cluster contributes 1+1+2 = 4.
        assert!((result.total_distance - 8.0).abs() < 1e-9);
    }

    #[test]
    fn k_equals_d_is_identity_like() {
        let cost = ground::linear(4).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let result = kmedoids_reduction(&cost, 4, &mut rng).unwrap();
        assert_eq!(result.total_distance, 0.0);
        assert_eq!(result.reduction.reduced_dim(), 4);
        // Every dimension alone in its group.
        for target in 0..4 {
            assert_eq!(result.reduction.group_size(target), 1);
        }
    }

    #[test]
    fn rejects_bad_k() {
        let cost = ground::linear(4).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(kmedoids_reduction(&cost, 0, &mut rng).is_err());
        assert!(kmedoids_reduction(&cost, 5, &mut rng).is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cost = ground::grid2(4, 3, ground::Metric::Euclidean).unwrap();
        let a = kmedoids_reduction(&cost, 4, &mut StdRng::seed_from_u64(5)).unwrap();
        let b = kmedoids_reduction(&cost, 4, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(a.reduction, b.reduction);
        assert_eq!(a.medoids, b.medoids);
    }

    #[test]
    fn restarts_never_hurt() {
        let cost = ground::grid2(5, 4, ground::Metric::Euclidean).unwrap();
        let single = kmedoids_reduction(&cost, 5, &mut StdRng::seed_from_u64(2)).unwrap();
        let restarted =
            kmedoids_reduction_restarts(&cost, 5, 8, &mut StdRng::seed_from_u64(2)).unwrap();
        assert!(restarted.total_distance <= single.total_distance + 1e-12);
        assert!(kmedoids_reduction_restarts(&cost, 0, 3, &mut StdRng::seed_from_u64(2)).is_err());
    }

    #[test]
    fn grid_clusters_are_spatially_coherent() {
        // On a 2-D grid with Euclidean ground distance, each cluster's
        // members must be closer to their own medoid than to any other.
        let cost = ground::grid2(4, 4, ground::Metric::Euclidean).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let result = kmedoids_reduction(&cost, 4, &mut rng).unwrap();
        let assignment = result.reduction.assignment();
        for (i, &slot) in assignment.iter().enumerate() {
            let own = result.medoids[slot as usize];
            let own_cost = if i == own { 0.0 } else { cost.at(i, own) };
            for &other in &result.medoids {
                let other_cost = if i == other { 0.0 } else { cost.at(i, other) };
                assert!(own_cost <= other_cost + 1e-9);
            }
        }
    }
}
