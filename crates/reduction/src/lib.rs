#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # emd-reduction
//!
//! Flexible, lower-bounding dimensionality reduction for the Earth Mover's
//! Distance — the primary contribution of Wichterich et al., SIGMOD 2008
//! (Section 3).
//!
//! * [`CombiningReduction`] — the 0/1 *combining* reduction matrices of
//!   Definition 3: every original dimension is assigned to exactly one
//!   reduced dimension and no reduced dimension is empty.
//! * [`reduce_cost_matrix`] — the **optimal reduced cost matrix** of
//!   Definition 5 (`c'_{i'j'} = min{c_ij}` over the combined groups),
//!   proven in the paper to be the greatest lower bound for fixed
//!   reduction matrices (Theorems 1 and 3).
//! * [`ReducedEmd`] — the reduced EMD of Definition 4, supporting
//!   different query/database reductions (`R1 != R2`).
//! * [`kmedoids`] — the data-independent clustering-based reduction of
//!   Section 3.3.
//! * [`flow_sample`] / [`tightness`] / [`fb`] — the data-dependent
//!   flow-based reductions FB-Mod and FB-All of Section 3.4 (Figures 6-9).
//! * [`exhaustive`] — globally optimal reductions by enumeration (tiny
//!   dimensionalities only; used to validate the heuristics).
//! * [`grid`] — the grid-merging special case of reference \[14\] that the
//!   paper generalizes.
//! * [`pca`] — a PCA-guided combining reduction, standing in for the
//!   paper's (negative) PCA experiment; see DESIGN.md.
//!
//! Reduction construction is offline preprocessing, so this crate carries
//! no `emd-obs` instrumentation of its own; the flow samples it draws run
//! exact EMDs through `emd-core`, whose `core.emd.solves` counter makes
//! that preprocessing cost visible when recorded.

mod error;
pub mod exhaustive;
pub mod fb;
pub mod flow_sample;
pub mod grid;
pub mod kmedoids;
mod matrix;
pub mod pca;
mod persist;
mod reduced_cost;
mod reduced_emd;
pub mod tightness;

pub use error::ReductionError;
pub use matrix::CombiningReduction;
pub use persist::PersistedReduction;
pub use reduced_cost::reduce_cost_matrix;
pub use reduced_emd::ReducedEmd;
