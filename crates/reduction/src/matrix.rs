//! Combining reduction matrices (Definition 3): each original dimension
//! joins exactly one reduced dimension, none left empty.

use crate::error::ReductionError;
use emd_core::Histogram;

/// A *combining* dimensionality reduction (Definition 3 of the paper).
///
/// Conceptually a 0/1 matrix `R in {0,1}^{d x d'}` with exactly one 1 per
/// row (each original dimension joins exactly one reduced dimension —
/// restrictions (6) and (7)) and at least one 1 per column (no reduced
/// dimension is empty — restriction (8)). Because rows are unit vectors,
/// the matrix is stored compactly as an assignment vector:
/// `assignment[i] = i'` iff `r_{ii'} = 1`.
///
/// Restriction (7) makes reduction mass-preserving: `x * R` sums the
/// masses of each group, so reduced vectors remain valid Definition 1
/// operands.
///
/// ```
/// use emd_core::Histogram;
/// use emd_reduction::CombiningReduction;
///
/// // Merge 4 dimensions into 2 groups: {0, 1} and {2, 3}.
/// let r = CombiningReduction::new(vec![0, 0, 1, 1], 2)?;
/// let x = Histogram::new(vec![0.1, 0.2, 0.3, 0.4])?;
/// let reduced = r.reduce(&x)?;
/// assert!((reduced.mass(0) - 0.3).abs() < 1e-12);
/// assert!((reduced.mass(1) - 0.7).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombiningReduction {
    assignment: Box<[u32]>,
    reduced_dim: usize,
    /// Cached group sizes; `group_sizes[i'] >= 1` is restriction (8).
    group_sizes: Box<[u32]>,
}

struct ReductionRepr {
    assignment: Vec<u32>,
    reduced_dim: usize,
}

serde::impl_serde_struct!(ReductionRepr {
    assignment,
    reduced_dim
});

// Deserialization re-validates through `CombiningReduction::new` (the
// `try_from`/`into` serde pattern).
serde::impl_serde_via!(CombiningReduction => ReductionRepr);

impl CombiningReduction {
    /// Build a reduction from an assignment vector
    /// (`assignment[i]` = reduced dimension of original dimension `i`).
    ///
    /// # Errors
    ///
    /// Returns [`ReductionError`] when `reduced_dim` is zero or larger than the
    /// original dimensionality, an assignment target is out of range, or some
    /// reduced dimension receives no original dimension.
    pub fn new(assignment: Vec<usize>, reduced_dim: usize) -> Result<Self, ReductionError> {
        let original_dim = assignment.len();
        if reduced_dim == 0 || reduced_dim > original_dim {
            return Err(ReductionError::InvalidTargetDimension {
                original_dim,
                reduced_dim,
            });
        }
        let mut group_sizes = vec![0u32; reduced_dim];
        for (original, &target) in assignment.iter().enumerate() {
            if target >= reduced_dim {
                return Err(ReductionError::AssignmentOutOfRange {
                    original,
                    target,
                    reduced_dim,
                });
            }
            group_sizes[target] += 1;
        }
        if let Some(empty) = group_sizes.iter().position(|&s| s == 0) {
            return Err(ReductionError::EmptyReducedDimension(empty));
        }
        Ok(CombiningReduction {
            assignment: assignment.iter().map(|&a| a as u32).collect(),
            reduced_dim,
            group_sizes: group_sizes.into_boxed_slice(),
        })
    }

    /// Build a reduction from explicit groups: `groups[i']` lists the
    /// original dimensions combined into reduced dimension `i'`. The
    /// groups must partition `0..d`.
    ///
    /// # Errors
    ///
    /// Returns [`ReductionError`] when the groups do not partition `0..d`:
    /// an empty group, a duplicated dimension, or a gap.
    pub fn from_groups(groups: &[Vec<usize>]) -> Result<Self, ReductionError> {
        let original_dim: usize = groups.iter().map(Vec::len).sum();
        let mut assignment = vec![usize::MAX; original_dim];
        for (target, group) in groups.iter().enumerate() {
            if group.is_empty() {
                return Err(ReductionError::EmptyReducedDimension(target));
            }
            for &original in group {
                if original >= original_dim || assignment[original] != usize::MAX {
                    return Err(ReductionError::AssignmentOutOfRange {
                        original,
                        target,
                        reduced_dim: groups.len(),
                    });
                }
                assignment[original] = target;
            }
        }
        Self::new(assignment, groups.len())
    }

    /// The identity reduction (`d' = d`, every dimension its own group).
    ///
    /// # Errors
    ///
    /// Returns [`ReductionError`] when `dim` is zero.
    pub fn identity(dim: usize) -> Result<Self, ReductionError> {
        Self::new((0..dim).collect(), dim)
    }

    /// The paper's `Base` initial solution for the flow-based algorithms:
    /// all original dimensions assigned to reduced dimension 0. Only
    /// valid as a `d' = 1` reduction; the FB algorithms then spread
    /// dimensions across the remaining target dimensions.
    ///
    /// Because Definition 3 forbids empty reduced dimensions, the `Base`
    /// start for a `d'`-target optimization is modelled here as "first
    /// `d' - 1` dimensions pinned to their own group, everything else in
    /// the last group", the closest valid analogue that gives the
    /// optimizer the same freedom.
    ///
    /// # Errors
    ///
    /// Returns [`ReductionError`] when `reduced_dim` is zero or exceeds
    /// `original_dim`.
    pub fn base(original_dim: usize, reduced_dim: usize) -> Result<Self, ReductionError> {
        if reduced_dim == 0 || reduced_dim > original_dim {
            return Err(ReductionError::InvalidTargetDimension {
                original_dim,
                reduced_dim,
            });
        }
        let assignment = (0..original_dim).map(|i| i.min(reduced_dim - 1)).collect();
        Self::new(assignment, reduced_dim)
    }

    /// Original dimensionality `d`.
    #[inline]
    pub fn original_dim(&self) -> usize {
        self.assignment.len()
    }

    /// Reduced dimensionality `d'`.
    #[inline]
    pub fn reduced_dim(&self) -> usize {
        self.reduced_dim
    }

    /// Reduced dimension of original dimension `i`.
    #[inline]
    pub fn target_of(&self, original: usize) -> usize {
        self.assignment[original] as usize
    }

    /// The assignment vector.
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Number of original dimensions in reduced dimension `target`.
    #[inline]
    pub fn group_size(&self, target: usize) -> usize {
        self.group_sizes[target] as usize
    }

    /// Materialize the groups: `groups()[i']` lists the original
    /// dimensions combined into `i'`.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.reduced_dim];
        for (original, &target) in self.assignment.iter().enumerate() {
            groups[target as usize].push(original);
        }
        groups
    }

    /// Reassign original dimension `original` to reduced dimension
    /// `target`. Returns `false` (and leaves the reduction unchanged) if
    /// the move would empty the source group, which would violate
    /// restriction (8); the flow-based optimizers skip such moves.
    pub fn try_reassign(&mut self, original: usize, target: usize) -> bool {
        debug_assert!(original < self.assignment.len() && target < self.reduced_dim);
        let source = self.assignment[original] as usize;
        if source == target {
            return true;
        }
        if self.group_sizes[source] == 1 {
            return false;
        }
        self.group_sizes[source] -= 1;
        self.group_sizes[target] += 1;
        self.assignment[original] = target as u32;
        true
    }

    /// Apply the reduction to a histogram: `x' = x * R`
    /// (mass of each group summed).
    ///
    /// # Errors
    ///
    /// Returns [`ReductionError::DimensionMismatch`]-style failures when `x` does
    /// not have the reduction's original dimensionality.
    pub fn reduce(&self, x: &Histogram) -> Result<Histogram, ReductionError> {
        if x.dim() != self.assignment.len() {
            return Err(ReductionError::DimensionMismatch {
                expected: self.assignment.len(),
                got: x.dim(),
            });
        }
        let mut reduced = vec![0.0; self.reduced_dim];
        for (i, mass) in x.nonzero() {
            reduced[self.assignment[i] as usize] += mass;
        }
        Ok(Histogram::new(reduced)?)
    }

    /// Materialize the reduction as the dense 0/1 matrix of Definition 2,
    /// row-major `d x d'`. Intended for tests and documentation; the
    /// compact assignment representation is used everywhere else.
    pub fn to_dense(&self) -> Vec<f64> {
        let d = self.assignment.len();
        let mut dense = vec![0.0; d * self.reduced_dim];
        for (i, &target) in self.assignment.iter().enumerate() {
            dense[i * self.reduced_dim + target as usize] = 1.0;
        }
        dense
    }
}

impl TryFrom<ReductionRepr> for CombiningReduction {
    type Error = ReductionError;

    fn try_from(repr: ReductionRepr) -> Result<Self, Self::Error> {
        CombiningReduction::new(
            repr.assignment.into_iter().map(|a| a as usize).collect(),
            repr.reduced_dim,
        )
    }
}

impl From<CombiningReduction> for ReductionRepr {
    fn from(reduction: CombiningReduction) -> Self {
        ReductionRepr {
            assignment: reduction.assignment.to_vec(),
            reduced_dim: reduction.reduced_dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_assignment_accepted() {
        let r = CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap();
        assert_eq!(r.original_dim(), 4);
        assert_eq!(r.reduced_dim(), 2);
        assert_eq!(r.group_size(0), 2);
        assert_eq!(r.groups(), vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn rejects_empty_reduced_dimension() {
        assert_eq!(
            CombiningReduction::new(vec![0, 0, 0], 2).unwrap_err(),
            ReductionError::EmptyReducedDimension(1)
        );
    }

    #[test]
    fn rejects_out_of_range_target() {
        assert!(matches!(
            CombiningReduction::new(vec![0, 2], 2).unwrap_err(),
            ReductionError::AssignmentOutOfRange {
                original: 1,
                target: 2,
                ..
            }
        ));
    }

    #[test]
    fn rejects_invalid_target_dim() {
        assert!(matches!(
            CombiningReduction::new(vec![0, 0], 0).unwrap_err(),
            ReductionError::InvalidTargetDimension { .. }
        ));
        assert!(matches!(
            CombiningReduction::new(vec![0], 2).unwrap_err(),
            ReductionError::InvalidTargetDimension { .. }
        ));
    }

    #[test]
    fn from_groups_roundtrip() {
        let groups = vec![vec![0, 3], vec![1], vec![2, 4]];
        let r = CombiningReduction::from_groups(&groups).unwrap();
        assert_eq!(r.groups(), groups);
        assert_eq!(r.target_of(3), 0);
        assert_eq!(r.target_of(4), 2);
    }

    #[test]
    fn from_groups_rejects_non_partition() {
        // Dimension 1 appears twice.
        assert!(CombiningReduction::from_groups(&[vec![0, 1], vec![1]]).is_err());
        // Empty group.
        assert!(CombiningReduction::from_groups(&[vec![0, 1], vec![]]).is_err());
    }

    #[test]
    fn reduce_sums_group_masses() {
        let r = CombiningReduction::new(vec![0, 0, 1, 1, 1], 2).unwrap();
        let x = Histogram::new(vec![0.1, 0.2, 0.3, 0.2, 0.2]).unwrap();
        let reduced = r.reduce(&x).unwrap();
        assert_eq!(reduced.dim(), 2);
        assert!((reduced.mass(0) - 0.3).abs() < 1e-12);
        assert!((reduced.mass(1) - 0.7).abs() < 1e-12);
        // Restriction (7): total mass preserved.
        assert!((reduced.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reduce_rejects_wrong_dimension() {
        let r = CombiningReduction::new(vec![0, 1], 2).unwrap();
        let x = Histogram::new(vec![0.5, 0.25, 0.25]).unwrap();
        assert!(matches!(
            r.reduce(&x).unwrap_err(),
            ReductionError::DimensionMismatch {
                expected: 2,
                got: 3
            }
        ));
    }

    #[test]
    fn identity_is_noop() {
        let r = CombiningReduction::identity(3).unwrap();
        let x = Histogram::new(vec![0.2, 0.3, 0.5]).unwrap();
        assert_eq!(r.reduce(&x).unwrap(), x);
    }

    #[test]
    fn base_pins_prefix() {
        let r = CombiningReduction::base(6, 3).unwrap();
        assert_eq!(r.assignment(), &[0, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn try_reassign_respects_nonempty_constraint() {
        let mut r = CombiningReduction::new(vec![0, 1, 1], 2).unwrap();
        // Moving dimension 0 would empty group 0.
        assert!(!r.try_reassign(0, 1));
        assert_eq!(r.assignment(), &[0, 1, 1]);
        // Moving dimension 1 is fine.
        assert!(r.try_reassign(1, 0));
        assert_eq!(r.assignment(), &[0, 0, 1]);
        // Self-move is a no-op success.
        assert!(r.try_reassign(2, 1));
    }

    #[test]
    fn dense_matrix_satisfies_definition_three() {
        let r = CombiningReduction::new(vec![0, 1, 1, 0], 2).unwrap();
        let dense = r.to_dense();
        // Restriction (6)/(7): each row sums to 1 with 0/1 entries.
        for i in 0..4 {
            let row = &dense[i * 2..(i + 1) * 2];
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(row.iter().all(|&x| x == 0.0 || x == 1.0));
        }
        // Restriction (8): each column sums to >= 1.
        for j in 0..2 {
            let col_sum: f64 = (0..4).map(|i| dense[i * 2 + j]).sum();
            assert!(col_sum >= 1.0);
        }
    }

    #[test]
    fn serde_roundtrip_and_validation() {
        let r = CombiningReduction::new(vec![0, 1, 0], 2).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: CombiningReduction = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
        // Invalid payloads are rejected through the same validation.
        let bad = r#"{"assignment":[0,0,0],"reduced_dim":2}"#;
        assert!(serde_json::from_str::<CombiningReduction>(bad).is_err());
    }
}
