//! PCA-guided combining reduction (ablation).
//!
//! Section 3.1 of the paper reports that real-valued reductions such as
//! PCA "resulted in very poor retrieval efficiency due to the concessions
//! that had to be made for the reduced cost matrix in order to guarantee
//! the lower-bounding property" — real-valued mixing forces the worst-case
//! reduced costs toward zero. The paper gives no construction, so this
//! module implements the closest *sound* analogue for the ablation bench:
//! dimensions are clustered by the similarity of their principal-component
//! loadings (a purely data-driven, geometry-blind criterion), and the
//! resulting *combining* reduction is used with the optimal min cost
//! matrix of Definition 5. This isolates the paper's question — does
//! ignoring the ground distance hurt? — while staying a complete filter.

use crate::matrix::CombiningReduction;
use crate::ReductionError;
use emd_core::Histogram;
use rand::seq::SliceRandom;
use rand::Rng;

/// Principal components of a histogram sample.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Eigenvectors, one `Vec<f64>` of length `d` per component,
    /// descending eigenvalue order.
    pub components: Vec<Vec<f64>>,
    /// Matching eigenvalues.
    pub eigenvalues: Vec<f64>,
}

/// Compute the top `m` principal components of the sample covariance by
/// power iteration with deflation. `O(m * iters * d^2)`.
///
/// # Errors
///
/// Returns [`ReductionError`] when the sample is empty, `m` is zero, or `m`
/// exceeds the sample dimensionality.
pub fn pca(sample: &[Histogram], m: usize) -> Result<Pca, ReductionError> {
    if sample.len() < 2 {
        return Err(ReductionError::SampleTooSmall(sample.len()));
    }
    let d = sample[0].dim(); // bounds: sample.len() >= 2 was checked above
    for h in sample {
        if h.dim() != d {
            return Err(ReductionError::DimensionMismatch {
                expected: d,
                got: h.dim(),
            });
        }
    }
    let n = sample.len() as f64;
    let mut mean = vec![0.0; d];
    for h in sample {
        for (i, &x) in h.bins().iter().enumerate() {
            mean[i] += x / n; // bounds: every histogram was checked to have dim d = mean.len()
        }
    }
    let mut covariance = vec![0.0; d * d];
    for h in sample {
        for i in 0..d {
            let di = h.mass(i) - mean[i]; // bounds: i < d sizes mean and the covariance rows
            if di == 0.0 {
                continue;
            }
            for j in 0..d {
                covariance[i * d + j] += di * (h.mass(j) - mean[j]) / n; // bounds: i, j < d index the d*d covariance buffer
            }
        }
    }

    let m = m.min(d);
    let mut components = Vec::with_capacity(m);
    let mut eigenvalues = Vec::with_capacity(m);
    let mut work = covariance;
    for component_index in 0..m {
        let (vector, value) = dominant_eigenpair(&work, d, component_index);
        if value <= 1e-12 {
            break; // Remaining variance is numerically zero.
        }
        // Deflate: work -= value * v v^T.
        for i in 0..d {
            for j in 0..d {
                work[i * d + j] -= value * vector[i] * vector[j]; // bounds: i, j < d index the d*d work buffer
            }
        }
        components.push(vector);
        eigenvalues.push(value);
    }
    Ok(Pca {
        components,
        eigenvalues,
    })
}

/// Power iteration for the dominant eigenpair of a symmetric PSD matrix.
/// The seed vector is deterministic but varied per component so deflated
/// matrices do not start orthogonal to their dominant direction.
fn dominant_eigenpair(matrix: &[f64], d: usize, seed: usize) -> (Vec<f64>, f64) {
    let mut v: Vec<f64> = (0..d)
        .map(|i| 1.0 + ((i * 31 + seed * 17) % 97) as f64 / 97.0)
        .collect();
    normalize(&mut v);
    let mut value = 0.0;
    let mut product = vec![0.0; d];
    for _ in 0..200 {
        for i in 0..d {
            product[i] = matrix[i * d..(i + 1) * d] // bounds: i < d and the matrix holds d*d entries
                .iter()
                .zip(v.iter())
                .map(|(m, x)| m * x)
                .sum();
        }
        let norm = normalize(&mut product);
        std::mem::swap(&mut v, &mut product);
        if (norm - value).abs() <= 1e-14 * norm.max(1.0) {
            value = norm;
            break;
        }
        value = norm;
    }
    (v, value)
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        v.iter_mut().for_each(|x| *x /= norm);
    }
    norm
}

/// Cluster the original dimensions by their eigenvalue-scaled PCA loadings
/// (k-means in component space) and return the induced combining
/// reduction.
///
/// # Errors
///
/// Returns [`ReductionError`] when `k` or `components` is out of range for
/// the sample, or when the underlying [`pca`] run fails.
pub fn pca_guided_reduction(
    sample: &[Histogram],
    k: usize,
    components: usize,
    rng: &mut impl Rng,
) -> Result<CombiningReduction, ReductionError> {
    if sample.is_empty() {
        return Err(ReductionError::SampleTooSmall(0));
    }
    let d = sample[0].dim(); // bounds: sample.is_empty() was rejected above
    if k == 0 || k > d {
        return Err(ReductionError::InvalidTargetDimension {
            original_dim: d,
            reduced_dim: k,
        });
    }
    let decomposition = pca(sample, components)?;
    let m = decomposition.components.len();
    // Loading vector of each original dimension, scaled by sqrt(lambda) so
    // strong components dominate.
    let loadings: Vec<Vec<f64>> = (0..d)
        .map(|i| {
            (0..m)
                .map(|c| decomposition.components[c][i] * decomposition.eigenvalues[c].sqrt()) // bounds: c < m components, i < d loadings per component
                .collect()
        })
        .collect();
    let assignment = kmeans(&loadings, k, rng);
    CombiningReduction::new(assignment, k)
}

/// Plain k-means with empty-cluster repair (farthest point reseeding).
fn kmeans(points: &[Vec<f64>], k: usize, rng: &mut impl Rng) -> Vec<usize> {
    let n = points.len();
    let dim = points.first().map_or(0, Vec::len);
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(rng);
    let mut centers: Vec<Vec<f64>> = indices[..k].iter().map(|&i| points[i].clone()).collect(); // bounds: kmeans callers guarantee k <= points.len() = n
    let mut assignment = vec![0usize; n];

    for _ in 0..100 {
        let mut changed = false;
        for (i, point) in points.iter().enumerate() {
            let nearest = centers
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    squared_distance(point, a).total_cmp(&squared_distance(point, b))
                })
                .map(|(c, _)| c)
                .unwrap_or(0);
            // bounds: i iterates 0..rows = assignment.len()
            if assignment[i] != nearest {
                // bounds: i < n = assignment.len(); nearest < k centers
                assignment[i] = nearest;
                changed = true;
            }
        }
        // Recompute centers; repair empty clusters with the point farthest
        // from its center.
        let mut counts = vec![0usize; k];
        let mut sums = vec![vec![0.0; dim]; k];
        for (i, point) in points.iter().enumerate() {
            counts[assignment[i]] += 1; // bounds: assignments are < k and points have dim axes
            for (axis, &x) in point.iter().enumerate() {
                sums[assignment[i]][axis] += x; // bounds: assignments are < k and points have dim axes
            }
        }
        for c in 0..k {
            // bounds: c < k = counts.len()
            if counts[c] == 0 {
                // bounds: c < k sizes counts, sums and centers
                let farthest = (0..n)
                    .filter(|&i| counts[assignment[i]] > 1) // bounds: assignments are < k; i ranges over 0..n
                    .max_by(|&a, &b| {
                        squared_distance(&points[a], &centers[assignment[a]]) // bounds: a, b < n and assignments are < k
                            .total_cmp(&squared_distance(&points[b], &centers[assignment[b]]))
                    });
                if let Some(i) = farthest {
                    counts[assignment[i]] -= 1; // bounds: i < n and c < k index assignment/counts/centers
                    counts[c] = 1;
                    assignment[i] = c; // bounds: i < n and c < k index assignment/counts/centers
                    centers[c] = points[i].clone();
                    changed = true;
                }
            } else {
                for axis in 0..dim {
                    centers[c][axis] = sums[c][axis] / counts[c] as f64; // bounds: c < k and axis < dim size the center buffers
                }
            }
        }
        if !changed {
            break;
        }
    }
    assignment
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    fn correlated_sample() -> Vec<Histogram> {
        // Bins {0,1} move together, bins {2,3} move together (opposite).
        vec![
            h(&[0.4, 0.4, 0.1, 0.1]),
            h(&[0.35, 0.35, 0.15, 0.15]),
            h(&[0.1, 0.1, 0.4, 0.4]),
            h(&[0.15, 0.15, 0.35, 0.35]),
            h(&[0.25, 0.25, 0.25, 0.25]),
        ]
    }

    #[test]
    fn first_component_captures_dominant_variance() {
        let decomposition = pca(&correlated_sample(), 2).unwrap();
        assert!(!decomposition.components.is_empty());
        let v = &decomposition.components[0];
        // The dominant direction contrasts {0,1} against {2,3}:
        // same sign within each pair, opposite across.
        assert!(v[0] * v[1] > 0.0);
        assert!(v[2] * v[3] > 0.0);
        assert!(v[0] * v[2] < 0.0);
        // Eigenvalues descending.
        if decomposition.eigenvalues.len() > 1 {
            assert!(decomposition.eigenvalues[0] >= decomposition.eigenvalues[1] - 1e-12);
        }
    }

    #[test]
    fn guided_reduction_groups_correlated_bins() {
        let mut rng = StdRng::seed_from_u64(11);
        let r = pca_guided_reduction(&correlated_sample(), 2, 2, &mut rng).unwrap();
        assert_eq!(r.target_of(0), r.target_of(1));
        assert_eq!(r.target_of(2), r.target_of(3));
        assert_ne!(r.target_of(0), r.target_of(2));
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(pca_guided_reduction(&[], 2, 2, &mut rng).is_err());
        let sample = correlated_sample();
        assert!(pca_guided_reduction(&sample, 0, 2, &mut rng).is_err());
        assert!(pca_guided_reduction(&sample, 5, 2, &mut rng).is_err());
        assert!(pca(&sample[..1], 2).is_err());
    }

    #[test]
    fn components_are_orthonormal() {
        let decomposition = pca(&correlated_sample(), 3).unwrap();
        for (a, va) in decomposition.components.iter().enumerate() {
            let norm: f64 = va.iter().map(|x| x * x).sum();
            assert!((norm - 1.0).abs() < 1e-6);
            for vb in decomposition.components.iter().skip(a + 1) {
                let dot: f64 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
                assert!(dot.abs() < 1e-5, "components not orthogonal: {dot}");
            }
        }
    }
}
