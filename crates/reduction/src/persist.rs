//! Persistable reduction bundles: everything the filter step needs,
//! packaged for the on-disk index store.
//!
//! Section 4 of the paper assumes the database-side reductions are
//! computed **offline**: the filter works purely on pre-reduced data.
//! [`PersistedReduction`] is that offline artifact — a named
//! [`ReducedEmd`] (reduction matrices `R1`/`R2` plus the optimal reduced
//! cost matrix `C'`) together with the precomputed reduced database
//! arena. `emd-store` serializes the bundle; [`PersistedReduction::from_parts`]
//! is the validating re-entry point that recomputes `C'` from the stored
//! matrices and refuses any disagreement, so a damaged reduced cost
//! matrix can never silently weaken (or break) the lower-bound filter.

use emd_core::{CostMatrix, Histogram};

use crate::matrix::CombiningReduction;
use crate::reduced_emd::ReducedEmd;
use crate::ReductionError;

/// A named reduction with its precomputed database-side arena.
#[derive(Debug, Clone)]
pub struct PersistedReduction {
    name: String,
    reduced: ReducedEmd,
    reduced_database: Vec<Histogram>,
}

impl PersistedReduction {
    /// Build the bundle from scratch: reduce every database histogram
    /// through the reduction's database side (`R2`).
    ///
    /// # Errors
    ///
    /// Returns [`ReductionError::DimensionMismatch`] when a database
    /// histogram does not have the reduction's original dimensionality.
    pub fn precompute(
        name: impl Into<String>,
        reduced: ReducedEmd,
        database: &[Histogram],
    ) -> Result<Self, ReductionError> {
        let reduced_database = database
            .iter()
            .map(|h| reduced.reduce_second(h))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PersistedReduction {
            name: name.into(),
            reduced,
            reduced_database,
        })
    }

    /// Reassemble a bundle from stored parts, re-validating the
    /// derivation invariants:
    ///
    /// * `C'` must be **bit-identical** to the optimal reduced cost
    ///   matrix recomputed from `cost`, `r1` and `r2` (Definition 5 is
    ///   deterministic, so any divergence means corruption or a foreign
    ///   cost matrix);
    /// * every precomputed histogram must have the database-side reduced
    ///   dimensionality.
    ///
    /// A full recompute of the reduced arena would cost as much as
    /// rebuilding the index, so arena *integrity* is left to the store's
    /// checksums; this check pins the arena's *shape* and the matrices'
    /// mutual consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ReductionError::PersistedMismatch`] on either
    /// disagreement, and propagates errors from rebuilding the reduced
    /// cost matrix.
    pub fn from_parts(
        name: impl Into<String>,
        cost: &CostMatrix,
        r1: CombiningReduction,
        r2: CombiningReduction,
        reduced_cost: &CostMatrix,
        reduced_database: Vec<Histogram>,
    ) -> Result<Self, ReductionError> {
        let reduced = ReducedEmd::with_asymmetric(cost, r1, r2)?;
        if !bit_identical(reduced.reduced_cost(), reduced_cost) {
            return Err(ReductionError::PersistedMismatch {
                what: "stored reduced cost matrix disagrees with the matrix recomputed \
                       from the stored reduction matrices and original costs"
                    .into(),
            });
        }
        let expected = reduced.r2().reduced_dim();
        for (index, histogram) in reduced_database.iter().enumerate() {
            if histogram.dim() != expected {
                return Err(ReductionError::PersistedMismatch {
                    what: format!(
                        "precomputed histogram {index} has dimensionality {}, \
                         reduction produces {expected}",
                        histogram.dim()
                    ),
                });
            }
        }
        Ok(PersistedReduction {
            name: name.into(),
            reduced,
            reduced_database,
        })
    }

    /// The bundle's name (e.g. `kmed:6`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The prepared reduced EMD.
    pub fn reduced(&self) -> &ReducedEmd {
        &self.reduced
    }

    /// The precomputed database-side reduced histograms, in database
    /// order.
    pub fn reduced_database(&self) -> &[Histogram] {
        &self.reduced_database
    }

    /// Decompose into `(name, reduced EMD, reduced arena)`.
    pub fn into_parts(self) -> (String, ReducedEmd, Vec<Histogram>) {
        (self.name, self.reduced, self.reduced_database)
    }
}

/// Bitwise equality of two cost matrices — stricter than `PartialEq`
/// (`-0.0 == 0.0`), matching the store's bit-identical round-trip
/// contract.
fn bit_identical(a: &CostMatrix, b: &CostMatrix) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.entries()
            .iter()
            .zip(b.entries())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_core::ground;

    fn fixture() -> (CostMatrix, Vec<Histogram>, ReducedEmd) {
        let cost = ground::linear(4).unwrap();
        let database = vec![
            Histogram::new(vec![1.0, 0.0, 0.0, 0.0]).unwrap(),
            Histogram::new(vec![0.0, 0.5, 0.5, 0.0]).unwrap(),
            Histogram::new(vec![0.25, 0.25, 0.25, 0.25]).unwrap(),
        ];
        let r = CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap();
        let reduced = ReducedEmd::new(&cost, r).unwrap();
        (cost, database, reduced)
    }

    #[test]
    fn precompute_then_from_parts_roundtrips() {
        let (cost, database, reduced) = fixture();
        let bundle = PersistedReduction::precompute("kmed:2", reduced, &database).unwrap();
        let (name, reduced, arena) = bundle.clone().into_parts();
        let back = PersistedReduction::from_parts(
            name,
            &cost,
            reduced.r1().clone(),
            reduced.r2().clone(),
            reduced.reduced_cost(),
            arena,
        )
        .unwrap();
        assert_eq!(back.name(), "kmed:2");
        assert_eq!(back.reduced_database().len(), 3);
        for (a, b) in bundle
            .reduced_database()
            .iter()
            .zip(back.reduced_database())
        {
            assert_eq!(a.bins(), b.bins());
        }
    }

    #[test]
    fn tampered_reduced_cost_is_rejected() {
        let (cost, database, reduced) = fixture();
        let bundle = PersistedReduction::precompute("kmed:2", reduced, &database).unwrap();
        let (name, reduced, arena) = bundle.into_parts();
        let mut entries = reduced.reduced_cost().entries().to_vec();
        entries[1] += 0.5; // inflate one cost: would overclaim the lower bound
        let tampered = CostMatrix::new(
            reduced.reduced_cost().rows(),
            reduced.reduced_cost().cols(),
            entries,
        )
        .unwrap();
        let err = PersistedReduction::from_parts(
            name,
            &cost,
            reduced.r1().clone(),
            reduced.r2().clone(),
            &tampered,
            arena,
        )
        .unwrap_err();
        assert!(
            matches!(err, ReductionError::PersistedMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn wrong_arena_dimensionality_is_rejected() {
        let (cost, database, reduced) = fixture();
        let bundle = PersistedReduction::precompute("kmed:2", reduced, &database).unwrap();
        let (name, reduced, _) = bundle.into_parts();
        let wrong = vec![Histogram::new(vec![0.5, 0.25, 0.25]).unwrap()];
        let err = PersistedReduction::from_parts(
            name,
            &cost,
            reduced.r1().clone(),
            reduced.r2().clone(),
            reduced.reduced_cost(),
            wrong,
        )
        .unwrap_err();
        assert!(
            matches!(err, ReductionError::PersistedMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn mismatched_database_histogram_fails_precompute() {
        let (_, _, reduced) = fixture();
        let bad = vec![Histogram::new(vec![0.5, 0.5]).unwrap()];
        assert!(PersistedReduction::precompute("x", reduced, &bad).is_err());
    }
}
