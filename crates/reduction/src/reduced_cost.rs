//! The optimal reduced cost matrix (Definition 5).
//!
//! For reduction matrices `R1` (first operand) and `R2` (second operand),
//! the reduced ground distance is
//!
//! ```text
//! c'_{i'j'} = min{ c_ij | r1_{ii'} = 1  and  r2_{jj'} = 1 }
//! ```
//!
//! Theorem 1 of the paper proves that the EMD under `C'` on the reduced
//! vectors lower-bounds the EMD under `C` on the originals; Theorem 3
//! proves no entry of `C'` can be increased without losing the bound —
//! taking minima over the merged cells is *optimal*.

use crate::matrix::CombiningReduction;
use crate::ReductionError;
use emd_core::CostMatrix;

/// Compute the optimal reduced cost matrix for (possibly different)
/// operand reductions. `cost` must be `r1.original_dim() x
/// r2.original_dim()`.
///
/// # Errors
///
/// Returns [`ReductionError`] when `cost` does not measure
/// `r1.original_dim() x r2.original_dim()`.
pub fn reduce_cost_matrix(
    cost: &CostMatrix,
    r1: &CombiningReduction,
    r2: &CombiningReduction,
) -> Result<CostMatrix, ReductionError> {
    if cost.rows() != r1.original_dim() {
        return Err(ReductionError::DimensionMismatch {
            expected: cost.rows(),
            got: r1.original_dim(),
        });
    }
    if cost.cols() != r2.original_dim() {
        return Err(ReductionError::DimensionMismatch {
            expected: cost.cols(),
            got: r2.original_dim(),
        });
    }
    let d1 = r1.reduced_dim();
    let d2 = r2.reduced_dim();
    let mut entries = vec![f64::INFINITY; d1 * d2];
    // One pass over the original matrix: scatter-min into the reduced cell.
    for i in 0..cost.rows() {
        let target_row = r1.target_of(i) * d2;
        let row = cost.row(i);
        for (j, &c) in row.iter().enumerate() {
            let cell = target_row + r2.target_of(j);
            if c < entries[cell] {
                entries[cell] = c;
            }
        }
    }
    debug_assert!(
        entries.iter().all(|e| e.is_finite()),
        "every reduced cell receives at least one original entry \
         because no reduced dimension is empty"
    );
    Ok(CostMatrix::new(d1, d2, entries)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_core::ground;

    #[test]
    fn figure_five_example() {
        // Figure 5 of the paper: its 4x4 cost matrix, merging {d1, d2} and
        // {d3, d4}, yields C' = [[0, 2], [2, 0]] — the preserved
        // inter-cluster distance is c23 = c32 = 2.
        let cost = CostMatrix::new(
            4,
            4,
            vec![
                0.0, 1.0, 3.0, 4.0, //
                1.0, 0.0, 2.0, 3.0, //
                3.0, 2.0, 0.0, 1.0, //
                4.0, 3.0, 1.0, 0.0,
            ],
        )
        .unwrap();
        let r = CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap();
        let reduced = reduce_cost_matrix(&cost, &r, &r).unwrap();
        assert_eq!(reduced.rows(), 2);
        assert_eq!(reduced.entries(), &[0.0, 2.0, 2.0, 0.0]);
    }

    #[test]
    fn section_321_worst_case_example() {
        // Section 3.2.1: x = e_2, y = e_3 (one-based) under the 4-d chain;
        // merging {0,1} and {2,3} must keep c'(0,1) = c(1,2) = 1.
        let cost = ground::linear(4).unwrap();
        let r = CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap();
        let reduced = reduce_cost_matrix(&cost, &r, &r).unwrap();
        assert_eq!(reduced.at(0, 1), 1.0);
    }

    #[test]
    fn asymmetric_reductions() {
        // R1 merges nothing (identity), R2 merges everything: the reduced
        // matrix is d x 1 with row minima.
        let cost = ground::linear(3).unwrap();
        let r1 = CombiningReduction::identity(3).unwrap();
        let r2 = CombiningReduction::new(vec![0, 0, 0], 1).unwrap();
        let reduced = reduce_cost_matrix(&cost, &r1, &r2).unwrap();
        assert_eq!(reduced.rows(), 3);
        assert_eq!(reduced.cols(), 1);
        // Row minima of the chain matrix are all 0 (the diagonal).
        assert_eq!(reduced.entries(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn identity_reduction_is_identity() {
        let cost = ground::grid2(2, 2, ground::Metric::Manhattan).unwrap();
        let r = CombiningReduction::identity(4).unwrap();
        let reduced = reduce_cost_matrix(&cost, &r, &r).unwrap();
        assert_eq!(reduced, cost);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let cost = ground::linear(4).unwrap();
        let r3 = CombiningReduction::identity(3).unwrap();
        let r4 = CombiningReduction::identity(4).unwrap();
        assert!(reduce_cost_matrix(&cost, &r3, &r4).is_err());
        assert!(reduce_cost_matrix(&cost, &r4, &r3).is_err());
    }

    #[test]
    fn reduced_entries_are_minima() {
        let cost = ground::grid2(3, 2, ground::Metric::Euclidean).unwrap();
        let r = CombiningReduction::new(vec![0, 0, 1, 1, 2, 2], 3).unwrap();
        let reduced = reduce_cost_matrix(&cost, &r, &r).unwrap();
        let groups = r.groups();
        for (gi, group_i) in groups.iter().enumerate() {
            for (gj, group_j) in groups.iter().enumerate() {
                let cost = &cost;
                let expected = group_i
                    .iter()
                    .flat_map(|&i| group_j.iter().map(move |&j| cost.at(i, j)))
                    .fold(f64::INFINITY, f64::min);
                assert!((reduced.at(gi, gj) - expected).abs() < 1e-12);
            }
        }
    }
}
