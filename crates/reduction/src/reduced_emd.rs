//! The reduced Earth Mover's Distance (Definition 4):
//! `EMD^{R1,R2}_C(x, y) = EMD_{C'}(x*R1, y*R2)`.

use crate::matrix::CombiningReduction;
use crate::reduced_cost::reduce_cost_matrix;
use crate::ReductionError;
use emd_core::{
    emd_in_context, emd_rectangular, emd_rectangular_budgeted, Budget, CostMatrix, EmdContext,
    Histogram,
};

/// A prepared reduced EMD: reduction matrices plus the optimal reduced
/// cost matrix, ready to evaluate on histogram pairs.
///
/// By Theorem 1 of the paper, [`ReducedEmd::distance`] never exceeds the
/// exact EMD of the original dimensionality, so this type is a *complete*
/// filter for multistep query processing. Because its value is again an
/// EMD (on `d'` dimensions), further EMD filters can be chained on the
/// reduced representation (Section 4).
#[derive(Debug, Clone)]
pub struct ReducedEmd {
    r1: CombiningReduction,
    r2: CombiningReduction,
    reduced_cost: CostMatrix,
}

impl ReducedEmd {
    /// Prepare a reduced EMD with different first/second operand
    /// reductions (e.g. a mild query reduction and an aggressive database
    /// reduction).
    ///
    /// # Errors
    ///
    /// Returns [`ReductionError`] when `cost` does not match the operand
    /// reductions' original dimensionalities, or the reduced cost matrix fails
    /// to build.
    pub fn with_asymmetric(
        cost: &CostMatrix,
        r1: CombiningReduction,
        r2: CombiningReduction,
    ) -> Result<Self, ReductionError> {
        let reduced_cost = reduce_cost_matrix(cost, &r1, &r2)?;
        Ok(ReducedEmd {
            r1,
            r2,
            reduced_cost,
        })
    }

    /// Prepare a symmetric reduced EMD (`R1 = R2 = r`), the common case of
    /// Sections 3.3 and 3.4.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ReducedEmd::with_asymmetric`] with `r1 = r2 = r`.
    pub fn new(cost: &CostMatrix, r: CombiningReduction) -> Result<Self, ReductionError> {
        Self::with_asymmetric(cost, r.clone(), r)
    }

    /// The first-operand reduction `R1`.
    pub fn r1(&self) -> &CombiningReduction {
        &self.r1
    }

    /// The second-operand reduction `R2`.
    pub fn r2(&self) -> &CombiningReduction {
        &self.r2
    }

    /// The optimal reduced cost matrix `C'` (Definition 5).
    pub fn reduced_cost(&self) -> &CostMatrix {
        &self.reduced_cost
    }

    /// Reduce a first-operand (query-side) histogram.
    ///
    /// # Errors
    ///
    /// Returns [`ReductionError`] when `x` does not have the first reduction's
    /// original dimensionality.
    pub fn reduce_first(&self, x: &Histogram) -> Result<Histogram, ReductionError> {
        self.r1.reduce(x)
    }

    /// Reduce a second-operand (database-side) histogram.
    ///
    /// # Errors
    ///
    /// Returns [`ReductionError`] when `y` does not have the second reduction's
    /// original dimensionality.
    pub fn reduce_second(&self, y: &Histogram) -> Result<Histogram, ReductionError> {
        self.r2.reduce(y)
    }

    /// The reduced EMD on *original-dimensionality* operands: reduces both
    /// and solves the small LP.
    ///
    /// # Errors
    ///
    /// Returns [`ReductionError`] on operand shape mismatch or when the small LP
    /// fails to solve.
    pub fn distance(&self, x: &Histogram, y: &Histogram) -> Result<f64, ReductionError> {
        let rx = self.r1.reduce(x)?;
        let ry = self.r2.reduce(y)?;
        Ok(emd_rectangular(&rx, &ry, &self.reduced_cost)?)
    }

    /// The reduced EMD on *already reduced* operands. Query processing
    /// reduces every database histogram once at build time and the query
    /// once per query, then calls this in the hot loop.
    ///
    /// # Errors
    ///
    /// Returns [`ReductionError`] when the reduced operands disagree with the
    /// reduced cost matrix or the small LP fails to solve.
    pub fn distance_reduced(&self, rx: &Histogram, ry: &Histogram) -> Result<f64, ReductionError> {
        Ok(emd_rectangular(rx, ry, &self.reduced_cost)?)
    }

    /// [`distance_reduced`](Self::distance_reduced) under an execution
    /// [`Budget`]: the small LP probes the budget and bails out instead of
    /// spinning. With `Budget::unlimited()` the result is bit-identical.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`distance_reduced`](Self::distance_reduced),
    /// plus a typed `CoreError::BudgetExhausted` (wrapped in
    /// [`ReductionError::Core`](crate::ReductionError)) when the budget
    /// fires mid-solve.
    pub fn distance_reduced_budgeted(
        &self,
        rx: &Histogram,
        ry: &Histogram,
        budget: &Budget,
    ) -> Result<f64, ReductionError> {
        Ok(emd_rectangular_budgeted(
            rx,
            ry,
            &self.reduced_cost,
            budget,
        )?)
    }

    /// [`distance_reduced_budgeted`](Self::distance_reduced_budgeted)
    /// through a reusable [`EmdContext`]: consecutive evaluations against
    /// one fixed reduced query reuse the context's buffers and warm-start
    /// the small LP from the previous candidate's basis. Bit-identical to
    /// the context-free entry for instances with a unique optimum.
    ///
    /// # Errors
    ///
    /// Same failure modes as
    /// [`distance_reduced_budgeted`](Self::distance_reduced_budgeted).
    pub fn distance_reduced_in_context(
        &self,
        rx: &Histogram,
        ry: &Histogram,
        budget: &Budget,
        ctx: &mut EmdContext,
    ) -> Result<f64, ReductionError> {
        Ok(emd_in_context(rx, ry, &self.reduced_cost, budget, ctx)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_core::{emd, ground};

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    #[test]
    fn lower_bounds_figure_one() {
        let x = h(&[0.5, 0.0, 0.2, 0.0, 0.3, 0.0]);
        let y = h(&[0.0, 0.5, 0.0, 0.2, 0.0, 0.3]);
        let cost = ground::linear(6).unwrap();
        let exact = emd(&x, &y, &cost).unwrap();
        for (assignment, d_red) in [
            (vec![0, 0, 1, 1, 2, 2], 3),
            (vec![0, 0, 0, 1, 1, 1], 2),
            (vec![0, 1, 0, 1, 0, 1], 2),
            (vec![0, 0, 0, 0, 0, 0], 1),
        ] {
            let r = CombiningReduction::new(assignment, d_red).unwrap();
            let reduced = ReducedEmd::new(&cost, r).unwrap();
            let lb = reduced.distance(&x, &y).unwrap();
            assert!(
                lb <= exact + 1e-12,
                "reduction to {d_red} dims gave {lb} > exact {exact}"
            );
        }
    }

    #[test]
    fn identity_reduction_is_exact() {
        let x = h(&[0.5, 0.2, 0.3]);
        let y = h(&[0.1, 0.8, 0.1]);
        let cost = ground::linear(3).unwrap();
        let r = CombiningReduction::identity(3).unwrap();
        let reduced = ReducedEmd::new(&cost, r).unwrap();
        let exact = emd(&x, &y, &cost).unwrap();
        assert!((reduced.distance(&x, &y).unwrap() - exact).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_reduction_lower_bounds() {
        let x = h(&[0.25, 0.25, 0.25, 0.25]);
        let y = h(&[0.7, 0.1, 0.1, 0.1]);
        let cost = ground::linear(4).unwrap();
        let exact = emd(&x, &y, &cost).unwrap();
        // Query unreduced, database halved.
        let r1 = CombiningReduction::identity(4).unwrap();
        let r2 = CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap();
        let reduced = ReducedEmd::with_asymmetric(&cost, r1, r2).unwrap();
        let lb = reduced.distance(&x, &y).unwrap();
        assert!(lb <= exact + 1e-12);
    }

    #[test]
    fn distance_reduced_matches_distance() {
        let x = h(&[0.5, 0.0, 0.2, 0.0, 0.3, 0.0]);
        let y = h(&[0.0, 0.5, 0.0, 0.2, 0.0, 0.3]);
        let cost = ground::linear(6).unwrap();
        let r = CombiningReduction::new(vec![0, 0, 1, 1, 2, 2], 3).unwrap();
        let reduced = ReducedEmd::new(&cost, r).unwrap();
        let via_full = reduced.distance(&x, &y).unwrap();
        let rx = reduced.reduce_first(&x).unwrap();
        let ry = reduced.reduce_second(&y).unwrap();
        let via_reduced = reduced.distance_reduced(&rx, &ry).unwrap();
        assert!((via_full - via_reduced).abs() < 1e-12);
    }

    #[test]
    fn discarding_dimensions_counterexample_is_avoided() {
        // Figure 3 of the paper shows that *discarding* dimensions can
        // increase the EMD. Combining reductions never discard: check the
        // lower bound holds on the paper's Figure 3 vectors.
        let x = h(&[0.5, 0.0, 0.2, 0.3, 0.0, 0.0]);
        let y = h(&[0.0, 0.5, 0.2, 0.3, 0.0, 0.0]);
        let cost = ground::linear(6).unwrap();
        let exact = emd(&x, &y, &cost).unwrap();
        let r = CombiningReduction::new(vec![0, 1, 2, 3, 3, 0], 4).unwrap();
        let reduced = ReducedEmd::new(&cost, r).unwrap();
        assert!(reduced.distance(&x, &y).unwrap() <= exact + 1e-12);
    }
}
