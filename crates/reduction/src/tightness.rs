//! The expected-tightness objective of the flow-based reduction
//! (Equations 11 and 12, Figure 7 of the paper).
//!
//! For a reduction `R`, aggregated average flows
//! `aggrFlow(F, R, i', j') = sum_{i in group(i')} sum_{j in group(j')} f_ij`
//! are weighted by the optimally reduced cost matrix `C'`:
//!
//! ```text
//! tightness(R) = sum_{i'} sum_{j'} aggrFlow(F, R, i', j') * c'_{i'j'}
//! ```
//!
//! Larger is better: the aggregated flows approximate the flows a reduced
//! EMD would produce, so a larger weighted sum predicts a tighter lower
//! bound (Section 3.4).
//!
//! Note on fidelity: the paper's Figure 7 pseudo-code passes the *old* `R`
//! to `aggrFlow` while reducing the cost matrix with the modified `R'`.
//! Equation 12 defines the measure with a single reduction matrix, and
//! mixing the two would make the sum inconsistent (flows and costs
//! aggregated over different groups), so we read Figure 7's `R` as a typo
//! for `R'` and evaluate both terms under the modified reduction.

use crate::flow_sample::FlowSample;
use crate::matrix::CombiningReduction;
use emd_core::CostMatrix;

/// Evaluates the expected tightness of reductions against a fixed flow
/// sample and cost matrix. Owns scratch buffers so repeated evaluations
/// (the inner loop of FB-Mod/FB-All) do not allocate.
#[derive(Debug, Clone)]
pub struct TightnessEvaluator {
    dim: usize,
    /// Row-major `d x d` products are aggregated into `d' x d'` scratch.
    aggregated_flows: Vec<f64>,
    reduced_costs: Vec<f64>,
}

impl TightnessEvaluator {
    /// Create an evaluator for histograms of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        TightnessEvaluator {
            dim,
            aggregated_flows: Vec::new(),
            reduced_costs: Vec::new(),
        }
    }

    /// `calcTight` of Figure 7 without the temporary reassignment: the
    /// expected tightness of `r` itself.
    #[allow(clippy::needless_range_loop)] // i, j are bin indices into two matrices
    pub fn tightness(
        &mut self,
        flows: &FlowSample,
        cost: &CostMatrix,
        r: &CombiningReduction,
    ) -> f64 {
        debug_assert_eq!(flows.dim(), self.dim);
        debug_assert_eq!(cost.rows(), self.dim);
        debug_assert_eq!(cost.cols(), self.dim);
        debug_assert_eq!(r.original_dim(), self.dim);

        let d_red = r.reduced_dim();
        self.aggregated_flows.clear();
        self.aggregated_flows.resize(d_red * d_red, 0.0);
        self.reduced_costs.clear();
        self.reduced_costs.resize(d_red * d_red, f64::INFINITY);

        // Single pass over the original d x d matrices: scatter-add the
        // flows and scatter-min the costs into the reduced cells.
        for i in 0..self.dim {
            let target_row = r.target_of(i) * d_red;
            let cost_row = cost.row(i);
            for j in 0..self.dim {
                let cell = target_row + r.target_of(j);
                self.aggregated_flows[cell] += flows.flow(i, j);
                let c = cost_row[j];
                if c < self.reduced_costs[cell] {
                    self.reduced_costs[cell] = c;
                }
            }
        }

        self.aggregated_flows
            .iter()
            .zip(self.reduced_costs.iter())
            .map(|(&f, &c)| f * c)
            .sum()
    }

    /// `calcTight(R, F, C, origDim, newRedDim, d')` of Figure 7: the
    /// expected tightness of `r` with `original` temporarily reassigned to
    /// `target`. Returns `None` if the reassignment would empty the
    /// source group (invalid under Definition 3). `r` is restored before
    /// returning.
    pub fn tightness_with_reassignment(
        &mut self,
        flows: &FlowSample,
        cost: &CostMatrix,
        r: &mut CombiningReduction,
        original: usize,
        target: usize,
    ) -> Option<f64> {
        let previous = r.target_of(original);
        if !r.try_reassign(original, target) {
            return None;
        }
        let tightness = self.tightness(flows, cost, r);
        let restored = r.try_reassign(original, previous);
        debug_assert!(restored, "restoring a reassignment cannot fail");
        Some(tightness)
    }
}

/// The aggregated flow matrix `aggrFlow(F, R, ., .)` as a dense
/// `d' x d'` buffer (Equation 11). Exposed for tests and diagnostics.
pub fn aggregate_flows(flows: &FlowSample, r: &CombiningReduction) -> Vec<f64> {
    let d = flows.dim();
    let d_red = r.reduced_dim();
    let mut aggregated = vec![0.0; d_red * d_red];
    for i in 0..d {
        for j in 0..d {
            aggregated[r.target_of(i) * d_red + r.target_of(j)] += flows.flow(i, j);
        }
    }
    aggregated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce_cost_matrix;
    use emd_core::ground;

    fn uniform_flows(dim: usize) -> FlowSample {
        let value = 1.0 / (dim * dim) as f64;
        FlowSample::from_dense(dim, vec![value; dim * dim]).unwrap()
    }

    #[test]
    fn tightness_is_flow_weighted_reduced_cost() {
        let cost = ground::linear(4).unwrap();
        let flows = uniform_flows(4);
        let r = CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap();
        let mut evaluator = TightnessEvaluator::new(4);
        let tightness = evaluator.tightness(&flows, &cost, &r);
        // Chain costs, merge {0,1} and {2,3}: reduced cost = [[0,1],[1,0]]
        // (cross minimum is c(1,2) = 1). Each reduced cell aggregates 4
        // original cells of flow 1/16 each = 0.25.
        // tightness = 0.25*0 + 0.25*1 + 0.25*1 + 0.25*0 = 0.5
        assert!((tightness - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identity_reduction_maximizes_tightness() {
        // Merging can only lose cost-weighted flow, so the identity
        // reduction upper-bounds any coarser reduction's tightness.
        let cost = ground::linear(5).unwrap();
        let flows = uniform_flows(5);
        let mut evaluator = TightnessEvaluator::new(5);
        let identity = CombiningReduction::identity(5).unwrap();
        let id_tightness = evaluator.tightness(&flows, &cost, &identity);
        for (assignment, d_red) in [
            (vec![0, 0, 1, 1, 2], 3),
            (vec![0, 1, 0, 1, 0], 2),
            (vec![0, 0, 0, 0, 0], 1),
        ] {
            let r = CombiningReduction::new(assignment, d_red).unwrap();
            let t = evaluator.tightness(&flows, &cost, &r);
            assert!(t <= id_tightness + 1e-12);
        }
    }

    #[test]
    fn reassignment_evaluation_restores_state() {
        let cost = ground::linear(4).unwrap();
        let flows = uniform_flows(4);
        let mut r = CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap();
        let snapshot = r.clone();
        let mut evaluator = TightnessEvaluator::new(4);
        let base = evaluator.tightness(&flows, &cost, &r);
        let moved = evaluator
            .tightness_with_reassignment(&flows, &cost, &mut r, 1, 1)
            .unwrap();
        assert_eq!(r, snapshot, "temporary reassignment must be reverted");
        // Check the returned value against an explicit clone-and-modify.
        let mut modified = snapshot;
        assert!(modified.try_reassign(1, 1));
        let expected = evaluator.tightness(&flows, &cost, &modified);
        assert!((moved - expected).abs() < 1e-12);
        let _ = base;
    }

    #[test]
    fn reassignment_emptying_group_is_rejected() {
        let cost = ground::linear(3).unwrap();
        let flows = uniform_flows(3);
        let mut r = CombiningReduction::new(vec![0, 1, 1], 2).unwrap();
        let mut evaluator = TightnessEvaluator::new(3);
        assert!(evaluator
            .tightness_with_reassignment(&flows, &cost, &mut r, 0, 1)
            .is_none());
    }

    #[test]
    fn aggregate_flows_matches_reduced_cost_cells() {
        let cost = ground::grid2(2, 2, ground::Metric::Manhattan).unwrap();
        let flows = uniform_flows(4);
        let r = CombiningReduction::new(vec![0, 1, 0, 1], 2).unwrap();
        let aggregated = aggregate_flows(&flows, &r);
        assert_eq!(aggregated.len(), 4);
        let total: f64 = aggregated.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Consistency: tightness == sum(aggregated * reduced cost).
        let reduced = reduce_cost_matrix(&cost, &r, &r).unwrap();
        let expected: f64 = aggregated
            .iter()
            .zip(reduced.entries().iter())
            .map(|(&f, &c)| f * c)
            .sum();
        let mut evaluator = TightnessEvaluator::new(4);
        let tightness = evaluator.tightness(&flows, &cost, &r);
        assert!((tightness - expected).abs() < 1e-12);
    }
}
