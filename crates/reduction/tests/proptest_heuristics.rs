//! Properties of the reduction-construction heuristics themselves
//! (complementing `proptest_theorems.rs`, which checks the paper's
//! theorems about *any* reduction).

// Test helpers outside #[test] fns still get test-style panic latitude.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use emd_core::{CostMatrix, Histogram};
use emd_reduction::exhaustive::optimal_by_tightness;
use emd_reduction::fb::{fb_all, fb_mod, FbOptions};
use emd_reduction::flow_sample::FlowSample;
use emd_reduction::kmedoids::kmedoids_reduction;
use emd_reduction::tightness::TightnessEvaluator;
use emd_reduction::CombiningReduction;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 7;

fn histogram() -> impl Strategy<Value = Histogram> {
    prop::collection::vec(0.0_f64..1.0, DIM).prop_filter_map("positive mass", |raw| {
        let total: f64 = raw.iter().sum();
        (total > 1e-6)
            .then(|| Histogram::new(raw.iter().map(|x| x / total).collect()).ok())
            .flatten()
    })
}

fn metric_cost() -> impl Strategy<Value = CostMatrix> {
    // Positions on a line with random spacing induce a metric.
    prop::collection::vec(0.1_f64..3.0, DIM - 1).prop_map(|gaps| {
        let mut positions = vec![0.0];
        for gap in gaps {
            positions.push(positions.last().unwrap() + gap);
        }
        CostMatrix::from_fn(DIM, |i, j| (positions[i] - positions[j]).abs()).unwrap()
    })
}

fn flows() -> impl Strategy<Value = FlowSample> {
    prop::collection::vec(histogram(), 3..6).prop_map(|sample| {
        let cost = emd_core::ground::linear(DIM).unwrap();
        FlowSample::from_histograms(&sample, &cost).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FB optimizers never decrease the tightness of their start; FB-All
    /// additionally ends at a true local optimum (a second run changes
    /// nothing). FB-Mod's paper-faithful stopping rule (Figure 8: stop
    /// when the scan returns to the last-changed dimension) does not
    /// re-examine that dimension itself, so only monotony — not strict
    /// stability — is guaranteed for it.
    #[test]
    fn fb_is_monotone_and_converges(
        flows in flows(),
        cost in metric_cost(),
        k in 2usize..5,
    ) {
        let start = kmedoids_reduction(&cost, k, &mut StdRng::seed_from_u64(1))
            .unwrap()
            .reduction;
        let mut evaluator = TightnessEvaluator::new(DIM);
        let start_tightness = evaluator.tightness(&flows, &cost, &start);

        let result_mod = fb_mod(start.clone(), &flows, &cost, FbOptions::default());
        prop_assert!(result_mod.tightness >= start_tightness - 1e-12);
        let again = fb_mod(
            result_mod.reduction.clone(),
            &flows,
            &cost,
            FbOptions::default(),
        );
        prop_assert!(again.tightness >= result_mod.tightness - 1e-12);

        let result_all = fb_all(start, &flows, &cost, FbOptions::default());
        prop_assert!(result_all.tightness >= start_tightness - 1e-12);
        let again = fb_all(
            result_all.reduction.clone(),
            &flows,
            &cost,
            FbOptions::default(),
        );
        prop_assert_eq!(again.reassignments, 0, "FB-All optimum must be stable");
        prop_assert_eq!(again.reduction, result_all.reduction);
    }

    /// The exhaustive oracle dominates both heuristics on tightness.
    #[test]
    fn exhaustive_dominates_heuristics(
        flows in flows(),
        cost in metric_cost(),
        k in 2usize..4,
    ) {
        let (_, best) = optimal_by_tightness(&flows, &cost, k).unwrap();
        let start = CombiningReduction::base(DIM, k).unwrap();
        let result_mod = fb_mod(start.clone(), &flows, &cost, FbOptions::default());
        let result_all = fb_all(start, &flows, &cost, FbOptions::default());
        prop_assert!(best >= result_mod.tightness - 1e-9);
        prop_assert!(best >= result_all.tightness - 1e-9);
    }

    /// k-medoids yields valid reductions at every k, with the boundary
    /// objectives the theory pins down exactly: `TD = 0` at `k = d`
    /// (every dimension its own medoid) and the full spread at `k = 1`.
    /// (Strict monotonicity in k is NOT asserted — greedy local optima
    /// from random initializations can be noisy.)
    #[test]
    fn kmedoids_boundary_objectives(cost in metric_cost()) {
        let mut rng = StdRng::seed_from_u64(7);
        for k in 1..=DIM {
            let result = kmedoids_reduction(&cost, k, &mut rng).unwrap();
            prop_assert_eq!(result.reduction.reduced_dim(), k);
            prop_assert!(result.total_distance >= -1e-12);
            prop_assert_eq!(result.medoids.len(), k);
        }
        let all = kmedoids_reduction(&cost, DIM, &mut rng).unwrap();
        prop_assert!(all.total_distance.abs() < 1e-12);
        // At k = 1 the objective is the column-minimum sum of the cost
        // matrix (best single representative).
        let single = kmedoids_reduction(&cost, 1, &mut rng).unwrap();
        let best_column: f64 = (0..DIM)
            .map(|m| (0..DIM).map(|i| if i == m { 0.0 } else { cost.at(i, m) }).sum::<f64>())
            .fold(f64::INFINITY, f64::min);
        prop_assert!(single.total_distance >= best_column - 1e-9);
    }
}
