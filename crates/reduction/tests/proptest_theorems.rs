//! Property-based checks of the paper's Theorems 1-3 on random instances.

// Test helpers outside #[test] fns still get test-style panic latitude.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use emd_core::{emd, ground, CostMatrix, Histogram};
use emd_reduction::{reduce_cost_matrix, CombiningReduction, ReducedEmd};
use proptest::prelude::*;

const DIM: usize = 8;

fn histogram(dim: usize) -> impl Strategy<Value = Histogram> {
    prop::collection::vec(0.0_f64..1.0, dim).prop_filter_map("positive total mass", |raw| {
        let total: f64 = raw.iter().sum();
        (total > 1e-6)
            .then(|| Histogram::new(raw.iter().map(|x| x / total).collect()).ok())
            .flatten()
    })
}

/// A random valid combining reduction of `dim` dimensions: a random
/// permutation seeds `k` groups (guaranteeing surjectivity), remaining
/// dimensions join random groups.
fn reduction(dim: usize) -> impl Strategy<Value = CombiningReduction> {
    (1..=dim).prop_flat_map(move |k| {
        (
            Just(k),
            prop::collection::vec(0..k, dim),
            prop::sample::subsequence((0..dim).collect::<Vec<_>>(), k),
        )
            .prop_map(move |(k, mut assignment, seeds)| {
                for (group, &dimension) in seeds.iter().enumerate() {
                    assignment[dimension] = group;
                }
                CombiningReduction::new(assignment, k).expect("constructed valid")
            })
    })
}

fn random_cost(dim: usize) -> impl Strategy<Value = CostMatrix> {
    prop::collection::vec(0.0_f64..10.0, dim * dim).prop_map(move |mut entries| {
        // Zero diagonal, symmetrized: a plausible ground distance.
        for i in 0..dim {
            entries[i * dim + i] = 0.0;
            for j in 0..i {
                let value = entries[i * dim + j];
                entries[j * dim + i] = value;
            }
        }
        CostMatrix::new(dim, dim, entries).expect("valid cost")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: the reduced EMD with the optimal reduced cost matrix
    /// never exceeds the original EMD — for arbitrary (also differing)
    /// combining reductions.
    #[test]
    fn theorem_one_lower_bound(
        x in histogram(DIM),
        y in histogram(DIM),
        r1 in reduction(DIM),
        r2 in reduction(DIM),
        cost in random_cost(DIM),
    ) {
        let exact = emd(&x, &y, &cost).unwrap();
        let reduced = ReducedEmd::with_asymmetric(&cost, r1, r2).unwrap();
        let bound = reduced.distance(&x, &y).unwrap();
        prop_assert!(
            bound <= exact + 1e-8,
            "reduced {bound} exceeds exact {exact}"
        );
    }

    /// Theorem 2 (monotony): entrywise-larger cost matrices give larger
    /// (or equal) EMDs.
    #[test]
    fn theorem_two_monotony(
        x in histogram(DIM),
        y in histogram(DIM),
        cost in random_cost(DIM),
        scale in 1.0_f64..3.0,
    ) {
        let larger = CostMatrix::new(
            DIM,
            DIM,
            cost.entries().iter().map(|c| c * scale).collect(),
        )
        .unwrap();
        prop_assert!(cost.dominated_by(&larger));
        let small = emd(&x, &y, &cost).unwrap();
        let large = emd(&x, &y, &larger).unwrap();
        prop_assert!(small <= large + 1e-8);
    }

    /// Theorem 3 (optimality): each reduced cost entry is *attained* — the
    /// witness unit vectors of the proof have original EMD equal to the
    /// reduced entry, so any larger entry would overestimate. Verifies the
    /// min-rule is the greatest lower-bounding cost matrix.
    #[test]
    fn theorem_three_witnesses(
        r1 in reduction(DIM),
        r2 in reduction(DIM),
        cost in random_cost(DIM),
    ) {
        let reduced_cost = reduce_cost_matrix(&cost, &r1, &r2).unwrap();
        let groups1 = r1.groups();
        let groups2 = r2.groups();
        for (gi, group_i) in groups1.iter().enumerate() {
            for (gj, group_j) in groups2.iter().enumerate() {
                // The witness pair attaining the minimum.
                let (&i0, &j0) = group_i
                    .iter()
                    .flat_map(|i| group_j.iter().map(move |j| (i, j)))
                    .min_by(|&(i, j), &(a, b)| {
                        cost.at(*i, *j).total_cmp(&cost.at(*a, *b))
                    })
                    .unwrap();
                let x0 = Histogram::unit(DIM, i0).unwrap();
                let y0 = Histogram::unit(DIM, j0).unwrap();
                let exact = emd(&x0, &y0, &cost).unwrap();
                // Unit mass moved once: original EMD = c(i0, j0) when that
                // is the cheapest route... the LP may route cheaper through
                // nothing (direct arc only), so it IS c(i0, j0).
                prop_assert!((exact - cost.at(i0, j0)).abs() < 1e-9);
                // The reduced entry equals that witness distance.
                prop_assert!(
                    (reduced_cost.at(gi, gj) - exact).abs() < 1e-9,
                    "cell ({gi},{gj}) = {} but witness EMD = {exact}",
                    reduced_cost.at(gi, gj)
                );
            }
        }
    }

    /// Reduction preserves total mass (restriction 7) and the reduced
    /// histogram is a valid Definition 1 operand.
    #[test]
    fn reduction_preserves_mass(x in histogram(DIM), r in reduction(DIM)) {
        let reduced = r.reduce(&x).unwrap();
        prop_assert_eq!(reduced.dim(), r.reduced_dim());
        prop_assert!((reduced.total_mass() - 1.0).abs() < 1e-9);
    }

    /// Chained monotony: reducing an already-reduced EMD again still lower
    /// bounds both the intermediate and the original EMD.
    #[test]
    fn two_stage_reduction_chains(
        x in histogram(DIM),
        y in histogram(DIM),
    ) {
        let cost = ground::linear(DIM).unwrap();
        let r_mid = CombiningReduction::new(vec![0, 0, 1, 1, 2, 2, 3, 3], 4).unwrap();
        let stage_one = ReducedEmd::new(&cost, r_mid).unwrap();
        let r_final = CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap();
        let stage_two = ReducedEmd::new(stage_one.reduced_cost(), r_final).unwrap();

        let exact = emd(&x, &y, &cost).unwrap();
        let mid = stage_one.distance(&x, &y).unwrap();
        let rx = stage_one.reduce_first(&x).unwrap();
        let ry = stage_one.reduce_second(&y).unwrap();
        let fin = stage_two.distance(&rx, &ry).unwrap();
        prop_assert!(mid <= exact + 1e-9);
        prop_assert!(fin <= mid + 1e-9);
    }
}
