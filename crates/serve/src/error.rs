//! The typed error taxonomy of the serve layer.
//!
//! Every failure a server or load generator can hit maps onto one
//! [`ServeError`] variant; HTTP-protocol violations carry a structured
//! [`crate::http::HttpError`] that knows its own status code,
//! so the connection handler can always answer with the right 4xx
//! instead of dropping the connection or (worse) panicking.

use crate::http::HttpError;
use emd_query::{DurableError, QueryError};
use emd_store::StoreError;

/// Everything that can go wrong starting, running, or driving a server.
#[derive(Debug)]
pub enum ServeError {
    /// Binding or using the listening socket failed.
    Io(std::io::Error),
    /// The configured listen or target address did not parse/resolve.
    BadAddr(String),
    /// A malformed HTTP request (maps to a 4xx response).
    Http(HttpError),
    /// The query engine rejected or failed a request.
    Query(QueryError),
    /// A request body was structurally valid JSON but not a valid query
    /// document; the payload is a human-readable diagnostic.
    BadRequest(String),
    /// A durable write failed inside the store layer (WAL append, fsync,
    /// or compaction IO). This is the server's disk failing, never the
    /// client's request — it maps to a 500, and after a failed sync the
    /// write's durability is indeterminate until the index is reopened.
    Durable(StoreError),
    /// The server is draining and no longer accepts work.
    Draining,
    /// A worker or accept thread ended abnormally (join failure).
    WorkerLost,
    /// The load generator got a response it could not interpret.
    BadResponse(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::BadAddr(addr) => write!(f, "bad address `{addr}`"),
            ServeError::Http(e) => write!(f, "http error: {e}"),
            ServeError::Query(e) => write!(f, "query error: {e}"),
            ServeError::BadRequest(detail) => write!(f, "bad request: {detail}"),
            ServeError::Durable(e) => write!(f, "durable store failure: {e}"),
            ServeError::Draining => write!(f, "server is draining"),
            ServeError::WorkerLost => write!(f, "a server thread ended abnormally"),
            ServeError::BadResponse(detail) => write!(f, "bad response: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Query(e) => Some(e),
            ServeError::Durable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<HttpError> for ServeError {
    fn from(e: HttpError) -> Self {
        ServeError::Http(e)
    }
}

impl From<QueryError> for ServeError {
    fn from(e: QueryError) -> Self {
        ServeError::Query(e)
    }
}

/// Split a durable-index failure along the client/server fault line:
/// engine rejections keep their query typing (the request was bad),
/// store failures become [`ServeError::Durable`] (the disk was bad).
impl From<DurableError> for ServeError {
    fn from(e: DurableError) -> Self {
        match e {
            DurableError::Query(query) => ServeError::Query(query),
            DurableError::Store(store) => ServeError::Durable(store),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_prefixed() {
        assert!(ServeError::BadAddr("nope".into())
            .to_string()
            .contains("nope"));
        assert!(ServeError::Draining.to_string().contains("draining"));
        let io: ServeError = std::io::Error::other("x").into();
        assert!(io.to_string().starts_with("i/o error"));
    }
}
