//! A minimal, strict HTTP/1.1 request reader and response writer.
//!
//! The server speaks just enough HTTP for its API: request line +
//! headers + optional `Content-Length` body, one request per connection
//! (every response carries `Connection: close`). The reader is total
//! over arbitrary byte streams — malformed request lines, oversized
//! headers, truncated bodies and binary garbage all surface as a typed
//! [`HttpError`] that knows its own status code, never as a panic
//! (property-tested in `tests/proptest_http.rs`). All length limits are
//! explicit [`Limits`], so a hostile client cannot make a worker buffer
//! unbounded input.

use std::io::{BufRead, Read, Write};

/// Request methods the API understands. Anything else is a typed
/// [`HttpError::UnsupportedMethod`] (501).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Method::Get => write!(f, "GET"),
            Method::Post => write!(f, "POST"),
        }
    }
}

/// One parsed request: method, target path, headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The request target (path), exactly as sent.
    pub target: String,
    /// Header `(name, value)` pairs in arrival order; names are kept
    /// verbatim, lookup is case-insensitive via [`Request::header`].
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match wins).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Read-side limits; defaults are generous for the JSON API and small
/// enough to bound per-connection memory.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of the request line or any single header line
    /// (including the terminating CRLF).
    pub max_line: usize,
    /// Maximum number of headers.
    pub max_headers: usize,
    /// Maximum `Content-Length` accepted.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_line: 8 * 1024,
            max_headers: 64,
            max_body: 1024 * 1024,
        }
    }
}

/// Everything that can be wrong with an incoming request. Each variant
/// maps to a definite status code ([`HttpError::status`]), so the
/// connection handler can always answer before closing.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying socket read failed (timeout, reset).
    Io(std::io::Error),
    /// The stream ended mid-request.
    UnexpectedEof,
    /// The request line was not `METHOD target HTTP/1.x`.
    BadRequestLine,
    /// A method the API does not implement.
    UnsupportedMethod(String),
    /// An HTTP version other than 1.0/1.1.
    UnsupportedVersion(String),
    /// The request line exceeded [`Limits::max_line`].
    RequestLineTooLong,
    /// A header line exceeded [`Limits::max_line`].
    HeaderTooLarge,
    /// More than [`Limits::max_headers`] headers.
    TooManyHeaders,
    /// A header line without `name: value` shape.
    BadHeader,
    /// `Content-Length` was not a base-10 integer.
    BadContentLength,
    /// `Content-Length` exceeded [`Limits::max_body`].
    BodyTooLarge(usize),
    /// The body ended before `Content-Length` bytes arrived.
    TruncatedBody,
}

impl HttpError {
    /// The response status `(code, reason)` this protocol error maps to.
    #[must_use]
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::Io(_) | HttpError::UnexpectedEof | HttpError::TruncatedBody => {
                (400, "Bad Request")
            }
            HttpError::BadRequestLine | HttpError::BadHeader | HttpError::BadContentLength => {
                (400, "Bad Request")
            }
            HttpError::UnsupportedMethod(_) => (501, "Not Implemented"),
            HttpError::UnsupportedVersion(_) => (505, "HTTP Version Not Supported"),
            HttpError::RequestLineTooLong => (414, "URI Too Long"),
            HttpError::HeaderTooLarge | HttpError::TooManyHeaders => {
                (431, "Request Header Fields Too Large")
            }
            HttpError::BodyTooLarge(_) => (413, "Content Too Large"),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "socket read failed: {e}"),
            HttpError::UnexpectedEof => write!(f, "connection closed mid-request"),
            HttpError::BadRequestLine => write!(f, "malformed request line"),
            HttpError::UnsupportedMethod(m) => write!(f, "unsupported method `{m}`"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version `{v}`"),
            HttpError::RequestLineTooLong => write!(f, "request line too long"),
            HttpError::HeaderTooLarge => write!(f, "header line too long"),
            HttpError::TooManyHeaders => write!(f, "too many headers"),
            HttpError::BadHeader => write!(f, "malformed header line"),
            HttpError::BadContentLength => write!(f, "unparseable Content-Length"),
            HttpError::BodyTooLarge(limit) => write!(f, "body exceeds {limit} byte limit"),
            HttpError::TruncatedBody => write!(f, "body shorter than Content-Length"),
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// One line (through `\n`), bounded by `limit` bytes. Distinguishes
/// "line too long" from "stream ended mid-line".
fn read_line(reader: &mut impl BufRead, limit: usize) -> Result<Option<Vec<u8>>, HttpError> {
    let mut line = Vec::new();
    let mut bounded = reader.by_ref().take(limit as u64);
    bounded
        .read_until(b'\n', &mut line)
        .map_err(HttpError::Io)?;
    if line.is_empty() {
        return Ok(None); // clean EOF at a line boundary
    }
    if line.last() != Some(&b'\n') {
        if line.len() >= limit {
            return Err(HttpError::HeaderTooLarge);
        }
        return Err(HttpError::UnexpectedEof);
    }
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    Ok(Some(line))
}

/// Parse `METHOD target HTTP/1.x` into its parts.
fn parse_request_line(line: &[u8]) -> Result<(Method, String), HttpError> {
    let text = std::str::from_utf8(line).map_err(|_| HttpError::BadRequestLine)?;
    let mut parts = text.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequestLine);
    };
    if target.is_empty() || !target.starts_with('/') {
        return Err(HttpError::BadRequestLine);
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        if version.starts_with("HTTP/") {
            return Err(HttpError::UnsupportedVersion(version.to_owned()));
        }
        return Err(HttpError::BadRequestLine);
    }
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other => return Err(HttpError::UnsupportedMethod(other.to_owned())),
    };
    Ok((method, target.to_owned()))
}

/// Read one request off `reader`.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly before
/// sending anything (the idle-close path, not an error).
///
/// # Errors
///
/// Returns [`HttpError`] for every protocol violation — see the variant
/// docs for the status each maps to. The reader never panics, whatever
/// the bytes.
pub fn read_request(
    reader: &mut impl BufRead,
    limits: &Limits,
) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line(reader, limits.max_line).map_err(|e| match e {
        // The request line has its own limit error (the line reader
        // reports a generic header error).
        HttpError::HeaderTooLarge => HttpError::RequestLineTooLong,
        other => other,
    })?
    else {
        return Ok(None);
    };
    let (method, target) = parse_request_line(&line)?;

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader, limits.max_line)? else {
            return Err(HttpError::UnexpectedEof);
        };
        if line.is_empty() {
            break; // end of headers
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooManyHeaders);
        }
        let text = std::str::from_utf8(&line).map_err(|_| HttpError::BadHeader)?;
        let Some((name, value)) = text.split_once(':') else {
            return Err(HttpError::BadHeader);
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadHeader);
        }
        headers.push((name.to_owned(), value.trim().to_owned()));
    }

    let request = Request {
        method,
        target,
        headers,
        body: Vec::new(),
    };
    let length = match request.header("content-length") {
        Some(raw) => Some(
            raw.parse::<usize>()
                .map_err(|_| HttpError::BadContentLength)?,
        ),
        None => None,
    };
    // A POST without Content-Length carries an empty body (RFC 9110
    // §8.6): `POST /admin/drain` needs no payload, so requiring the
    // header would only hurt ergonomics. Routes that do need a body
    // reject the empty one with a typed 400 instead.
    let body = match (request.method, length) {
        (_, None) | (_, Some(0)) => Vec::new(),
        (_, Some(n)) if n > limits.max_body => {
            return Err(HttpError::BodyTooLarge(limits.max_body))
        }
        (_, Some(n)) => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    HttpError::TruncatedBody
                } else {
                    HttpError::Io(e)
                }
            })?;
            body
        }
    };
    Ok(Some(Request { body, ..request }))
}

/// Parse one request from a complete byte buffer (test/proptest entry;
/// the server reads from the socket via [`read_request`]).
///
/// # Errors
///
/// Same conditions as [`read_request`].
pub fn parse_request(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
    let mut reader = std::io::BufReader::new(bytes);
    read_request(&mut reader, &Limits::default())
}

/// An outgoing response: status, extra headers, body. The writer adds
/// `Content-Length`, `Content-Type` and `Connection: close` itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// Extra headers (e.g. `Retry-After`).
    pub headers: Vec<(&'static str, String)>,
    /// UTF-8 body (the API always answers JSON or plain text).
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    #[must_use]
    pub fn json(status: u16, reason: &'static str, body: String) -> Self {
        Response {
            status,
            reason,
            headers: Vec::new(),
            body,
        }
    }

    /// Attach an extra header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.headers.push((name, value));
        self
    }

    /// Serialize onto `writer` (one response per connection; always
    /// `Connection: close`).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the socket write fails.
    pub fn write_to(&self, writer: &mut impl Write) -> std::io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason);
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("Content-Type: application/json\r\n");
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str("Connection: close\r\n\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(self.body.as_bytes())?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        parse_request(bytes)
    }

    #[test]
    fn parses_a_get() {
        let request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("parses")
            .expect("present");
        assert_eq!(request.method, Method::Get);
        assert_eq!(request.target, "/healthz");
        assert_eq!(request.header("host"), Some("x"));
        assert!(request.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let request = parse(b"POST /v1/knn HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"k\":3}")
            .expect("parses")
            .expect("present");
        assert_eq!(request.method, Method::Post);
        assert_eq!(request.body, b"{\"k\":3}");
    }

    #[test]
    fn bare_lf_lines_are_accepted() {
        let request = parse(b"GET / HTTP/1.1\nHost: x\n\n")
            .expect("parses")
            .expect("present");
        assert_eq!(request.target, "/");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").expect("no error").is_none());
    }

    #[test]
    fn typed_errors_carry_statuses() {
        let cases: Vec<(&[u8], u16)> = vec![
            (b"garbage\r\n\r\n", 400),
            (b"PUT / HTTP/1.1\r\n\r\n", 501),
            (b"GET / HTTP/2.0\r\n\r\n", 505),
            (b"GET / HTTP/1.1\r\nbad header line\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort", 400),
            (b"GET / HTTP/1.1\r\nHost", 400),
        ];
        for (bytes, status) in cases {
            let error = parse(bytes).expect_err("must fail");
            assert_eq!(error.status().0, status, "{bytes:?} -> {error}");
        }
    }

    #[test]
    fn oversized_body_is_413() {
        let request = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            Limits::default().max_body + 1
        );
        let error = parse(request.as_bytes()).expect_err("must fail");
        assert_eq!(error.status().0, 413);
    }

    #[test]
    fn oversized_request_line_is_414() {
        let mut request = b"GET /".to_vec();
        request.extend(std::iter::repeat_n(b'a', Limits::default().max_line));
        request.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let error = parse(&request).expect_err("must fail");
        assert_eq!(error.status().0, 414);
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut request = String::from("GET / HTTP/1.1\r\n");
        for index in 0..Limits::default().max_headers + 1 {
            request.push_str(&format!("H{index}: v\r\n"));
        }
        request.push_str("\r\n");
        let error = parse(request.as_bytes()).expect_err("must fail");
        assert_eq!(error.status().0, 431);
    }

    #[test]
    fn response_writes_framing() {
        let mut out = Vec::new();
        Response::json(200, "OK", "{}".into())
            .with_header("Retry-After", "1".into())
            .write_to(&mut out)
            .expect("write");
        let text = String::from_utf8(out).expect("utf-8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
