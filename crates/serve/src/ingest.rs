//! Online writes for `flexemd serve`: a single-writer ingest loop over a
//! [`DurableIndex`] with lock-free readers.
//!
//! The concurrency contract:
//!
//! * **One writer at a time.** Every mutation (`POST /v1/insert`,
//!   `POST /v1/remove`, compaction) takes the writer mutex, appends to
//!   the WAL, **syncs**, and only then swaps the reader snapshot — a
//!   `200` is therefore a durability acknowledgment, not a buffer write.
//! * **Readers never block on the writer.** Queries clone an
//!   `Arc<DurableSnapshot>` out of a mutex held for nanoseconds and run
//!   entirely against that frozen, copy-on-write view. A snapshot taken
//!   before an insert keeps answering bit-identically while (and after)
//!   the writer works — including across compaction, which renumbers
//!   internal slots but never external ids.
//!
//! The swap is observable as the `snapshot.swaps` counter; WAL traffic
//! shows up under `wal.appends` / `wal.synced_bytes` from the store
//! layer, and compactions under `compact.runs`.

use std::sync::{Arc, Mutex, MutexGuard};

use emd_core::Histogram;
use emd_query::durable::CompactReport;
use emd_query::{DurableError, DurableIndex, DurableSnapshot};

/// Shared mutable corpus state behind the server's write routes.
#[derive(Debug)]
pub struct IngestState {
    /// The single writer. Mutations serialize here.
    writer: Mutex<DurableIndex>,
    /// The reader view: swapped (never mutated) after each durable write.
    /// `None` until the corpus holds its first object.
    current: Mutex<Option<Arc<DurableSnapshot>>>,
}

fn unpoisoned<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    match lock.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl IngestState {
    /// Wrap an opened [`DurableIndex`], publishing its current contents
    /// as the initial reader snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError`] when the initial snapshot cannot be
    /// prepared (an empty index is fine: readers simply see no corpus
    /// until the first insert).
    pub fn new(index: DurableIndex) -> Result<Self, DurableError> {
        let initial = if index.is_empty() {
            None
        } else {
            Some(Arc::new(index.snapshot()?))
        };
        Ok(IngestState {
            writer: Mutex::new(index),
            current: Mutex::new(initial),
        })
    }

    /// The current reader snapshot (`None` while the corpus is empty).
    /// Cheap: one short lock and an `Arc` clone.
    #[must_use]
    pub fn snapshot(&self) -> Option<Arc<DurableSnapshot>> {
        unpoisoned(&self.current).clone()
    }

    /// Live object count as the writer sees it.
    #[must_use]
    pub fn len(&self) -> usize {
        unpoisoned(&self.writer).len()
    }

    /// Whether the corpus currently holds no live objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Durably insert one object and publish a fresh reader snapshot.
    /// Returns the external id. The WAL is synced before this returns —
    /// the caller may acknowledge immediately.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError`] when validation, the WAL append, or the
    /// sync fails; the reader snapshot is left unswapped in that case.
    /// After a *sync* failure the record's durability is indeterminate
    /// (it may still have reached disk); reopening the directory
    /// recovers the authoritative state. The server maps store-side
    /// failures to 500, never 400.
    pub fn insert(&self, histogram: Histogram) -> Result<u64, DurableError> {
        let mut writer = unpoisoned(&self.writer);
        let external_id = writer.insert(histogram)?;
        self.publish(&writer)?;
        Ok(external_id)
    }

    /// Durably remove one object by external id and publish a fresh
    /// reader snapshot. Returns `false` (changing nothing) for unknown
    /// ids.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError`] when the WAL append or sync fails.
    pub fn remove(&self, external_id: u64) -> Result<bool, DurableError> {
        let mut writer = unpoisoned(&self.writer);
        if !writer.remove(external_id)? {
            return Ok(false);
        }
        self.publish(&writer)?;
        Ok(true)
    }

    /// Fetch a live object's histogram by external id (resolves
    /// `query_id` on the query routes).
    #[must_use]
    pub fn get(&self, external_id: u64) -> Option<Histogram> {
        unpoisoned(&self.writer).get(external_id).cloned()
    }

    /// Fold the WAL into a sealed segment (see
    /// [`DurableIndex::compact`]) and publish a fresh reader snapshot.
    /// Outstanding reader snapshots keep answering from their frozen
    /// pre-compaction view.
    ///
    /// # Errors
    ///
    /// Returns [`DurableError`] when sealing or the checkpoint flip
    /// fails; the old epoch (and the old reader snapshot) stay intact.
    pub fn compact(&self) -> Result<CompactReport, DurableError> {
        let mut writer = unpoisoned(&self.writer);
        let report = writer.compact()?;
        self.publish(&writer)?;
        Ok(report)
    }

    /// Swap the reader snapshot to the writer's current state.
    fn publish(&self, writer: &DurableIndex) -> Result<(), DurableError> {
        let fresh = if writer.is_empty() {
            None
        } else {
            Some(Arc::new(writer.snapshot()?))
        };
        *unpoisoned(&self.current) = fresh;
        emd_obs::counter_add("snapshot.swaps", 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emd_core::ground;
    use emd_reduction::{CombiningReduction, ReducedEmd};
    use std::path::PathBuf;

    fn h(bins: &[f64]) -> Histogram {
        Histogram::new(bins.to_vec()).unwrap()
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flexemd-ingest-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn state(dir: &std::path::Path) -> IngestState {
        let cost = Arc::new(ground::linear(4).unwrap());
        let reduced =
            ReducedEmd::new(&cost, CombiningReduction::new(vec![0, 0, 1, 1], 2).unwrap()).unwrap();
        IngestState::new(DurableIndex::create(dir, cost, reduced).unwrap()).unwrap()
    }

    #[test]
    fn empty_corpus_has_no_snapshot_until_first_insert() {
        let dir = tmp_dir("empty");
        let ingest = state(&dir);
        assert!(ingest.snapshot().is_none());
        let id = ingest.insert(h(&[1.0, 0.0, 0.0, 0.0])).unwrap();
        assert_eq!(id, 0);
        assert!(ingest.snapshot().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pre_insert_snapshots_stay_frozen() {
        let dir = tmp_dir("frozen");
        let ingest = state(&dir);
        ingest.insert(h(&[1.0, 0.0, 0.0, 0.0])).unwrap();
        ingest.insert(h(&[0.0, 0.0, 0.0, 1.0])).unwrap();
        let frozen = ingest.snapshot().unwrap();
        let query = h(&[0.5, 0.5, 0.0, 0.0]);
        let before = frozen.knn(&query, 2).unwrap().0;
        ingest.insert(h(&[0.5, 0.5, 0.0, 0.0])).unwrap();
        ingest.remove(0).unwrap();
        ingest.compact().unwrap();
        let after = frozen.knn(&query, 2).unwrap().0;
        let bits = |v: &[(u64, f64)]| -> Vec<(u64, u64)> {
            v.iter().map(|&(i, d)| (i, d.to_bits())).collect()
        };
        assert_eq!(bits(&before), bits(&after));
        // The live view moved on.
        let live = ingest.snapshot().unwrap();
        assert_eq!(live.knn(&query, 1).unwrap().0[0].0, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_of_unknown_id_is_a_clean_no() {
        let dir = tmp_dir("no-op");
        let ingest = state(&dir);
        ingest.insert(h(&[1.0, 0.0, 0.0, 0.0])).unwrap();
        assert!(!ingest.remove(42).unwrap());
        assert_eq!(ingest.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
