#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # emd-serve
//!
//! A long-running query server (and its load-generation harness) over
//! an immutable flexemd index snapshot — the serving layer the paper's
//! batch experiments (Wichterich et al., SIGMOD 2008) never needed, but
//! any deployment of EMD similarity search does.
//!
//! Like the rest of the workspace this crate is **zero-dependency**:
//! the HTTP/1.1 surface is a strict std-only reader/writer
//! ([`http`]), JSON rides the `emd-store` parser, and concurrency is a
//! fixed worker pool over `std::net` + `std::sync`.
//!
//! The moving parts:
//!
//! - [`server`] — accept loop, bounded queue, worker pool, admission
//!   control (shed with 429 beyond [`ServeConfig::max_inflight`]),
//!   per-request panic isolation, `/metrics` aggregation, graceful
//!   drain.
//! - [`spec`] — the [`QuerySpec`] vocabulary (`k`, `epsilon`,
//!   `deadline_ms`, `max_pivots`) shared verbatim by `flexemd query`,
//!   the HTTP API, and the load generator.
//! - [`loadgen`] — a deterministic closed-loop client emitting a
//!   schema-versioned [`LoadgenReport`].
//! - [`http`] / [`error`] — the typed protocol and failure taxonomy.

pub mod error;
pub mod http;
pub mod ingest;
pub mod loadgen;
pub mod server;
pub mod spec;

pub use error::ServeError;
pub use http::{Limits, Method, Request, Response};
pub use ingest::IngestState;
pub use loadgen::{LoadgenConfig, LoadgenReport, REPORT_SCHEMA};
pub use server::{RunningServer, ServeConfig, Server, ShutdownHandle, Snapshot, RESPONSE_SCHEMA};
pub use spec::{QuerySpec, DEFAULT_K};
