//! A closed-loop load generator for the query server.
//!
//! `flexemd loadgen` (and experiment E18) drive a running server with a
//! deterministic seeded workload: each of `threads` client threads
//! issues its share of `requests` back-to-back (closed loop — a new
//! request starts only when the previous response has been fully read),
//! picking `query_id`s with a splitmix64 stream derived from the seed.
//! The workload is therefore reproducible request-for-request; only the
//! measured latencies and throughput reflect wall-clock.
//!
//! Responses are classified — exact, degraded, shed (429), client
//! error, server error — and summarized into a schema-versioned
//! ([`REPORT_SCHEMA`]) [`LoadgenReport`] with latency percentiles, the
//! document committed as `BENCH_PR9.json` rows and validated by CI.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::error::ServeError;
use crate::spec::QuerySpec;
use emd_store::json::{self, Value};

/// Schema tag of [`LoadgenReport::to_json_string`].
pub const REPORT_SCHEMA: &str = "flexemd-bench/v1";

/// Workload shape for [`run`].
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent closed-loop client threads.
    pub threads: usize,
    /// Total requests across all threads.
    pub requests: usize,
    /// Query shape sent with every request (k / epsilon / budget).
    pub spec: QuerySpec,
    /// Workload seed; the `query_id` sequence is a pure function of
    /// `(seed, thread, request index)`.
    pub seed: u64,
    /// Per-socket I/O timeout.
    pub io_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            requests: 64,
            spec: QuerySpec::default(),
            seed: 0x5EED,
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// Latency summary in microseconds over the successful (non-shed)
/// responses.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

/// The outcome of one load generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Client threads used.
    pub threads: usize,
    /// Requests issued (= configured total).
    pub requests: usize,
    /// `200` responses with `"degraded": false`.
    pub ok: usize,
    /// `200` responses with `"degraded": true`.
    pub degraded: usize,
    /// `429` shed responses.
    pub shed: usize,
    /// Other `4xx` responses.
    pub client_errors: usize,
    /// `5xx` responses and transport failures.
    pub server_errors: usize,
    /// Latency percentiles over answered (non-shed) requests.
    pub latency: LatencySummary,
    /// Wall-clock duration of the whole run.
    pub elapsed_ms: u64,
    /// Answered requests per second of wall-clock.
    pub throughput_rps: f64,
}

impl LoadgenReport {
    /// Fraction of answered (`200`) responses that were degraded.
    #[must_use]
    pub fn degraded_rate(&self) -> f64 {
        let answered = self.ok + self.degraded;
        if answered == 0 {
            return 0.0;
        }
        self.degraded as f64 / answered as f64
    }

    /// Render the schema-versioned JSON document.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":");
        json::write_escaped(&mut out, REPORT_SCHEMA);
        out.push_str(&format!(
            ",\"kind\":\"loadgen\",\"threads\":{},\"requests\":{},\"ok\":{},\"degraded\":{},\
             \"shed\":{},\"client_errors\":{},\"server_errors\":{},\"degraded_rate\":{},\
             \"elapsed_ms\":{},\"throughput_rps\":{},\"latency_us\":{{\"mean\":{},\"p50\":{},\
             \"p90\":{},\"p99\":{},\"max\":{}}}}}",
            self.threads,
            self.requests,
            self.ok,
            self.degraded,
            self.shed,
            self.client_errors,
            self.server_errors,
            self.degraded_rate(),
            self.elapsed_ms,
            self.throughput_rps,
            self.latency.mean_us,
            self.latency.p50_us,
            self.latency.p90_us,
            self.latency.p99_us,
            self.latency.max_us,
        ));
        out
    }
}

/// The splitmix64 step: a tiny, well-mixed deterministic stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One blocking HTTP exchange: connect, send, read the full response.
///
/// Returns `(status, body)`. The server closes after one response, so
/// the body is everything after the header/body separator.
///
/// # Errors
///
/// Returns [`ServeError::Io`] for transport failures and
/// [`ServeError::BadResponse`] when the response is not parseable HTTP.
pub fn http_call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    io_timeout: Duration,
) -> Result<(u16, String), ServeError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    (&stream).write_all(request.as_bytes())?;
    let mut raw = Vec::new();
    (&stream).read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Split a raw `Connection: close` response into status and body.
fn parse_response(raw: &[u8]) -> Result<(u16, String), ServeError> {
    let text = std::str::from_utf8(raw)
        .map_err(|_| ServeError::BadResponse("response is not UTF-8".to_owned()))?;
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(ServeError::BadResponse(
            "response has no header/body separator".to_owned(),
        ));
    };
    let status_line = head.lines().next().unwrap_or("");
    let mut parts = status_line.split(' ');
    let (Some(version), Some(status)) = (parts.next(), parts.next()) else {
        return Err(ServeError::BadResponse(format!(
            "malformed status line `{status_line}`"
        )));
    };
    if !version.starts_with("HTTP/") {
        return Err(ServeError::BadResponse(format!(
            "malformed status line `{status_line}`"
        )));
    }
    let status: u16 = status
        .parse()
        .map_err(|_| ServeError::BadResponse(format!("malformed status `{status}`")))?;
    Ok((status, body.to_owned()))
}

/// Ask `/healthz` how many objects the server's corpus holds.
///
/// # Errors
///
/// Returns [`ServeError`] when the server is unreachable or the health
/// document is malformed or reports an empty corpus.
pub fn discover_objects(addr: SocketAddr, io_timeout: Duration) -> Result<usize, ServeError> {
    let (status, body) = http_call(addr, "GET", "/healthz", None, io_timeout)?;
    if status != 200 {
        return Err(ServeError::BadResponse(format!(
            "/healthz returned status {status}"
        )));
    }
    let value = json::parse(&body).map_err(ServeError::BadResponse)?;
    let objects = value
        .as_object()
        .and_then(|object| object.get("objects"))
        .and_then(|v| match v {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as usize),
            _ => None,
        })
        .ok_or_else(|| ServeError::BadResponse("/healthz lacks an `objects` count".to_owned()))?;
    if objects == 0 {
        return Err(ServeError::BadResponse(
            "server corpus is empty; nothing to query".to_owned(),
        ));
    }
    Ok(objects)
}

/// Per-request classification accumulated by each client thread.
#[derive(Debug, Default, Clone)]
struct ThreadTally {
    ok: usize,
    degraded: usize,
    shed: usize,
    client_errors: usize,
    server_errors: usize,
    latencies_us: Vec<u64>,
}

/// Build the request body for one workload query.
fn request_body(spec: &QuerySpec, query_id: u64) -> String {
    let mut body = format!("{{\"query_id\":{query_id}");
    if let Some(k) = spec.k {
        body.push_str(&format!(",\"k\":{k}"));
    }
    if let Some(epsilon) = spec.epsilon {
        body.push_str(&format!(",\"epsilon\":{epsilon}"));
    }
    if let Some(deadline) = spec.deadline_ms {
        body.push_str(&format!(",\"deadline_ms\":{deadline}"));
    }
    if let Some(pivots) = spec.max_pivots {
        body.push_str(&format!(",\"max_pivots\":{pivots}"));
    }
    body.push('}');
    body
}

fn classify(tally: &mut ThreadTally, status: u16, body: &str, latency_us: u64) {
    match status {
        200 => {
            tally.latencies_us.push(latency_us);
            let degraded = json::parse(body)
                .ok()
                .as_ref()
                .and_then(Value::as_object)
                .and_then(|object| object.get("degraded"))
                .map(|v| matches!(v, Value::Bool(true)))
                .unwrap_or(false);
            if degraded {
                tally.degraded += 1;
            } else {
                tally.ok += 1;
            }
        }
        429 => tally.shed += 1,
        400..=499 => tally.client_errors += 1,
        _ => tally.server_errors += 1,
    }
}

/// Run the workload against a live server and summarize it.
///
/// # Errors
///
/// Returns [`ServeError::BadAddr`] when the target address does not
/// resolve, and [`ServeError`] when `/healthz` discovery fails.
/// Individual request failures during the run are *not* errors — they
/// count into [`LoadgenReport::server_errors`].
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, ServeError> {
    let mut addrs = config
        .addr
        .to_socket_addrs()
        .map_err(|_| ServeError::BadAddr(config.addr.clone()))?;
    let Some(addr) = addrs.next() else {
        return Err(ServeError::BadAddr(config.addr.clone()));
    };
    // A server at zero capacity sheds even `/healthz`; the workload is
    // still worth running (it measures exactly that shedding), so fall
    // back to a one-object id space instead of erroring out.
    let objects = match discover_objects(addr, config.io_timeout) {
        Ok(objects) => objects,
        Err(ServeError::BadResponse(detail)) if detail.contains("status 429") => 1,
        Err(error) => return Err(error),
    };
    let threads = config.threads.max(1);
    let route = if config.spec.epsilon.is_some() {
        "/v1/range"
    } else {
        "/v1/knn"
    };

    let started = Instant::now();
    let tallies: Vec<ThreadTally> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for thread in 0..threads {
            // Spread the total across threads; the first `remainder`
            // threads take one extra request.
            let share = config.requests / threads + usize::from(thread < config.requests % threads);
            let spec = config.spec;
            let seed = config.seed ^ ((thread as u64) << 32);
            handles.push(scope.spawn(move || {
                let mut tally = ThreadTally::default();
                let mut state = seed;
                for _ in 0..share {
                    let query_id = splitmix64(&mut state) % objects as u64;
                    let body = request_body(&spec, query_id);
                    let begun = Instant::now();
                    match http_call(addr, "POST", route, Some(&body), config.io_timeout) {
                        Ok((status, response_body)) => {
                            let micros =
                                u64::try_from(begun.elapsed().as_micros()).unwrap_or(u64::MAX);
                            classify(&mut tally, status, &response_body, micros);
                        }
                        Err(_) => tally.server_errors += 1,
                    }
                }
                tally
            }));
        }
        handles
            .into_iter()
            .map(|handle| handle.join().unwrap_or_default())
            .collect()
    });
    let elapsed = started.elapsed();

    let mut totals = ThreadTally::default();
    for tally in tallies {
        totals.ok += tally.ok;
        totals.degraded += tally.degraded;
        totals.shed += tally.shed;
        totals.client_errors += tally.client_errors;
        totals.server_errors += tally.server_errors;
        totals.latencies_us.extend(tally.latencies_us);
    }
    totals.latencies_us.sort_unstable();

    let answered = totals.latencies_us.len();
    let latency = if answered == 0 {
        LatencySummary::default()
    } else {
        let sum: u128 = totals.latencies_us.iter().map(|&us| u128::from(us)).sum();
        LatencySummary {
            mean_us: sum as f64 / answered as f64,
            p50_us: percentile(&totals.latencies_us, 50),
            p90_us: percentile(&totals.latencies_us, 90),
            p99_us: percentile(&totals.latencies_us, 99),
            max_us: totals.latencies_us.last().copied().unwrap_or(0),
        }
    };
    let seconds = elapsed.as_secs_f64();
    Ok(LoadgenReport {
        threads,
        requests: config.requests,
        ok: totals.ok,
        degraded: totals.degraded,
        shed: totals.shed,
        client_errors: totals.client_errors,
        server_errors: totals.server_errors,
        latency,
        elapsed_ms: u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX),
        throughput_rps: if seconds > 0.0 {
            answered as f64 / seconds
        } else {
            0.0
        },
    })
}

/// Nearest-rank percentile over an ascending-sorted sample.
fn percentile(sorted_us: &[u64], pct: usize) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = (sorted_us.len() - 1) * pct / 100;
    sorted_us.get(rank).copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixed() {
        let mut a = 42;
        let mut b = 42;
        let first: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let second: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(first, second);
        let mut unique = first.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), first.len());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 50), 50);
        assert_eq!(percentile(&samples, 99), 99);
        assert_eq!(percentile(&samples, 100), 100);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn request_body_carries_spec_fields() {
        let spec = QuerySpec {
            k: Some(3),
            epsilon: None,
            deadline_ms: Some(25),
            max_pivots: None,
        };
        let body = request_body(&spec, 17);
        let value = json::parse(&body).expect("valid body");
        let object = value.as_object().expect("object");
        assert!(matches!(object.get("query_id"), Some(Value::Number(n)) if *n == 17.0));
        assert!(matches!(object.get("k"), Some(Value::Number(n)) if *n == 3.0));
        assert!(matches!(object.get("deadline_ms"), Some(Value::Number(n)) if *n == 25.0));
        assert!(object.get("max_pivots").is_none());
    }

    #[test]
    fn classify_buckets_statuses() {
        let mut tally = ThreadTally::default();
        classify(&mut tally, 200, r#"{"degraded":false}"#, 10);
        classify(&mut tally, 200, r#"{"degraded":true}"#, 20);
        classify(&mut tally, 429, "", 1);
        classify(&mut tally, 400, "", 1);
        classify(&mut tally, 500, "", 1);
        assert_eq!(
            (
                tally.ok,
                tally.degraded,
                tally.shed,
                tally.client_errors,
                tally.server_errors
            ),
            (1, 1, 1, 1, 1)
        );
        assert_eq!(tally.latencies_us, vec![10, 20]);
    }

    #[test]
    fn report_json_is_schema_versioned_and_parseable() {
        let report = LoadgenReport {
            threads: 2,
            requests: 10,
            ok: 6,
            degraded: 2,
            shed: 2,
            client_errors: 0,
            server_errors: 0,
            latency: LatencySummary {
                mean_us: 120.5,
                p50_us: 100,
                p90_us: 200,
                p99_us: 300,
                max_us: 310,
            },
            elapsed_ms: 50,
            throughput_rps: 160.0,
        };
        let text = report.to_json_string();
        let value = json::parse(&text).expect("valid JSON");
        let object = value.as_object().expect("object");
        assert_eq!(
            object.get("schema").and_then(Value::as_str),
            Some(REPORT_SCHEMA)
        );
        assert!(
            matches!(object.get("degraded_rate"), Some(Value::Number(n)) if (*n - 0.25).abs() < 1e-12)
        );
        let latency = object
            .get("latency_us")
            .and_then(Value::as_object)
            .expect("latency object");
        assert!(matches!(latency.get("p99"), Some(Value::Number(n)) if *n == 300.0));
    }

    #[test]
    fn parse_response_extracts_status_and_body() {
        let (status, body) =
            parse_response(b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\n\r\n{\"x\":1}")
                .expect("parses");
        assert_eq!(status, 429);
        assert_eq!(body, "{\"x\":1}");
        assert!(parse_response(b"not http at all").is_err());
    }
}
