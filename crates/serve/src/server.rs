//! The long-running query server: accept loop, worker pool, admission
//! control, drain.
//!
//! ## Architecture
//!
//! One **accept thread** owns the `TcpListener` and is the admission
//! controller: every accepted connection first claims an in-flight
//! permit (a [`Gauge`] guard, so `/metrics` always shows the live
//! count) and is then pushed onto a **bounded queue**
//! (`mpsc::sync_channel`). If the server is over
//! [`ServeConfig::max_inflight`] or the queue is full, the connection
//! is **shed** immediately with `429 Too Many Requests` +
//! `Retry-After` — the accept thread never blocks on a slow worker, so
//! overload degrades into fast rejections instead of unbounded queue
//! growth. A fixed pool of **worker threads** drains the queue; each
//! connection carries one HTTP/1.1 request (`Connection: close`).
//!
//! ## Isolation and degradation
//!
//! Workers execute queries through
//! [`Executor::run_budgeted_isolated`], so a panicking solve turns
//! into a `500` for that request only — the worker thread survives and
//! keeps serving. Budget exhaustion (per-request `deadline_ms` /
//! `max_pivots`) is not an error: it returns `200` with
//! `"degraded": true` and the bound-ordered candidate ranking, exactly
//! like the CLI.
//!
//! ## Drain
//!
//! Pure std under `forbid(unsafe_code)` cannot install OS signal
//! handlers, so graceful shutdown is exposed two ways instead:
//! `POST /admin/drain` over the wire, and [`ShutdownHandle::drain`]
//! in-process (the CLI wires the latter to stdin EOF so
//! `flexemd serve` drains when its parent closes the pipe). Draining
//! stops the accept loop, lets queued and in-flight requests finish,
//! then joins the pool.

use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::error::ServeError;
use crate::http::{read_request, HttpError, Limits, Method, Request, Response};
use crate::spec::QuerySpec;
use emd_core::Histogram;
use emd_obs::{Gauge, GaugeGuard, MetricsRegistry, Recording};
use emd_query::{BudgetReason, Database, Executor, Neighbor, QueryError, QueryOutcome, QueryStats};
use emd_store::json::{self, Value};

/// Schema tag carried by every JSON response body.
pub const RESPONSE_SCHEMA: &str = "flexemd-serve/v1";

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing queries.
    pub workers: usize,
    /// Admitted-connection cap (queued + executing). Anything beyond is
    /// shed with 429.
    pub max_inflight: usize,
    /// Depth of the bounded accept queue between the accept thread and
    /// the workers.
    pub queue_depth: usize,
    /// HTTP read limits.
    pub limits: Limits,
    /// Per-socket read/write timeout.
    pub io_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            max_inflight: 64,
            queue_depth: 64,
            limits: Limits::default(),
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// The immutable corpus a server answers from: a prepared [`Executor`]
/// over an index snapshot plus the raw [`Database`] for `query_id`
/// lookups.
#[derive(Debug)]
pub struct Snapshot {
    /// The prepared execution plan (filters, candidate source, refiner).
    pub executor: Executor,
    /// The histogram corpus the executor indexes.
    pub database: Database,
    /// Index name reported by `/healthz`.
    pub name: String,
    /// Deterministic fault injector attached to every request budget
    /// (resilience testing only; `None` in production). Worker-panic
    /// faults additionally require building the executor with
    /// [`Executor::with_faults`].
    pub faults: Option<Arc<dyn emd_faultkit::FaultInjector>>,
    /// A WAL-backed dynamic corpus. When present the server answers
    /// queries from the ingest layer's current [`DurableSnapshot`]
    /// (swapped after every durable write) instead of the static
    /// `executor`/`database` pair, and enables `POST /v1/insert`,
    /// `POST /v1/remove` and `POST /admin/compact`. `None` keeps the
    /// classic read-only server.
    ///
    /// [`DurableSnapshot`]: emd_query::DurableSnapshot
    pub ingest: Option<Arc<crate::ingest::IngestState>>,
}

/// Remotely triggerable drain switch; clones share the flag.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    draining: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Begin draining: stop admitting connections, let in-flight work
    /// finish. Idempotent. Wakes the accept thread with a loopback
    /// connection so the drain takes effect immediately.
    pub fn drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            // Wake the blocking accept(); the accept loop sees the flag
            // and exits before serving this connection.
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Whether a drain has been requested.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// Shared server state: the snapshot plus admission/metrics machinery.
struct Shared {
    snapshot: Snapshot,
    config: ServeConfig,
    handle: ShutdownHandle,
    /// Live admitted-connection count; the guard returned by
    /// [`Gauge::guard`] is the admission permit itself.
    inflight: Gauge,
    /// Connections shed with 429 (accept thread has no metrics scope, so
    /// this is an atomic injected into `/metrics` at render time).
    shed: AtomicU64,
    /// Per-request sequence; doubles as the panic-isolation worker
    /// ordinal so a `Site::Worker(n)` failpoint targets one request.
    sequence: AtomicU64,
    /// Per-worker metric accumulators, merged (in index order) by
    /// `/metrics`.
    worker_metrics: Vec<Mutex<MetricsRegistry>>,
}

fn unpoisoned<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned registry/receiver is still structurally valid (both are
    // plain data); keep serving rather than propagating the poison.
    match lock.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A query server bound to a socket; use [`Server::start`].
#[derive(Debug)]
pub struct Server;

/// A started server: its address, drain handle, and joinable threads.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    handle: ShutdownHandle,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl RunningServer {
    /// The bound listen address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable handle that triggers a graceful drain.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.handle.clone()
    }

    /// Block until the server has fully drained (accept loop exited,
    /// every worker finished). Returns when someone — this process via
    /// [`ShutdownHandle::drain`], or a client via `POST /admin/drain` —
    /// has initiated a drain.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::WorkerLost`] when a server thread ended
    /// abnormally instead of draining cleanly.
    pub fn join(self) -> Result<(), ServeError> {
        let mut lost = self.accept.join().is_err();
        for worker in self.workers {
            lost |= worker.join().is_err();
        }
        if lost {
            return Err(ServeError::WorkerLost);
        }
        Ok(())
    }

    /// [`ShutdownHandle::drain`] followed by [`RunningServer::join`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`RunningServer::join`].
    pub fn drain_and_join(self) -> Result<(), ServeError> {
        self.handle.drain();
        self.join()
    }
}

impl Server {
    /// Bind, spawn the worker pool and accept thread, and return the
    /// running server. The call does not block; use
    /// [`RunningServer::join`] to wait for a drain.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadAddr`] when the listen address does not
    /// resolve and [`ServeError::Io`] when binding or thread spawning
    /// fails.
    pub fn start(snapshot: Snapshot, config: ServeConfig) -> Result<RunningServer, ServeError> {
        let mut addrs = config
            .addr
            .to_socket_addrs()
            .map_err(|_| ServeError::BadAddr(config.addr.clone()))?;
        let Some(addr) = addrs.next() else {
            return Err(ServeError::BadAddr(config.addr));
        };
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let handle = ShutdownHandle {
            draining: Arc::new(AtomicBool::new(false)),
            addr,
        };
        let shared = Arc::new(Shared {
            snapshot,
            config,
            handle: handle.clone(),
            inflight: Gauge::new("serve.inflight"),
            shed: AtomicU64::new(0),
            sequence: AtomicU64::new(0),
            worker_metrics: (0..workers)
                .map(|_| Mutex::new(MetricsRegistry::new()))
                .collect(),
        });

        type Job = (TcpStream, GaugeGuard);
        let (sender, receiver) = mpsc::sync_channel::<Job>(shared.config.queue_depth.max(1));
        let receiver = Arc::new(Mutex::new(receiver));

        let mut worker_handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let shared = Arc::clone(&shared);
            let receiver = Arc::clone(&receiver);
            let thread = std::thread::Builder::new()
                .name(format!("serve-worker-{index}"))
                .spawn(move || worker_loop(&shared, &receiver, index))?;
            worker_handles.push(thread);
        }
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".to_owned())
                .spawn(move || accept_loop(&shared, &listener, &sender))?
        };

        Ok(RunningServer {
            addr,
            handle,
            accept,
            workers: worker_handles,
        })
    }
}

/// The admission controller: accept, claim a permit, enqueue or shed.
fn accept_loop(
    shared: &Shared,
    listener: &TcpListener,
    sender: &SyncSender<(TcpStream, GaugeGuard)>,
) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if shared.handle.is_draining() {
                break;
            }
            continue;
        };
        if shared.handle.is_draining() {
            // The drain wake-up connection (or a client racing the
            // drain): stop accepting; queued work still completes.
            break;
        }
        let permit = shared.inflight.guard(1);
        let cap = i64::try_from(shared.config.max_inflight).unwrap_or(i64::MAX);
        if permit.gauge().value() > cap {
            shed(shared, &stream);
            continue;
        }
        match sender.try_send((stream, permit)) {
            Ok(()) => {}
            Err(TrySendError::Full((stream, _permit))) => shed(shared, &stream),
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping the sender (by returning) disconnects the channel; the
    // workers finish the queued jobs and exit.
}

/// Reject one connection with `429` + `Retry-After`.
fn shed(shared: &Shared, stream: &TcpStream) {
    shared.shed.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    let response = Response::json(
        429,
        "Too Many Requests",
        error_body("server is at its in-flight capacity"),
    )
    .with_header("Retry-After", "1".to_owned());
    let _ = response.write_to(&mut &*stream);
    // Closing with the client's request still unread would turn the
    // close into a TCP reset, discarding the 429 before the client can
    // read it. Stop sending, then briefly drain whatever the client
    // already wrote so the response survives the close.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(250)));
    let mut sink = [0u8; 1024];
    for _ in 0..64 {
        match (&*stream).read(&mut sink) {
            Ok(n) if n > 0 => {}
            _ => break,
        }
    }
}

/// One worker: drain the queue until the channel disconnects.
fn worker_loop(shared: &Shared, receiver: &Mutex<Receiver<(TcpStream, GaugeGuard)>>, index: usize) {
    loop {
        let job = unpoisoned(receiver).recv();
        let Ok((stream, permit)) = job else {
            break;
        };
        let sequence = shared.sequence.fetch_add(1, Ordering::Relaxed);
        let request_id = usize::try_from(sequence).unwrap_or(usize::MAX);
        handle_connection(shared, index, request_id, &stream);
        drop(permit);
    }
}

/// Serve one connection: read one request, answer it, close.
fn handle_connection(shared: &Shared, worker: usize, request_id: usize, stream: &TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    let mut reader = BufReader::new(stream);
    let started = Instant::now();
    let recording = Recording::start();
    let (route, response) = match read_request(&mut reader, &shared.config.limits) {
        Ok(None) => {
            drop(recording);
            return; // peer connected and went away; nothing to answer
        }
        Ok(Some(request)) => {
            let route = route_label(&request);
            (route, handle_request(shared, request_id, &request))
        }
        Err(error) => ("invalid", protocol_error_response(&error)),
    };
    let mut registry = recording.finish();
    registry.counter_add("serve.requests", 1);
    registry.counter_add(&format!("serve.status.{}", response.status), 1);
    let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    registry.observe_nanos(&format!("serve.route.{route}"), nanos);
    if let Some(slot) = shared.worker_metrics.get(worker) {
        unpoisoned(slot).merge(&registry);
    }
    let _ = response.write_to(&mut &*stream);
}

/// Stable per-route label for the latency histograms.
fn route_label(request: &Request) -> &'static str {
    match request.target.as_str() {
        "/v1/knn" => "knn",
        "/v1/range" => "range",
        "/v1/insert" => "insert",
        "/v1/remove" => "remove",
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/admin/drain" => "drain",
        "/admin/compact" => "compact",
        _ => "other",
    }
}

/// Route one well-formed request to its handler.
fn handle_request(shared: &Shared, request_id: usize, request: &Request) -> Response {
    match (request.method, request.target.as_str()) {
        (Method::Get, "/healthz") => health_response(shared),
        (Method::Get, "/metrics") => metrics_response(shared),
        (Method::Post, "/admin/drain") => {
            shared.handle.drain();
            Response::json(
                202,
                "Accepted",
                format!("{{\"schema\":\"{RESPONSE_SCHEMA}\",\"draining\":true}}"),
            )
        }
        (Method::Post, "/v1/knn") => query_response(shared, request_id, request, RouteKind::Knn),
        (Method::Post, "/v1/range") => {
            query_response(shared, request_id, request, RouteKind::Range)
        }
        (Method::Post, "/v1/insert") => insert_response(shared, request),
        (Method::Post, "/v1/remove") => remove_response(shared, request),
        (Method::Post, "/admin/compact") => compact_response(shared),
        (
            _,
            "/healthz" | "/metrics" | "/admin/drain" | "/admin/compact" | "/v1/knn" | "/v1/range"
            | "/v1/insert" | "/v1/remove",
        ) => Response::json(
            405,
            "Method Not Allowed",
            error_body("wrong method for route"),
        ),
        _ => Response::json(404, "Not Found", error_body("no such route")),
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum RouteKind {
    Knn,
    Range,
}

fn health_response(shared: &Shared) -> Response {
    let (objects, writable) = match &shared.snapshot.ingest {
        Some(ingest) => (ingest.len(), true),
        None => (shared.snapshot.database.len(), false),
    };
    let mut body = String::new();
    body.push_str("{\"schema\":");
    json::write_escaped(&mut body, RESPONSE_SCHEMA);
    body.push_str(",\"status\":\"ok\",\"index\":");
    json::write_escaped(&mut body, &shared.snapshot.name);
    body.push_str(&format!(
        ",\"objects\":{objects},\"writable\":{writable},\"workers\":{},\"draining\":{}}}",
        shared.worker_metrics.len(),
        shared.handle.is_draining()
    ));
    Response::json(200, "OK", body)
}

fn metrics_response(shared: &Shared) -> Response {
    let mut merged = MetricsRegistry::new();
    for slot in &shared.worker_metrics {
        let registry = unpoisoned(slot);
        merged.merge(&registry);
    }
    merged.counter_add("serve.shed", shared.shed.load(Ordering::Relaxed));
    shared.inflight.publish(&mut merged);
    Response::json(200, "OK", merged.to_json_string())
}

fn query_response(
    shared: &Shared,
    request_id: usize,
    request: &Request,
    kind: RouteKind,
) -> Response {
    match run_query(shared, request_id, request, kind) {
        Ok(response) => response,
        Err(error) => serve_error_response(&error),
    }
}

/// Parse, validate, execute, render one `/v1/knn` or `/v1/range` call.
fn run_query(
    shared: &Shared,
    request_id: usize,
    request: &Request,
    kind: RouteKind,
) -> Result<Response, ServeError> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| ServeError::BadRequest("body is not UTF-8".to_owned()))?;
    let value = json::parse(text).map_err(ServeError::BadRequest)?;
    let Some(object) = value.as_object() else {
        return Err(ServeError::BadRequest(
            "body must be a JSON object".to_owned(),
        ));
    };
    let spec = QuerySpec::from_json(object)?;
    match kind {
        RouteKind::Knn if spec.epsilon.is_some() => {
            return Err(ServeError::BadRequest(
                "`epsilon` belongs on /v1/range".to_owned(),
            ));
        }
        RouteKind::Range if spec.epsilon.is_none() => {
            return Err(ServeError::BadRequest(
                "/v1/range requires `epsilon`".to_owned(),
            ));
        }
        _ => {}
    }
    if let Some(ingest) = &shared.snapshot.ingest {
        return run_dynamic_query(shared, ingest, request_id, &spec, object);
    }
    let histogram = query_histogram(shared, object)?;
    let query = spec.query_for(histogram);
    let mut budget = spec.budget();
    if let Some(faults) = &shared.snapshot.faults {
        budget = budget.with_faults(Arc::clone(faults));
    }
    let (outcome, stats) = shared
        .snapshot
        .executor
        .run_budgeted_isolated(&query, &budget, request_id)?;
    Ok(Response::json(200, "OK", outcome_body(&outcome, &stats)))
}

/// Execute one query against the dynamic corpus: clone the current
/// reader snapshot (never blocking the writer), run through its
/// executor, and translate dense engine ids to client-visible external
/// ids in the response.
fn run_dynamic_query(
    shared: &Shared,
    ingest: &crate::ingest::IngestState,
    request_id: usize,
    spec: &QuerySpec,
    object: &std::collections::BTreeMap<String, Value>,
) -> Result<Response, ServeError> {
    let histogram = dynamic_query_histogram(ingest, object)?;
    let Some(snapshot) = ingest.snapshot() else {
        return Ok(Response::json(
            409,
            "Conflict",
            error_body("corpus is empty; insert objects before querying"),
        ));
    };
    let query = spec.query_for(histogram);
    let mut budget = spec.budget();
    if let Some(faults) = &shared.snapshot.faults {
        budget = budget.with_faults(Arc::clone(faults));
    }
    let (outcome, stats) = snapshot
        .executor()
        .run_budgeted_isolated(&query, &budget, request_id)?;
    let outcome = externalize_outcome(outcome, &snapshot)?;
    Ok(Response::json(200, "OK", outcome_body(&outcome, &stats)))
}

/// Rewrite a [`QueryOutcome`]'s dense engine ids as external ids.
fn externalize_outcome(
    outcome: QueryOutcome,
    snapshot: &emd_query::DurableSnapshot,
) -> Result<QueryOutcome, ServeError> {
    let external = |dense: usize| -> Result<usize, ServeError> {
        let id = snapshot
            .external_id(dense)
            .ok_or(ServeError::Query(QueryError::UnknownObject(dense)))?;
        Ok(usize::try_from(id).unwrap_or(usize::MAX))
    };
    Ok(match outcome {
        QueryOutcome::Exact(neighbors) => QueryOutcome::Exact(
            neighbors
                .into_iter()
                .map(|n| {
                    Ok(Neighbor {
                        id: external(n.id)?,
                        distance: n.distance,
                    })
                })
                .collect::<Result<_, ServeError>>()?,
        ),
        QueryOutcome::Degraded(mut result) => {
            for candidate in &mut result.candidates {
                candidate.id = external(candidate.id)?;
            }
            QueryOutcome::Degraded(result)
        }
    })
}

/// Resolve the query histogram against the dynamic corpus: `query_id`
/// is an external id, `weights` an explicit histogram.
fn dynamic_query_histogram(
    ingest: &crate::ingest::IngestState,
    object: &std::collections::BTreeMap<String, Value>,
) -> Result<Histogram, ServeError> {
    match (object.get("query_id"), object.get("weights")) {
        (Some(_), Some(_)) => Err(ServeError::BadRequest(
            "specify `query_id` or `weights`, not both".to_owned(),
        )),
        (Some(Value::Number(n)), None) => {
            if n.fract() != 0.0 || *n < 0.0 {
                return Err(ServeError::BadRequest(
                    "`query_id` must be a non-negative integer".to_owned(),
                ));
            }
            let id = *n as u64;
            ingest.get(id).ok_or_else(|| {
                ServeError::BadRequest(format!("`query_id` {id} names no live object"))
            })
        }
        (Some(_), None) => Err(ServeError::BadRequest(
            "`query_id` must be a non-negative integer".to_owned(),
        )),
        (None, Some(value)) => parse_weights(value),
        (None, None) => Err(ServeError::BadRequest(
            "specify `query_id` or `weights`".to_owned(),
        )),
    }
}

/// Decode a `weights` JSON array into a validated [`Histogram`].
fn parse_weights(value: &Value) -> Result<Histogram, ServeError> {
    let Value::Array(items) = value else {
        return Err(ServeError::BadRequest(
            "`weights` must be an array of numbers".to_owned(),
        ));
    };
    let mut bins = Vec::with_capacity(items.len());
    for item in items {
        let Value::Number(weight) = item else {
            return Err(ServeError::BadRequest(
                "`weights` must be an array of numbers".to_owned(),
            ));
        };
        bins.push(*weight);
    }
    Histogram::new(bins).map_err(|e| ServeError::BadRequest(format!("bad `weights`: {e}")))
}

/// The 409 returned by write routes on a read-only (static) server.
fn read_only_response() -> Response {
    Response::json(
        409,
        "Conflict",
        error_body("server runs a read-only corpus; restart with --wal to enable writes"),
    )
}

/// `POST /v1/insert` — durably ingest one histogram. The `200` is sent
/// only after the WAL record is fsynced and the reader snapshot swapped.
/// A malformed body is the client's 400; a WAL append/fsync failure is
/// the server's 500 (and leaves the write's durability indeterminate —
/// see [`ServeError::Durable`]).
fn insert_response(shared: &Shared, request: &Request) -> Response {
    let Some(ingest) = &shared.snapshot.ingest else {
        return read_only_response();
    };
    let result = (|| -> Result<Response, ServeError> {
        let object = parse_body_object(request)?;
        let Some(weights) = object.get("weights") else {
            return Err(ServeError::BadRequest(
                "insert requires `weights`".to_owned(),
            ));
        };
        let histogram = parse_weights(weights)?;
        let id = ingest.insert(histogram)?;
        let mut body = String::new();
        body.push_str("{\"schema\":");
        json::write_escaped(&mut body, RESPONSE_SCHEMA);
        body.push_str(&format!(
            ",\"id\":{id},\"objects\":{},\"durable\":true}}",
            ingest.len()
        ));
        Ok(Response::json(200, "OK", body))
    })();
    result.unwrap_or_else(|error| serve_error_response(&error))
}

/// `POST /v1/remove` — durably remove one object by external id. Store
/// failures map to 500 exactly like [`insert_response`].
fn remove_response(shared: &Shared, request: &Request) -> Response {
    let Some(ingest) = &shared.snapshot.ingest else {
        return read_only_response();
    };
    let result = (|| -> Result<Response, ServeError> {
        let object = parse_body_object(request)?;
        let Some(Value::Number(n)) = object.get("id") else {
            return Err(ServeError::BadRequest(
                "remove requires a numeric `id`".to_owned(),
            ));
        };
        if n.fract() != 0.0 || *n < 0.0 {
            return Err(ServeError::BadRequest(
                "`id` must be a non-negative integer".to_owned(),
            ));
        }
        let removed = ingest.remove(*n as u64)?;
        let mut body = String::new();
        body.push_str("{\"schema\":");
        json::write_escaped(&mut body, RESPONSE_SCHEMA);
        body.push_str(&format!(
            ",\"removed\":{removed},\"objects\":{}}}",
            ingest.len()
        ));
        Ok(Response::json(200, "OK", body))
    })();
    result.unwrap_or_else(|error| serve_error_response(&error))
}

/// `POST /admin/compact` — fold the WAL into a sealed segment while
/// readers keep answering from their frozen snapshots.
fn compact_response(shared: &Shared) -> Response {
    let Some(ingest) = &shared.snapshot.ingest else {
        return read_only_response();
    };
    match ingest.compact() {
        Ok(report) => {
            let mut body = String::new();
            body.push_str("{\"schema\":");
            json::write_escaped(&mut body, RESPONSE_SCHEMA);
            body.push_str(&format!(
                ",\"epoch\":{},\"objects\":{},\"folded_wal_bytes\":{}}}",
                report.epoch, report.sealed_objects, report.folded_wal_bytes
            ));
            Response::json(200, "OK", body)
        }
        Err(error) => serve_error_response(&error.into()),
    }
}

/// Parse a request body as a JSON object.
fn parse_body_object(
    request: &Request,
) -> Result<std::collections::BTreeMap<String, Value>, ServeError> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| ServeError::BadRequest("body is not UTF-8".to_owned()))?;
    let value = json::parse(text).map_err(ServeError::BadRequest)?;
    value
        .as_object()
        .cloned()
        .ok_or_else(|| ServeError::BadRequest("body must be a JSON object".to_owned()))
}

/// Resolve the query histogram: `"query_id"` (a corpus object) or
/// `"weights"` (an explicit histogram), exactly one of the two.
fn query_histogram(
    shared: &Shared,
    object: &std::collections::BTreeMap<String, Value>,
) -> Result<Histogram, ServeError> {
    match (object.get("query_id"), object.get("weights")) {
        (Some(_), Some(_)) => Err(ServeError::BadRequest(
            "specify `query_id` or `weights`, not both".to_owned(),
        )),
        (Some(Value::Number(n)), None) => {
            if n.fract() != 0.0 || *n < 0.0 {
                return Err(ServeError::BadRequest(
                    "`query_id` must be a non-negative integer".to_owned(),
                ));
            }
            let id = *n as usize;
            shared.snapshot.database.get(id).cloned().ok_or_else(|| {
                ServeError::BadRequest(format!(
                    "`query_id` {id} out of range (corpus holds {} objects)",
                    shared.snapshot.database.len()
                ))
            })
        }
        (Some(_), None) => Err(ServeError::BadRequest(
            "`query_id` must be a non-negative integer".to_owned(),
        )),
        (None, Some(Value::Array(items))) => {
            let mut bins = Vec::with_capacity(items.len());
            for item in items {
                let Value::Number(weight) = item else {
                    return Err(ServeError::BadRequest(
                        "`weights` must be an array of numbers".to_owned(),
                    ));
                };
                bins.push(*weight);
            }
            Histogram::new(bins).map_err(|e| ServeError::BadRequest(format!("bad `weights`: {e}")))
        }
        (None, Some(_)) => Err(ServeError::BadRequest(
            "`weights` must be an array of numbers".to_owned(),
        )),
        (None, None) => Err(ServeError::BadRequest(
            "specify `query_id` or `weights`".to_owned(),
        )),
    }
}

/// Stable machine token for a degraded outcome's reason.
fn reason_token(reason: BudgetReason) -> &'static str {
    match reason {
        BudgetReason::Deadline => "deadline",
        BudgetReason::PivotCap => "pivot_cap",
        BudgetReason::Cancelled => "cancelled",
        BudgetReason::Injected => "injected",
    }
}

/// Render an f64 for JSON (`Display` round-trips f64 exactly, which is
/// what keeps served distances bit-identical to the direct executor).
fn push_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        out.push_str(&format!("{value}"));
    } else {
        out.push_str("null");
    }
}

fn neighbors_json(out: &mut String, neighbors: &[Neighbor]) {
    out.push('[');
    for (index, neighbor) in neighbors.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"id\":{},\"distance\":", neighbor.id));
        push_f64(out, neighbor.distance);
        out.push('}');
    }
    out.push(']');
}

/// The success body for both query routes.
fn outcome_body(outcome: &QueryOutcome, stats: &QueryStats) -> String {
    let mut body = String::new();
    body.push_str("{\"schema\":");
    json::write_escaped(&mut body, RESPONSE_SCHEMA);
    match outcome {
        QueryOutcome::Exact(neighbors) => {
            body.push_str(",\"degraded\":false,\"neighbors\":");
            neighbors_json(&mut body, neighbors);
        }
        QueryOutcome::Degraded(result) => {
            body.push_str(&format!(
                ",\"degraded\":true,\"reason\":\"{}\",\"candidates\":[",
                reason_token(result.reason)
            ));
            for (index, candidate) in result.candidates.iter().enumerate() {
                if index > 0 {
                    body.push(',');
                }
                body.push_str(&format!("{{\"id\":{},\"bound\":", candidate.id));
                push_f64(&mut body, candidate.bound);
                body.push_str(&format!(",\"exact\":{}}}", candidate.exact));
            }
            body.push(']');
        }
    }
    body.push_str(&format!(",\"refinements\":{}}}", stats.refinements));
    body
}

/// A JSON error body: `{"schema":…,"error":"…"}`.
fn error_body(message: &str) -> String {
    let mut body = String::new();
    body.push_str("{\"schema\":");
    json::write_escaped(&mut body, RESPONSE_SCHEMA);
    body.push_str(",\"error\":");
    json::write_escaped(&mut body, message);
    body.push('}');
    body
}

/// Map an HTTP-protocol violation to its response.
fn protocol_error_response(error: &HttpError) -> Response {
    let (status, reason) = error.status();
    Response::json(status, reason, error_body(&error.to_string()))
}

/// Map a handler failure to its response: client mistakes are 4xx,
/// engine failures (including isolated worker panics) are 500.
fn serve_error_response(error: &ServeError) -> Response {
    match error {
        ServeError::Http(http) => protocol_error_response(http),
        ServeError::BadRequest(_) => {
            Response::json(400, "Bad Request", error_body(&error.to_string()))
        }
        ServeError::Query(query) => match query {
            QueryError::WorkerPanicked { .. } => {
                Response::json(500, "Internal Server Error", error_body(&query.to_string()))
            }
            QueryError::ZeroK | QueryError::InvalidEpsilon(_) | QueryError::Core(_) => {
                Response::json(400, "Bad Request", error_body(&query.to_string()))
            }
            _ => Response::json(500, "Internal Server Error", error_body(&query.to_string())),
        },
        ServeError::Durable(store) => Response::json(
            500,
            "Internal Server Error",
            error_body(&format!(
                "durable write failed: {store}; the write's durability is indeterminate \
                 until the index directory is reopened"
            )),
        ),
        ServeError::Draining => {
            Response::json(503, "Service Unavailable", error_body("server is draining"))
        }
        _ => Response::json(500, "Internal Server Error", error_body(&error.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_tokens_are_stable() {
        assert_eq!(reason_token(BudgetReason::Deadline), "deadline");
        assert_eq!(reason_token(BudgetReason::PivotCap), "pivot_cap");
    }

    #[test]
    fn outcome_body_round_trips_distances() {
        let outcome = QueryOutcome::Exact(vec![Neighbor {
            id: 3,
            distance: 0.1 + 0.2, // a value with a non-trivial decimal tail
        }]);
        let stats = QueryStats::default();
        let body = outcome_body(&outcome, &stats);
        let value = json::parse(&body).expect("valid JSON");
        let object = value.as_object().expect("object");
        let neighbors = object
            .get("neighbors")
            .and_then(Value::as_array)
            .expect("neighbors array");
        let first = neighbors
            .first()
            .and_then(Value::as_object)
            .expect("first neighbor");
        let Some(Value::Number(distance)) = first.get("distance") else {
            panic!("distance must be a number");
        };
        assert_eq!(distance.to_bits(), (0.1_f64 + 0.2).to_bits());
    }

    #[test]
    fn degraded_body_carries_reason_and_bounds() {
        let outcome = QueryOutcome::Degraded(emd_query::DegradedResult {
            candidates: vec![emd_query::Candidate {
                id: 7,
                bound: 1.5,
                exact: false,
            }],
            reason: BudgetReason::PivotCap,
        });
        let body = outcome_body(&outcome, &QueryStats::default());
        assert!(body.contains("\"degraded\":true"));
        assert!(body.contains("\"reason\":\"pivot_cap\""));
        assert!(body.contains("\"id\":7"));
        assert!(body.contains("\"exact\":false"));
    }

    #[test]
    fn error_body_escapes_payload() {
        let body = error_body("a \"quoted\" message");
        assert!(json::parse(&body).is_ok());
    }

    #[test]
    fn serve_errors_map_to_statuses() {
        let bad = serve_error_response(&ServeError::BadRequest("x".into()));
        assert_eq!(bad.status, 400);
        let panic = serve_error_response(&ServeError::Query(QueryError::WorkerPanicked {
            worker: 3,
            detail: "boom".into(),
        }));
        assert_eq!(panic.status, 500);
        let drain = serve_error_response(&ServeError::Draining);
        assert_eq!(drain.status, 503);
    }
}
