//! The one query-shape vocabulary shared by every entry point.
//!
//! `flexemd query`, `flexemd serve` and `flexemd loadgen` all accept the
//! same four knobs — `k`, `range`/`epsilon`, `deadline_ms`, `max_pivots`
//! — and all three must translate them into a [`QueryMode`] plus
//! [`Budget`] identically, or "the server returned a different answer
//! than the CLI" becomes a bug class. [`QuerySpec`] is that single
//! translation: CLI flags enter via [`QuerySpec::from_raw`], HTTP JSON
//! bodies via [`QuerySpec::from_json`], and both feed the same
//! validation and the same [`QuerySpec::mode`]/[`QuerySpec::budget`]
//! lowering.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::error::ServeError;
use emd_core::Histogram;
use emd_query::{Budget, Query, QueryMode};
use emd_store::json::Value;

/// The k used when a request names neither `k` nor a range radius.
pub const DEFAULT_K: usize = 10;

/// A validated query shape: what to ask (`k` / `epsilon`) and how hard
/// to try (`deadline_ms` / `max_pivots`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuerySpec {
    /// kNN cardinality; mutually exclusive with `epsilon`.
    pub k: Option<usize>,
    /// Range-query radius; mutually exclusive with `k`.
    pub epsilon: Option<f64>,
    /// Wall-clock budget in milliseconds (absent = unlimited).
    pub deadline_ms: Option<u64>,
    /// Simplex-pivot budget across all solves (absent = unlimited).
    pub max_pivots: Option<u64>,
}

fn bad(field: &str, expected: &str) -> ServeError {
    ServeError::BadRequest(format!("`{field}` must be {expected}"))
}

fn parse_field<T: std::str::FromStr>(
    raw: Option<&str>,
    field: &str,
    expected: &str,
) -> Result<Option<T>, ServeError> {
    raw.map(|text| text.parse::<T>().map_err(|_| bad(field, expected)))
        .transpose()
}

/// `u64` is exact in an `f64` only below 2^53; reject anything larger
/// rather than silently rounding.
const MAX_EXACT_INT: f64 = 9_007_199_254_740_992.0;

fn json_integer(map: &BTreeMap<String, Value>, field: &str) -> Result<Option<u64>, ServeError> {
    match map.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Number(n)) if n.fract() == 0.0 && *n >= 0.0 && *n < MAX_EXACT_INT => {
            Ok(Some(*n as u64))
        }
        Some(_) => Err(bad(field, "a non-negative integer")),
    }
}

fn json_number(map: &BTreeMap<String, Value>, field: &str) -> Result<Option<f64>, ServeError> {
    match map.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Number(n)) => Ok(Some(*n)),
        Some(_) => Err(bad(field, "a number")),
    }
}

impl QuerySpec {
    /// Build a spec from raw CLI flag values (`None` = flag absent).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] when a value fails to parse,
    /// when `k` and `range` are both given, or when a value is out of
    /// domain (`k == 0`, negative/non-finite `range`).
    pub fn from_raw(
        k: Option<&str>,
        range: Option<&str>,
        deadline_ms: Option<&str>,
        max_pivots: Option<&str>,
    ) -> Result<Self, ServeError> {
        let spec = QuerySpec {
            k: parse_field(k, "k", "a positive integer")?,
            epsilon: parse_field(range, "range", "a non-negative number")?,
            deadline_ms: parse_field(deadline_ms, "deadline-ms", "a duration in milliseconds")?,
            max_pivots: parse_field(max_pivots, "max-pivots", "a pivot count")?,
        };
        spec.validated()
    }

    /// Build a spec from the fields of a parsed JSON request body
    /// (`k`, `epsilon`, `deadline_ms`, `max_pivots`; all optional).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] for wrongly-typed fields and
    /// for the same domain violations as [`QuerySpec::from_raw`].
    pub fn from_json(map: &BTreeMap<String, Value>) -> Result<Self, ServeError> {
        let k = match json_integer(map, "k")? {
            Some(n) => Some(usize::try_from(n).map_err(|_| bad("k", "a positive integer"))?),
            None => None,
        };
        let spec = QuerySpec {
            k,
            epsilon: json_number(map, "epsilon")?,
            deadline_ms: json_integer(map, "deadline_ms")?,
            max_pivots: json_integer(map, "max_pivots")?,
        };
        spec.validated()
    }

    fn validated(self) -> Result<Self, ServeError> {
        if self.k == Some(0) {
            return Err(bad("k", "a positive integer"));
        }
        if let Some(epsilon) = self.epsilon {
            if !epsilon.is_finite() || epsilon < 0.0 {
                return Err(bad("epsilon", "a finite non-negative number"));
            }
            if self.k.is_some() {
                return Err(ServeError::BadRequest(
                    "specify `k` or `epsilon`, not both".to_owned(),
                ));
            }
        }
        Ok(self)
    }

    /// The query mode this spec asks for ([`DEFAULT_K`]-NN when neither
    /// `k` nor `epsilon` was given).
    #[must_use]
    pub fn mode(&self) -> QueryMode {
        match (self.k, self.epsilon) {
            (_, Some(epsilon)) => QueryMode::Range(epsilon),
            (Some(k), None) => QueryMode::Knn(k),
            (None, None) => QueryMode::Knn(DEFAULT_K),
        }
    }

    /// Lower the effort knobs into an engine [`Budget`].
    #[must_use]
    pub fn budget(&self) -> Budget {
        let mut budget = Budget::unlimited();
        if let Some(ms) = self.deadline_ms {
            budget = budget.with_deadline(Duration::from_millis(ms));
        }
        if let Some(pivots) = self.max_pivots {
            budget = budget.with_pivot_cap(pivots);
        }
        budget
    }

    /// Pair this spec's mode with a query histogram.
    #[must_use]
    pub fn query_for(&self, histogram: Histogram) -> Query {
        Query {
            histogram,
            mode: self.mode(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn object(body: &str) -> BTreeMap<String, Value> {
        emd_store::json::parse(body)
            .expect("test body parses")
            .as_object()
            .expect("test body is an object")
            .clone()
    }

    #[test]
    fn defaults_to_ten_nn_unlimited() {
        let spec = QuerySpec::from_raw(None, None, None, None).expect("empty spec is valid");
        assert_eq!(spec.mode(), QueryMode::Knn(DEFAULT_K));
        assert!(spec.budget().is_unlimited());
    }

    #[test]
    fn raw_flags_parse() {
        let spec =
            QuerySpec::from_raw(Some("5"), None, Some("250"), Some("10000")).expect("valid flags");
        assert_eq!(spec.mode(), QueryMode::Knn(5));
        assert!(!spec.budget().is_unlimited());
        assert_eq!(spec.deadline_ms, Some(250));
        assert_eq!(spec.max_pivots, Some(10_000));
    }

    #[test]
    fn range_flag_selects_range_mode() {
        let spec = QuerySpec::from_raw(None, Some("0.75"), None, None).expect("valid range");
        assert_eq!(spec.mode(), QueryMode::Range(0.75));
    }

    #[test]
    fn k_and_range_conflict() {
        let error =
            QuerySpec::from_raw(Some("3"), Some("0.5"), None, None).expect_err("conflicting spec");
        assert!(error.to_string().contains("not both"));
    }

    #[test]
    fn bad_raw_values_are_typed_errors() {
        for (k, range, deadline, pivots) in [
            (Some("zero"), None, None, None),
            (Some("0"), None, None, None),
            (Some("-3"), None, None, None),
            (None, Some("-1.0"), None, None),
            (None, Some("NaN"), None, None),
            (None, None, Some("soon"), None),
            (None, None, None, Some("1.5")),
        ] {
            let result = QuerySpec::from_raw(k, range, deadline, pivots);
            assert!(
                matches!(result, Err(ServeError::BadRequest(_))),
                "{k:?}/{range:?}/{deadline:?}/{pivots:?} should be rejected"
            );
        }
    }

    #[test]
    fn json_fields_parse() {
        let spec = QuerySpec::from_json(&object(
            r#"{"k": 4, "deadline_ms": 100, "max_pivots": 500}"#,
        ))
        .expect("valid body");
        assert_eq!(spec.mode(), QueryMode::Knn(4));
        assert_eq!(spec.deadline_ms, Some(100));
        assert_eq!(spec.max_pivots, Some(500));
    }

    #[test]
    fn json_epsilon_selects_range_mode() {
        let spec = QuerySpec::from_json(&object(r#"{"epsilon": 2.5}"#)).expect("valid body");
        assert_eq!(spec.mode(), QueryMode::Range(2.5));
    }

    #[test]
    fn json_rejects_wrong_types_and_domains() {
        for body in [
            r#"{"k": "five"}"#,
            r#"{"k": 2.5}"#,
            r#"{"k": -1}"#,
            r#"{"k": 0}"#,
            r#"{"epsilon": "wide"}"#,
            r#"{"epsilon": -0.5}"#,
            r#"{"deadline_ms": [1]}"#,
            r#"{"max_pivots": 1.25}"#,
            r#"{"k": 3, "epsilon": 1.0}"#,
        ] {
            let result = QuerySpec::from_json(&object(body));
            assert!(
                matches!(result, Err(ServeError::BadRequest(_))),
                "{body} should be rejected"
            );
        }
    }

    #[test]
    fn json_null_means_absent() {
        let spec =
            QuerySpec::from_json(&object(r#"{"k": null, "deadline_ms": null}"#)).expect("valid");
        assert_eq!(spec, QuerySpec::default());
    }

    #[test]
    fn cli_and_json_agree() {
        let raw = QuerySpec::from_raw(Some("7"), None, Some("40"), Some("9")).expect("raw");
        let json = QuerySpec::from_json(&object(r#"{"k": 7, "deadline_ms": 40, "max_pivots": 9}"#))
            .expect("json");
        assert_eq!(raw, json);
    }
}
