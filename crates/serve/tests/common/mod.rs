//! Shared snapshot builders and a tiny raw HTTP client for the serve
//! integration suites.

// Test helpers outside #[test] fns still get test-style panic latitude.
#![allow(clippy::unwrap_used, clippy::expect_used, dead_code)]

use emd_data::gaussian::{self, GaussianParams};
use emd_query::{Database, EmdDistance, Executor, Filter, QueryPlan, ReducedEmdFilter};
use emd_reduction::{CombiningReduction, ReducedEmd};
use emd_serve::{RunningServer, ServeConfig, Server, Snapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Bins in the synthetic corpus.
pub const DIM: usize = 12;
/// Reduced dimensionality of the filter stage.
pub const REDUCED: usize = 3;
/// Objects in the corpus (classes * per_class).
pub const OBJECTS: usize = 24;

/// A small deterministic gaussian corpus (24 objects, 12 bins).
pub fn database() -> Database {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let dataset = gaussian::generate(
        &GaussianParams {
            dim: DIM,
            num_classes: 4,
            per_class: 6,
            ..GaussianParams::default()
        },
        &mut rng,
    );
    assert_eq!(dataset.histograms.len(), OBJECTS);
    Database::new(dataset.histograms, Arc::new(dataset.cost)).unwrap()
}

/// The standard single-stage filter pipeline over [`database`].
pub fn executor(database: &Database) -> Executor {
    let assignment: Vec<usize> = (0..DIM).map(|i| i * REDUCED / DIM).collect();
    let reduced = ReducedEmd::new(
        database.cost(),
        CombiningReduction::new(assignment, REDUCED).unwrap(),
    )
    .unwrap();
    let stages: Vec<Box<dyn Filter>> =
        vec![Box::new(ReducedEmdFilter::new(database, reduced).unwrap())];
    let refiner = Box::new(EmdDistance::new(database).unwrap());
    Executor::new(QueryPlan::new(stages, refiner).unwrap())
}

/// A ready-to-serve snapshot over the deterministic corpus.
pub fn snapshot() -> Snapshot {
    let database = database();
    let executor = executor(&database);
    Snapshot {
        executor,
        database,
        name: "gaussian-test".to_owned(),
        faults: None,
        ingest: None,
    }
}

/// Start a server on an ephemeral port with `workers` workers.
pub fn start(snapshot: Snapshot, workers: usize) -> RunningServer {
    Server::start(
        snapshot,
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers,
            ..ServeConfig::default()
        },
    )
    .unwrap()
}

/// One raw HTTP exchange, returning `(status, headers, body)` — unlike
/// `loadgen::http_call` this keeps the headers, so tests can assert on
/// `Retry-After` and friends.
pub fn raw_call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).unwrap();
    let (head, body) = text.split_once("\r\n\r\n").unwrap();
    let mut lines = head.lines();
    let status_line = lines.next().unwrap();
    let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
    let headers = lines
        .map(|line| {
            let (name, value) = line.split_once(':').unwrap();
            (name.trim().to_owned(), value.trim().to_owned())
        })
        .collect();
    (status, headers, body.to_owned())
}

/// Case-insensitive header lookup over [`raw_call`]'s header list.
pub fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}
