//! End-to-end server tests: a real `TcpListener` on an ephemeral port,
//! concurrent clients, and bit-level comparison against the direct
//! [`Executor`] the server wraps.

// Test helpers outside #[test] fns still get test-style panic latitude.
#![allow(clippy::unwrap_used, clippy::expect_used)]

mod common;

use emd_query::{Budget, Query, QueryOutcome};
use emd_serve::loadgen::{self, LoadgenConfig};
use emd_serve::QuerySpec;
use emd_store::json::{self, Value};
use std::collections::BTreeMap;
use std::time::Duration;

fn parse_object(body: &str) -> BTreeMap<String, Value> {
    match json::parse(body).expect("response is valid JSON") {
        Value::Object(map) => map,
        other => panic!("expected a JSON object, got {other:?}"),
    }
}

/// `(id, distance-bits)` pairs from a served kNN response body.
fn served_neighbors(body: &str) -> Vec<(usize, u64)> {
    let map = parse_object(body);
    assert_eq!(
        map.get("degraded"),
        Some(&Value::Bool(false)),
        "expected an exact outcome: {body}"
    );
    map.get("neighbors")
        .and_then(Value::as_array)
        .expect("neighbors array")
        .iter()
        .map(|entry| {
            let entry = entry.as_object().expect("neighbor object");
            let id = match entry.get("id") {
                Some(Value::Number(n)) => *n as usize,
                other => panic!("bad id {other:?}"),
            };
            let distance = match entry.get("distance") {
                Some(Value::Number(n)) => n.to_bits(),
                other => panic!("bad distance {other:?}"),
            };
            (id, distance)
        })
        .collect()
}

#[test]
fn concurrent_served_knn_is_bit_identical_to_direct_executor() {
    let server = common::start(common::snapshot(), 4);
    let addr = server.addr();

    // Direct answers from an identical executor, one per query object.
    let database = common::database();
    let executor = common::executor(&database);
    let k = 5;
    let expected: Vec<Vec<(usize, u64)>> = (0..common::OBJECTS)
        .map(|id| {
            let query = Query::knn(database.get(id).unwrap().clone(), k);
            let (outcome, _) = executor.run_budgeted(&query, &Budget::unlimited()).unwrap();
            match outcome {
                QueryOutcome::Exact(neighbors) => neighbors
                    .iter()
                    .map(|n| (n.id, n.distance.to_bits()))
                    .collect(),
                QueryOutcome::Degraded(_) => panic!("unbudgeted query degraded"),
            }
        })
        .collect();

    // Every object queried concurrently from 8 client threads.
    std::thread::scope(|scope| {
        for chunk in (0..common::OBJECTS).collect::<Vec<_>>().chunks(3) {
            let expected = &expected;
            let chunk = chunk.to_vec();
            scope.spawn(move || {
                for id in chunk {
                    let body = format!("{{\"query_id\": {id}, \"k\": {k}}}");
                    let (status, _, body) = common::raw_call(addr, "POST", "/v1/knn", Some(&body));
                    assert_eq!(status, 200, "object {id}: {body}");
                    assert_eq!(
                        served_neighbors(&body),
                        expected[id],
                        "served kNN for object {id} diverges from the direct executor"
                    );
                }
            });
        }
    });
    server.drain_and_join().unwrap();
}

#[test]
fn range_queries_and_inline_weights_serve_exactly() {
    let server = common::start(common::snapshot(), 2);
    let addr = server.addr();
    let database = common::database();
    let executor = common::executor(&database);

    // Range query by id.
    let epsilon = 2.5;
    let query = Query::range(database.get(3).unwrap().clone(), epsilon);
    let (outcome, _) = executor.run_budgeted(&query, &Budget::unlimited()).unwrap();
    let QueryOutcome::Exact(expected) = outcome else {
        panic!("unbudgeted range query degraded");
    };
    let body = format!("{{\"query_id\": 3, \"epsilon\": {epsilon}}}");
    let (status, _, body) = common::raw_call(addr, "POST", "/v1/range", Some(&body));
    assert_eq!(status, 200, "{body}");
    let served = served_neighbors(&body);
    assert_eq!(served.len(), expected.len());
    for (served, expected) in served.iter().zip(&expected) {
        assert_eq!(*served, (expected.id, expected.distance.to_bits()));
    }

    // kNN with the query histogram inlined as weights instead of an id.
    let histogram = database.get(7).unwrap().clone();
    let weights: Vec<String> = histogram.bins().iter().map(|w| format!("{w}")).collect();
    let body = format!("{{\"weights\": [{}], \"k\": 4}}", weights.join(", "));
    let (status, _, body) = common::raw_call(addr, "POST", "/v1/knn", Some(&body));
    assert_eq!(status, 200, "{body}");
    let served = served_neighbors(&body);
    let direct = Query::knn(histogram, 4);
    let (outcome, _) = executor
        .run_budgeted(&direct, &Budget::unlimited())
        .unwrap();
    let QueryOutcome::Exact(expected) = outcome else {
        panic!("unbudgeted query degraded");
    };
    let expected: Vec<(usize, u64)> = expected
        .iter()
        .map(|n| (n.id, n.distance.to_bits()))
        .collect();
    assert_eq!(served, expected);
    server.drain_and_join().unwrap();
}

#[test]
fn deadline_zero_degrades_with_bound_ordered_candidates() {
    let server = common::start(common::snapshot(), 2);
    let addr = server.addr();
    let (status, _, body) = common::raw_call(
        addr,
        "POST",
        "/v1/knn",
        Some("{\"query_id\": 0, \"k\": 3, \"deadline_ms\": 0}"),
    );
    assert_eq!(status, 200, "degraded results are still 200s: {body}");
    let map = parse_object(&body);
    assert_eq!(map.get("degraded"), Some(&Value::Bool(true)));
    assert_eq!(
        map.get("reason").and_then(Value::as_str),
        Some("deadline"),
        "{body}"
    );
    let candidates = map
        .get("candidates")
        .and_then(Value::as_array)
        .expect("candidates array");
    let bounds: Vec<f64> = candidates
        .iter()
        .map(|c| match c.as_object().and_then(|c| c.get("bound")) {
            Some(Value::Number(n)) => *n,
            other => panic!("bad bound {other:?}"),
        })
        .collect();
    assert!(
        bounds.windows(2).all(|w| w[0] <= w[1]),
        "candidates must be bound-ordered: {bounds:?}"
    );
    server.drain_and_join().unwrap();
}

#[test]
fn inflight_overflow_sheds_with_429_and_retry_after() {
    // max_inflight = 0: the very first admitted connection is over cap,
    // so every request sheds deterministically.
    let server = emd_serve::Server::start(
        common::snapshot(),
        emd_serve::ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            max_inflight: 0,
            ..emd_serve::ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    for _ in 0..3 {
        let (status, headers, body) =
            common::raw_call(addr, "POST", "/v1/knn", Some("{\"query_id\": 0}"));
        assert_eq!(status, 429, "{body}");
        assert_eq!(common::header(&headers, "Retry-After"), Some("1"));
        let map = parse_object(&body);
        assert!(map.contains_key("error"), "shed body names the error");
    }
    server.drain_and_join().unwrap();
}

#[test]
fn bad_requests_get_typed_4xx_not_5xx() {
    let server = common::start(common::snapshot(), 1);
    let addr = server.addr();
    let cases: Vec<(&str, u16)> = vec![
        ("not json", 400),
        ("{\"query_id\": 99999, \"k\": 3}", 400),
        ("{\"query_id\": 0, \"k\": 0}", 400),
        ("{\"query_id\": 0, \"k\": 2, \"epsilon\": 1.0}", 400),
        ("{\"k\": 2}", 400),
        ("{\"weights\": [0.5, \"x\"], \"k\": 2}", 400),
    ];
    for (payload, expected) in cases {
        let (status, _, body) = common::raw_call(addr, "POST", "/v1/knn", Some(payload));
        assert_eq!(status, expected, "payload {payload}: {body}");
    }
    // Unknown route and wrong method.
    let (status, _, _) = common::raw_call(addr, "GET", "/nope", None);
    assert_eq!(status, 404);
    let (status, _, _) = common::raw_call(addr, "GET", "/v1/knn", None);
    assert_eq!(status, 405);
    server.drain_and_join().unwrap();
}

#[test]
fn healthz_and_metrics_reflect_traffic() {
    let server = common::start(common::snapshot(), 2);
    let addr = server.addr();

    let (status, _, body) = common::raw_call(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    let health = parse_object(&body);
    assert_eq!(
        health.get("schema").and_then(Value::as_str),
        Some(emd_serve::RESPONSE_SCHEMA)
    );
    assert_eq!(
        health.get("index").and_then(Value::as_str),
        Some("gaussian-test")
    );
    assert_eq!(
        health.get("objects"),
        Some(&Value::Number(common::OBJECTS as f64))
    );

    for id in 0..4 {
        let body = format!("{{\"query_id\": {id}, \"k\": 2}}");
        let (status, _, _) = common::raw_call(addr, "POST", "/v1/knn", Some(&body));
        assert_eq!(status, 200);
    }
    let (status, _, body) = common::raw_call(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    let metrics = parse_object(&body);
    let counters = metrics
        .get("counters")
        .and_then(Value::as_object)
        .expect("counters object");
    let requests = match counters.get("serve.requests") {
        Some(Value::Number(n)) => *n,
        other => panic!("serve.requests missing: {other:?}"),
    };
    assert!(requests >= 4.0, "saw {requests} requests");
    assert!(counters.contains_key("serve.status.200"), "{body}");
    assert!(counters.contains_key("serve.shed"), "{body}");
    let histograms = metrics
        .get("histograms")
        .and_then(Value::as_object)
        .expect("histograms object");
    assert!(
        histograms.contains_key("serve.route.knn"),
        "per-route latency histogram: {body}"
    );
    // The in-flight gauge counts this very /metrics request.
    let gauges = metrics
        .get("gauges")
        .and_then(Value::as_object)
        .expect("gauges object");
    assert!(gauges.contains_key("serve.inflight"), "{body}");
    server.drain_and_join().unwrap();
}

#[test]
fn drain_finishes_queued_work_then_stops_accepting() {
    let server = common::start(common::snapshot(), 2);
    let addr = server.addr();
    let (status, _, _) = common::raw_call(addr, "POST", "/v1/knn", Some("{\"query_id\": 1}"));
    assert_eq!(status, 200);

    let (status, _, body) = common::raw_call(addr, "POST", "/admin/drain", None);
    assert_eq!(status, 202, "{body}");
    server.join().unwrap();

    // The listener is gone: new connections are refused (or reset).
    let refused = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    if let Ok(stream) = refused {
        // The OS may still complete the handshake on a dying socket;
        // reading must then fail or return EOF immediately.
        let mut buf = [0u8; 1];
        use std::io::Read;
        let mut stream = stream;
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        assert!(!matches!(stream.read(&mut buf), Ok(n) if n > 0));
    }
}

#[test]
fn loadgen_is_deterministic_and_counts_add_up() {
    let server = common::start(common::snapshot(), 2);
    let addr = server.addr();
    let config = LoadgenConfig {
        addr: addr.to_string(),
        threads: 2,
        requests: 12,
        spec: QuerySpec {
            k: Some(3),
            ..QuerySpec::default()
        },
        seed: 7,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&config).unwrap();
    assert_eq!(report.requests, 12);
    assert_eq!(
        report.ok + report.degraded + report.shed + report.client_errors + report.server_errors,
        12
    );
    assert_eq!(report.ok, 12, "all requests answered exactly");
    let rendered = report.to_json_string();
    let map = parse_object(&rendered);
    assert_eq!(
        map.get("schema").and_then(Value::as_str),
        Some(emd_serve::REPORT_SCHEMA)
    );
    server.drain_and_join().unwrap();
}
